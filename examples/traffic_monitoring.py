"""Traffic monitoring: the paper's navigation-systems motivation.

A road sensor reports hourly traffic volume to an untrusted aggregator
(think Google Maps / Waze ingestion).  We compare every non-sampling
algorithm on the Volume workload: per-slot SW, budget absorption, and the
three perturbation-parameterization algorithms, for both stream
publication (cosine distance) and subsequence mean estimation (MSE).

Run:  python examples/traffic_monitoring.py
"""


from repro.datasets import volume_stream
from repro.experiments import (
    format_sweep,
    mean_squared_error_of_mean,
    publication_cosine_distance,
    run_epsilon_sweep,
)

EPSILONS = (0.5, 1.0, 2.0, 3.0)
ALGORITHMS = ("sw-direct", "ba-sw", "ipp", "app", "capp")

stream = volume_stream(length=24 * 120)  # 120 days of hourly volume
print(f"workload: {stream.size} hourly slots, mean {stream.mean():.3f}\n")

mse_sweep = run_epsilon_sweep(
    stream,
    ALGORITHMS,
    epsilons=EPSILONS,
    w=24,  # protect any 24-hour window with the full budget
    metric=mean_squared_error_of_mean,
    n_subsequences=30,
    n_repeats=2,
    seed=0,
)
print(format_sweep(list(EPSILONS), mse_sweep.values,
                   title="Daily-window mean estimation (MSE, lower is better)"))
print()

cos_sweep = run_epsilon_sweep(
    stream,
    ALGORITHMS,
    epsilons=EPSILONS,
    w=24,
    metric=publication_cosine_distance,
    n_subsequences=30,
    n_repeats=2,
    seed=0,
)
print(format_sweep(list(EPSILONS), cos_sweep.values,
                   title="Stream publication (cosine distance, lower is better)"))
print()

best = cos_sweep.best_algorithm(len(EPSILONS) - 1)
print(f"best publisher at eps={EPSILONS[-1]}: {best}")
