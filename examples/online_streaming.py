"""Online streaming: perturb an unbounded stream one value at a time.

Deployed LDP clients see one reading per slot and must report
immediately.  The online perturbers expose exactly that push API and keep
the w-event ledger charged as they go; the collector smooths reports
incrementally with k slots of latency and O(window) memory.

Run:  python examples/online_streaming.py
"""

import numpy as np

from repro.core import OnlineCAPP, OnlineSmoother
from repro.metrics import mse

EPSILON, W = 1.0, 24
HORIZON = 2_000  # pretend this never ends

publisher = OnlineCAPP(EPSILON, W, np.random.default_rng(0))
smoother = OnlineSmoother(window=5)

rng = np.random.default_rng(42)
level = 0.5
truth, published = [], []
for t in range(HORIZON):
    # A slowly drifting sensor reading arrives...
    level = float(np.clip(level + rng.normal(0, 0.01), 0.0, 1.0))
    truth.append(level)
    # ...the client sanitizes and ships it immediately...
    report = publisher.submit(level)
    # ...and the collector smooths incrementally.
    published.extend(smoother.push(report))
published.extend(smoother.flush())

publisher.accountant.assert_valid()
print(f"slots processed         : {publisher.slots_processed}")
print(f"max window spend        : {publisher.accountant.max_window_spend():.4f} (budget {EPSILON})")
print(f"published-stream MSE    : {mse(published, truth):.4f}")
print(f"accumulated deviation D : {publisher.accumulated_deviation:+.4f}")
print("\nThe ledger stays at eps/w per slot forever -> infinite streams are fine.")
