"""Live serving demo: a scenario workload streamed through the pipeline.

Demonstrates the `repro.service` subsystem end to end:

1. synthesize a bursty scenario workload
   (:class:`~repro.runtime.ScenarioSource`) — population-wide bursts on
   a diurnal base signal with per-user noise;
2. serve it through the slot-clocked
   :class:`~repro.service.IngestionPipeline` with multiple producer
   threads, a standing dashboard (rolling mean / extrema / trend /
   threshold alert), a console alert hook, and an optional JSONL event
   log;
3. print every alert transition as it happens, then the serving summary
   — and, when an event log was recorded, replay it and verify the
   replayed estimates are bit-identical to the live run.

Run ``python examples/live_dashboard.py`` for the default tour, or
``python examples/live_dashboard.py --log events.jsonl`` to also record
and replay a capture.
"""

import argparse

import numpy as np

from repro.analysis.streaming_queries import standard_dashboard
from repro.runtime import ScenarioSource, make_scenario
from repro.service import CallbackSink, JSONLSink, replay_event_log, run_live


def alert_printer(threshold: float):
    """A callback sink that narrates alert transitions slot by slot."""
    state = {"active": False}

    def on_record(record):
        if record.get("type") != "slot":
            return
        answers = record["answers"].get("main", {})
        active = bool(answers.get("alert"))
        if active and not state["active"]:
            trend = answers.get("trend")
            # RollingTrend warms up over two slots, so a first-slot alert
            # has no slope yet.
            trend_text = "warming up" if trend is None else f"{trend:+.4f}/slot"
            print(
                f"  [slot {record['t']:3d}] ALERT: rolling mean "
                f"{answers['rolling_mean']:.3f} crossed {threshold:.2f} "
                f"(trend {trend_text})"
            )
        elif state["active"] and not active:
            print(
                f"  [slot {record['t']:3d}] clear: rolling mean back to "
                f"{answers['rolling_mean']:.3f}"
            )
        state["active"] = active

    return on_record


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=5_000)
    parser.add_argument("--slots", type=int, default=96)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--window", type=int, default=10, help="w-event window")
    # The collector's slot mean is the mean of *raw* SW reports, which
    # compresses the signal heavily at strong per-report privacy
    # (eps/w = 0.1 here), so the overload threshold sits just above the
    # resting mean rather than at the true burst level.
    parser.add_argument("--threshold", type=float, default=0.52)
    parser.add_argument("--log", help="JSONL event-log path (enables replay)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    spec = make_scenario(
        "bursty",
        n_users=args.users,
        horizon=args.slots,
        diurnal_amplitude=0.15,
        burst_rate=0.05,
        burst_magnitude=0.3,
    )
    source = ScenarioSource(
        spec, chunk_size=-(-args.users // args.shards), seed=args.seed
    )
    dashboard = standard_dashboard(window=5, alert_threshold=args.threshold)
    sinks = [CallbackSink(alert_printer(args.threshold))]
    if args.log:
        sinks.append(JSONLSink(args.log))

    print(
        f"serving {args.users} users x {args.slots} slots "
        f"({args.shards} producer shards, eps={args.epsilon}, w={args.window})"
    )
    result = run_live(
        source,
        algorithm="capp",
        epsilon=args.epsilon,
        w=args.window,
        seed=args.seed + 1,
        max_workers=args.shards,
        sinks=sinks,
        dashboards={"main": dashboard},
        record_batches=bool(args.log),
    )

    alert = dashboard.query("alert")
    lo, hi = dashboard.answers()["extrema"]
    print(
        f"\ndone: {result.n_reports:,} reports in "
        f"{result.elapsed_seconds:.2f} s "
        f"({result.reports_per_second:,.0f} reports/s, "
        f"p99 slot latency {result.latency_quantile(0.99) * 1e3:.2f} ms)"
    )
    print(
        f"dashboard: alerts fired {alert.fired_count}x, final rolling "
        f"window spans [{lo:.3f}, {hi:.3f}]"
    )
    if result.queue_stats is not None:
        print(
            f"queue: high watermark {result.queue_stats.high_watermark}, "
            f"{result.queue_stats.producer_waits} backpressure waits, "
            f"mean drain {result.queue_stats.mean_drain:.2f} batches"
        )

    if args.log:
        replayed = replay_event_log(args.log)
        identical = np.array_equal(
            replayed.population_mean_series(), result.population_mean_series()
        )
        print(
            f"replay from {args.log}: {replayed.n_reports:,} reports, "
            f"bit-identical estimates: {identical}"
        )


if __name__ == "__main__":
    main()
