"""IoT alerting: standing queries over a live private stream with dropout.

An industrial sensor publishes a temperature-derived load factor under
w-event LDP.  The device sometimes goes offline (dropout) — skipped slots
spend no budget.  The monitoring side keeps standing queries alive: a
rolling mean, rolling extrema, a trend slope, and an overload alert that
fires when the 30-slot mean crosses 0.8.

Run:  python examples/iot_alerting.py
"""

import numpy as np

from repro.analysis import (
    RollingExtrema,
    RollingMean,
    RollingTrend,
    StreamingQueryEngine,
    ThresholdAlert,
)
from repro.core import OnlineCAPP
from repro.experiments import sparkline

EPSILON, W = 2.0, 30
HORIZON = 1_200
DROPOUT = 0.10  # sensor offline 10% of slots

rng = np.random.default_rng(3)
publisher = OnlineCAPP(EPSILON, W, np.random.default_rng(0))

engine = StreamingQueryEngine()
engine.register("mean_30", RollingMean(30))
engine.register("extrema_30", RollingExtrema(30))
engine.register("trend_60", RollingTrend(60))
engine.register("overload", ThresholdAlert(30, threshold=0.8))

# The true load: normal operation, an overload episode, recovery.
level = np.concatenate(
    [
        np.full(500, 0.45),
        np.linspace(0.45, 0.95, 200),
        np.full(200, 0.95),
        np.linspace(0.95, 0.5, 300),
    ]
)
level = np.clip(level + rng.normal(0, 0.02, HORIZON), 0, 1)

alert_slots = []
reports = []
for t in range(HORIZON):
    if rng.random() < DROPOUT:
        publisher.skip()  # offline: no report, no budget spent
        continue
    report = publisher.submit(float(level[t]))
    reports.append(report)
    answers = engine.push(report)
    if answers["overload"] and (not alert_slots or t - alert_slots[-1] > 50):
        alert_slots.append(t)

publisher.accountant.assert_valid()
answers = engine.answers()

print(f"slots: {HORIZON}, reports: {engine.values_seen} "
      f"({HORIZON - engine.values_seen} dropped)")
print(f"rolling 30-mean now : {answers['mean_30']:.3f}")
print(f"rolling extrema     : ({answers['extrema_30'][0]:.3f}, "
      f"{answers['extrema_30'][1]:.3f})")
print(f"trend slope (60)    : {answers['trend_60']:+.5f}/slot")
print(f"overload fired      : {engine.query('overload').fired_count} time(s), "
      f"first around slot {alert_slots[0] if alert_slots else '-'}")
print(f"true overload began : slot 500 (ramp) / 700 (plateau)")
print()
print("published reports   :", sparkline(np.array(reports)[:: max(len(reports) // 60, 1)]))
print("true load           :", sparkline(level[:: HORIZON // 60]))
print()
print(f"ledger: max {W}-slot window spend "
      f"{publisher.accountant.max_window_spend():.3f} <= eps {EPSILON}")
