"""Smart metering with PP-S sampling: concentrate budget on segment means.

A household smart meter reports power usage (96 slots/day).  The utility
only needs *mean consumption per billing block*, so PP-S uploads one
perturbed segment mean per block instead of every raw slot — any w-slot
window then contains few uploads and each runs with a much larger budget
(Theorem 6).  This example shows the budget concentration, the automatic
n_s selection (Equation 12), and the accuracy difference against per-slot
reporting.

Run:  python examples/smart_meter_sampling.py
"""

import numpy as np

from repro.baselines import NaiveSampling, SWDirect
from repro.core import PPSampling, choose_num_samples
from repro.datasets import power_matrix
from repro.experiments import format_table

EPSILON = 1.0
W = 24  # protect any 6-hour window (15-minute slots)

device = power_matrix(n_users=50, length=96, seed=21)[7]
print(f"device profile: 96 slots, mean {device.mean():.3f}")

auto_ns = choose_num_samples(device.size, W, EPSILON)
print(f"Equation-12 n_s selection: {auto_ns} segments\n")

rows = []
for label, factory in (
    ("SW-direct (per slot)", lambda: SWDirect(EPSILON, W)),
    ("Sampling (naive)", lambda: NaiveSampling(EPSILON, W, n_samples=4)),
    ("APP-S (4 segments)", lambda: PPSampling(EPSILON, W, base="app", n_samples=4)),
    ("CAPP-S (4 segments)", lambda: PPSampling(EPSILON, W, base="capp", n_samples=4)),
    (f"CAPP-S (auto n_s={auto_ns})", lambda: PPSampling(EPSILON, W, base="capp")),
):
    errors = []
    eps_per_upload = None
    for rep in range(30):
        rng = np.random.default_rng(100 + rep)
        result = factory().perturb_stream(device, rng)
        errors.append((result.mean_estimate() - device.mean()) ** 2)
        if hasattr(result, "epsilon_per_sample"):
            eps_per_upload = result.epsilon_per_sample
        else:
            eps_per_upload = result.epsilon_per_slot
    rows.append([label, eps_per_upload, float(np.mean(errors))])

print(
    format_table(
        ["scheme", "eps per upload", "mean-estimation MSE"],
        rows,
        title=f"Daily mean consumption, eps={EPSILON}, w={W}",
    )
)
print(
    "\nSampling uploads run with "
    f"{rows[2][1] / rows[0][1]:.0f}x the per-upload budget of per-slot reporting."
)
