"""Network gateway demo: a client fleet uploading over real TCP.

Demonstrates the `repro.gateway` subsystem end to end:

1. synthesize a bursty scenario workload and split it into user-shards
   (:func:`~repro.runtime.scenario_source`);
2. start the asyncio gateway server on an ephemeral loopback port and
   upload the population as a concurrent client fleet — with arrival
   jitter, plus two *forced mid-slot disconnects* to show
   reconnect-and-resume recovering without re-spending budget;
3. print the transport telemetry (throughput, tail latency, duplicates,
   reconnects) and verify the served estimates are **bit-identical** to
   the offline sharded runtime for the same seed and decomposition.

Run ``python examples/gateway_demo.py`` (add ``--users``/``--slots`` to
scale).
"""

import argparse

import numpy as np

from repro.analysis.streaming_queries import standard_dashboard
from repro.gateway import run_gateway
from repro.runtime import run_protocol_sharded, scenario_source


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--users", type=int, default=4_000)
    parser.add_argument("--slots", type=int, default=96)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    source = scenario_source(
        "bursty",
        n_users=args.users,
        horizon=args.slots,
        n_shards=args.shards,
        seed=args.seed,
    )
    params = dict(algorithm="capp", epsilon=1.0, w=10, seed=args.seed + 1)

    print(
        f"serving {args.users} users x {args.slots} slots over loopback TCP "
        f"({args.shards} client connections, jitter + forced drops)..."
    )
    dashboard = standard_dashboard(window=5, alert_threshold=0.52)
    run = run_gateway(
        source,
        jitter=0.001,
        drops={1: [args.slots // 3], 2: [args.slots // 2]},
        dashboards={"main": dashboard},
        **params,
    )

    snapshot = run.metrics.snapshot()
    print(f"\n  reports ingested  : {run.result.n_reports}")
    print(f"  reports/s         : {snapshot['reports_per_second']:.0f}")
    print(f"  p50 slot finalize : {snapshot['p50_slot_latency_seconds'] * 1e3:.3f} ms")
    print(f"  p99 slot finalize : {snapshot['p99_slot_latency_seconds'] * 1e3:.3f} ms")
    print(f"  wire traffic      : {snapshot['bytes_received']} bytes up, "
          f"{snapshot['bytes_sent']} bytes down")
    print(f"  duplicates/sheds  : {snapshot['duplicates']} / {snapshot['sheds']}")
    for report in run.shard_reports:
        note = f" (dropped at slots {report.dropped_slots})" if report.dropped_slots else ""
        print(
            f"    shard {report.shard}: uploaded {report.uploaded}, "
            f"reconnects {report.reconnects}{note}"
        )
    alert = dashboard.query("alert")
    print(f"  burst alerts fired: {alert.fired_count}")

    print("\nverifying against the offline sharded runtime...")
    offline = run_protocol_sharded(source, **params)
    np.testing.assert_array_equal(
        run.result.population_mean_series(),
        offline.collector.population_mean_series(),
    )
    print(
        "  bit-identical: every slot estimate matches the offline run "
        "exactly — TCP framing, jitter, and reconnects changed nothing."
    )


if __name__ == "__main__":
    main()
