"""Out-of-core sharded protocol run: 1M users from a memmapped .npy file.

Demonstrates the `repro.runtime` subsystem end to end:

1. synthesize a 1,000,000-user diurnal population and write it to an
   on-disk ``.npy`` file *in chunks* (the full matrix never exists in
   memory — roughly 96 MB on disk as float32, and only one chunk's worth
   of float64 in RAM at any point);
2. stream it back through :class:`~repro.runtime.MemmapSource` and
   execute the collection protocol shard by shard with
   :func:`~repro.runtime.run_protocol_sharded`, optionally across worker
   processes, with per-shard checkpoints;
3. query the merged collector exactly as an unsharded run would be
   queried.

Run ``python examples/sharded_runtime.py --users 100000`` for a quicker
tour; the default reproduces the full 1M-user demonstration.
"""

import argparse
import os
import resource
import tempfile
import time

import numpy as np

from repro.datasets import diurnal_stream
from repro.runtime import MemmapSource, run_protocol_sharded


def write_population(path: str, n_users: int, horizon: int, block: int) -> None:
    """Stream a synthetic population to disk without materializing it."""
    mm = np.lib.format.open_memmap(
        path, mode="w+", dtype=np.float32, shape=(n_users, horizon)
    )
    level = diurnal_stream(horizon, period=24, amplitude=0.25, base=0.5)
    rng = np.random.default_rng(0)
    for start in range(0, n_users, block):
        stop = min(start + block, n_users)
        offsets = rng.uniform(-0.05, 0.05, size=stop - start)
        noise = rng.normal(0.0, 0.05, size=(stop - start, horizon))
        mm[start:stop] = np.clip(
            level[None, :] + offsets[:, None] + noise, 0.0, 1.0
        ).astype(np.float32)
    mm.flush()
    del mm


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=1_000_000)
    parser.add_argument("--slots", type=int, default=24)
    parser.add_argument("--chunk-size", type=int, default=65_536,
                        help="users per shard (= per worker task)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--w", type=int, default=8)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-sharded-") as tmp:
        path = os.path.join(tmp, "population.npy")
        print(f"writing {args.users:,} users x {args.slots} slots to {path} ...")
        start = time.perf_counter()
        write_population(path, args.users, args.slots, block=args.chunk_size)
        size_mib = os.path.getsize(path) / 2**20
        print(f"  {size_mib:.0f} MiB on disk in {time.perf_counter() - start:.1f} s")

        source = MemmapSource(path, chunk_size=args.chunk_size)
        n_shards = -(-args.users // args.chunk_size)
        print(
            f"running {n_shards} shards with {args.workers} worker(s), "
            f"epsilon={args.epsilon}, w={args.w} ..."
        )
        done = []
        start = time.perf_counter()
        result = run_protocol_sharded(
            source,
            algorithm="capp",
            epsilon=args.epsilon,
            w=args.w,
            seed=7,
            max_workers=args.workers,
            checkpoint_dir=os.path.join(tmp, "checkpoints"),
            on_shard=lambda s: done.append(s.index)
            or print(f"  shard {s.index} done ({len(done)}/{n_shards})"),
        )
        seconds = time.perf_counter() - start
        reports = result.collector.n_reports
        print(f"finished in {seconds:.1f} s ({reports / seconds:,.0f} reports/s)")

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
        print(f"peak RSS (parent): {peak:.0f} MiB for a {size_mib:.0f} MiB dataset")
        print("population mean estimates (first 6 slots):")
        print("  ", np.round(result.collector.population_mean_series()[:6], 4))
        print(f"ground-truth MSE: {result.population_mean_mse():.6f}")
        result.assert_valid()
        print("w-event audit: every user within budget")


if __name__ == "__main__":
    main()
