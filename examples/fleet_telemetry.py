"""Fleet telemetry: crowd-level statistics over many drivers (Fig. 8).

A ride-hailing platform collects each driver's latitude stream under
w-event LDP and wants the *population distribution* of per-driver mean
positions (e.g. to estimate regional supply).  Theorem 5 says accurate
individual estimates give an accurate crowd distribution; this example
measures that with the Wasserstein distance for several algorithms.

Run:  python examples/fleet_telemetry.py
"""

import numpy as np

from repro.analysis import crowd_mean_estimates, dkw_sample_bound
from repro.datasets import taxi_matrix
from repro.experiments import format_table, make_algorithm
from repro.metrics import wasserstein_distance

N_DRIVERS = 300
Q = 30          # subsequence length (slots)
W = 10          # privacy window
EPSILON = 2.0

fleet = taxi_matrix(N_DRIVERS, 200)
block = fleet[:, 80 : 80 + Q]  # the analyst's query interval

rows = []
for name in ("sw-direct", "ba-sw", "ipp", "app", "capp"):
    rng = np.random.default_rng(7)
    estimated, true = crowd_mean_estimates(
        block, lambda n=name: make_algorithm(n, EPSILON, W), rng
    )
    rows.append(
        [
            name,
            wasserstein_distance(estimated, true),
            float(np.mean(np.abs(estimated - true))),
            float(np.corrcoef(estimated, true)[0, 1]),
        ]
    )

print(
    format_table(
        ["algorithm", "Wasserstein dist", "mean |error|", "corr(est, true)"],
        rows,
        title=f"Crowd-level mean distribution, {N_DRIVERS} drivers, "
        f"eps={EPSILON}, w={W}, q={Q}",
    )
)

# How many drivers do we need for a crowd-level guarantee?  Theorem 5:
# with per-user error <= beta, N >= ln(2/delta) / (2 (eta - beta)^2) gives
# sup-CDF error <= eta with probability 1 - delta.
n_required = dkw_sample_bound(eta=0.2, beta=0.1, delta=0.05)
print(f"\nTheorem 5: need N >= {n_required} users for eta=0.2, beta=0.1, delta=0.05")
print(f"fleet size {N_DRIVERS} {'meets' if N_DRIVERS >= n_required else 'misses'} the bound")
