"""Trend dashboard: everything the collector can do with one published
stream — smoothing, trend segmentation, range queries, terminal charts.

A tele-health wearable publishes a vitals-derived score under w-event
LDP.  The collector post-processes the reports with the variance-informed
Kalman smoother, segments the series into trend regimes with CUSUM,
answers interactive range queries in O(1) via the prefix-sum index, and
renders everything as terminal charts (offline, no matplotlib).

Run:  python examples/trend_dashboard.py
"""

import numpy as np

from repro.analysis import SubsequenceIndex, classify_trend, segment_trends
from repro.core import APP, KalmanSmoother, observation_variance_for
from repro.experiments import line_chart, sparkline

EPSILON, W = 2.0, 24

# The patient's true score: stable -> deterioration -> recovery.
rng = np.random.default_rng(7)
truth = np.concatenate(
    [
        0.70 + rng.normal(0, 0.01, 200),          # stable
        np.linspace(0.70, 0.35, 150) + rng.normal(0, 0.01, 150),  # declining
        np.linspace(0.35, 0.60, 150) + rng.normal(0, 0.01, 150),  # recovering
    ]
)
truth = np.clip(truth, 0, 1)

# Local perturbation (user side).
result = APP(EPSILON, W, smoothing_window=None).perturb_stream(
    truth, np.random.default_rng(0)
)

# Collector side: variance-informed smoothing.
smoother = KalmanSmoother(
    observation_var=observation_variance_for(EPSILON / W), process_var=3e-4
)
published = smoother.smooth(result.perturbed)

print(line_chart(truth, height=7, width=72, title="true score (never leaves the device)"))
print()
print(line_chart(published, height=7, width=72, title=f"published estimate (eps={EPSILON}, w={W})"))

# Trend segmentation on the published stream.
print("\ntrend regimes detected on the published stream:")
for segment in segment_trends(published, threshold=0.6, flat_slope=5e-4):
    print(
        f"  slots {segment.start:3d}-{segment.end:3d}: {segment.direction:8s}"
        f" (slope {segment.slope:+.5f}/slot)"
    )
print("overall trend:", classify_trend(published, threshold=1e-4))

# Interactive range queries in O(1).
index = SubsequenceIndex(published)
for start, end in [(0, 199), (200, 349), (350, 499)]:
    stats = index.statistics(start, end)
    true_mean = truth[start : end + 1].mean()
    print(
        f"query [{start:3d},{end:3d}]: est mean {stats.mean:.3f} "
        f"(true {true_mean:.3f}), est std {stats.std:.3f}"
    )

print("\nsliding 50-slot means:", sparkline(index.sliding_means(50)[::10]))
result.accountant.assert_valid()
print("privacy ledger valid — no 24-slot window exceeded eps =", EPSILON)
