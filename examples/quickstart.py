"""Quickstart: publish a private stream with CAPP in ten lines.

A single user owns a bounded numerical stream.  CAPP perturbs it under
w-event LDP (total budget ``eps`` inside any window of ``w`` slots); the
collector receives the reports, smooths them, and estimates statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CAPP
from repro.metrics import cosine_distance, mse

# The user's true stream: one day of a smooth sensor signal in [0, 1].
t = np.arange(288)  # 5-minute slots
stream = np.clip(0.5 + 0.35 * np.sin(2 * np.pi * t / 288) + 0.03 * np.sin(t), 0, 1)

# Local perturbation under 1.0-budget 24-slot w-event LDP.
capp = CAPP(epsilon=1.0, w=24)
result = capp.perturb_stream(stream, np.random.default_rng(0))

# Collector-side artifacts.
print("chosen clip range      :", f"[{capp.clip_bounds.low:+.3f}, {capp.clip_bounds.high:+.3f}]")
print("true mean              :", f"{stream.mean():.4f}")
print("estimated mean         :", f"{result.mean_estimate():.4f}")
print("published-stream MSE   :", f"{mse(result.published, stream):.4f}")
print("cosine distance        :", f"{cosine_distance(result.published, stream):.4f}")

# The runtime privacy ledger proves no window overspent.
result.accountant.assert_valid()
print("max window spend       :", f"{result.accountant.max_window_spend():.4f}  (budget 1.0)")
