"""High-dimensional trajectories: Budget-Split vs Sample-Split (Fig. 10).

A vehicle reports a d-dimensional time series (latitude, longitude,
speed, ...) under one shared w-event budget.  Budget-Split uploads every
dimension each slot at eps/(d*w); Sample-Split uploads one dimension per
slot at eps/w.  This example compares both strategies wrapped around
SW-direct, APP, and CAPP.

Run:  python examples/multidim_trajectories.py
"""

import numpy as np

from repro.core import BudgetSplit, SampleSplit
from repro.datasets import sin_matrix
from repro.experiments import format_table, make_algorithm
from repro.metrics import cosine_distance

D, LENGTH = 5, 240
EPSILON, W = 2.0, 12

trajectory = sin_matrix(D, LENGTH)
true_means = trajectory.mean(axis=1)

rows = []
for strategy_name, strategy_cls in (("BS", BudgetSplit), ("SS", SampleSplit)):
    for inner in ("sw-direct", "app", "capp"):
        mse_scores, cos_scores = [], []
        for rep in range(6):
            rng = np.random.default_rng(50 + rep)
            strategy = strategy_cls(
                factory=lambda e, w, n=inner: make_algorithm(n, e, w),
                epsilon=EPSILON,
                w=W,
            )
            run = strategy.perturb_matrix(trajectory, rng)
            mse_scores.append(float(np.mean((run.mean_estimates() - true_means) ** 2)))
            cos_scores.append(
                float(
                    np.mean(
                        [cosine_distance(run.published[i], trajectory[i]) for i in range(D)]
                    )
                )
            )
        rows.append(
            [
                f"{inner.upper()}-{strategy_name}",
                float(np.mean(mse_scores)),
                float(np.mean(cos_scores)),
            ]
        )

print(
    format_table(
        ["strategy", "per-dim mean MSE", "cosine distance"],
        rows,
        title=f"d={D} trajectory, eps={EPSILON}, w={W}, {LENGTH} slots",
    )
)
print("\nBS gives each dimension dense-but-noisier uploads; SS gives sparse-but-")
print("cleaner ones.  On smooth sinusoids BS wins (the paper's Fig. 10 finding).")
