"""Full collection protocol: 200 users -> untrusted collector (Fig. 1).

Simulates the paper's architecture end to end: each user agent holds a
private stream and an online CAPP perturber; the collector ingests only
sanitized reports and answers population queries — per-slot means, one
user's published stream, crowd-level subsequence means, and an EM
distribution estimate at a chosen slot.

Run:  python examples/protocol_simulation.py
"""

import numpy as np

from repro.datasets import taxi_matrix
from repro.metrics import wasserstein_distance
from repro.protocol import run_protocol

N_USERS, HORIZON = 200, 60
EPSILON, W = 2.0, 10

streams = taxi_matrix(N_USERS, HORIZON)
result = run_protocol(
    streams,
    algorithm="capp",
    epsilon=EPSILON,
    w=W,
    smoothing_window=3,
    rng=np.random.default_rng(0),
)
collector = result.collector

print(f"ingested {collector.n_reports} reports from {collector.n_users} users")
print(f"population-mean MSE over {HORIZON} slots: {result.population_mean_mse():.5f}")

# One user's published stream vs their private truth (evaluation only —
# the collector itself never sees the truth).
user = result.users[7]
published = collector.publish_user_stream(7)
truth = [user.true_value(t) for t in range(HORIZON)]
print(f"user 7 published-stream MSE: {float(np.mean((published - truth) ** 2)):.5f}")

# Crowd-level: distribution of subsequence means over slots [20, 49].
estimates = collector.crowd_mean_estimates(20, 49)
true_means = streams[:, 20:50].mean(axis=1)
print(
    "crowd mean-distribution Wasserstein distance:",
    f"{wasserstein_distance(estimates, true_means):.3f}",
)

# Distribution of values at slot 30 (EM reconstruction from SW reports).
distribution = collector.estimate_slot_distribution(30, n_bins=10)
print("\nestimated value distribution at t=30 (10 bins):")
bars = "".join("▁▂▃▄▅▆▇█"[min(int(p * 8 / max(distribution)), 7)] for p in distribution)
print(" ", bars, f" (true mean at t=30: {streams[:, 30].mean():.3f})")

for agent in result.users[:3]:
    agent.perturber.accountant.assert_valid()
print("\nall user ledgers valid: no w-window exceeded its budget")
