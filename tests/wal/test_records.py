"""WAL record codec: framing, CRC, torn tails, corruption detection."""

import json
import struct

import numpy as np
import pytest

from repro.service.events import ReportBatch
from repro.wal.records import (
    MAX_RECORD_PAYLOAD,
    RECORD_HEADER_BYTES,
    WAL_MAGIC,
    WAL_VERSION,
    RecordType,
    WalCorruptionError,
    WalError,
    decode_batch_payload,
    decode_json_payload,
    encode_batch_record,
    encode_json_record,
    encode_record,
    parse_records,
    record_crc,
)


def _batch(shard=1, t=3, n=5, seed=0):
    rng = np.random.default_rng(seed)
    return ReportBatch(
        shard=shard,
        t=t,
        user_ids=np.arange(n, dtype=np.int64) + 100 * shard,
        values=rng.uniform(-1.0, 1.0, size=n),
    )


class TestEncoding:
    def test_header_layout(self):
        record = encode_record(RecordType.COMMIT, b"xyz")
        magic, version, rtype, length, crc = struct.unpack(
            ">2sBBII", record[:RECORD_HEADER_BYTES]
        )
        assert magic == WAL_MAGIC
        assert version == WAL_VERSION
        assert rtype == RecordType.COMMIT
        assert length == 3
        assert crc == record_crc(RecordType.COMMIT, b"xyz")
        assert record[RECORD_HEADER_BYTES:] == b"xyz"

    def test_unknown_type_refused(self):
        with pytest.raises(WalError, match="unknown WAL record type"):
            encode_record(9, b"")

    def test_oversized_payload_refused(self):
        class FakeLen(bytes):
            def __len__(self):
                return MAX_RECORD_PAYLOAD + 1

        with pytest.raises(WalError, match="exceeds"):
            encode_record(RecordType.BATCH, FakeLen())

    def test_crc_covers_type_byte(self):
        # Same payload under two types must produce different CRCs, or a
        # bit flip in the type byte would go undetected.
        assert record_crc(RecordType.BATCH, b"p") != record_crc(
            RecordType.COMMIT, b"p"
        )


class TestRoundTrips:
    def test_json_record_round_trip(self):
        fields = {"t": 4, "n_reports": 12, "mean": 0.1 + 0.2}
        record = encode_json_record(RecordType.COMMIT, fields)
        parsed, torn = parse_records(record)
        assert not torn
        [(rtype, payload)] = parsed
        assert rtype == RecordType.COMMIT
        decoded = decode_json_payload(payload)
        assert decoded == fields
        assert decoded["mean"] == 0.1 + 0.2  # repr-exact float

    def test_batch_record_bit_exact(self):
        batch = _batch(n=17, seed=5)
        record = encode_batch_record(batch)
        [(rtype, payload)], torn = parse_records(record)
        assert rtype == RecordType.BATCH and not torn
        restored = decode_batch_payload(payload)
        assert restored.shard == batch.shard and restored.t == batch.t
        np.testing.assert_array_equal(restored.user_ids, batch.user_ids)
        assert restored.values.tobytes() == batch.values.tobytes()

    def test_stream_of_records(self):
        blobs = [
            encode_json_record(RecordType.RUN_START, {"config": {}}),
            encode_batch_record(_batch()),
            encode_json_record(RecordType.COMMIT, {"t": 0}),
            encode_json_record(RecordType.RUN_END, {}),
        ]
        records, torn = parse_records(b"".join(blobs))
        assert not torn
        assert [r for r, _ in records] == [
            RecordType.RUN_START,
            RecordType.BATCH,
            RecordType.COMMIT,
            RecordType.RUN_END,
        ]


class TestTornTails:
    def test_torn_header(self):
        intact = encode_json_record(RecordType.COMMIT, {"t": 0})
        data = intact + encode_json_record(RecordType.COMMIT, {"t": 1})[:5]
        records, torn = parse_records(data)
        assert torn
        assert len(records) == 1
        assert decode_json_payload(records[0][1]) == {"t": 0}

    def test_torn_payload(self):
        intact = encode_batch_record(_batch())
        second = encode_batch_record(_batch(t=4))
        records, torn = parse_records(intact + second[:-3])
        assert torn and len(records) == 1

    def test_every_truncation_point_is_torn_or_clean(self):
        # Chopping a valid stream at ANY byte must yield either a clean
        # parse or a torn tail — never a corruption error (the writer
        # appends whole records; only the tail can be cut).
        first = encode_json_record(RecordType.COMMIT, {"t": 0})
        data = first + encode_batch_record(_batch())
        boundaries = {0, len(first), len(data)}
        for cut in range(len(data) + 1):
            records, torn = parse_records(data[:cut])
            assert torn == (cut not in boundaries)
            assert len(records) <= 2


class TestCorruption:
    def test_bad_magic(self):
        record = bytearray(encode_json_record(RecordType.COMMIT, {"t": 0}))
        record[0] = ord("X")
        with pytest.raises(WalCorruptionError, match="bad record magic"):
            parse_records(bytes(record))

    def test_future_version(self):
        record = bytearray(encode_json_record(RecordType.COMMIT, {"t": 0}))
        record[2] = WAL_VERSION + 1
        with pytest.raises(WalCorruptionError, match="unsupported WAL version"):
            parse_records(bytes(record))

    def test_unknown_record_type(self):
        record = bytearray(encode_json_record(RecordType.COMMIT, {"t": 0}))
        record[3] = 200
        with pytest.raises(WalCorruptionError, match="unknown record type"):
            parse_records(bytes(record))

    def test_oversized_length_field(self):
        record = bytearray(encode_json_record(RecordType.COMMIT, {"t": 0}))
        struct.pack_into(">I", record, 4, MAX_RECORD_PAYLOAD + 1)
        with pytest.raises(WalCorruptionError, match="exceeds"):
            parse_records(bytes(record))

    def test_payload_bit_flip(self):
        record = bytearray(encode_json_record(RecordType.COMMIT, {"t": 0}))
        record[-1] ^= 0x01
        with pytest.raises(WalCorruptionError, match="CRC mismatch"):
            parse_records(bytes(record))

    def test_corruption_names_offset(self):
        good = encode_json_record(RecordType.COMMIT, {"t": 0})
        bad = bytearray(encode_json_record(RecordType.COMMIT, {"t": 1}))
        bad[-1] ^= 0x01
        with pytest.raises(WalCorruptionError, match=f"offset {len(good)}"):
            parse_records(good + bytes(bad))

    def test_json_payload_garbage(self):
        with pytest.raises(WalCorruptionError, match="not valid JSON"):
            decode_json_payload(b"\xff\xfe")
        with pytest.raises(WalCorruptionError, match="JSON object"):
            decode_json_payload(json.dumps([1, 2]).encode())

    def test_batch_payload_garbage(self):
        with pytest.raises(WalCorruptionError, match="malformed WAL batch"):
            decode_batch_payload(b"not a batch")
