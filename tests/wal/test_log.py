"""WriteAheadLog: segments, rotation, fsync policies, resume, shutdown."""

import os

import numpy as np
import pytest

from repro.service.events import ReportBatch
from repro.wal import (
    WalError,
    WriteAheadLog,
    list_checkpoints,
    list_segments,
    read_segment_records,
    segment_path,
)
from repro.wal.records import RecordType


def _batch(shard=0, t=0, n=4):
    return ReportBatch(
        shard=shard,
        t=t,
        user_ids=np.arange(n, dtype=np.int64),
        values=np.linspace(0.0, 1.0, n),
    )


class TestLifecycle:
    def test_fresh_directory(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal"))
        assert not wal.resumed
        assert wal.segment_index == 0
        assert not wal.closed
        wal.close()
        assert wal.closed

    def test_exists_probe(self, tmp_path):
        path = str(tmp_path / "wal")
        assert not WriteAheadLog.exists(path)
        wal = WriteAheadLog(path)
        wal.append_run_start({"n_shards": 1}, {})
        wal.close()
        assert WriteAheadLog.exists(path)

    def test_bad_fsync_policy(self, tmp_path):
        with pytest.raises(WalError, match="unknown fsync policy"):
            WriteAheadLog(str(tmp_path), fsync="sometimes")

    def test_bad_segment_bytes(self, tmp_path):
        with pytest.raises(WalError, match="segment_bytes"):
            WriteAheadLog(str(tmp_path), segment_bytes=0)

    def test_append_after_close_refused(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append_batch(_batch())

    def test_append_batch_type_checked(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        with pytest.raises(WalError, match="ReportBatch"):
            wal.append_batch("not a batch")
        wal.close()


class TestAppending:
    def test_records_survive_clean_close(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_run_start({"n_shards": 2, "horizon": 3}, {"seed": 1})
        wal.append_batch(_batch())
        wal.append_commit(0, 4, 0.5)
        wal.append_run_end({"slots": 1})
        wal.close()
        records, torn = read_segment_records(segment_path(str(tmp_path), 0))
        assert not torn
        assert [r for r, _ in records] == [
            RecordType.RUN_START,
            RecordType.BATCH,
            RecordType.COMMIT,
            RecordType.RUN_END,
        ]

    def test_records_survive_abandon(self, tmp_path):
        # abandon() closes the fd without fsync — the kill -9 shape.
        # Unbuffered appends are already in the page cache, so nothing
        # is lost.
        wal = WriteAheadLog(str(tmp_path), fsync="never")
        wal.append_run_start({}, {})
        wal.append_batch(_batch())
        wal.abandon()
        records, torn = read_segment_records(segment_path(str(tmp_path), 0))
        assert not torn and len(records) == 2

    def test_counters(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_run_start({}, {})
        wal.append_batch(_batch(t=0))
        wal.append_batch(_batch(t=1))
        wal.append_commit(0, 4, 0.25)
        stats = wal.stats()
        wal.close()
        assert stats["records_appended"] == 4
        assert stats["batches_appended"] == 2
        assert stats["commits_appended"] == 1
        assert stats["bytes_appended"] > 0

    def test_fsync_policy_sync_counts(self, tmp_path):
        def run(policy):
            wal = WriteAheadLog(str(tmp_path / policy), fsync=policy)
            wal.append_run_start({}, {})
            for t in range(3):
                wal.append_batch(_batch(t=t))
            wal.append_commit(0, 4, 0.5)
            syncs = wal.stats()["syncs"]
            wal.close()
            return syncs

        assert run("always") == 5  # every record
        assert run("commit") == 2  # run-start + commit
        assert run("never") == 0


class TestRotation:
    def test_size_based_rotation(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_bytes=256)
        for t in range(8):
            wal.append_batch(_batch(t=t, n=16))
        wal.close()
        segments = list_segments(str(tmp_path))
        assert len(segments) > 1
        assert [index for index, _ in segments] == list(range(len(segments)))
        total = 0
        for _, path in segments:
            records, torn = read_segment_records(path)
            assert not torn
            total += len(records)
        assert total == 8

    def test_explicit_rotate_seals_segment(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_batch(_batch(t=0))
        live = wal.rotate()
        assert live == 1
        wal.append_batch(_batch(t=1))
        wal.close()
        assert len(list_segments(str(tmp_path))) == 2

    def test_reopen_rotates_to_fresh_segment(self, tmp_path):
        # A resumed log never appends to an old segment, so a torn
        # record can only ever sit at a segment's physical end.
        first = WriteAheadLog(str(tmp_path))
        first.append_batch(_batch())
        first.abandon()
        second = WriteAheadLog(str(tmp_path))
        assert second.resumed
        assert second.segment_index == 1
        second.append_batch(_batch(t=1))
        second.close()
        assert [i for i, _ in list_segments(str(tmp_path))] == [0, 1]

    def test_no_checkpoints_in_fresh_log(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.close()
        assert list_checkpoints(str(tmp_path)) == []

    def test_empty_segments_tolerated(self, tmp_path):
        # Open/crash cycles with no traffic leave empty segments behind;
        # they parse as zero records, not as damage.
        for _ in range(3):
            WriteAheadLog(str(tmp_path)).abandon()
        segments = list_segments(str(tmp_path))
        assert len(segments) == 3
        for _, path in segments:
            assert read_segment_records(path) == ([], False)
        assert os.path.getsize(segments[0][1]) == 0
