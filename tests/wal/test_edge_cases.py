"""WAL failure drills: torn tails, bit rot, empty segments, races.

Every scenario must end in one of exactly two outcomes — a clean
recovery or a named :class:`WalCorruptionError` — and never in a
silently dropped slot.
"""

import threading

import numpy as np
import pytest

from repro.gateway.chaos import pipeline_fingerprint
from repro.service import IngestionPipeline, ReportBatch
from repro.wal import (
    WalCorruptionError,
    WriteAheadLog,
    compact,
    list_segments,
    recover_pipeline,
    segment_path,
)

N_SHARDS, HORIZON = 2, 8


def _pipeline():
    return IngestionPipeline(
        n_shards=N_SHARDS, horizon=HORIZON, epsilon=1.0, w=4, keep_reports=True
    )


def _batches(seed=3):
    rng = np.random.default_rng(seed)
    out = []
    for t in range(HORIZON):
        for shard in range(N_SHARDS):
            n = int(rng.integers(2, 5))
            out.append(
                ReportBatch(
                    shard=shard,
                    t=t,
                    user_ids=np.arange(n, dtype=np.int64) + 50 * shard,
                    values=rng.uniform(0.0, 1.0, size=n),
                )
            )
    return out


def _crashed_run(directory, n_batches=9):
    pipeline = _pipeline()
    wal = pipeline.attach_wal(WriteAheadLog(directory, fsync="never"))
    pipeline.start_run({})
    for batch in _batches()[:n_batches]:
        pipeline.submit(batch)
    wal.abandon()
    return pipeline


class TestTornFinalRecord:
    @pytest.mark.parametrize("cut", [1, 5, 11, 25])
    def test_torn_tail_recovers_prefix(self, tmp_path, cut):
        """Truncating the live segment mid-record loses only that record."""
        _crashed_run(str(tmp_path))
        index, path = list_segments(str(tmp_path))[-1]
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-cut])
        recovery = recover_pipeline(str(tmp_path))
        assert recovery.torn_tail
        # The prefix replays cleanly into a consistent pipeline; the torn
        # record's slot is simply "not yet delivered" and its shard's
        # resume slot points at it.
        reference = _pipeline()
        replayed = 0
        for batch in _batches():
            if replayed == recovery.replayed_batches:
                break
            reference.submit(batch)
            replayed += 1
        assert pipeline_fingerprint(recovery.pipeline) == pipeline_fingerprint(
            reference
        )

    def test_resume_after_torn_tail_completes(self, tmp_path):
        _crashed_run(str(tmp_path), n_batches=9)
        index, path = list_segments(str(tmp_path))[-1]
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-7])
        recovery = recover_pipeline(str(tmp_path))
        resumed = recovery.pipeline
        resumed.attach_wal(WriteAheadLog(str(tmp_path)))
        held = {(b.t, b.shard) for b in resumed.pending_batches()}
        for batch in _batches():
            if batch.t < resumed.next_slot or (batch.t, batch.shard) in held:
                continue
            resumed.submit(batch)
        reference = _pipeline()
        for batch in _batches():
            reference.submit(batch)
        assert pipeline_fingerprint(resumed) == pipeline_fingerprint(reference)


class TestCorruption:
    def test_mid_segment_bit_flip_refused(self, tmp_path):
        _crashed_run(str(tmp_path))
        index, path = list_segments(str(tmp_path))[-1]
        with open(path, "rb") as fh:
            data = bytearray(fh.read())
        data[len(data) // 2] ^= 0x40
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(WalCorruptionError):
            recover_pipeline(str(tmp_path))

    def test_missing_segment_refused(self, tmp_path):
        """A numbering gap means lost slots — refuse, don't skip."""
        pipeline = _pipeline()
        wal = pipeline.attach_wal(
            WriteAheadLog(str(tmp_path), fsync="never", segment_bytes=128)
        )
        pipeline.start_run({})
        for batch in _batches()[:10]:
            pipeline.submit(batch)
        wal.abandon()
        segments = list_segments(str(tmp_path))
        assert len(segments) >= 3
        middle = segments[len(segments) // 2][1]
        import os

        os.remove(middle)
        with pytest.raises(WalCorruptionError, match="missing segment"):
            recover_pipeline(str(tmp_path))

    def test_damaged_checkpoint_refused(self, tmp_path):
        pipeline = _pipeline()
        wal = pipeline.attach_wal(WriteAheadLog(str(tmp_path)))
        pipeline.start_run({})
        for batch in _batches()[:6]:
            pipeline.submit(batch)
        compact(wal, pipeline)
        wal.abandon()
        from repro.wal import list_checkpoints

        _, path = list_checkpoints(str(tmp_path))[-1]
        with open(path, "w") as fh:
            fh.write("{ not json")
        with pytest.raises(WalCorruptionError, match="unreadable"):
            recover_pipeline(str(tmp_path))


class TestEmptySegments:
    def test_open_crash_cycles_recover(self, tmp_path):
        """Empty segments from restart loops never block recovery."""
        _crashed_run(str(tmp_path), n_batches=5)
        # Three restart attempts that die before serving a single batch.
        for _ in range(3):
            WriteAheadLog(str(tmp_path)).abandon()
        recovery = recover_pipeline(str(tmp_path))
        assert recovery.segments_read == 4
        assert recovery.replayed_batches == 5

    def test_wholly_empty_segment_file(self, tmp_path):
        _crashed_run(str(tmp_path), n_batches=4)
        open(segment_path(str(tmp_path), 1), "wb").close()
        recovery = recover_pipeline(str(tmp_path))
        assert recovery.replayed_batches == 4


class TestCompactionRace:
    def test_compaction_racing_appends_drops_nothing(self, tmp_path):
        """Compact repeatedly while batches stream in; recover; count.

        The submit path holds the log's lock across append+buffer, so a
        compaction snapshot can never catch a batch that is durable but
        not yet pending — which would let it delete the only copy.
        """
        pipeline = _pipeline()
        wal = pipeline.attach_wal(
            WriteAheadLog(str(tmp_path), fsync="never", segment_bytes=256)
        )
        pipeline.start_run({})
        batches = _batches()
        errors = []
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                try:
                    compact(wal, pipeline)
                except Exception as error:  # pragma: no cover - fail loud
                    errors.append(error)
                    return

        compactor = threading.Thread(target=churn)
        compactor.start()
        try:
            for batch in batches:
                pipeline.submit(batch)
        finally:
            stop.set()
            compactor.join()
        assert not errors
        compact(wal, pipeline)  # final fold, deterministic end state
        wal.abandon()
        recovery = recover_pipeline(str(tmp_path))
        reference = _pipeline()
        for batch in batches:
            reference.submit(batch)
        assert pipeline_fingerprint(recovery.pipeline) == pipeline_fingerprint(
            reference
        )
        assert recovery.pipeline.complete
