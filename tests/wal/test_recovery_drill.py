"""The kill -9 drill tool must pass when run exactly as the runbook says."""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
DRILL = os.path.join(REPO_ROOT, "tools", "recovery_drill.py")


def test_recovery_drill_passes():
    proc = subprocess.run(
        [sys.executable, DRILL, "--rounds", "2", "--delay", "0.002"],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "2/2 rounds bit-identical" in proc.stdout
    assert "SIGKILL" in proc.stdout
