"""Crash recovery and compaction: bit-exact restarts from the WAL."""

import numpy as np
import pytest

from repro.gateway.chaos import pipeline_fingerprint
from repro.service import IngestionPipeline, MemorySink, ReportBatch
from repro.wal import (
    WalCorruptionError,
    WalError,
    WriteAheadLog,
    compact,
    list_checkpoints,
    list_segments,
    recover_pipeline,
)

N_SHARDS, HORIZON = 3, 6
CONFIGS = dict(epsilon=1.5, w=4, smoothing_window=3)


def _pipeline():
    return IngestionPipeline(
        n_shards=N_SHARDS, horizon=HORIZON, keep_reports=True, **CONFIGS
    )


def _batches(seed=11):
    """Every (slot, shard) batch of the run, in a fixed interleaving."""
    rng = np.random.default_rng(seed)
    out = []
    for t in range(HORIZON):
        for shard in rng.permutation(N_SHARDS):
            n = int(rng.integers(2, 6))
            out.append(
                ReportBatch(
                    shard=int(shard),
                    t=t,
                    user_ids=np.arange(n, dtype=np.int64) + 100 * int(shard),
                    values=rng.uniform(-1.0, 1.0, size=n),
                )
            )
    return out


def _run_with_wal(directory, stop_after=None, fsync="commit"):
    """Drive a logged run, abandoning the process after N batches."""
    pipeline = _pipeline()
    wal = pipeline.attach_wal(WriteAheadLog(directory, fsync=fsync))
    pipeline.start_run({"seed": 11})
    for i, batch in enumerate(_batches()):
        if stop_after is not None and i == stop_after:
            wal.abandon()  # kill -9
            return pipeline
        pipeline.submit(batch)
    pipeline.finish()
    pipeline.build_result(elapsed_seconds=0.0)
    return pipeline


class TestRecovery:
    @pytest.mark.parametrize("stop_after", [1, 4, 9, 13, 17])
    def test_mid_run_crash_recovers_bit_exact(self, tmp_path, stop_after):
        crashed = _run_with_wal(str(tmp_path), stop_after=stop_after)
        recovery = recover_pipeline(str(tmp_path))
        assert pipeline_fingerprint(recovery.pipeline) == pipeline_fingerprint(
            crashed
        )
        assert recovery.replayed_batches == stop_after
        assert recovery.skipped_batches == 0
        assert not recovery.run_ended

    def test_resumed_run_matches_uninterrupted(self, tmp_path):
        _run_with_wal(str(tmp_path / "crashed"), stop_after=10)
        recovery = recover_pipeline(str(tmp_path / "crashed"))
        resumed = recovery.pipeline
        resumed.attach_wal(WriteAheadLog(str(tmp_path / "crashed")))
        delivered = {
            (b.t, b.shard)
            for b in resumed.pending_batches()
        }
        for batch in _batches():
            if batch.t < resumed.next_slot or (batch.t, batch.shard) in delivered:
                continue
            resumed.submit(batch)
        reference = _pipeline()
        for batch in _batches():
            reference.submit(batch)
        assert pipeline_fingerprint(resumed) == pipeline_fingerprint(reference)

    def test_next_expected_resume_slots(self, tmp_path):
        crashed = _run_with_wal(str(tmp_path), stop_after=7)
        recovery = recover_pipeline(str(tmp_path))
        # Each shard resumes at (last logged slot + 1); never below the
        # barrier clock of the checkpoint.
        expected = [0] * N_SHARDS
        for i, batch in enumerate(_batches()):
            if i == 7:
                break
            expected[batch.shard] = max(expected[batch.shard], batch.t + 1)
        assert recovery.next_expected == expected
        assert crashed.next_slot == recovery.pipeline.next_slot

    def test_completed_run_recovers_as_ended(self, tmp_path):
        _run_with_wal(str(tmp_path))
        recovery = recover_pipeline(str(tmp_path))
        assert recovery.run_ended
        assert recovery.pipeline.complete
        assert recovery.next_expected == [HORIZON] * N_SHARDS
        assert recovery.commits_verified == HORIZON

    def test_metadata_restored(self, tmp_path):
        _run_with_wal(str(tmp_path), stop_after=5)
        recovery = recover_pipeline(str(tmp_path))
        assert recovery.metadata == {"seed": 11}
        assert recovery.pipeline.run_metadata == {"seed": 11}
        assert recovery.config["n_shards"] == N_SHARDS
        assert recovery.config["epsilon"] == CONFIGS["epsilon"]

    def test_empty_directory_refused(self, tmp_path):
        with pytest.raises(WalError, match="nothing to recover"):
            recover_pipeline(str(tmp_path))

    def test_recovery_into_sinks(self, tmp_path):
        _run_with_wal(str(tmp_path), stop_after=12)
        sink = MemorySink()
        recovery = recover_pipeline(str(tmp_path), sinks=(sink,))
        finalized = recovery.pipeline.next_slot
        slots = [r for r in sink.records if r.get("type") == "slot"]
        assert len(slots) == finalized


class TestCommitVerification:
    def test_tampered_commit_mean_detected(self, tmp_path):
        _run_with_wal(str(tmp_path), stop_after=9, fsync="never")
        segments = list_segments(str(tmp_path))
        path = segments[-1][1]
        # Flip a bit inside a COMMIT payload and fix up its CRC so only
        # the cross-check against the replayed state can catch it.
        from repro.wal.records import (
            RecordType,
            decode_json_payload,
            encode_json_record,
            encode_record,
            parse_records,
        )

        with open(path, "rb") as fh:
            data = fh.read()
        records, _ = parse_records(data)
        rebuilt = b""
        tampered = False
        for rtype, payload in records:
            if rtype == RecordType.COMMIT and not tampered:
                fields = decode_json_payload(payload)
                fields["mean"] = (fields["mean"] or 0.0) + 1.0
                rebuilt += encode_json_record(RecordType.COMMIT, fields)
                tampered = True
            else:
                rebuilt += encode_record(rtype, payload)
        assert tampered
        with open(path, "wb") as fh:
            fh.write(rebuilt)
        with pytest.raises(WalCorruptionError, match="disagree"):
            recover_pipeline(str(tmp_path))
        # Forensic mode still loads it.
        recover_pipeline(str(tmp_path), verify_commits=False)


class TestCompaction:
    def test_mid_run_compaction_then_recovery(self, tmp_path):
        pipeline = _pipeline()
        wal = pipeline.attach_wal(
            WriteAheadLog(str(tmp_path), segment_bytes=512)
        )
        pipeline.start_run({"seed": 11})
        batches = _batches()
        for batch in batches[:13]:
            pipeline.submit(batch)
        before = pipeline_fingerprint(pipeline)
        outcome = compact(wal, pipeline)
        assert outcome.segments_deleted >= 1
        assert outcome.pending_reappended == len(pipeline.pending_batches())
        # Everything before the live segment is gone.
        assert all(i >= outcome.live_segment for i, _ in list_segments(str(tmp_path)))
        assert list_checkpoints(str(tmp_path))[-1][0] == outcome.live_segment
        wal.abandon()
        recovery = recover_pipeline(str(tmp_path))
        assert recovery.checkpoint_index == outcome.live_segment
        assert pipeline_fingerprint(recovery.pipeline) == before
        # Replay only needed the re-appended pending batches.
        assert recovery.replayed_batches == outcome.pending_reappended

    def test_repeated_compaction_keeps_single_checkpoint(self, tmp_path):
        pipeline = _pipeline()
        wal = pipeline.attach_wal(WriteAheadLog(str(tmp_path)))
        pipeline.start_run({})
        batches = _batches()
        for batch in batches[:8]:
            pipeline.submit(batch)
        compact(wal, pipeline)
        for batch in batches[8:15]:
            pipeline.submit(batch)
        second = compact(wal, pipeline)
        assert second.checkpoints_deleted == 1
        assert len(list_checkpoints(str(tmp_path))) == 1
        wal.abandon()
        recovery = recover_pipeline(str(tmp_path))
        assert pipeline_fingerprint(recovery.pipeline) == pipeline_fingerprint(
            pipeline
        )

    def test_compact_requires_attached_pipeline(self, tmp_path):
        pipeline = _pipeline()
        wal = WriteAheadLog(str(tmp_path))
        with pytest.raises(WalError, match="attached"):
            compact(wal, pipeline)
        wal.close()

    def test_compaction_of_finished_run(self, tmp_path):
        _run_with_wal(str(tmp_path))
        recovery = recover_pipeline(str(tmp_path))
        wal = recovery.pipeline.attach_wal(WriteAheadLog(str(tmp_path)))
        outcome = compact(wal, recovery.pipeline)
        wal.close()
        assert outcome.pending_reappended == 0
        after = recover_pipeline(str(tmp_path))
        assert after.pipeline.complete
        assert after.replayed_batches == 0
        assert pipeline_fingerprint(after.pipeline) == pipeline_fingerprint(
            recovery.pipeline
        )
