"""Failure injection for checkpoint/resume: kills and corrupted files.

The resume guarantee is only as good as its worst interruption point, so
the sharded run is killed after *every* shard boundary and resumed, and
each resume must be bit-identical to the uninterrupted run.  Damaged
snapshots (truncated JSON, binary garbage, wrong format, missing fields)
must fail with a clean, actionable error — never feed half-parsed state
into a merge.
"""

import json
import os

import numpy as np
import pytest

from repro.runtime import MatrixSource, run_protocol_sharded

N_USERS, HORIZON, CHUNK = 24, 12, 6  # 4 shards
PARAMS = dict(algorithm="capp", epsilon=1.1, w=5, participation=0.85, seed=13)


class _Kill(RuntimeError):
    """The injected mid-run crash."""


def _source():
    matrix = np.random.default_rng(42).random((N_USERS, HORIZON))
    return MatrixSource(matrix, chunk_size=CHUNK)


def _series(run):
    return run.collector.population_mean_series()


@pytest.fixture(scope="module")
def uninterrupted():
    return run_protocol_sharded(_source(), **PARAMS)


class TestKillResume:
    @pytest.mark.parametrize("kill_after", [1, 2, 3, 4])
    def test_kill_after_each_shard_then_resume_bit_exact(
        self, kill_after, tmp_path, uninterrupted
    ):
        checkpoint = tmp_path / "ckpt"
        completed = []

        def crash(shard):
            completed.append(shard.index)
            if len(completed) == kill_after:
                raise _Kill(f"injected kill after shard {shard.index}")

        # kill_after == 4 crashes between the final snapshot and the
        # merge: everything is already on disk, resume executes nothing.
        with pytest.raises(_Kill):
            run_protocol_sharded(
                _source(), checkpoint_dir=checkpoint, on_shard=crash, **PARAMS
            )
        saved = sorted(checkpoint.glob("shard-*.json"))
        assert len(saved) == kill_after

        resumed = run_protocol_sharded(
            _source(), checkpoint_dir=checkpoint, **PARAMS
        )
        assert resumed.n_resumed == kill_after
        np.testing.assert_array_equal(_series(resumed), _series(uninterrupted))
        assert (
            resumed.collector.state.slot_sums
            == uninterrupted.collector.state.slot_sums
        )
        assert resumed.collector.n_reports == uninterrupted.collector.n_reports

    def test_repeated_kills_then_resume_bit_exact(self, tmp_path, uninterrupted):
        """Crash-after-every-shard restarts still converge to the answer.

        Each attempt executes exactly one new shard (resumed shards skip
        the ``on_shard`` callback) and dies, so the run only finishes on
        the attempt that needs no fresh execution beyond the crash point.
        """
        checkpoint = tmp_path / "ckpt2"

        def crash_after_first_executed(shard):
            raise _Kill(f"kill after executing shard {shard.index}")

        for attempt in range(4):
            with pytest.raises(_Kill):
                run_protocol_sharded(
                    _source(),
                    checkpoint_dir=checkpoint,
                    on_shard=crash_after_first_executed,
                    **PARAMS,
                )
            assert len(sorted(checkpoint.glob("shard-*.json"))) == attempt + 1
        resumed = run_protocol_sharded(
            _source(), checkpoint_dir=checkpoint, **PARAMS
        )
        assert resumed.n_resumed == 4
        np.testing.assert_array_equal(_series(resumed), _series(uninterrupted))


class TestCorruptedCheckpoints:
    def _checkpointed(self, tmp_path):
        checkpoint = tmp_path / "ckpt"
        run_protocol_sharded(_source(), checkpoint_dir=checkpoint, **PARAMS)
        return checkpoint

    def test_truncated_shard_file_raises_clean_error(self, tmp_path):
        checkpoint = self._checkpointed(tmp_path)
        path = checkpoint / "shard-000001.json"
        payload = path.read_text()
        path.write_text(payload[: len(payload) // 2])
        with pytest.raises(ValueError, match="truncated|not valid JSON"):
            run_protocol_sharded(_source(), checkpoint_dir=checkpoint, **PARAMS)

    def test_binary_garbage_shard_file_raises_clean_error(self, tmp_path):
        checkpoint = self._checkpointed(tmp_path)
        (checkpoint / "shard-000000.json").write_bytes(b"\xff\xfe\x00garbage\x9c")
        with pytest.raises(ValueError, match="corrupted"):
            run_protocol_sharded(_source(), checkpoint_dir=checkpoint, **PARAMS)

    def test_wrong_format_tag_raises_clean_error(self, tmp_path):
        checkpoint = self._checkpointed(tmp_path)
        path = checkpoint / "shard-000002.json"
        data = json.loads(path.read_text())
        data["format"] = "somebody.elses.checkpoint.v9"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="unsupported shard checkpoint format"):
            run_protocol_sharded(_source(), checkpoint_dir=checkpoint, **PARAMS)

    def test_missing_fields_raise_clean_error(self, tmp_path):
        checkpoint = self._checkpointed(tmp_path)
        path = checkpoint / "shard-000003.json"
        data = json.loads(path.read_text())
        del data["state"]
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="missing or has malformed fields"):
            run_protocol_sharded(_source(), checkpoint_dir=checkpoint, **PARAMS)

    def test_non_object_payload_raises_clean_error(self, tmp_path):
        checkpoint = self._checkpointed(tmp_path)
        (checkpoint / "shard-000001.json").write_text('["not", "a", "dict"]')
        with pytest.raises(ValueError, match="must be a JSON object"):
            run_protocol_sharded(_source(), checkpoint_dir=checkpoint, **PARAMS)

    def test_corrupted_manifest_raises_clean_error(self, tmp_path):
        checkpoint = self._checkpointed(tmp_path)
        (checkpoint / "run.json").write_text("{truncated")
        with pytest.raises(ValueError, match="not valid JSON"):
            run_protocol_sharded(_source(), checkpoint_dir=checkpoint, **PARAMS)

    def test_corruption_never_silently_changes_results(self, tmp_path, uninterrupted):
        """After deleting a damaged snapshot, resume recomputes it exactly."""
        checkpoint = self._checkpointed(tmp_path)
        path = checkpoint / "shard-000001.json"
        path.write_text("garbage")
        with pytest.raises(ValueError):
            run_protocol_sharded(_source(), checkpoint_dir=checkpoint, **PARAMS)
        os.remove(path)
        recovered = run_protocol_sharded(
            _source(), checkpoint_dir=checkpoint, **PARAMS
        )
        assert recovered.n_resumed == 3
        np.testing.assert_array_equal(_series(recovered), _series(uninterrupted))
