"""Stream sources: chunk decomposition, laziness, validation."""

import numpy as np
import pytest

from repro.runtime import (
    GeneratorSource,
    MatrixSource,
    MemmapSource,
    ScenarioSource,
    StreamSource,
    as_source,
    make_scenario,
)


def _assert_contiguous(chunks, n_users):
    assert [c.index for c in chunks] == list(range(len(chunks)))
    assert chunks[0].start == 0
    for previous, current in zip(chunks, chunks[1:]):
        assert current.start == previous.stop
    assert chunks[-1].stop == n_users


class TestMatrixSource:
    def test_default_is_single_chunk(self):
        matrix = np.full((10, 4), 0.5)
        source = MatrixSource(matrix)
        chunks = list(source.chunks())
        assert len(chunks) == 1
        assert chunks[0].n_users == 10
        assert source.horizon == 4
        assert source.n_users == 10

    def test_chunked_decomposition_covers_population(self):
        matrix = np.random.default_rng(0).random((23, 5))
        source = MatrixSource(matrix, chunk_size=7)
        chunks = list(source.chunks())
        assert [c.n_users for c in chunks] == [7, 7, 7, 2]
        _assert_contiguous(chunks, 23)
        np.testing.assert_array_equal(
            np.vstack([c.matrix for c in chunks]), matrix
        )

    def test_chunks_are_replayable(self):
        source = MatrixSource(np.full((5, 3), 0.5), chunk_size=2)
        assert len(list(source.chunks())) == len(list(source.chunks())) == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="matrix"):
            MatrixSource(np.zeros(5))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            MatrixSource(np.full((2, 2), 1.5))
        with pytest.raises(ValueError):
            MatrixSource(np.full((2, 2), 0.5), chunk_size=0)


class TestAsSource:
    def test_matrix_wrapped(self):
        source = as_source(np.full((6, 3), 0.5), chunk_size=2)
        assert isinstance(source, MatrixSource)
        assert len(list(source.chunks())) == 3

    def test_source_passthrough(self):
        original = MatrixSource(np.full((6, 3), 0.5))
        assert as_source(original) is original

    def test_chunk_size_rejected_for_sources(self):
        with pytest.raises(ValueError, match="chunk_size"):
            as_source(MatrixSource(np.full((6, 3), 0.5)), chunk_size=2)


class TestMemmapSource:
    def test_round_trip(self, tmp_path):
        matrix = np.random.default_rng(1).random((50, 6))
        path = tmp_path / "population.npy"
        np.save(path, matrix)
        source = MemmapSource(path, chunk_size=16)
        assert source.n_users == 50
        assert source.horizon == 6
        chunks = list(source.chunks())
        _assert_contiguous(chunks, 50)
        np.testing.assert_allclose(
            np.vstack([c.matrix for c in chunks]), matrix
        )

    def test_float32_memmap_accepted(self, tmp_path):
        matrix = np.random.default_rng(2).random((10, 4)).astype(np.float32)
        path = tmp_path / "population.npy"
        np.save(path, matrix)
        chunks = list(MemmapSource(path, chunk_size=4).chunks())
        assert chunks[0].matrix.dtype == np.float64

    def test_shape_validation(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.zeros(5))
        with pytest.raises(ValueError, match="matrix"):
            MemmapSource(path)

    def test_out_of_range_values_caught_at_materialization(self, tmp_path):
        matrix = np.full((8, 3), 0.5)
        matrix[5, 1] = 1.7
        path = tmp_path / "invalid.npy"
        np.save(path, matrix)
        source = MemmapSource(path, chunk_size=4)
        iterator = source.chunks()
        next(iterator)  # first chunk is clean
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            next(iterator)


class TestGeneratorSource:
    def test_lazy_blocks(self):
        calls = []

        def blocks():
            for i in range(3):
                calls.append(i)
                yield np.full((4, 5), 0.25)

        source = GeneratorSource(blocks, horizon=5)
        assert calls == []  # nothing materialized yet
        chunks = list(source.chunks())
        _assert_contiguous(chunks, 12)
        assert calls == [0, 1, 2]
        # Replayable: a second pass re-invokes the factory.
        assert len(list(source.chunks())) == 3

    def test_empty_blocks_skipped(self):
        def blocks():
            yield np.full((3, 2), 0.5)
            yield np.empty((0, 2))
            yield np.full((2, 2), 0.5)

        chunks = list(GeneratorSource(blocks, horizon=2).chunks())
        assert [c.n_users for c in chunks] == [3, 2]

    def test_bare_iterator_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            GeneratorSource(iter([np.full((2, 2), 0.5)]), horizon=2)

    def test_horizon_mismatch(self):
        source = GeneratorSource(lambda: [np.full((2, 3), 0.5)], horizon=4)
        with pytest.raises(ValueError, match="horizon"):
            list(source.chunks())


class TestScenarioSource:
    def test_chunks_cover_population_reproducibly(self):
        spec = make_scenario("diurnal", 100, 24)
        source = ScenarioSource(spec, chunk_size=32, seed=9)
        chunks = list(source.chunks())
        _assert_contiguous(chunks, 100)
        again = list(source.chunks())
        for a, b in zip(chunks, again):
            np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_population_events_shared_across_chunks(self):
        # Bursts hit every chunk at the same slots: per-chunk column means
        # must move together even though per-user noise is chunk-keyed.
        spec = make_scenario(
            "bursty", 400, 40, burst_rate=0.2, noise_scale=0.01, user_spread=0.02
        )
        source = ScenarioSource(spec, chunk_size=100, seed=4)
        level = source.level_profile()
        for chunk in source.chunks():
            np.testing.assert_allclose(chunk.matrix.mean(axis=0), level, atol=0.05)

    def test_default_participation(self):
        steady = ScenarioSource(make_scenario("steady", 10, 20))
        assert steady.default_participation() == 1.0
        churn = ScenarioSource(make_scenario("churn", 10, 20))
        schedule = churn.default_participation()
        assert isinstance(schedule, np.ndarray)
        assert schedule.shape == (20,)

    def test_spec_type_checked(self):
        with pytest.raises(TypeError, match="ScenarioSpec"):
            ScenarioSource({"n_users": 10})


def test_stream_source_is_abstract():
    with pytest.raises(TypeError):
        StreamSource()


class TestScenarioSourceHelper:
    def test_shard_decomposition_from_shared_args(self):
        from repro.runtime import scenario_source

        source = scenario_source("diurnal", n_users=100, horizon=12, n_shards=3, seed=5)
        chunks = list(source.chunks())
        assert [c.n_users for c in chunks] == [34, 34, 32]
        assert source.spec.name == "diurnal"
        # The whole point: two independent processes (server and fleet)
        # building from the same arguments get identical chunks.
        again = scenario_source("diurnal", n_users=100, horizon=12, n_shards=3, seed=5)
        for a, b in zip(chunks, again.chunks()):
            np.testing.assert_array_equal(a.matrix, b.matrix)

    def test_overrides_and_unknown_name(self):
        from repro.runtime import scenario_source

        source = scenario_source("steady", 10, 8, burst_rate=0.5)
        assert source.spec.burst_rate == 0.5
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_source("nope", 10, 8)
