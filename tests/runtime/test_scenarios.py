"""Scenario workload generator: shapes, determinism, preset semantics."""

import numpy as np
import pytest

from repro.runtime import (
    SCENARIOS,
    ScenarioSpec,
    make_scenario,
    participation_schedule,
    scenario_chunk,
    slot_level_profile,
)


class TestSpecValidation:
    def test_presets_instantiate(self):
        for name in SCENARIOS:
            spec = make_scenario(name, n_users=10, horizon=48)
            assert spec.name == name
            assert spec.n_users == 10

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            make_scenario("typo", n_users=10, horizon=48)

    def test_unknown_preset_suggests_close_match(self):
        # The hint covers the adversarial presets too — a near-miss on a
        # poisoned scenario name must name the real preset.
        with pytest.raises(KeyError, match="did you mean 'poisoned-extreme'"):
            make_scenario("poisoned-extrem", n_users=10, horizon=48)
        with pytest.raises(KeyError, match="did you mean 'diurnal'"):
            make_scenario("diurnl", n_users=10, horizon=48)

    def test_unknown_preset_lists_known_names(self):
        with pytest.raises(KeyError, match="poisoned-targeted"):
            make_scenario("typo", n_users=10, horizon=48)

    def test_adversarial_presets_carry_attacks(self):
        for strategy in ("extreme", "random", "targeted"):
            spec = make_scenario(f"poisoned-{strategy}", n_users=10, horizon=48)
            assert spec.attack is not None
            assert spec.attack.strategy == strategy
            assert spec.attack.fraction == 0.05
        assert make_scenario("steady", n_users=10, horizon=48).attack is None

    def test_overrides_win(self):
        spec = make_scenario("diurnal", 10, 48, diurnal_amplitude=0.4)
        assert spec.diurnal_amplitude == 0.4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ScenarioSpec(n_users=0, horizon=10)
        with pytest.raises(ValueError):
            ScenarioSpec(n_users=10, horizon=10, base_level=1.5)
        with pytest.raises(ValueError):
            ScenarioSpec(n_users=10, horizon=10, baseline_participation=0.0)
        with pytest.raises(ValueError):
            ScenarioSpec(n_users=10, horizon=10, churn_waves=-1)
        with pytest.raises(ValueError):
            ScenarioSpec(n_users=10, horizon=10, noise_scale=-0.1)


class TestLevelProfile:
    def test_range_and_shape(self):
        for name in SCENARIOS:
            spec = make_scenario(name, 10, 96)
            level = slot_level_profile(spec, np.random.default_rng(0))
            assert level.shape == (96,)
            assert level.min() >= 0.0 and level.max() <= 1.0

    def test_steady_profile_is_flat(self):
        spec = make_scenario("steady", 10, 50)
        level = slot_level_profile(spec, np.random.default_rng(0))
        np.testing.assert_allclose(level, spec.base_level)

    def test_diurnal_cycle_repeats(self):
        spec = make_scenario("diurnal", 10, 96, diurnal_period=24)
        level = slot_level_profile(spec, np.random.default_rng(0))
        np.testing.assert_allclose(level[:24], level[24:48], atol=1e-12)
        assert level.max() - level.min() > 0.3

    def test_drift_shifts_level(self):
        spec = make_scenario("drift", 10, 60, noise_scale=0.0)
        level = slot_level_profile(spec, np.random.default_rng(0))
        assert level[-1] - level[0] == pytest.approx(spec.drift, abs=1e-9)

    def test_bursts_elevate_slots(self):
        spec = make_scenario("bursty", 10, 60, base_level=0.3, burst_rate=1.0)
        level = slot_level_profile(spec, np.random.default_rng(0))
        # With burst probability 1 every slot is elevated (and clipped).
        assert level.min() >= 0.3 + spec.burst_magnitude - 1e-12 or level.max() == 1.0

    def test_burst_timing_depends_only_on_generator(self):
        spec = make_scenario("bursty", 10, 60)
        a = slot_level_profile(spec, np.random.default_rng(5))
        b = slot_level_profile(spec, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


class TestParticipationSchedule:
    def test_no_churn_is_flat_baseline(self):
        spec = make_scenario("steady", 10, 40)
        np.testing.assert_allclose(participation_schedule(spec), 1.0)

    def test_churn_waves_dip_and_recover(self):
        spec = make_scenario("churn", 10, 90)
        schedule = participation_schedule(spec)
        assert schedule.shape == (90,)
        assert schedule.min() >= 0.0 and schedule.max() <= 1.0
        trough = schedule.min()
        assert trough == pytest.approx(
            spec.baseline_participation * (1 - spec.churn_depth), abs=1e-9
        )
        # Away from the waves the population is back at baseline.
        assert schedule[0] == pytest.approx(spec.baseline_participation)
        assert schedule[-1] == pytest.approx(spec.baseline_participation)
        # Two waves -> two local minima regions.
        assert (schedule < spec.baseline_participation * 0.9).sum() >= 2


class TestScenarioChunk:
    def test_shape_range_determinism(self):
        spec = make_scenario("diurnal", 100, 48)
        level = slot_level_profile(spec, np.random.default_rng(0))
        a = scenario_chunk(spec, 7, np.random.default_rng(1), level=level)
        b = scenario_chunk(spec, 7, np.random.default_rng(1), level=level)
        assert a.shape == (7, 48)
        assert a.min() >= 0.0 and a.max() <= 1.0
        np.testing.assert_array_equal(a, b)

    def test_level_shape_validated(self):
        spec = make_scenario("steady", 10, 20)
        with pytest.raises(ValueError, match="level profile"):
            scenario_chunk(spec, 5, np.random.default_rng(0), level=np.zeros(3))

    def test_users_track_shared_profile(self):
        spec = make_scenario("diurnal", 100, 48, noise_scale=0.01, user_spread=0.02)
        level = slot_level_profile(spec, np.random.default_rng(0))
        chunk = scenario_chunk(spec, 200, np.random.default_rng(2), level=level)
        np.testing.assert_allclose(chunk.mean(axis=0), level, atol=0.05)
