"""Sharded runtime equivalence suite.

The acceptance gate of the runtime: a sharded run — any shard count, any
chunked source, any worker count, interrupted and resumed or not — must
produce estimates and w-event budget ledgers identical to the equivalent
unsharded ``run_protocol_vectorized`` run, with merge semantics equal to
single-collector ingestion.
"""

import numpy as np
import pytest

from repro.protocol import run_protocol_vectorized
from repro.protocol.simulation import population_mean_mse
from repro.runtime import (
    GeneratorSource,
    MatrixSource,
    PopulationChunk,
    ScenarioSource,
    StreamSource,
    make_scenario,
    run_protocol_sharded,
)


@pytest.fixture(scope="module")
def streams():
    rng = np.random.default_rng(0)
    base = 0.5 + 0.3 * np.sin(np.linspace(0, 4 * np.pi, 40))
    return np.clip(base + 0.1 * rng.standard_normal((240, 40)), 0.0, 1.0)


def _series(result):
    return result.collector.population_mean_series()


class TestUnshardedEquivalence:
    def test_single_chunk_is_bit_identical_to_vectorized(self, streams):
        """One shard *is* an unsharded run with the spawned child rng."""
        sharded = run_protocol_sharded(
            streams, epsilon=2.0, w=5, seed=7, record_history=True,
            track_users=True,
        )
        child = np.random.default_rng(np.random.SeedSequence(7, spawn_key=(0,)))
        vec = run_protocol_vectorized(
            streams, epsilon=2.0, w=5, rng=child, record_history=True
        )
        np.testing.assert_array_equal(_series(sharded), _series(vec))
        assert sharded.collector.n_reports == vec.collector.n_reports
        for user in (0, 100, 239):
            np.testing.assert_array_equal(
                sharded.user_budget_spends(user), vec.user_budget_spends(user)
            )

    @pytest.mark.parametrize("chunk_size", [17, 60, 240])
    def test_ledgers_identical_to_unsharded(self, streams, chunk_size):
        """Budget accounting is decomposition-invariant (full participation)."""
        vec = run_protocol_vectorized(
            streams, epsilon=1.0, w=10, rng=np.random.default_rng(1),
            record_history=True,
        )
        sharded = run_protocol_sharded(
            MatrixSource(streams, chunk_size=chunk_size),
            epsilon=1.0, w=10, seed=3, record_history=True,
        )
        for user in (0, 17, 59, 200):
            np.testing.assert_array_equal(
                sharded.user_budget_spends(user), vec.user_budget_spends(user)
            )
        np.testing.assert_array_equal(
            sharded.max_window_spend(),
            np.concatenate(
                [g.engine.accountant.max_window_spend() for g in vec.groups]
            ),
        )

    def test_zero_one_schedule_ledgers_identical_to_unsharded(self, streams):
        """A deterministic on/off schedule yields identical spend patterns
        regardless of sharding (no mask randomness at p in {0, 1})."""
        schedule = np.tile([1.0, 1.0, 0.0, 1.0], 10)
        vec = run_protocol_vectorized(
            streams, epsilon=1.0, w=8, participation=schedule,
            rng=np.random.default_rng(2), record_history=True,
        )
        sharded = run_protocol_sharded(
            MatrixSource(streams, chunk_size=50),
            epsilon=1.0, w=8, participation=schedule, seed=5,
            record_history=True,
        )
        assert sharded.collector.slots() == vec.collector.slots()
        assert sharded.collector.n_reports == vec.collector.n_reports
        for user in (0, 49, 50, 239):
            np.testing.assert_array_equal(
                sharded.user_budget_spends(user), vec.user_budget_spends(user)
            )

    def test_estimates_match_unsharded_within_sampling_tolerance(self, streams):
        """Different shardings draw different (same-law) noise: estimates
        agree statistically, exactly like vectorized-vs-reference."""
        vec = run_protocol_vectorized(
            streams, epsilon=5.0, w=5, rng=np.random.default_rng(4)
        )
        sharded = run_protocol_sharded(
            MatrixSource(streams, chunk_size=37), epsilon=5.0, w=5, seed=6
        )
        assert sharded.collector.n_reports == vec.collector.n_reports
        np.testing.assert_allclose(_series(sharded), _series(vec), atol=0.12)
        assert sharded.population_mean_mse() == pytest.approx(
            vec.population_mean_mse(), rel=0.6, abs=0.003
        )

    def test_true_mean_streams_match_full_matrix(self, streams):
        sharded = run_protocol_sharded(
            MatrixSource(streams, chunk_size=33), epsilon=2.0, w=5, seed=1
        )
        np.testing.assert_allclose(
            sharded.true_population_mean(), streams.mean(axis=0), atol=1e-12
        )
        assert sharded.population_mean_mse() == pytest.approx(
            population_mean_mse(sharded.collector, streams), abs=1e-12
        )


class TestDeterminism:
    @pytest.mark.parametrize("max_workers", [2, 7])
    def test_worker_counts_1_2_7_are_bit_identical(self, streams, max_workers):
        """The nondeterminism trap: per-shard spawned generators make the
        result a pure function of (source, params, seed) — the worker
        count only schedules chunks, it never changes them."""
        source = MatrixSource(streams, chunk_size=48)
        serial = run_protocol_sharded(source, epsilon=1.0, w=10, seed=9)
        parallel = run_protocol_sharded(
            source, epsilon=1.0, w=10, seed=9, max_workers=max_workers
        )
        np.testing.assert_array_equal(_series(serial), _series(parallel))
        assert serial.collector.n_reports == parallel.collector.n_reports
        np.testing.assert_array_equal(
            serial.max_window_spend(), parallel.max_window_spend()
        )

    def test_shard_counts_1_2_7_change_draws_not_law_or_ledgers(self, streams):
        results = {}
        for n_shards in (1, 2, 7):
            chunk = -(-streams.shape[0] // n_shards)
            result = run_protocol_sharded(
                MatrixSource(streams, chunk_size=chunk),
                epsilon=5.0, w=5, seed=11, record_history=True,
            )
            assert result.n_shards == n_shards
            assert result.collector.n_reports == streams.size
            # Ledger spends are identical for every decomposition...
            expected = np.full(streams.shape[1], 1.0)
            np.testing.assert_allclose(result.user_budget_spends(0), expected)
            np.testing.assert_allclose(result.max_window_spend(), 5.0)
            results[n_shards] = _series(result)
        # ...and the estimates are same-law draws (the decomposition only
        # re-keys which generator produces which user's noise), so every
        # shard count reproduces the same estimates up to sampling noise.
        np.testing.assert_allclose(results[1], results[2], atol=0.12)
        np.testing.assert_allclose(results[1], results[7], atol=0.12)

    def test_same_seed_same_source_reproduces_exactly(self, streams):
        source = MatrixSource(streams, chunk_size=100)
        a = run_protocol_sharded(source, epsilon=1.0, w=10, seed=42)
        b = run_protocol_sharded(source, epsilon=1.0, w=10, seed=42)
        np.testing.assert_array_equal(_series(a), _series(b))
        c = run_protocol_sharded(source, epsilon=1.0, w=10, seed=43)
        assert not np.array_equal(_series(a), _series(c))


class TestCheckpointResume:
    def test_resumed_run_matches_uninterrupted(self, streams, tmp_path):
        uninterrupted = run_protocol_sharded(
            MatrixSource(streams, chunk_size=60), epsilon=1.0, w=10, seed=13,
            record_history=True,
        )

        crash_after = 2
        state = {"armed": True}

        def blocks():
            for i, start in enumerate(range(0, streams.shape[0], 60)):
                if state["armed"] and i >= crash_after:
                    raise RuntimeError("simulated crash")
                yield streams[start : start + 60]

        source = GeneratorSource(blocks, horizon=streams.shape[1])
        checkpoint = tmp_path / "ckpt"
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_protocol_sharded(
                source, epsilon=1.0, w=10, seed=13,
                checkpoint_dir=checkpoint, record_history=True,
            )
        saved = sorted(p.name for p in checkpoint.glob("shard-*.json"))
        assert len(saved) == crash_after

        state["armed"] = False
        resumed = run_protocol_sharded(
            source, epsilon=1.0, w=10, seed=13,
            checkpoint_dir=checkpoint, record_history=True,
        )
        assert resumed.n_resumed == crash_after
        assert resumed.n_shards == 4
        np.testing.assert_array_equal(_series(resumed), _series(uninterrupted))
        assert resumed.collector.n_reports == uninterrupted.collector.n_reports
        for user in (0, 61, 239):
            np.testing.assert_array_equal(
                resumed.user_budget_spends(user),
                uninterrupted.user_budget_spends(user),
            )

    def test_completed_run_resumes_without_execution(self, streams, tmp_path):
        source = MatrixSource(streams[:60], chunk_size=20)
        checkpoint = tmp_path / "done"
        first = run_protocol_sharded(
            source, epsilon=1.0, w=10, seed=1, checkpoint_dir=checkpoint
        )
        again = run_protocol_sharded(
            source, epsilon=1.0, w=10, seed=1, checkpoint_dir=checkpoint
        )
        assert first.n_resumed == 0
        assert again.n_resumed == again.n_shards == 3
        np.testing.assert_array_equal(_series(first), _series(again))

    def test_mismatched_configuration_rejected(self, streams, tmp_path):
        source = MatrixSource(streams[:40], chunk_size=20)
        checkpoint = tmp_path / "cfg"
        run_protocol_sharded(
            source, epsilon=1.0, w=10, seed=1, checkpoint_dir=checkpoint
        )
        with pytest.raises(ValueError, match="different run configuration"):
            run_protocol_sharded(
                source, epsilon=2.0, w=10, seed=1, checkpoint_dir=checkpoint
            )

    def test_changed_chunk_decomposition_rejected(self, streams, tmp_path):
        """Resuming under a different chunking must error, not silently
        return a truncated population."""
        checkpoint = tmp_path / "chunks"
        run_protocol_sharded(
            MatrixSource(streams[:40], chunk_size=10),
            epsilon=1.0, w=10, seed=1, checkpoint_dir=checkpoint,
        )
        with pytest.raises(ValueError, match="decomposition changed"):
            run_protocol_sharded(
                MatrixSource(streams[:40], chunk_size=40),
                epsilon=1.0, w=10, seed=1, checkpoint_dir=checkpoint,
            )

    def test_changed_source_data_rejected(self, streams, tmp_path):
        """Snapshots are bound to the data, not just the decomposition."""
        checkpoint = tmp_path / "data"
        run_protocol_sharded(
            MatrixSource(streams[:40], chunk_size=20),
            epsilon=1.0, w=10, seed=1, checkpoint_dir=checkpoint,
        )
        altered = streams[:40].copy()
        altered[3, 5] = 1.0 - altered[3, 5]
        with pytest.raises(ValueError, match="different data"):
            run_protocol_sharded(
                MatrixSource(altered, chunk_size=20),
                epsilon=1.0, w=10, seed=1, checkpoint_dir=checkpoint,
            )

    def test_changed_per_user_algorithms_rejected(self, streams, tmp_path):
        """Per-user algorithm assignments are fingerprinted in the manifest."""
        checkpoint = tmp_path / "algos"
        source = MatrixSource(streams[:40], chunk_size=20)
        run_protocol_sharded(
            source, algorithm=["capp"] * 40, epsilon=1.0, w=10, seed=1,
            checkpoint_dir=checkpoint,
        )
        with pytest.raises(ValueError, match="different run configuration"):
            run_protocol_sharded(
                source, algorithm=["app"] * 40, epsilon=1.0, w=10, seed=1,
                checkpoint_dir=checkpoint,
            )
        # The same assignment still resumes cleanly.
        again = run_protocol_sharded(
            source, algorithm=["capp"] * 40, epsilon=1.0, w=10, seed=1,
            checkpoint_dir=checkpoint,
        )
        assert again.n_resumed == 2


class TestRuntimeSemantics:
    def test_scenario_source_uses_its_churn_schedule(self):
        spec = make_scenario("churn", n_users=120, horizon=40)
        source = ScenarioSource(spec, chunk_size=40, seed=2)
        result = run_protocol_sharded(source, epsilon=1.0, w=8, seed=3)
        # Churn means not everyone reports every slot.
        assert result.collector.n_reports < 120 * 40
        assert result.n_shards == 3
        result.assert_valid()

    def test_heterogeneous_algorithms_sliced_per_shard(self, streams):
        names = (["capp", "app", "ipp", "sw-direct"] * 60)[: streams.shape[0]]
        result = run_protocol_sharded(
            MatrixSource(streams, chunk_size=100),
            algorithm=names, epsilon=2.0, w=5, seed=4,
        )
        assert result.collector.n_reports == streams.size
        for user_id in (0, 1, 2, 3, 101, 238):
            assert result.user_algorithm(user_id) == names[user_id]

    def test_algorithm_sequence_too_short(self, streams):
        with pytest.raises(ValueError, match="too short"):
            run_protocol_sharded(
                MatrixSource(streams, chunk_size=100),
                algorithm=["capp"] * 10, epsilon=1.0, w=10,
            )

    def test_record_history_off_blocks_ledger_queries(self, streams):
        result = run_protocol_sharded(streams[:20], epsilon=1.0, w=10, seed=0)
        with pytest.raises(RuntimeError, match="record_history"):
            result.user_budget_spends(0)
        assert result.max_window_spend().shape == (20,)
        result.assert_valid()

    def test_track_users_merges_per_user_views(self, streams):
        result = run_protocol_sharded(
            MatrixSource(streams[:30], chunk_size=10),
            epsilon=1.0, w=10, seed=0, track_users=True,
        )
        assert result.collector.n_users == 30
        assert result.collector.user_series(25).shape == (streams.shape[1],)

    def test_keep_reports_false_streams_aggregates_only(self, streams):
        """Extreme-scale mode: nothing O(users x slots) survives the run."""
        result = run_protocol_sharded(
            MatrixSource(streams, chunk_size=80),
            epsilon=1.0, w=10, seed=0, keep_reports=False,
        )
        assert result.collector.n_reports == streams.size
        assert result.collector.population_mean_series().shape == (streams.shape[1],)
        assert result.collector.state.slot_values == {}
        with pytest.raises(RuntimeError, match="keep_reports"):
            result.collector.estimate_slot_distribution(0)
        result.assert_valid()

    def test_keep_reports_false_checkpoints_stay_small(self, streams, tmp_path):
        checkpoint = tmp_path / "lean"
        lean = run_protocol_sharded(
            MatrixSource(streams, chunk_size=120), epsilon=1.0, w=10, seed=2,
            keep_reports=False, checkpoint_dir=checkpoint,
        )
        resumed = run_protocol_sharded(
            MatrixSource(streams, chunk_size=120), epsilon=1.0, w=10, seed=2,
            keep_reports=False, checkpoint_dir=checkpoint,
        )
        assert resumed.n_resumed == 2
        np.testing.assert_array_equal(_series(lean), _series(resumed))
        # Without report arrays a shard snapshot is O(slots), not O(users*slots).
        shard_bytes = max(
            p.stat().st_size for p in checkpoint.glob("shard-*.json")
        )
        assert shard_bytes < 40_000

    def test_on_shard_callback(self, streams):
        seen = []
        run_protocol_sharded(
            MatrixSource(streams[:50], chunk_size=10),
            epsilon=1.0, w=10, seed=0, on_shard=lambda s: seen.append(s.index),
        )
        assert sorted(seen) == [0, 1, 2, 3, 4]

    def test_empty_population(self):
        result = run_protocol_sharded(np.empty((0, 5)), epsilon=1.0, w=10)
        assert result.n_users == 0
        assert result.collector.n_reports == 0
        assert result.horizon == 5
        assert result.true_population_mean().size == 0
        result.assert_valid()

    def test_unknown_user_lookup(self, streams):
        result = run_protocol_sharded(streams[:10], epsilon=1.0, w=10)
        with pytest.raises(KeyError, match="no shard contains"):
            result.user_algorithm(99)

    def test_non_contiguous_source_rejected(self):
        class GappySource(StreamSource):
            @property
            def horizon(self):
                return 4

            def chunks(self):
                yield PopulationChunk(0, 0, np.full((3, 4), 0.5))
                yield PopulationChunk(1, 5, np.full((3, 4), 0.5))

        with pytest.raises(ValueError, match="non-contiguous"):
            run_protocol_sharded(GappySource(), epsilon=1.0, w=10)

    def test_invalid_worker_count(self, streams):
        with pytest.raises(ValueError, match="max_workers"):
            run_protocol_sharded(streams[:5], max_workers=0)
