"""Every registered estimator through every population execution mode.

The acceptance contract of the estimator registry: each name in
``algorithm_names()`` runs through ``run_protocol_vectorized`` and
``run_protocol_sharded``; a single-chunk sharded run equals the
vectorized run **bit for bit** (it is one vectorized call with the
shard-0 child generator), and a multi-shard live run equals the offline
multi-shard run.
"""

import numpy as np
import pytest

from repro.protocol import run_protocol_vectorized
from repro.registry import algorithm_names, capabilities
from repro.runtime import MatrixSource, run_protocol_sharded, shard_rng
from repro.service import run_live

MATRIX = np.random.default_rng(11).random((12, 15))


@pytest.mark.parametrize("name", algorithm_names())
def test_single_chunk_sharded_equals_vectorized(name):
    vectorized = run_protocol_vectorized(
        MATRIX, algorithm=name, epsilon=1.0, w=5, rng=shard_rng(3, 0)
    )
    sharded = run_protocol_sharded(
        MatrixSource(MATRIX, chunk_size=MATRIX.shape[0]),
        algorithm=name,
        epsilon=1.0,
        w=5,
        seed=3,
    )
    np.testing.assert_array_equal(
        sharded.collector.population_mean_series(),
        vectorized.collector.population_mean_series(),
    )
    assert sharded.collector.n_reports == vectorized.collector.n_reports
    sharded.assert_valid()


@pytest.mark.parametrize("name", algorithm_names())
def test_live_equals_multi_shard_offline(name):
    sharded = run_protocol_sharded(
        MatrixSource(MATRIX, chunk_size=5), algorithm=name, epsilon=1.0, w=5, seed=3
    )
    live = run_live(
        MatrixSource(MATRIX, chunk_size=5), algorithm=name, epsilon=1.0, w=5, seed=3
    )
    np.testing.assert_array_equal(
        live.population_mean_series(),
        sharded.collector.population_mean_series(),
    )


@pytest.mark.parametrize(
    "name",
    [n for n in algorithm_names() if capabilities(n)["participation"]],
)
def test_participation_masks_run_for_slot_local_names(name):
    result = run_protocol_vectorized(
        MATRIX,
        algorithm=name,
        epsilon=1.0,
        w=5,
        participation=0.7,
        rng=np.random.default_rng(0),
    )
    assert 0 < result.collector.n_reports < MATRIX.size


def test_sampling_rejects_partial_participation_upfront():
    """Capability mismatch fails at construction, not mid-run."""
    with pytest.raises(ValueError, match="partial participation"):
        run_protocol_vectorized(
            MATRIX,
            algorithm="capp-s",
            epsilon=1.0,
            w=5,
            participation=0.5,
            rng=np.random.default_rng(0),
        )


def test_sampling_engine_rejects_all_masked_slot():
    """An everyone-offline slot must raise, not desync the calendar."""
    from repro.registry import make_batch_engine

    engine = make_batch_engine(
        "capp-s", 1.0, 5, 3, rng=np.random.default_rng(0), horizon=12
    )
    with pytest.raises(NotImplementedError, match="participation"):
        engine.submit(np.full(3, 0.5), np.zeros(3, dtype=bool))
    with pytest.raises(NotImplementedError, match="skip"):
        engine.skip_slot()


def test_heterogeneous_population_mixes_baseline_cohorts():
    names = ["capp", "ba-sw", "topl", "sw-direct"] * 3
    result = run_protocol_vectorized(
        MATRIX, algorithm=names, epsilon=1.0, w=5, rng=np.random.default_rng(1)
    )
    assert sorted(g.algorithm for g in result.groups) == [
        "ba-sw",
        "capp",
        "sw-direct",
        "topl",
    ]
    assert result.user_algorithm(1) == "ba-sw"
    result.groups[0].engine.accountant.assert_valid()


def test_unknown_name_suggests_close_matches():
    with pytest.raises(KeyError, match="did you mean"):
        run_protocol_vectorized(
            MATRIX, algorithm="cap", epsilon=1.0, w=5, rng=np.random.default_rng(0)
        )


def test_kernels_capability_marks_the_sw_family():
    # Every registered name exposes the column; the SW-based estimators
    # route their draws through repro.kernels, the Laplace/SR/PM
    # mechanism-generalizability variants stay on plain NumPy.
    flags = {name: capabilities(name)["kernels"] for name in algorithm_names()}
    plain_numpy = {name for name, uses in flags.items() if not uses}
    assert plain_numpy == {
        "laplace-direct",
        "laplace-app",
        "sr-direct",
        "sr-app",
        "pm-direct",
        "pm-app",
    }
    assert flags["bd-sw"] and flags["topl"] and flags["sw-direct"]
