"""Property-based tests for metrics and privacy primitives."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import cosine_distance, mse, wasserstein_distance
from repro.privacy import (
    WEventAccountant,
    are_w_neighboring,
    make_w_neighbor,
    parallel_composition,
    sequential_composition,
)

vectors = arrays(
    dtype=float,
    shape=st.integers(min_value=2, max_value=40),
    elements=st.floats(min_value=0.015625, max_value=1.0, allow_nan=False, width=32),
)


class TestMetricAxioms:
    @given(v=vectors)
    @settings(max_examples=50, deadline=None)
    def test_mse_identity(self, v):
        assert mse(v, v) == 0.0

    @given(v=vectors, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_mse_symmetry_and_nonnegativity(self, v, data):
        u = data.draw(
            arrays(
                dtype=float,
                shape=v.shape,
                elements=st.floats(min_value=0.0, max_value=1.0, width=32),
            )
        )
        assert mse(u, v) >= 0.0
        assert mse(u, v) == pytest.approx(mse(v, u))

    @given(v=vectors)
    @settings(max_examples=50, deadline=None)
    def test_cosine_self_distance_zero(self, v):
        assume(np.linalg.norm(v) > 1e-6)
        assert cosine_distance(v, v) == pytest.approx(0.0, abs=1e-9)

    @given(v=vectors, scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_cosine_scale_invariant(self, v, scale):
        assume(np.linalg.norm(v) > 1e-6)
        assert cosine_distance(v, scale * v) == pytest.approx(0.0, abs=1e-9)

    @given(v=vectors, shift=st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=50, deadline=None)
    def test_wasserstein_nonnegative_and_zero_on_identity(self, v, shift):
        assert wasserstein_distance(v, v) == pytest.approx(0.0)
        assert wasserstein_distance(v, v + shift) >= 0.0


class TestCompositionProperties:
    @given(parts=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_sequential_at_least_parallel(self, parts):
        assert sequential_composition(parts) >= parallel_composition(parts)

    @given(parts=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_parallel_is_max(self, parts):
        assert parallel_composition(parts) == pytest.approx(max(parts))


class TestAccountantProperties:
    @given(
        w=st.integers(min_value=1, max_value=10),
        n_slots=st.integers(min_value=1, max_value=60),
        eps=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_constant_rate_never_violates(self, w, n_slots, eps):
        acct = WEventAccountant(eps, w)
        per_slot = eps / w
        for t in range(n_slots):
            acct.charge(t, per_slot)
        acct.assert_valid()
        assert acct.max_window_spend() <= eps * (1 + 1e-9)

    @given(
        w=st.integers(min_value=1, max_value=8),
        eps=st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_single_overspend_always_caught(self, w, eps):
        from repro.privacy import PrivacyBudgetExceededError

        acct = WEventAccountant(eps, w)
        with pytest.raises(PrivacyBudgetExceededError):
            acct.charge(0, eps * 1.01)


class TestNeighboringProperties:
    @given(
        stream=vectors,
        w=st.integers(min_value=1, max_value=10),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_generated_neighbors_are_neighbors(self, stream, w, data):
        start = data.draw(st.integers(min_value=0, max_value=stream.size - 1))
        neighbor = make_w_neighbor(stream, w, start, np.random.default_rng(0))
        assert are_w_neighboring(stream, neighbor, w)

    @given(stream=vectors, w=st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_reflexive(self, stream, w):
        assert are_w_neighboring(stream, stream, w)
