"""Property tests for every mechanism's ``perturb_batch``.

The batch API is the population engine's hot path, so its contract is
pinned mechanism-by-mechanism across the ε range rather than by
example: output-domain containment for arbitrary inputs, scalar-vs-batch
equivalence (bitwise where the law permits, distributional for the
mixture mechanism), and unbiasedness of the empirical mean within
concentration bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
)

ALL_MECHANISMS = [
    SquareWaveMechanism,
    PiecewiseMechanism,
    DuchiMechanism,
    LaplaceMechanism,
    HybridMechanism,
]
#: mechanisms whose perturb_batch is (by contract) the vectorized perturb
#: on the same generator — bitwise equality is part of their API
BITWISE_MECHANISMS = [
    SquareWaveMechanism,
    PiecewiseMechanism,
    DuchiMechanism,
    LaplaceMechanism,
]

epsilons = st.floats(min_value=0.05, max_value=12.0, allow_nan=False)
unit_arrays = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=64
).map(np.asarray)
seeds = st.integers(0, 2**32 - 1)

#: seeded grid for the (expensive) unbiasedness checks: spans weak to
#: strong privacy and the domain's interior plus both edges
EPSILON_GRID = [0.1, 0.5, 1.0, 2.0, 6.0]
X_GRID = [0.0, 0.37, 1.0]


class TestDomainContainment:
    @pytest.mark.parametrize("mechanism_cls", ALL_MECHANISMS)
    @given(eps=epsilons, values=unit_arrays, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_outputs_stay_in_declared_domain(self, mechanism_cls, eps, values, seed):
        mech = mechanism_cls(eps)
        out = mech.perturb_batch(values, np.random.default_rng(seed))
        assert out.shape == values.shape
        assert out.dtype == np.float64
        assert np.all(np.isfinite(out))
        assert np.all(mech.output_domain.contains(out))


class TestScalarBatchEquivalence:
    @pytest.mark.parametrize("mechanism_cls", BITWISE_MECHANISMS)
    @given(eps=epsilons, values=unit_arrays, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_batch_equals_vectorized_perturb_bitwise(
        self, mechanism_cls, eps, values, seed
    ):
        mech = mechanism_cls(eps)
        np.testing.assert_array_equal(
            mech.perturb_batch(values, np.random.default_rng(seed)),
            mech.perturb(values, np.random.default_rng(seed)),
        )

    @pytest.mark.parametrize("mechanism_cls", BITWISE_MECHANISMS)
    @given(
        eps=epsilons,
        x=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=seeds,
    )
    @settings(max_examples=25, deadline=None)
    def test_single_element_batch_equals_scalar_draw(self, mechanism_cls, eps, x, seed):
        mech = mechanism_cls(eps)
        batch = mech.perturb_batch(np.asarray([x]), np.random.default_rng(seed))
        scalar = mech.perturb(np.asarray([x]), np.random.default_rng(seed))
        np.testing.assert_array_equal(batch, scalar)

    @pytest.mark.parametrize("epsilon", EPSILON_GRID)
    def test_hybrid_batch_matches_scalar_law(self, epsilon):
        """HM's masked-draw override keeps the mixture law (not bitwise)."""
        mech = HybridMechanism(epsilon)
        x = np.full(30_000, 0.61)
        batch = mech.perturb_batch(x, np.random.default_rng(11))
        loop = mech.perturb(x, np.random.default_rng(12))
        scale = float(np.sqrt(mech.output_variance(0.61) / x.size))
        assert abs(batch.mean() - loop.mean()) < 9.0 * scale
        assert batch.var() == pytest.approx(loop.var(), rel=0.15)


class TestUnbiasedness:
    """Empirical batch means track expected_output within CI bounds."""

    N_DRAWS = 40_000
    #: two-sided z beyond 4.5 sigma: false-failure odds per check < 1e-5
    Z = 4.5

    @pytest.mark.parametrize("mechanism_cls", ALL_MECHANISMS)
    @pytest.mark.parametrize("epsilon", EPSILON_GRID)
    @pytest.mark.parametrize("x", X_GRID)
    def test_unbiased_within_confidence_bounds(self, mechanism_cls, epsilon, x):
        import zlib

        mech = mechanism_cls(epsilon)
        # Stable per-case seed (str.hash is randomized per process).
        seed = zlib.crc32(f"{mechanism_cls.__name__}|{epsilon}|{x}".encode())
        draws = mech.perturb_batch(
            np.full(self.N_DRAWS, x), np.random.default_rng(seed)
        )
        expected = float(mech.expected_output(x))
        half_width = self.Z * float(
            np.sqrt(mech.output_variance(x) / self.N_DRAWS)
        )
        assert abs(float(draws.mean()) - expected) < half_width, (
            f"{mechanism_cls.__name__}(eps={epsilon}) at x={x}: empirical "
            f"mean {draws.mean():.6f} vs expected {expected:.6f} "
            f"(CI half-width {half_width:.6f})"
        )
