"""Property-based tests for the extension modules (online, queries, io,
trends, postprocessing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.queries import SubsequenceIndex
from repro.analysis.trends import detect_change_points, segment_trends
from repro.core import (
    OnlineAPP,
    OnlineSmoother,
    exponential_smoothing,
    simple_moving_average,
)
from repro.experiments.io import ResultDocument, _stringify_keys

streams = arrays(
    dtype=float,
    shape=st.integers(min_value=2, max_value=50),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
)


class TestOnlineProperties:
    @given(stream=streams, eps=st.floats(0.1, 5.0), w=st.integers(1, 15),
           seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_online_app_never_overspends(self, stream, eps, w, seed):
        online = OnlineAPP(eps, w, np.random.default_rng(seed))
        online.submit_many(stream)
        online.accountant.assert_valid()

    @given(stream=streams, k=st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_online_smoother_equals_batch(self, stream, k):
        window = 2 * k + 1
        smoother = OnlineSmoother(window)
        out = []
        for value in stream:
            out.extend(smoother.push(value))
        out.extend(smoother.flush())
        np.testing.assert_allclose(
            out, simple_moving_average(stream, window), atol=1e-10
        )
        assert len(out) == stream.size


class TestQueryProperties:
    @given(stream=streams, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_index_mean_matches_slice(self, stream, data):
        index = SubsequenceIndex(stream)
        start = data.draw(st.integers(0, stream.size - 1))
        end = data.draw(st.integers(start, stream.size - 1))
        assert index.mean(start, end) == pytest.approx(
            float(stream[start : end + 1].mean()), abs=1e-9
        )

    @given(stream=streams)
    @settings(max_examples=50, deadline=None)
    def test_variance_nonnegative(self, stream):
        index = SubsequenceIndex(stream)
        assert index.variance(0, stream.size - 1) >= 0.0


class TestTrendProperties:
    @given(stream=streams, threshold=st.floats(0.05, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_segments_partition_stream(self, stream, threshold):
        segments = segment_trends(stream, threshold=threshold)
        assert segments[0].start == 0
        assert segments[-1].end == stream.size - 1
        for a, b in zip(segments, segments[1:]):
            assert b.start == a.end + 1

    @given(stream=streams, threshold=st.floats(0.05, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_change_points_strictly_increasing(self, stream, threshold):
        points = detect_change_points(stream, threshold=threshold)
        assert all(a < b for a, b in zip(points, points[1:]))
        assert all(0 < p < stream.size for p in points)


class TestSmoothingProperties:
    @given(stream=streams, alpha=st.floats(0.05, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_ewma_bounded_by_input_range(self, stream, alpha):
        out = exponential_smoothing(stream, alpha)
        assert out.min() >= stream.min() - 1e-9
        assert out.max() <= stream.max() + 1e-9


class TestIOProperties:
    nested = st.recursive(
        st.one_of(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.integers(-1000, 1000),
            st.text(max_size=8),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=6), children, max_size=4),
        ),
        max_leaves=12,
    )

    @given(payload=nested)
    @settings(max_examples=40, deadline=None)
    def test_document_roundtrip(self, payload):
        doc = ResultDocument(experiment="x", results={"payload": _stringify_keys(payload)})
        restored = ResultDocument.from_json(doc.to_json())
        assert restored.results["payload"] == _stringify_keys(payload)
