"""Property-based tests for the core stream algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import BASW, BDSW, SWDirect
from repro.core import APP, CAPP, IPP, PPSampling, segment_bounds, simple_moving_average

streams = arrays(
    dtype=float,
    shape=st.integers(min_value=3, max_value=60),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
)
budgets = st.floats(min_value=0.1, max_value=10.0)
windows = st.integers(min_value=1, max_value=20)


class TestDeviationBookkeeping:
    @given(stream=streams, eps=budgets, w=windows, seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_app_accumulated_deviation_invariant(self, stream, eps, w, seed):
        result = APP(eps, w).perturb_stream(stream, np.random.default_rng(seed))
        assert result.accumulated_deviation == pytest.approx(
            float(result.deviations.sum()), abs=1e-9
        )
        np.testing.assert_allclose(
            result.deviations, result.original - result.perturbed, atol=1e-12
        )

    @given(stream=streams, eps=budgets, w=windows, seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_ipp_inputs_always_unit_interval(self, stream, eps, w, seed):
        result = IPP(eps, w).perturb_stream(stream, np.random.default_rng(seed))
        assert result.inputs.min() >= 0.0
        assert result.inputs.max() <= 1.0

    @given(stream=streams, eps=budgets, w=windows, seed=st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_capp_inputs_normalized(self, stream, eps, w, seed):
        result = CAPP(eps, w).perturb_stream(stream, np.random.default_rng(seed))
        assert result.inputs.min() >= -1e-12
        assert result.inputs.max() <= 1.0 + 1e-12


class TestPrivacyAccountingProperty:
    @given(stream=streams, eps=budgets, w=windows, seed=st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_every_algorithm_respects_window_budget(self, stream, eps, w, seed):
        rng = np.random.default_rng(seed)
        for cls in (SWDirect, IPP, APP, CAPP, BASW, BDSW):
            result = cls(eps, w).perturb_stream(stream, rng)
            assert result.accountant.max_window_spend() <= eps * (1 + 1e-9)


class TestSmoothingProperties:
    @given(stream=streams, k=st.integers(min_value=0, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_sma_bounded_by_input_range(self, stream, k):
        out = simple_moving_average(stream, 2 * k + 1)
        assert out.min() >= stream.min() - 1e-12
        assert out.max() <= stream.max() + 1e-12

    @given(stream=streams, k=st.integers(min_value=0, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_sma_idempotent_on_constants(self, stream, k):
        constant = np.full_like(stream, float(stream[0]))
        out = simple_moving_average(constant, 2 * k + 1)
        np.testing.assert_allclose(out, constant, atol=1e-12)


class TestSegmentationProperties:
    @given(
        length=st.integers(min_value=1, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_segments_partition_interval(self, length, data):
        n_segments = data.draw(st.integers(min_value=1, max_value=length))
        bounds = segment_bounds(length, n_segments)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == length
        for (a_lo, a_hi), (b_lo, b_hi) in zip(bounds, bounds[1:]):
            assert a_hi == b_lo
            assert a_lo < a_hi

    @given(
        stream=streams,
        eps=budgets,
        w=st.integers(min_value=1, max_value=10),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_pps_slot_budget_never_exceeded(self, stream, eps, w, data):
        n_samples = data.draw(st.integers(min_value=1, max_value=stream.size))
        pps = PPSampling(eps, w, base="app", n_samples=n_samples)
        result = pps.perturb_stream(stream, np.random.default_rng(0))
        assert result.accountant.max_window_spend() <= eps * (1 + 1e-9)
        # Replication conserves length and segment structure.
        assert result.perturbed.size == stream.size
