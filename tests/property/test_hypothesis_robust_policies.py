"""Property tests: robust policies are decomposition-invariant.

The adversarial tier's core claim (:mod:`repro.adversary.policies`) is
that a robust policy folds to the *same answer* no matter how the report
stream is decomposed into shard states and merged:

* ``trim`` sorts the retained reports at query time, so the trimmed mean
  is invariant under **any** partition and **any** merge order;
* ``clip`` transforms element-wise at ingestion, so merging a contiguous
  decomposition's shard states in ascending order reproduces the direct
  per-batch ingest's running sums bit for bit (same per-chunk fold);
* ``median-of-means`` aggregates per group label, so group sums/counts
  survive any partition that preserves the labels.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import RobustPolicy
from repro.protocol import Collector
from repro.protocol.collector import CollectorShardState

report_arrays = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_subnormal=True
    ),
    min_size=1,
    max_size=40,
).map(lambda xs: np.asarray(xs, dtype=float))


def _cuts(values, boundaries):
    """Contiguous segments of ``values`` at sorted unique boundaries."""
    points = sorted({b % (len(values) + 1) for b in boundaries})
    return [
        seg
        for seg in np.split(values, points)
        if len(seg)
    ]


def _segment_state(policy, t, segment, base_uid, group, keep_reports):
    state = CollectorShardState(
        keep_reports=keep_reports, robust_policy=policy
    )
    ids = np.arange(base_uid, base_uid + len(segment), dtype=np.int64)
    state.add_slot_batch(t, ids, segment, group=group)
    return state


class TestTrimInvariance:
    @given(
        values=report_arrays,
        boundaries=st.lists(st.integers(0, 60), max_size=5),
        order_seed=st.integers(0, 2**16),
        trim=st.floats(min_value=0.0, max_value=0.45),
    )
    @settings(max_examples=80, deadline=None)
    def test_any_partition_any_merge_order(
        self, values, boundaries, order_seed, trim
    ):
        """Trimmed mean is the same for every decomposition + shuffle."""
        policy = RobustPolicy(kind="trim", trim=trim)
        flat = Collector(
            epsilon_per_report=1.0, keep_reports=True, robust_policy=policy
        )
        flat.ingest_batch(0, np.arange(len(values)), values)

        segments = _cuts(values, boundaries)
        offsets = np.cumsum([0] + [len(s) for s in segments[:-1]])
        states = [
            _segment_state(policy, 0, seg, int(off), i, keep_reports=True)
            for i, (seg, off) in enumerate(zip(segments, offsets))
        ]
        # Merge in an arbitrary (seeded) order — trim must not care.
        order = np.random.default_rng(order_seed).permutation(len(states))
        merged = states[order[0]]
        for i in order[1:]:
            merged.merge_in_place(states[i])

        assert policy.slot_mean(merged, 0) == flat.population_mean(0)

    @given(values=report_arrays)
    @settings(max_examples=40, deadline=None)
    def test_trim_bounded_by_extremes(self, values):
        policy = RobustPolicy(kind="trim", trim=0.25)
        flat = Collector(
            epsilon_per_report=1.0, keep_reports=True, robust_policy=policy
        )
        flat.ingest_batch(0, np.arange(len(values)), values)
        assert values.min() <= flat.population_mean(0) <= values.max()


class TestClipInvariance:
    @given(
        values=report_arrays,
        boundaries=st.lists(st.integers(0, 60), max_size=5),
        low=st.floats(min_value=-2.0, max_value=0.4),
        span=st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_contiguous_merge_matches_flat_ingest_bitwise(
        self, values, boundaries, low, span
    ):
        """Ascending shard-state merge == direct per-batch ingest, exact
        float bits — the chunk decomposition defines the fold, and every
        execution mode (flat pipeline or merge tree) must reproduce it.
        """
        policy = RobustPolicy(kind="clip", low=low, high=low + span)
        segments = _cuts(values, boundaries)
        offsets = np.cumsum([0] + [len(s) for s in segments[:-1]])

        flat = Collector(epsilon_per_report=1.0, robust_policy=policy)
        for seg, off in zip(segments, offsets):
            ids = np.arange(int(off), int(off) + len(seg), dtype=np.int64)
            flat.ingest_batch(0, ids, seg)

        merged = CollectorShardState(robust_policy=policy)
        for i, (seg, off) in enumerate(zip(segments, offsets)):
            merged.merge_in_place(
                _segment_state(policy, 0, seg, int(off), i, keep_reports=False)
            )

        # Exact equality on purpose: same element-wise transform, same
        # left-to-right fold order, therefore the same bits.
        assert merged.slot_sums == flat.state.slot_sums
        assert merged.slot_counts == flat.state.slot_counts
        assert policy.slot_mean(merged, 0) == flat.population_mean(0)

    @given(values=report_arrays)
    @settings(max_examples=40, deadline=None)
    def test_clip_is_idempotent(self, values):
        policy = RobustPolicy(kind="clip")
        once = policy.transform(values)
        np.testing.assert_array_equal(policy.transform(once), once)


class TestMedianOfMeansInvariance:
    @given(
        values=report_arrays,
        boundaries=st.lists(st.integers(0, 60), max_size=4),
        order_seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_group_aggregates_survive_any_merge_order(
        self, values, boundaries, order_seed
    ):
        """Per-group sums/counts — and the median fold — are order-free."""
        policy = RobustPolicy(kind="median-of-means")
        segments = _cuts(values, boundaries)
        offsets = np.cumsum([0] + [len(s) for s in segments[:-1]])

        flat = Collector(epsilon_per_report=1.0, robust_policy=policy)
        for i, (seg, off) in enumerate(zip(segments, offsets)):
            ids = np.arange(int(off), int(off) + len(seg), dtype=np.int64)
            flat.ingest_batch(0, ids, seg, group=i)

        states = [
            _segment_state(policy, 0, seg, int(off), i, keep_reports=False)
            for i, (seg, off) in enumerate(zip(segments, offsets))
        ]
        order = np.random.default_rng(order_seed).permutation(len(states))
        merged = states[order[0]]
        for i in order[1:]:
            merged.merge_in_place(states[i])

        assert merged.group_sums == flat.state.group_sums
        assert merged.group_counts == flat.state.group_counts
        assert policy.slot_mean(merged, 0) == flat.population_mean(0)
