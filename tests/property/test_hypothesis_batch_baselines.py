"""Property tests for the baseline batch engines.

Same contract as the mechanism-level ``perturb_batch`` suite, one level
up: for every registered estimator the population engine must be
bitwise-equal to the scalar reference for one user on arbitrary streams,
budgets and seeds, and its outputs must stay inside the algorithm's
output domain.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms.square_wave import sw_half_width
from repro.registry import algorithm_names, make_algorithm, make_batch_engine

#: newly batched baselines (the core four are pinned by the existing
#: ``test_batch_online`` suite); sampling variants exercise segmentation
NEW_BATCH_NAMES = [
    "ba-sw",
    "bd-sw",
    "topl",
    "laplace-direct",
    "pm-direct",
    "sr-direct",
    "sw-app",
    "pm-app",
    "sampling",
    "capp-s",
]

epsilons = st.floats(min_value=0.2, max_value=6.0, allow_nan=False)
streams = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=8,
    max_size=32,
).map(np.asarray)
seeds = st.integers(0, 2**32 - 1)


class TestScalarBatchEquivalence:
    @pytest.mark.parametrize("name", NEW_BATCH_NAMES)
    @given(eps=epsilons, stream=streams, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_single_user_bitwise(self, name, eps, stream, seed):
        perturber = make_algorithm(name, eps, 5)
        scalar = perturber.perturb_stream(stream, np.random.default_rng(seed))
        population = perturber.perturb_population(
            stream[None, :], np.random.default_rng(seed)
        )
        np.testing.assert_array_equal(population.perturbed[0], scalar.perturbed)
        np.testing.assert_array_equal(population.published[0], scalar.published)


class TestDomainContainment:
    @pytest.mark.parametrize("name", ["ba-sw", "bd-sw"])
    @given(eps=epsilons, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_budget_scheme_reports_in_sw_domain(self, name, eps, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.random((12, 20))
        result = make_algorithm(name, eps, 5).perturb_population(matrix, rng)
        # Publications draw SW at data-dependent budgets <= eps; the SW
        # half-width is monotonically shrinking in the budget, so the
        # widest possible support is the smallest budget's.
        b_max = 0.5  # sup over all budgets (b -> 1/2 as eps -> 0)
        assert result.perturbed.min() >= -b_max - 1e-9
        assert result.perturbed.max() <= 1.0 + b_max + 1e-9
        result.accountant.assert_valid()

    @given(eps=epsilons, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_topl_phase1_in_sw_domain(self, eps, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.random((8, 20))
        engine = make_batch_engine("topl", eps, 5, 8, rng=rng, horizon=20)
        b = sw_half_width(eps / 5)
        for t in range(engine.n_range):
            reports = engine.submit(matrix[:, t])
            assert reports.min() >= -b - 1e-9
            assert reports.max() <= 1.0 + b + 1e-9
        for t in range(engine.n_range, 20):
            assert np.all(np.isfinite(engine.submit(matrix[:, t])))
        engine.accountant.assert_valid()


class TestUnbiasedness:
    """The rewritten grouped passes draw from the exact SW channel.

    Bitwise equality is pinned elsewhere; these check the *statistics*:
    across a deterministic epsilon grid, large populations of kernel
    draws must land on the mechanism's closed-form expectation within a
    4-sigma confidence band.
    """

    @pytest.mark.parametrize("eps", [0.2, 0.5, 1.0, 2.0, 4.0])
    def test_grouped_draw_mean_matches_expected_output(self, eps):
        from repro.baselines.batch import BatchBASW
        from repro.mechanisms import SquareWaveMechanism

        n = 20_000
        rng = np.random.default_rng(hash(eps) % 2**32)
        values = rng.random(n)
        engine = BatchBASW(1.0, 5, 4, np.random.default_rng(0))
        engine._rng = np.random.default_rng(7)
        # Mixed duplicated budgets exercise the grouped path; each draw's
        # expectation only depends on its own (budget, value) pair.
        budgets = rng.choice([eps, eps / 2.0, eps / 3.0], size=n)
        reports = engine._grouped_publish_draw(budgets, values)
        expected = np.empty(n)
        variance = np.empty(n)
        for budget in np.unique(budgets):
            members = budgets == budget
            mech = SquareWaveMechanism(float(budget))
            expected[members] = mech.expected_output(values[members])
            variance[members] = mech.output_variance(values[members])
        residual = (reports - expected).mean()
        tolerance = 4.0 * np.sqrt(variance.mean() / n)
        assert abs(residual) < tolerance

    @pytest.mark.parametrize("eps", [0.4, 1.0, 3.0])
    def test_bd_sw_first_slot_publishes_at_half_pool(self, eps):
        from repro.baselines.batch import BatchBDSW
        from repro.mechanisms import SquareWaveMechanism

        n = 20_000
        rng = np.random.default_rng(int(eps * 1000))
        values = rng.random(n)
        engine = BatchBDSW(eps, 5, n, np.random.default_rng(3))
        reports = engine.submit(values)
        # Slot 0: empty spend windows, so every user publishes one SW
        # draw at the halving-rule budget pool/2.
        mech = SquareWaveMechanism(engine.publish_pool / 2.0)
        residual = (reports - mech.expected_output(values)).mean()
        tolerance = 4.0 * np.sqrt(mech.output_variance(values).mean() / n)
        assert abs(residual) < tolerance


class TestLedgerInvariants:
    @pytest.mark.parametrize("name", sorted(algorithm_names()))
    @given(seed=seeds)
    @settings(max_examples=5, deadline=None)
    def test_every_engine_respects_w_event_budget(self, name, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.random((6, 18))
        engine = make_batch_engine(name, 1.0, 4, 6, rng=rng, horizon=18)
        for t in range(18):
            engine.submit(matrix[:, t])
        engine.accountant.assert_valid()
        assert np.all(engine.accountant.max_window_spend() <= 1.0 + 1e-9)
