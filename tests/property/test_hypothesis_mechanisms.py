"""Property-based tests (hypothesis) for the LDP mechanisms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
    sw_probabilities,
)

epsilons = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)
unit_values = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestSquareWaveProperties:
    @given(eps=epsilons)
    @settings(max_examples=50, deadline=None)
    def test_parameters_consistent(self, eps):
        b, p, q = sw_probabilities(eps)
        assert 0.0 < b <= 0.5 + 1e-9
        assert p > q > 0.0
        assert p / q == pytest.approx(math.exp(eps), rel=1e-6)
        assert 2 * b * p + q == pytest.approx(1.0, rel=1e-9)

    @given(eps=epsilons, x=unit_values, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_output_always_in_domain(self, eps, x, seed):
        mech = SquareWaveMechanism(eps)
        out = mech.perturb(np.full(64, x), np.random.default_rng(seed))
        assert out.min() >= -mech.b - 1e-12
        assert out.max() <= 1.0 + mech.b + 1e-12

    @given(eps=epsilons, x=unit_values)
    @settings(max_examples=50, deadline=None)
    def test_moments_sane(self, eps, x):
        mech = SquareWaveMechanism(eps)
        mean = float(mech.expected_output(x))
        var = float(mech.output_variance(x))
        assert -mech.b <= mean <= 1.0 + mech.b
        assert var > 0.0
        # Bounded support => variance below the square half-width bound.
        assert var <= ((1.0 + 2.0 * mech.b) ** 2) / 4.0 + 1e-9

    @given(eps=epsilons, x=unit_values, y=unit_values)
    @settings(max_examples=50, deadline=None)
    def test_pdf_ratio_ldp_bound(self, eps, x, y):
        mech = SquareWaveMechanism(eps)
        outs = np.linspace(-mech.b, 1.0 + mech.b, 64)
        px = np.asarray(mech.pdf(x, outs), dtype=float)
        py = np.asarray(mech.pdf(y, outs), dtype=float)
        mask = (px > 0) & (py > 0)
        assert np.all(px[mask] / py[mask] <= math.exp(eps) * (1 + 1e-9))


class TestUnbiasedMechanismProperties:
    @given(eps=st.floats(min_value=0.05, max_value=10.0), x=unit_values)
    @settings(max_examples=30, deadline=None)
    def test_pm_expected_output_is_identity(self, eps, x):
        mech = PiecewiseMechanism(eps)
        assert float(mech.expected_output(x)) == pytest.approx(x)

    @given(eps=st.floats(min_value=0.05, max_value=10.0), x=unit_values)
    @settings(max_examples=30, deadline=None)
    def test_sr_probability_valid(self, eps, x):
        mech = DuchiMechanism(eps)
        prob = float(mech.positive_probability(x))
        assert 0.0 <= prob <= 1.0

    @given(
        eps=st.floats(min_value=0.05, max_value=10.0),
        x=unit_values,
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_sr_output_two_points(self, eps, x, seed):
        mech = DuchiMechanism(eps)
        out = mech.perturb(np.full(16, x), np.random.default_rng(seed))
        dom = mech.output_domain
        for value in np.unique(out):
            assert value == pytest.approx(dom.low) or value == pytest.approx(dom.high)

    @given(eps=st.floats(min_value=0.05, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_hm_alpha_in_unit_interval(self, eps):
        assert 0.0 <= HybridMechanism(eps).alpha < 1.0

    @given(eps=st.floats(min_value=0.05, max_value=10.0), x=unit_values)
    @settings(max_examples=30, deadline=None)
    def test_variances_positive(self, eps, x):
        for cls in (LaplaceMechanism, PiecewiseMechanism, DuchiMechanism, HybridMechanism):
            assert float(cls(eps).output_variance(x)) > 0.0
