"""Property tests for the SHARD_STATE wire codec and tree merge.

Two invariants, both bitwise:

* encode → decode round-trips every field exactly (the worker-computed
  slot sum is shipped as raw float64 bits, never re-derived), and
* folding decoded states through the root's
  :class:`~repro.gateway.ShardStateAggregator` produces byte-identical
  collector state to ingesting the same batches directly — the flat
  pipeline's operation sequence — including empty shard-slots and
  report-keeping / user-tracking memory switches.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway import ShardStateAggregator
from repro.gateway.wire import decode_shard_state_payload, encode_shard_state_frame
from repro.protocol import Collector
from repro.protocol.messages import (
    ShardSlotState,
    decode_shard_state,
    encode_shard_state,
)

values_arrays = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_subnormal=True
    ),
    min_size=0,
    max_size=12,
).map(lambda xs: np.asarray(xs, dtype=float))


def _state(shard, t, segment, with_ids, base_uid=0):
    n = len(segment)
    ids = (
        np.arange(base_uid, base_uid + n, dtype=np.int64) if with_ids else None
    )
    return ShardSlotState(
        shard=shard,
        t=t,
        n_reports=n,
        total=float(segment.sum()),
        values=segment if n else None,
        user_ids=ids if n else None,
    )


def _encode(state):
    return encode_shard_state(
        state.shard,
        state.t,
        state.n_reports,
        state.total,
        values=state.values,
        user_ids=state.user_ids,
    )


class TestRoundTrip:
    @given(
        segment=values_arrays,
        shard=st.integers(0, 2**31 - 1),
        t=st.integers(0, 2**31 - 1),
        with_ids=st.booleans(),
        copy=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_is_bitwise_identity(
        self, segment, shard, t, with_ids, copy
    ):
        state = _state(shard, t, segment, with_ids)
        decoded = decode_shard_state(_encode(state), copy=copy)
        assert decoded.shard == shard and decoded.t == t
        assert decoded.n_reports == state.n_reports
        # The slot sum travels as raw float64 bits.
        assert np.float64(decoded.total).tobytes() == np.float64(
            state.total
        ).tobytes()
        if state.values is None:
            assert decoded.values is None
        else:
            assert decoded.values.tobytes() == state.values.tobytes()
        if state.user_ids is None:
            assert decoded.user_ids is None
        else:
            assert (decoded.user_ids == state.user_ids).all()

    @given(segment=values_arrays.filter(len), copy=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_framed_round_trip_matches_codec(self, segment, copy):
        state = _state(3, 7, segment, True)
        frame = encode_shard_state_frame(state)
        decoded = decode_shard_state_payload(frame[8:], copy=copy)
        assert decoded.values.tobytes() == state.values.tobytes()
        assert np.float64(decoded.total).tobytes() == np.float64(
            state.total
        ).tobytes()


class TestMergeEquivalence:
    @given(
        shard_segments=st.lists(values_arrays, min_size=1, max_size=4),
        slots=st.integers(1, 3),
        keep_reports=st.booleans(),
        track_users=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_wire_merge_equals_direct_ingest(
        self, shard_segments, slots, keep_reports, track_users
    ):
        """encode → decode → aggregate == ingest directly, bit for bit."""
        n_shards = len(shard_segments)
        aggregator = ShardStateAggregator(
            n_shards,
            slots,
            epsilon=1.0,
            w=2,
            keep_reports=keep_reports,
            track_users=track_users,
        )
        direct = Collector(
            epsilon_per_report=0.5,
            keep_reports=keep_reports,
            track_users=track_users,
        )
        for t in range(slots):
            for shard, segment in enumerate(shard_segments):
                base_uid = shard * 100  # distinct users per shard
                state = _state(
                    shard, t, segment, track_users or True, base_uid=base_uid
                )
                decoded = decode_shard_state(_encode(state))
                accepted, _ = aggregator.submit(decoded)
                assert accepted
                if len(segment):
                    direct.ingest_batch(
                        t,
                        np.arange(
                            base_uid, base_uid + len(segment), dtype=np.int64
                        ),
                        segment,
                    )
        tree = aggregator.collector.state
        flat = direct.state
        assert tree.slot_sums == flat.slot_sums  # exact float equality
        assert tree.slot_counts == flat.slot_counts
        assert tree.n_reports == flat.n_reports
        if track_users:
            assert tree.by_user == flat.by_user
        if keep_reports:
            for t in range(slots):
                assert (
                    tree.slot_reports(t).tobytes()
                    == flat.slot_reports(t).tobytes()
                )
