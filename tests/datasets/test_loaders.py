"""Tests for the real-dataset substitutes."""

import numpy as np
import pytest

from repro.datasets import (
    c6h6_stream,
    power_matrix,
    taxi_matrix,
    volume_stream,
)


class TestVolume:
    def test_default_length_matches_original(self):
        assert volume_stream().size == 48_204

    def test_normalized(self):
        stream = volume_stream(5_000)
        assert stream.min() >= 0.0 and stream.max() <= 1.0

    def test_deterministic(self):
        np.testing.assert_array_equal(volume_stream(500), volume_stream(500))

    def test_daily_seasonality(self):
        # Rush-hour slots should carry systematically more traffic than
        # night slots, averaged over many days.
        stream = volume_stream(24 * 200)
        by_hour = stream.reshape(-1, 24).mean(axis=0)
        assert by_hour[17] > by_hour[3]

    def test_autocorrelated(self):
        stream = volume_stream(5_000)
        lag1 = np.corrcoef(stream[:-1], stream[1:])[0, 1]
        assert lag1 > 0.5


class TestC6H6:
    def test_default_length_matches_original(self):
        assert c6h6_stream().size == 9_358

    def test_normalized(self):
        stream = c6h6_stream(3_000)
        assert stream.min() >= 0.0 and stream.max() <= 1.0

    def test_autocorrelated(self):
        stream = c6h6_stream(3_000)
        lag1 = np.corrcoef(stream[:-1], stream[1:])[0, 1]
        assert lag1 > 0.7

    def test_has_episodes(self):
        # Pollution episodes create visible upper-tail mass.
        stream = c6h6_stream(5_000)
        assert np.quantile(stream, 0.99) > 2 * np.quantile(stream, 0.5)


class TestTaxi:
    def test_shape(self):
        matrix = taxi_matrix(20, 100)
        assert matrix.shape == (20, 100)

    def test_normalized_jointly(self):
        matrix = taxi_matrix(50, 200)
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_streams_are_smooth(self):
        matrix = taxi_matrix(10, 500)
        steps = np.abs(np.diff(matrix, axis=1))
        assert steps.mean() < 0.02

    def test_users_differ(self):
        matrix = taxi_matrix(5, 100)
        assert np.std(matrix.mean(axis=1)) > 0.01


class TestPower:
    def test_shape(self):
        assert power_matrix(30, 96).shape == (30, 96)

    def test_constant_fraction(self):
        matrix = power_matrix(100, 96, constant_fraction=0.4)
        n_constant = sum(np.ptp(matrix[i]) == 0.0 for i in range(100))
        assert n_constant == 40

    def test_piecewise_constant_structure(self):
        # Non-constant devices still have mostly flat stretches.
        matrix = power_matrix(100, 96, constant_fraction=0.0, seed=3)
        small_steps = np.abs(np.diff(matrix, axis=1)) < 0.05
        assert small_steps.mean() > 0.8

    def test_in_unit_interval(self):
        matrix = power_matrix(50, 96)
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_rejects_bad_constant_fraction(self):
        with pytest.raises(ValueError):
            power_matrix(10, 96, constant_fraction=1.5)
