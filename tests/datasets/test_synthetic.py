"""Tests for the synthetic stream generators."""

import numpy as np
import pytest

from repro.datasets import (
    constant_stream,
    pulse_stream,
    random_walk_stream,
    sin_matrix,
    sinusoidal_stream,
)


class TestConstant:
    def test_value_and_length(self):
        stream = constant_stream(50, value=0.1)
        assert stream.size == 50
        assert np.all(stream == 0.1)

    def test_default_matches_paper(self):
        assert constant_stream(3)[0] == 0.1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            constant_stream(10, value=1.5)


class TestPulse:
    def test_pattern(self):
        stream = pulse_stream(10, period=5)
        np.testing.assert_array_equal(
            stream, [0, 0, 0, 0, 1, 0, 0, 0, 0, 1]
        )

    def test_pulse_count(self):
        assert pulse_stream(100, period=5).sum() == 20

    def test_custom_high(self):
        assert pulse_stream(10, period=5, high=0.5).max() == 0.5

    def test_in_unit_interval(self):
        stream = pulse_stream(37, period=4)
        assert stream.min() >= 0 and stream.max() <= 1


class TestSinusoidal:
    def test_range(self):
        stream = sinusoidal_stream(1000, cycles=3)
        assert stream.min() >= 0.0
        assert stream.max() <= 1.0
        assert stream.max() - stream.min() > 0.9  # full swing

    def test_cycles(self):
        stream = sinusoidal_stream(400, cycles=4)
        # 4 full cycles -> 4 maxima above 0.99.
        peaks = np.sum(
            (stream[1:-1] > stream[:-2])
            & (stream[1:-1] > stream[2:])
            & (stream[1:-1] > 0.95)
        )
        assert peaks == 4

    def test_rejects_nonpositive_cycles(self):
        with pytest.raises(ValueError):
            sinusoidal_stream(10, cycles=0)


class TestRandomWalk:
    def test_confined_to_unit_interval(self, rng):
        stream = random_walk_stream(5_000, step_scale=0.1, rng=rng)
        assert stream.min() >= 0.0
        assert stream.max() <= 1.0

    def test_starts_at_start(self, rng):
        stream = random_walk_stream(10, start=0.3, rng=rng)
        assert stream[0] == pytest.approx(0.3)

    def test_deterministic_with_seed(self):
        a = random_walk_stream(100, rng=np.random.default_rng(1))
        b = random_walk_stream(100, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            random_walk_stream(10, step_scale=0.0)


class TestSinMatrix:
    def test_shape(self):
        assert sin_matrix(5, 100).shape == (5, 100)

    def test_rows_in_unit_interval(self):
        matrix = sin_matrix(10, 200)
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_rows_have_distinct_frequencies(self):
        matrix = sin_matrix(3, 300)
        # Higher-index rows oscillate faster: count sign changes of the
        # centered series.
        def crossings(row):
            centered = row - 0.5
            return np.sum(np.sign(centered[:-1]) != np.sign(centered[1:]))

        counts = [crossings(matrix[i]) for i in range(3)]
        assert counts[0] < counts[1] < counts[2]


class TestDiurnalStream:
    def test_shape_and_period(self):
        from repro.datasets.synthetic import diurnal_stream

        stream = diurnal_stream(96, period=24, amplitude=0.25, base=0.5)
        assert stream.shape == (96,)
        assert stream.min() >= 0.0 and stream.max() <= 1.0
        np.testing.assert_allclose(stream[:24], stream[24:48], atol=1e-12)
        assert stream[0] == pytest.approx(0.5)

    def test_clipped_at_domain_edges(self):
        from repro.datasets.synthetic import diurnal_stream

        stream = diurnal_stream(24, period=24, amplitude=0.9, base=0.5)
        assert stream.max() == 1.0 and stream.min() == 0.0

    def test_validation(self):
        from repro.datasets.synthetic import diurnal_stream

        with pytest.raises(ValueError):
            diurnal_stream(10, amplitude=-0.1)
        with pytest.raises(ValueError):
            diurnal_stream(10, base=1.2)
        with pytest.raises(ValueError):
            diurnal_stream(0)
