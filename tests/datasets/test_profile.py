"""Tests for dataset profiling (the DESIGN.md substitution evidence)."""

import numpy as np
import pytest

from repro.datasets import (
    StreamProfile,
    autocorrelation,
    c6h6_stream,
    constancy_fraction,
    power_matrix,
    profile_stream,
    seasonality_strength,
    volume_stream,
)


class TestAutocorrelation:
    def test_perfect_persistence(self):
        assert autocorrelation(np.arange(100, dtype=float)) == pytest.approx(
            1.0, abs=0.01
        )

    def test_white_noise_near_zero(self, rng):
        assert abs(autocorrelation(rng.random(5_000))) < 0.05

    def test_alternating_negative(self):
        stream = np.tile([0.0, 1.0], 50)
        assert autocorrelation(stream) == pytest.approx(-1.0, abs=0.01)

    def test_constant_is_zero(self):
        assert autocorrelation(np.full(50, 0.5)) == 0.0

    def test_lag_too_large_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation(np.ones(5), lag=5)


class TestConstancyFraction:
    def test_constant(self):
        assert constancy_fraction(np.full(10, 0.3)) == 1.0

    def test_strictly_changing(self):
        assert constancy_fraction(np.arange(10, dtype=float)) == 0.0

    def test_piecewise(self):
        stream = np.array([1.0, 1.0, 1.0, 2.0, 2.0])
        assert constancy_fraction(stream) == pytest.approx(0.75)

    def test_single_value(self):
        assert constancy_fraction(np.array([0.5])) == 1.0


class TestSeasonality:
    def test_pure_seasonal_high(self):
        stream = np.tile(np.sin(np.linspace(0, 2 * np.pi, 24, endpoint=False)), 20)
        assert seasonality_strength(stream, 24) > 0.95

    def test_white_noise_low(self, rng):
        assert seasonality_strength(rng.random(24 * 50), 24) < 0.1

    def test_constant_zero(self):
        assert seasonality_strength(np.full(100, 0.5), 10) == 0.0

    def test_too_few_periods_rejected(self):
        with pytest.raises(ValueError):
            seasonality_strength(np.ones(30), 20)


class TestProfileStream:
    def test_fields(self, rng):
        profile = profile_stream(rng.random(100))
        assert isinstance(profile, StreamProfile)
        assert profile.length == 100
        assert 0.0 <= profile.minimum <= profile.maximum <= 1.0

    def test_summary_text(self, rng):
        assert "rho1=" in profile_stream(rng.random(50)).summary()


class TestSubstituteProperties:
    """The structural claims DESIGN.md makes about the substitutes."""

    def test_volume_is_seasonal_and_autocorrelated(self):
        stream = volume_stream(24 * 100)
        assert seasonality_strength(stream, 24) > 0.3
        assert autocorrelation(stream) > 0.5

    def test_c6h6_is_strongly_autocorrelated(self):
        assert autocorrelation(c6h6_stream(3_000)) > 0.7

    def test_power_is_constant_heavy(self):
        matrix = power_matrix(100, 96)
        fractions = [constancy_fraction(matrix[i], atol=1e-9) for i in range(100)]
        # DESIGN.md: ~35% of devices are entirely flat.
        assert np.mean([f == 1.0 for f in fractions]) == pytest.approx(0.35, abs=0.02)
