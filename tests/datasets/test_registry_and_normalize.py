"""Tests for the dataset registry and normalization helpers."""

import numpy as np
import pytest

from repro.datasets import (
    MATRIX_DATASETS,
    STREAM_DATASETS,
    NormalizationParams,
    denormalize,
    load_matrix,
    load_stream,
    minmax_normalize,
)


class TestLoadStream:
    @pytest.mark.parametrize("name", sorted(STREAM_DATASETS))
    def test_all_stream_datasets_load(self, name):
        stream = load_stream(name, length=200)
        assert stream.size == 200
        assert stream.min() >= 0.0 and stream.max() <= 1.0

    def test_matrix_dataset_gives_single_stream(self):
        stream = load_stream("taxi", length=100)
        assert stream.ndim == 1
        assert stream.size == 100

    def test_seed_selects_user(self):
        a = load_stream("taxi", length=100, seed=0)
        b = load_stream("taxi", length=100, seed=1)
        assert not np.array_equal(a, b)

    def test_random_walk(self):
        stream = load_stream("random_walk", length=150, seed=2)
        assert stream.size == 150

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_stream("nope")

    def test_case_insensitive(self):
        assert load_stream("VOLUME", length=50).size == 50


class TestLoadMatrix:
    @pytest.mark.parametrize("name", sorted(MATRIX_DATASETS))
    def test_matrix_datasets_load(self, name):
        matrix = load_matrix(name, n_users=10, length=50)
        assert matrix.shape == (10, 50)

    def test_sin_data(self):
        matrix = load_matrix("sin-data", n_dimensions=4, length=100)
        assert matrix.shape == (4, 100)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown matrix"):
            load_matrix("nope")


class TestMinmaxNormalize:
    def test_maps_to_unit_interval(self, rng):
        arr = rng.normal(5, 3, size=100)
        out = minmax_normalize(arr)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_constant_maps_to_half(self):
        out = minmax_normalize(np.full(5, 3.0))
        np.testing.assert_array_equal(out, 0.5)

    def test_preserves_order(self, rng):
        arr = rng.normal(size=50)
        out = minmax_normalize(arr)
        np.testing.assert_array_equal(np.argsort(arr), np.argsort(out))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            minmax_normalize(np.array([1.0, float("nan")]))

    def test_works_on_matrices(self, rng):
        out = minmax_normalize(rng.normal(size=(4, 5)))
        assert out.shape == (4, 5)
        assert out.min() == pytest.approx(0.0)


class TestNormalizationParams:
    def test_roundtrip(self, rng):
        params = NormalizationParams(low=10.0, high=20.0)
        arr = rng.uniform(10, 20, size=30)
        np.testing.assert_allclose(params.invert(params.apply(arr)), arr)

    def test_denormalize_helper(self):
        out = denormalize(np.array([0.0, 0.5, 1.0]), 10.0, 20.0)
        np.testing.assert_allclose(out, [10.0, 15.0, 20.0])

    def test_degenerate_range_rejected(self):
        with pytest.raises(ValueError):
            NormalizationParams(low=1.0, high=1.0)
