"""Batched online engines vs their scalar counterparts.

With one user and the same generator the batched engines must be
bit-identical to the scalar classes; with many users they must agree
distributionally and keep per-user ledgers identical to scalar
accounting under the same skip pattern.
"""

import numpy as np
import pytest

from repro.core import (
    APP,
    CAPP,
    BatchOnlineAPP,
    BatchOnlineCAPP,
    BatchOnlineIPP,
    BatchOnlineSWDirect,
    OnlineAPP,
    OnlineCAPP,
    OnlineIPP,
    OnlineSWDirect,
)

PAIRS = [
    (OnlineSWDirect, BatchOnlineSWDirect),
    (OnlineIPP, BatchOnlineIPP),
    (OnlineAPP, BatchOnlineAPP),
    (OnlineCAPP, BatchOnlineCAPP),
]


@pytest.mark.parametrize("scalar_cls,batch_cls", PAIRS)
def test_single_user_bit_identical(scalar_cls, batch_cls):
    stream = np.random.default_rng(0).random(30)
    scalar = scalar_cls(1.0, 5, np.random.default_rng(42))
    batch = batch_cls(1.0, 5, 1, np.random.default_rng(42))
    for x in stream:
        expected = scalar.submit(float(x))
        got = batch.submit(np.array([x]))
        assert got.shape == (1,)
        assert got[0] == expected


@pytest.mark.parametrize("scalar_cls,batch_cls", PAIRS)
def test_skip_pattern_matches_scalar_accounting(scalar_cls, batch_cls):
    rng = np.random.default_rng(3)
    n_users, horizon = 5, 40
    streams = rng.random((n_users, horizon))
    masks = rng.random((horizon, n_users)) < 0.5

    batch = batch_cls(1.0, 4, n_users, np.random.default_rng(7))
    scalars = [scalar_cls(1.0, 4, np.random.default_rng(100 + i)) for i in range(n_users)]
    for t in range(horizon):
        reports = batch.submit(streams[:, t], masks[t])
        # Masked-out users must produce NaN, participants must not.
        assert np.all(np.isnan(reports[~masks[t]]))
        assert np.all(np.isfinite(reports[masks[t]]))
        for i, scalar in enumerate(scalars):
            if masks[t, i]:
                scalar.submit(float(streams[i, t]))
            else:
                scalar.skip()
    batch.accountant.assert_valid()
    for i, scalar in enumerate(scalars):
        np.testing.assert_allclose(
            batch.accountant.user_spends(i), scalar.accountant._spends
        )


def test_masked_state_untouched():
    """A skipped slot must not move the skipped user's deviation state."""
    batch = BatchOnlineAPP(1.0, 4, 3, np.random.default_rng(0))
    batch.submit(np.array([0.2, 0.5, 0.8]))
    before = batch.accumulated_deviation.copy()
    mask = np.array([True, False, True])
    batch.submit(np.array([0.3, 0.6, 0.9]), mask)
    assert batch.accumulated_deviation[1] == before[1]
    assert batch.accumulated_deviation[0] != before[0]
    assert batch.accumulated_deviation[2] != before[2]


def test_population_means_distributionally_close():
    """Batched and scalar APP agree on the population mean of a slot."""
    n_users, horizon = 4000, 10
    value = 0.37
    streams = np.full((n_users, horizon), value)

    batch = BatchOnlineAPP(5.0, 5, n_users, np.random.default_rng(1))
    batch_reports = np.column_stack(
        [batch.submit(streams[:, t]) for t in range(horizon)]
    )
    scalar_reports = np.empty_like(batch_reports)
    master = np.random.default_rng(2)
    for i in range(n_users):
        scalar = OnlineAPP(5.0, 5, np.random.default_rng(master.integers(2**63)))
        scalar_reports[i] = [scalar.submit(value) for _ in range(horizon)]
    # Cross-user means at each slot: both unbiased estimators of the same
    # quantity with ~1/sqrt(n) noise.
    np.testing.assert_allclose(
        batch_reports.mean(axis=0), scalar_reports.mean(axis=0), atol=0.05
    )


def test_shape_validation():
    batch = BatchOnlineAPP(1.0, 4, 3)
    with pytest.raises(ValueError, match="shape"):
        batch.submit(np.array([0.1, 0.2]))
    with pytest.raises(ValueError, match="mask"):
        batch.submit(np.array([0.1, 0.2, 0.3]), np.array([True, False]))
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        batch.submit(np.array([0.1, 0.2, 1.5]))


def test_out_of_range_masked_values_ignored():
    batch = BatchOnlineAPP(1.0, 4, 2)
    reports = batch.submit(np.array([0.5, np.nan]), np.array([True, False]))
    assert np.isfinite(reports[0]) and np.isnan(reports[1])


def test_skip_slot_spends_nothing():
    batch = BatchOnlineSWDirect(1.0, 4, 2)
    batch.skip_slot()
    batch.submit(np.array([0.1, 0.9]))
    np.testing.assert_allclose(batch.accountant.user_spends(0), [0.0, 0.25])


@pytest.mark.parametrize("perturber_cls", [APP, CAPP])
def test_perturb_population_single_user_matches_stream(perturber_cls):
    """perturb_population with one user == perturb_stream, bit for bit."""
    stream = np.random.default_rng(5).random(25)
    perturber = perturber_cls(1.0, 5)
    ref = perturber.perturb_stream(stream, np.random.default_rng(11))
    pop = perturber.perturb_population(stream[None, :], np.random.default_rng(11))
    np.testing.assert_array_equal(pop.perturbed[0], ref.perturbed)
    np.testing.assert_allclose(pop.published[0], ref.published)
    np.testing.assert_array_equal(pop.deviations[0], ref.deviations)
    assert pop.accumulated_deviation[0] == pytest.approx(ref.accumulated_deviation)
    np.testing.assert_allclose(pop.accountant.user_spends(0), ref.accountant._spends)


@pytest.mark.parametrize("perturber_cls", [APP, CAPP])
def test_perturb_population_shapes_and_audit(perturber_cls):
    streams = np.random.default_rng(6).random((20, 15))
    result = perturber_cls(1.0, 5).perturb_population(streams, np.random.default_rng(0))
    assert result.n_users == 20
    assert len(result) == 15
    assert result.perturbed.shape == (20, 15)
    assert result.published.shape == (20, 15)
    assert result.population_mean_series().shape == (15,)
    assert result.mean_estimates().shape == (20,)
    np.testing.assert_allclose(result.deviations, streams - result.perturbed)
    result.accountant.assert_valid()


def test_perturb_population_validates_matrix():
    perturber = APP(1.0, 5)
    with pytest.raises(ValueError, match="matrix"):
        perturber.perturb_population(np.zeros(5))
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        perturber.perturb_population(np.full((2, 3), 1.5))
