"""Tests for the Section-V n_s selection guidelines (tail heuristics)."""

import numpy as np
import pytest

from repro.core import choose_num_samples, classify_tail, recommend_num_samples


class TestClassifyTail:
    def test_gaussian_is_light(self, rng):
        assert classify_tail(rng.normal(0, 1, size=5_000)) == "light"

    def test_uniform_is_light(self, rng):
        assert classify_tail(rng.random(5_000)) == "light"

    def test_cauchy_is_heavy(self, rng):
        # The paper's explicit heavy-tail example.
        assert classify_tail(rng.standard_cauchy(5_000)) == "heavy"

    def test_laplace_is_heavy(self, rng):
        assert classify_tail(rng.laplace(0, 1, size=20_000)) == "heavy"

    def test_constant_is_light(self):
        assert classify_tail(np.full(10, 0.3)) == "light"

    def test_too_few_values_rejected(self):
        with pytest.raises(ValueError, match="at least 4"):
            classify_tail([0.1, 0.2, 0.3])

    def test_custom_threshold(self, rng):
        sample = rng.normal(0, 1, size=5_000)
        assert classify_tail(sample, threshold=-2.0) == "heavy"


class TestRecommendNumSamples:
    def test_heavy_tail_small_ns(self):
        assert recommend_num_samples(40, 10, 1.0, tail="heavy") == 2

    def test_light_tail_uses_equation12(self):
        expected = choose_num_samples(40, 10, 1.0)
        assert recommend_num_samples(40, 10, 1.0, tail="light") == expected

    def test_classifies_from_sample(self, rng):
        heavy = recommend_num_samples(
            40, 10, 1.0, values=rng.standard_cauchy(5_000)
        )
        light = recommend_num_samples(40, 10, 1.0, values=rng.random(5_000))
        assert heavy == 2
        assert light >= heavy

    def test_needs_sample_or_label(self):
        with pytest.raises(ValueError, match="either"):
            recommend_num_samples(40, 10, 1.0)

    def test_invalid_label_rejected(self):
        with pytest.raises(ValueError, match="'heavy' or 'light'"):
            recommend_num_samples(40, 10, 1.0, tail="medium")

    def test_degenerate_interval(self):
        assert recommend_num_samples(1, 10, 1.0, tail="heavy") == 1
