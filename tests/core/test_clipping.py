"""Tests for CAPP clip-bound selection (Equation 11 machinery)."""

import math

import pytest

from repro.core import (
    DEFAULT_DELTA_CLAMP,
    choose_clip_bounds,
    clip_delta,
    discarding_error,
    sensitivity_error,
)
from repro.core.clipping import ClipBounds
from repro.mechanisms import SquareWaveMechanism, deviation_moments


class TestSensitivityError:
    def test_closed_form(self):
        # e_s = exp(1 - E[SW(1)]) - 1.
        eps = 1.0
        mech = SquareWaveMechanism(eps)
        expected = math.exp(1.0 - float(mech.expected_output(1.0))) - 1.0
        assert sensitivity_error(eps) == pytest.approx(expected, rel=1e-12)

    def test_vanishes_for_large_epsilon(self):
        # "es approaches 0 for large eps, where sensitivity reduction
        # becomes unnecessary."  E[D_1] decays like 1/(2(eps-1)), so the
        # error at eps = 20 sits below 0.03 and keeps shrinking.
        assert sensitivity_error(20.0) < 0.03
        assert sensitivity_error(50.0) < sensitivity_error(20.0)

    def test_grows_as_epsilon_shrinks(self):
        values = [sensitivity_error(e) for e in (5.0, 2.0, 1.0, 0.5, 0.1)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_positive(self):
        assert sensitivity_error(0.5) > 0.0


class TestDiscardingError:
    def test_equals_deviation_std(self):
        eps = 0.7
        assert discarding_error(eps) == pytest.approx(deviation_moments(eps).std)

    def test_grows_as_epsilon_shrinks(self):
        # "Smaller eps leads to larger Var(D_x)".
        values = [discarding_error(e) for e in (5.0, 2.0, 1.0, 0.5, 0.1)]
        assert all(a < b for a, b in zip(values, values[1:]))


class TestClipDelta:
    def test_is_difference_of_errors_unclamped(self):
        eps = 1.0
        raw = sensitivity_error(eps) - discarding_error(eps)
        assert clip_delta(eps, clamp=None) == pytest.approx(raw)

    def test_clamped_into_default_range(self):
        for eps in (0.05, 0.5, 1.0, 5.0):
            delta = clip_delta(eps)
            assert DEFAULT_DELTA_CLAMP[0] <= delta <= DEFAULT_DELTA_CLAMP[1]

    def test_custom_clamp(self):
        value = clip_delta(0.05, clamp=(-0.1, 0.1))
        assert -0.1 <= value <= 0.1

    def test_inverted_clamp_rejected(self):
        with pytest.raises(ValueError, match="inverted"):
            clip_delta(1.0, clamp=(0.3, -0.3))


class TestChooseClipBounds:
    def test_bounds_follow_delta(self):
        bounds = choose_clip_bounds(1.0)
        assert bounds.low == pytest.approx(-bounds.delta)
        assert bounds.high == pytest.approx(1.0 + bounds.delta)

    def test_width_positive(self):
        for eps in (0.05, 0.5, 1.0, 5.0):
            assert choose_clip_bounds(eps).width > 0.0

    def test_degenerate_delta_rejected(self):
        with pytest.raises(ValueError, match="collapses"):
            choose_clip_bounds(1.0, clamp=(-0.6, -0.6))

    def test_clipbounds_validation(self):
        with pytest.raises(ValueError, match="empty"):
            ClipBounds(low=0.5, high=0.5, delta=-0.5)

    def test_small_budget_prefers_wider_range(self):
        # Paper: "smaller eps values are associated with larger optimal
        # delta values" — the unclamped delta should reflect that ordering
        # in the small-budget regime.
        small = clip_delta(0.05, clamp=None)
        large = clip_delta(3.0, clamp=None)
        assert small > large
