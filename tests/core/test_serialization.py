"""Tests for perturbation-result serialization."""

import json

import numpy as np
import pytest

from repro.core import (
    APP,
    PPSampling,
    dumps_result,
    loads_result,
    result_from_dict,
    result_to_dict,
    result_to_public_dict,
)


@pytest.fixture
def stream_result(smooth_stream, rng):
    return APP(1.0, 10).perturb_stream(smooth_stream, rng)


@pytest.fixture
def sampling_result(smooth_stream, rng):
    return PPSampling(1.0, 10, base="app", n_samples=6).perturb_stream(
        smooth_stream, rng
    )


class TestToDict:
    def test_stream_fields(self, stream_result):
        data = result_to_dict(stream_result)
        assert data["kind"] == "stream"
        assert len(data["perturbed"]) == len(stream_result)
        assert data["epsilon_per_slot"] == pytest.approx(0.1)
        assert data["accountant"]["w"] == 10

    def test_sampling_fields(self, sampling_result):
        data = result_to_dict(sampling_result)
        assert data["kind"] == "sampling"
        assert data["n_samples"] == 6
        assert len(data["segment_reports"]) == 6

    def test_json_serializable(self, stream_result):
        json.dumps(result_to_dict(stream_result))  # must not raise


class TestPublicDict:
    def test_strips_user_side_fields(self, stream_result):
        data = result_to_public_dict(stream_result)
        for secret in ("original", "inputs", "deviations", "accumulated_deviation"):
            assert secret not in data
        assert "perturbed" in data and "published" in data

    def test_sampling_strips_true_means(self, sampling_result):
        data = result_to_public_dict(sampling_result)
        assert "segment_means" not in data
        assert "segment_reports" in data


class TestRoundTrip:
    def test_dumps_loads(self, stream_result):
        restored = loads_result(dumps_result(stream_result))
        np.testing.assert_allclose(restored["perturbed"], stream_result.perturbed)
        np.testing.assert_allclose(restored["published"], stream_result.published)

    def test_public_roundtrip(self, stream_result):
        restored = loads_result(dumps_result(stream_result, public=True))
        assert "original" not in restored
        np.testing.assert_allclose(restored["perturbed"], stream_result.perturbed)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="unsupported result format"):
            result_from_dict({"format": "something-else"})

    def test_accountant_summary_preserved(self, stream_result):
        restored = loads_result(dumps_result(stream_result))
        assert restored["accountant"]["epsilon"] == 1.0
        assert restored["accountant"]["max_window_spend"] <= 1.0 + 1e-9
