"""Tests for perturbation-result serialization."""

import json

import numpy as np
import pytest

from repro.core import (
    APP,
    PPSampling,
    dumps_result,
    loads_result,
    result_from_dict,
    result_to_dict,
    result_to_public_dict,
)


@pytest.fixture
def stream_result(smooth_stream, rng):
    return APP(1.0, 10).perturb_stream(smooth_stream, rng)


@pytest.fixture
def sampling_result(smooth_stream, rng):
    return PPSampling(1.0, 10, base="app", n_samples=6).perturb_stream(
        smooth_stream, rng
    )


class TestToDict:
    def test_stream_fields(self, stream_result):
        data = result_to_dict(stream_result)
        assert data["kind"] == "stream"
        assert len(data["perturbed"]) == len(stream_result)
        assert data["epsilon_per_slot"] == pytest.approx(0.1)
        assert data["accountant"]["w"] == 10

    def test_sampling_fields(self, sampling_result):
        data = result_to_dict(sampling_result)
        assert data["kind"] == "sampling"
        assert data["n_samples"] == 6
        assert len(data["segment_reports"]) == 6

    def test_json_serializable(self, stream_result):
        json.dumps(result_to_dict(stream_result))  # must not raise


class TestPublicDict:
    def test_strips_user_side_fields(self, stream_result):
        data = result_to_public_dict(stream_result)
        for secret in ("original", "inputs", "deviations", "accumulated_deviation"):
            assert secret not in data
        assert "perturbed" in data and "published" in data

    def test_sampling_strips_true_means(self, sampling_result):
        data = result_to_public_dict(sampling_result)
        assert "segment_means" not in data
        assert "segment_reports" in data


class TestRoundTrip:
    def test_dumps_loads(self, stream_result):
        restored = loads_result(dumps_result(stream_result))
        np.testing.assert_allclose(restored["perturbed"], stream_result.perturbed)
        np.testing.assert_allclose(restored["published"], stream_result.published)

    def test_public_roundtrip(self, stream_result):
        restored = loads_result(dumps_result(stream_result, public=True))
        assert "original" not in restored
        np.testing.assert_allclose(restored["perturbed"], stream_result.perturbed)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="unsupported result format"):
            result_from_dict({"format": "something-else"})

    def test_accountant_summary_preserved(self, stream_result):
        restored = loads_result(dumps_result(stream_result))
        assert restored["accountant"]["epsilon"] == 1.0
        assert restored["accountant"]["max_window_spend"] <= 1.0 + 1e-9


class TestShardSnapshots:
    """Collector-state and ledger snapshots used by runtime checkpoints."""

    def test_collector_state_exact_round_trip(self):
        from repro.core import collector_state_from_dict, collector_state_to_dict
        from repro.protocol import Collector, Report

        collector = Collector()
        values = np.random.default_rng(0).random(50)
        collector.ingest_batch(0, np.arange(50), values)
        collector.ingest(Report(3, 1, 0.25))
        payload = json.loads(json.dumps(collector_state_to_dict(collector.state)))
        restored = collector_state_from_dict(payload)
        # Bit-exact: JSON floats round-trip via repr.
        assert restored.slot_sums == collector.state.slot_sums
        assert restored.slot_counts == collector.state.slot_counts
        for t in collector.state.slot_values:
            np.testing.assert_array_equal(
                restored.slot_reports(t), collector.state.slot_reports(t)
            )
        assert restored.by_user == collector.state.by_user
        assert restored.n_reports == collector.state.n_reports

    def test_collector_state_untracked_round_trip(self):
        from repro.core import collector_state_from_dict, collector_state_to_dict
        from repro.protocol import Collector

        collector = Collector(track_users=False)
        collector.ingest_batch(2, np.arange(5), np.full(5, 0.5))
        payload = collector_state_to_dict(collector.state)
        assert "by_user" not in payload
        restored = collector_state_from_dict(payload)
        assert not restored.track_users
        assert restored.slot_counts == {2: 5}

    def test_collector_state_format_checked(self):
        from repro.core import collector_state_from_dict

        with pytest.raises(ValueError, match="format"):
            collector_state_from_dict({"format": "nope"})

    def test_batch_accountant_round_trip(self):
        from repro.core import batch_accountant_from_dict, batch_accountant_to_dict
        from repro.privacy import BatchWEventAccountant

        accountant = BatchWEventAccountant(1.0, 4, 6)
        for spend in (0.25, 0.0, 0.25):
            accountant.charge_next(spend)
        payload = json.loads(json.dumps(batch_accountant_to_dict(accountant)))
        restored = batch_accountant_from_dict(payload)
        assert restored["epsilon"] == 1.0
        assert restored["w"] == 4
        assert restored["n_users"] == 6
        assert restored["slots"] == 3
        np.testing.assert_array_equal(
            restored["max_window_spend"], accountant.max_window_spend()
        )
        np.testing.assert_array_equal(
            restored["spends"], accountant.spends_matrix()
        )

    def test_batch_accountant_history_optional(self):
        from repro.core import batch_accountant_from_dict, batch_accountant_to_dict
        from repro.privacy import BatchWEventAccountant

        accountant = BatchWEventAccountant(1.0, 4, 3, record_history=False)
        accountant.charge_next(0.25)
        payload = batch_accountant_to_dict(accountant)
        assert "spends" not in payload
        assert batch_accountant_from_dict(payload)["spends"] is None
        trimmed = batch_accountant_to_dict(
            BatchWEventAccountant(1.0, 4, 3), include_history=False
        )
        assert "spends" not in trimmed

    def test_batch_accountant_format_checked(self):
        from repro.core import batch_accountant_from_dict

        with pytest.raises(ValueError, match="format"):
            batch_accountant_from_dict({"format": "nope"})
