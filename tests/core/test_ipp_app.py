"""Tests for the IPP and APP algorithms (deviation bookkeeping, budgets)."""

import numpy as np
import pytest

from repro.core import APP, IPP
from repro.mechanisms import LaplaceMechanism


class TestIPP:
    def test_result_shapes(self, smooth_stream, rng):
        result = IPP(1.0, 10).perturb_stream(smooth_stream, rng)
        n = smooth_stream.size
        assert len(result) == n
        for field in ("original", "inputs", "perturbed", "published", "deviations"):
            assert getattr(result, field).size == n

    def test_deviation_definition(self, smooth_stream, rng):
        result = IPP(1.0, 10).perturb_stream(smooth_stream, rng)
        np.testing.assert_allclose(
            result.deviations, result.original - result.perturbed
        )

    def test_first_input_is_first_value(self, smooth_stream, rng):
        result = IPP(1.0, 10).perturb_stream(smooth_stream, rng)
        assert result.inputs[0] == pytest.approx(smooth_stream[0])

    def test_input_recurrence(self, smooth_stream, rng):
        # x^I_t = clip(x_t + d_{t-1}, [0, 1]).
        result = IPP(1.0, 10).perturb_stream(smooth_stream, rng)
        for t in range(1, len(result)):
            expected = np.clip(
                result.original[t] + result.deviations[t - 1], 0.0, 1.0
            )
            assert result.inputs[t] == pytest.approx(expected)

    def test_inputs_clipped_to_unit_interval(self, rng):
        stream = np.concatenate([np.zeros(20), np.ones(20)])
        result = IPP(0.5, 10).perturb_stream(stream, rng)
        assert result.inputs.min() >= 0.0
        assert result.inputs.max() <= 1.0

    def test_no_smoothing_by_default(self, smooth_stream, rng):
        result = IPP(1.0, 10).perturb_stream(smooth_stream, rng)
        np.testing.assert_array_equal(result.published, result.perturbed)

    def test_budget_charged_per_slot(self, smooth_stream, rng):
        result = IPP(1.0, 10).perturb_stream(smooth_stream, rng)
        assert result.epsilon_per_slot == pytest.approx(0.1)
        assert result.accountant.max_window_spend() == pytest.approx(1.0)

    def test_accumulated_deviation_is_last(self, smooth_stream, rng):
        result = IPP(1.0, 10).perturb_stream(smooth_stream, rng)
        assert result.accumulated_deviation == pytest.approx(result.deviations[-1])

    def test_rejects_values_outside_unit_interval(self, rng):
        with pytest.raises(ValueError):
            IPP(1.0, 10).perturb_stream(np.array([0.5, 1.2]), rng)

    def test_deterministic_given_seed(self, smooth_stream):
        a = IPP(1.0, 10).perturb_stream(smooth_stream, np.random.default_rng(3))
        b = IPP(1.0, 10).perturb_stream(smooth_stream, np.random.default_rng(3))
        np.testing.assert_array_equal(a.perturbed, b.perturbed)


class TestAPP:
    def test_accumulated_deviation_is_sum(self, smooth_stream, rng):
        result = APP(1.0, 10).perturb_stream(smooth_stream, rng)
        assert result.accumulated_deviation == pytest.approx(
            result.deviations.sum()
        )

    def test_input_recurrence_uses_running_sum(self, smooth_stream, rng):
        result = APP(1.0, 10).perturb_stream(smooth_stream, rng)
        running = 0.0
        for t in range(len(result)):
            expected = np.clip(result.original[t] + running, 0.0, 1.0)
            assert result.inputs[t] == pytest.approx(expected)
            running += result.deviations[t]

    def test_published_is_smoothed_by_default(self, smooth_stream, rng):
        result = APP(1.0, 10).perturb_stream(smooth_stream, rng)
        # Window 3: interior points are 3-point averages of the reports.
        t = 50
        expected = result.perturbed[t - 1 : t + 2].mean()
        assert result.published[t] == pytest.approx(expected)

    def test_smoothing_disable(self, smooth_stream, rng):
        result = APP(1.0, 10, smoothing_window=None).perturb_stream(
            smooth_stream, rng
        )
        np.testing.assert_array_equal(result.published, result.perturbed)

    def test_rejects_even_smoothing_window(self):
        with pytest.raises(ValueError, match="odd"):
            APP(1.0, 10, smoothing_window=4)

    def test_running_sum_tracks_total(self, rng):
        # The dual-utilization invariant: sum of reports tracks sum of true
        # values because each input folds in the accumulated deficit.
        stream = np.full(400, 0.5)
        result = APP(2.0, 10).perturb_stream(stream, rng)
        total_error = abs(result.perturbed.sum() - stream.sum())
        # The residual is bounded by the final step's deviation magnitude
        # (plus clipping slack), not growing with n.
        assert total_error < 5.0

    def test_alternative_mechanism(self, smooth_stream, rng):
        result = APP(1.0, 10, mechanism="laplace").perturb_stream(
            smooth_stream, rng
        )
        assert len(result) == smooth_stream.size

    def test_mechanism_class_accepted(self, smooth_stream, rng):
        result = APP(1.0, 10, mechanism=LaplaceMechanism).perturb_stream(
            smooth_stream, rng
        )
        assert len(result) == smooth_stream.size

    def test_mean_estimate_definition(self, smooth_stream, rng):
        result = APP(1.0, 10).perturb_stream(smooth_stream, rng)
        assert result.mean_estimate() == pytest.approx(result.perturbed.mean())
        assert result.published_mean() == pytest.approx(result.published.mean())


class TestAPPvsDirectStatistical:
    def test_app_mean_error_beats_direct_on_long_stream(self, rng):
        # Lemma IV.2's practical consequence: APP's running-mean error is
        # far below direct SW at the same budget.  Statistical test with a
        # fixed seed and generous margin.
        from repro.baselines import SWDirect

        stream = np.clip(0.5 + 0.4 * np.sin(np.arange(600) / 30.0), 0, 1)
        app_errors, direct_errors = [], []
        for rep in range(10):
            local = np.random.default_rng(100 + rep)
            app = APP(1.0, 20).perturb_stream(stream, local)
            direct = SWDirect(1.0, 20).perturb_stream(stream, local)
            app_errors.append((app.mean_estimate() - stream.mean()) ** 2)
            direct_errors.append((direct.mean_estimate() - stream.mean()) ** 2)
        assert np.mean(app_errors) < np.mean(direct_errors)
