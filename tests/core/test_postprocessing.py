"""Tests for the extended collector-side smoothers."""

import numpy as np
import pytest

from repro.core import (
    KalmanSmoother,
    exponential_smoothing,
    observation_variance_for,
    simple_moving_average,
)
from repro.mechanisms import SquareWaveMechanism


class TestExponentialSmoothing:
    def test_alpha_one_is_identity(self, rng):
        arr = rng.random(20)
        np.testing.assert_array_equal(exponential_smoothing(arr, 1.0), arr)

    def test_recurrence(self):
        arr = np.array([0.0, 1.0, 1.0])
        out = exponential_smoothing(arr, 0.5)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(0.75)

    def test_constant_fixed_point(self):
        arr = np.full(15, 0.4)
        np.testing.assert_allclose(exponential_smoothing(arr, 0.3), arr)

    def test_reduces_noise_variance(self, rng):
        noise = rng.normal(0.5, 1.0, size=20_000)
        smoothed = exponential_smoothing(noise, 0.2)
        assert smoothed[100:].var() < noise.var() / 3

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.1])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ValueError):
            exponential_smoothing(np.ones(5), alpha)


class TestObservationVariance:
    def test_matches_mechanism(self):
        eps = 0.2
        expected = float(SquareWaveMechanism(eps).output_variance(0.5))
        assert observation_variance_for(eps) == pytest.approx(expected)


class TestKalmanSmoother:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KalmanSmoother(observation_var=0.0)
        with pytest.raises(ValueError):
            KalmanSmoother(observation_var=0.1, process_var=0.0)
        with pytest.raises(ValueError):
            KalmanSmoother(observation_var=0.1, initial_var=0.0)

    def test_filter_shapes(self, rng):
        smoother = KalmanSmoother(observation_var=0.1)
        means, variances = smoother.filter(rng.random(25))
        assert means.size == 25
        assert variances.size == 25
        assert np.all(variances > 0)

    def test_filter_variance_converges(self, rng):
        smoother = KalmanSmoother(observation_var=0.1, process_var=1e-3)
        _, variances = smoother.filter(rng.random(300))
        # Steady-state: the last variances are (nearly) equal.
        assert variances[-1] == pytest.approx(variances[-2], rel=1e-3)

    def test_constant_signal_recovered(self, rng):
        truth = 0.3
        observations = truth + rng.normal(0, 0.3, size=400)
        smoother = KalmanSmoother(observation_var=0.09, process_var=1e-5)
        means, _ = smoother.filter(observations)
        assert means[-1] == pytest.approx(truth, abs=0.05)

    def test_smooth_beats_filter_mid_series(self, rng):
        # RTS smoothing uses future data, so it tracks a drifting level
        # better than the causal filter in the interior.
        steps = rng.normal(0, 0.02, size=300)
        truth = 0.5 + np.cumsum(steps)
        observations = truth + rng.normal(0, 0.3, size=300)
        smoother = KalmanSmoother(observation_var=0.09, process_var=4e-4)
        filtered, _ = smoother.filter(observations)
        smoothed = smoother.smooth(observations)
        mid = slice(50, 250)
        err_filter = np.mean((filtered[mid] - truth[mid]) ** 2)
        err_smooth = np.mean((smoothed[mid] - truth[mid]) ** 2)
        assert err_smooth < err_filter

    def test_single_observation(self):
        smoother = KalmanSmoother(observation_var=0.1)
        out = smoother.smooth(np.array([0.7]))
        assert out.size == 1

    def test_for_mechanism_constructor(self):
        mech = SquareWaveMechanism(0.5)
        smoother = KalmanSmoother.for_mechanism(mech)
        assert smoother.observation_var == pytest.approx(
            float(mech.output_variance(0.5))
        )

    def test_kalman_beats_sma_on_sw_noise(self):
        # End-to-end: published APP reports smoothed with the variance-
        # informed Kalman smoother beat the paper's window-3 SMA.
        from repro.core import APP

        truth = np.clip(0.5 + 0.3 * np.sin(np.arange(200) / 20.0), 0, 1)
        kalman_err, sma_err = [], []
        for rep in range(10):
            rng = np.random.default_rng(3000 + rep)
            result = APP(2.0, 10, smoothing_window=None).perturb_stream(truth, rng)
            smoother = KalmanSmoother(
                observation_var=observation_variance_for(0.2), process_var=5e-4
            )
            kalman = smoother.smooth(result.perturbed)
            sma = simple_moving_average(result.perturbed, 3)
            kalman_err.append(np.mean((kalman - truth) ** 2))
            sma_err.append(np.mean((sma - truth) ** 2))
        assert np.mean(kalman_err) < np.mean(sma_err)
