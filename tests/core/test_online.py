"""Tests for the online (push-style) perturbers and incremental smoother."""

import numpy as np
import pytest

from repro.baselines import SWDirect
from repro.core import (
    APP,
    CAPP,
    IPP,
    OnlineAPP,
    OnlineCAPP,
    OnlineIPP,
    OnlineSmoother,
    OnlineSWDirect,
    simple_moving_average,
)


BATCH_ONLINE_PAIRS = [
    (IPP, OnlineIPP),
    (APP, OnlineAPP),
    (CAPP, OnlineCAPP),
]


class TestBatchEquivalence:
    # SWDirect perturbs the whole stream in one vectorized call, so its
    # randomness consumption order differs from per-slot submission; it is
    # checked distributionally below instead of bit-for-bit.
    @pytest.mark.parametrize("batch_cls,online_cls", BATCH_ONLINE_PAIRS)
    def test_bit_identical_to_batch(self, batch_cls, online_cls, smooth_stream):
        batch_kwargs = {}
        if batch_cls in (APP, CAPP):
            batch_kwargs["smoothing_window"] = None
        batch = batch_cls(1.0, 10, **batch_kwargs).perturb_stream(
            smooth_stream, np.random.default_rng(11)
        )
        online = online_cls(1.0, 10, np.random.default_rng(11))
        reports = online.submit_many(smooth_stream)
        np.testing.assert_array_equal(batch.perturbed, reports)

    def test_sw_direct_distributionally_equivalent(self):
        stream = np.full(4_000, 0.4)
        batch = SWDirect(1.0, 10).perturb_stream(stream, np.random.default_rng(1))
        online = OnlineSWDirect(1.0, 10, np.random.default_rng(2))
        reports = online.submit_many(stream)
        assert reports.mean() == pytest.approx(batch.perturbed.mean(), abs=0.02)
        assert reports.var() == pytest.approx(batch.perturbed.var(), rel=0.1)


class TestSubmit:
    def test_slot_counter(self, rng):
        online = OnlineAPP(1.0, 5, rng)
        for i in range(7):
            online.submit(0.5)
        assert online.slots_processed == 7

    def test_accountant_charged_per_slot(self, rng):
        online = OnlineCAPP(1.0, 5, rng)
        for _ in range(12):
            online.submit(0.3)
        online.accountant.assert_valid()
        assert online.accountant.max_window_spend() == pytest.approx(1.0)

    def test_infinite_stream_rate_sustainable(self, rng):
        # Budget never violated at eps/w per slot, arbitrarily long.
        online = OnlineSWDirect(0.5, 3, rng)
        for _ in range(500):
            online.submit(0.9)
        online.accountant.assert_valid()

    def test_rejects_out_of_range(self, rng):
        online = OnlineIPP(1.0, 5, rng)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            online.submit(1.5)

    def test_rejects_nan(self, rng):
        online = OnlineIPP(1.0, 5, rng)
        with pytest.raises(ValueError, match="finite"):
            online.submit(float("nan"))

    def test_app_state_visible(self, rng):
        online = OnlineAPP(1.0, 5, rng)
        online.submit(0.2)
        assert np.isfinite(online.accumulated_deviation)

    def test_capp_custom_bounds(self, rng):
        from repro.core.clipping import ClipBounds

        bounds = ClipBounds(low=-0.1, high=1.1, delta=0.1)
        online = OnlineCAPP(1.0, 5, rng, clip_bounds=bounds)
        assert online.clip_bounds is bounds
        online.submit(0.5)


class TestOnlineSmoother:
    def test_matches_batch_sma(self, rng):
        series = rng.random(37)
        for window in (1, 3, 5, 9):
            smoother = OnlineSmoother(window)
            out = []
            for v in series:
                out.extend(smoother.push(v))
            out.extend(smoother.flush())
            np.testing.assert_allclose(
                out, simple_moving_average(series, window), atol=1e-12
            )

    def test_emission_latency_is_k(self):
        smoother = OnlineSmoother(5)  # k = 2
        assert smoother.push(1.0) == []
        assert smoother.push(2.0) == []
        first = smoother.push(3.0)
        assert len(first) == 1
        assert first[0] == pytest.approx(2.0)  # boundary average of [1,2,3]

    def test_flush_emits_remaining(self):
        smoother = OnlineSmoother(3)
        smoother.push(0.0)
        out = smoother.flush()
        assert out == [0.0]

    def test_short_series(self, rng):
        series = rng.random(2)
        smoother = OnlineSmoother(7)
        out = []
        for v in series:
            out.extend(smoother.push(v))
        out.extend(smoother.flush())
        np.testing.assert_allclose(out, simple_moving_average(series, 7))

    def test_memory_bounded(self, rng):
        smoother = OnlineSmoother(5)
        for v in rng.random(10_000):
            smoother.push(v)
        # Buffer holds at most window + k items regardless of stream length.
        assert len(smoother._buffer) <= 8

    def test_rejects_even_window(self):
        with pytest.raises(ValueError, match="odd"):
            OnlineSmoother(4)
