"""Tests for mechanism-generic clip-bound selection."""

import numpy as np
import pytest

from repro.core import (
    CAPP,
    adaptive_clip_objective,
    choose_adaptive_clip_bounds,
    noise_error,
    tail_discarding_error,
)
from repro.mechanisms import LaplaceMechanism, SquareWaveMechanism


class TestNoiseError:
    def test_scales_with_width(self):
        mech = SquareWaveMechanism(1.0)
        assert noise_error(mech, 0.5) == pytest.approx(2.0 * noise_error(mech, 0.0))

    def test_collapsed_range_rejected(self):
        with pytest.raises(ValueError, match="collapses"):
            noise_error(SquareWaveMechanism(1.0), -0.5)

    def test_larger_for_noisier_mechanism(self):
        sw = SquareWaveMechanism(0.5)
        laplace = LaplaceMechanism(0.5)
        assert noise_error(laplace, 0.0) > noise_error(sw, 0.0)


class TestTailDiscardingError:
    def test_decreases_with_delta(self):
        mech = SquareWaveMechanism(0.5)
        values = [tail_discarding_error(mech, d) for d in (0.0, 0.2, 0.5, 1.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_negative_delta_pays_narrowing_penalty(self):
        mech = SquareWaveMechanism(0.5)
        assert tail_discarding_error(mech, -0.2) > tail_discarding_error(mech, 0.0)

    def test_nonnegative(self):
        mech = SquareWaveMechanism(2.0)
        for delta in (-0.3, 0.0, 0.5, 2.0):
            assert tail_discarding_error(mech, delta) >= 0.0

    def test_gaussian_tail_monte_carlo(self, rng):
        # E[(|Z| - delta)_+] for Z ~ N(0, sigma_D) matches simulation.
        mech = SquareWaveMechanism(1.0)
        sigma = float(np.sqrt(mech.output_variance(1.0)))
        delta = 0.3
        z = rng.normal(0.0, sigma, size=400_000)
        empirical = np.maximum(np.abs(z) - delta, 0.0).mean()
        assert tail_discarding_error(mech, delta) == pytest.approx(
            empirical, rel=0.02
        )


class TestChooseAdaptiveClipBounds:
    def test_sw_interior_optimum_in_recommended_band(self):
        # For SW at paper-like per-slot budgets the optimum lands inside
        # the paper's recommended delta band [-0.25, 0.25].
        for eps in (0.05, 0.1, 0.3):
            bounds = choose_adaptive_clip_bounds(eps, "sw")
            assert -0.25 <= bounds.delta <= 0.25

    @pytest.mark.parametrize("name", ["sw", "laplace", "pm", "sr", "hm"])
    def test_runs_for_every_mechanism(self, name):
        bounds = choose_adaptive_clip_bounds(0.2, name)
        assert bounds.width > 0.0

    def test_objective_consistent_with_choice(self):
        mech = SquareWaveMechanism(0.1)
        chosen = choose_adaptive_clip_bounds(0.1, "sw")
        grid = np.round(np.arange(-0.4, 1.0001, 0.05), 4)
        best = min(adaptive_clip_objective(mech, float(d)) for d in grid if 1 + 2 * d > 0)
        assert adaptive_clip_objective(mech, chosen.delta) == pytest.approx(best)

    def test_custom_grid(self):
        bounds = choose_adaptive_clip_bounds(0.1, "sw", deltas=[0.0, 0.1])
        assert bounds.delta in (0.0, 0.1)

    def test_empty_feasible_grid_rejected(self):
        with pytest.raises(ValueError, match="feasible"):
            choose_adaptive_clip_bounds(0.1, "sw", deltas=[-0.6])

    def test_usable_with_capp(self, smooth_stream, rng):
        bounds = choose_adaptive_clip_bounds(0.1, "sw")
        capp = CAPP(1.0, 10, clip_bounds=bounds)
        result = capp.perturb_stream(smooth_stream, rng)
        assert len(result) == smooth_stream.size
