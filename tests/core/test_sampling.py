"""Tests for PP-S: segmentation, budget concentration, n_s selection."""

import numpy as np
import pytest

from repro.core import (
    PPSampling,
    choose_num_samples,
    replicate_segments,
    segment_bounds,
    segment_means,
)
from repro.core.sampling import literal_gamma_budget
from repro.privacy import per_sample_budget


class TestSegmentBounds:
    def test_even_split(self):
        assert segment_bounds(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_remainder_goes_to_last_segment(self):
        # Paper footnote 1.
        bounds = segment_bounds(10, 3)
        assert bounds == [(0, 3), (3, 6), (6, 10)]

    def test_single_segment(self):
        assert segment_bounds(7, 1) == [(0, 7)]

    def test_each_slot_covered_exactly_once(self):
        for length, ns in [(10, 3), (17, 5), (100, 7)]:
            covered = []
            for lo, hi in segment_bounds(length, ns):
                covered.extend(range(lo, hi))
            assert covered == list(range(length))

    def test_too_many_segments_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            segment_bounds(3, 4)


class TestSegmentMeans:
    def test_values(self):
        values = np.array([0.0, 1.0, 0.0, 1.0, 1.0, 1.0])
        np.testing.assert_allclose(segment_means(values, 2), [1 / 3, 1.0])

    def test_single_segment_is_global_mean(self):
        values = np.linspace(0, 1, 11)
        assert segment_means(values, 1)[0] == pytest.approx(values.mean())

    def test_uneven_last_segment(self):
        values = np.array([0.0, 0.0, 1.0, 1.0, 1.0])
        np.testing.assert_allclose(segment_means(values, 2), [0.0, 1.0])


class TestReplicateSegments:
    def test_roundtrip_lengths(self):
        out = replicate_segments(np.array([0.1, 0.9]), 5, 2)
        np.testing.assert_allclose(out, [0.1, 0.1, 0.9, 0.9, 0.9])

    def test_report_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="reports"):
            replicate_segments(np.array([0.1]), 5, 2)


class TestChooseNumSamples:
    def test_returns_valid_count(self):
        ns = choose_num_samples(30, 10, 1.0)
        assert 1 <= ns <= 30

    def test_short_interval(self):
        assert choose_num_samples(1, 10, 1.0) == 1

    def test_deterministic(self):
        assert choose_num_samples(40, 20, 2.0) == choose_num_samples(40, 20, 2.0)

    def test_literal_variance_variant_close(self):
        # The sigma^2-vs-sigma^4 typo must not swing the selection wildly.
        a = choose_num_samples(30, 10, 1.0)
        b = choose_num_samples(30, 10, 1.0, literal_variance=True)
        assert abs(a - b) <= max(a, b)  # both defined, sane

    def test_max_segments_cap(self):
        assert choose_num_samples(100, 10, 1.0, max_segments=5) <= 5


class TestLiteralGammaBudget:
    def test_listing_value(self):
        # len=30, ns=10 -> seg=3; gamma=min(3, 10)=3 -> eps/3.
        assert literal_gamma_budget(1.0, 10, 30, 10) == pytest.approx(1.0 / 3)

    def test_differs_from_theorem6_in_general(self):
        # Theorem 6 for the same configuration: n_w = ceil(10/3) = 4.
        literal = literal_gamma_budget(1.0, 10, 30, 10)
        theorem = per_sample_budget(1.0, 10, 3)
        assert theorem == pytest.approx(0.25)
        assert literal != pytest.approx(theorem)

    def test_zero_segment_rejected(self):
        with pytest.raises(ValueError):
            literal_gamma_budget(1.0, 10, 3, 4)


class TestPPSampling:
    def test_result_structure(self, smooth_stream, rng):
        pps = PPSampling(1.0, 10, base="app", n_samples=6)
        result = pps.perturb_stream(smooth_stream, rng)
        assert result.n_samples == 6
        assert result.segment_means.size == 6
        assert result.segment_reports.size == 6
        assert result.perturbed.size == smooth_stream.size
        assert result.published.size == smooth_stream.size

    def test_replication_structure(self, smooth_stream, rng):
        result = PPSampling(1.0, 10, base="capp", n_samples=4).perturb_stream(
            smooth_stream, rng
        )
        for (lo, hi), report in zip(
            segment_bounds(smooth_stream.size, 4), result.segment_reports
        ):
            np.testing.assert_allclose(result.perturbed[lo:hi], report)

    def test_budget_concentration(self, smooth_stream, rng):
        # Segment length 120/6=20 >= w=10 -> one upload per window -> full
        # budget per upload.
        result = PPSampling(1.0, 10, base="app", n_samples=6).perturb_stream(
            smooth_stream, rng
        )
        assert result.epsilon_per_sample == pytest.approx(1.0)

    def test_partial_concentration(self, smooth_stream, rng):
        # Segment length 120/30=4 < w=10 -> n_w = ceil(10/4) = 3.
        result = PPSampling(1.0, 10, base="app", n_samples=30).perturb_stream(
            smooth_stream, rng
        )
        assert result.epsilon_per_sample == pytest.approx(1.0 / 3.0)

    def test_slot_accountant_valid(self, smooth_stream, rng):
        result = PPSampling(1.0, 10, base="capp", n_samples=12).perturb_stream(
            smooth_stream, rng
        )
        result.accountant.assert_valid()
        assert result.accountant.max_window_spend() <= 1.0 + 1e-9

    def test_auto_num_samples(self, smooth_stream, rng):
        result = PPSampling(1.0, 10, base="app").perturb_stream(
            smooth_stream, rng
        )
        assert 1 <= result.n_samples <= smooth_stream.size

    def test_base_class_accepted(self, smooth_stream, rng):
        from repro.baselines import SWDirect

        result = PPSampling(1.0, 10, base=SWDirect, n_samples=4).perturb_stream(
            smooth_stream, rng
        )
        assert result.n_samples == 4

    def test_unknown_base_rejected(self):
        with pytest.raises(KeyError, match="unknown base"):
            PPSampling(1.0, 10, base="nope")

    def test_bad_base_type_rejected(self):
        with pytest.raises(TypeError):
            PPSampling(1.0, 10, base=42)

    def test_mean_estimate_weighted_by_segment_length(self, rng):
        stream = np.concatenate([np.zeros(10), np.ones(5)])
        result = PPSampling(1.0, 5, base="app", n_samples=3).perturb_stream(
            stream, rng
        )
        # perturbed replicates reports over true segment lengths, so the
        # estimate equals the full-length mean of the replicated stream.
        assert result.mean_estimate() == pytest.approx(result.perturbed.mean())

    def test_sampling_beats_direct_for_mean_small_budget(self):
        # The Fig. 6 regime where sampling provably helps: at tiny
        # per-slot budgets SW shrinks every report toward the domain
        # centre 0.5, so a stream whose mean sits far from 0.5 gives
        # direct reporting a large squared bias; concentrating budget on
        # segment means (larger eps per upload, less shrinkage) wins.
        from repro.baselines import SWDirect

        # seg_len = 10 = w gives n_w = 1, i.e. the full budget per upload
        # (the Fig. 3 situation); direct reporting runs at eps / w.
        stream = np.full(40, 0.1)
        pps_err, direct_err = [], []
        for rep in range(30):
            local = np.random.default_rng(200 + rep)
            pps = PPSampling(2.0, 10, base="app", n_samples=4).perturb_stream(
                stream, local
            )
            direct = SWDirect(2.0, 10).perturb_stream(stream, local)
            pps_err.append((pps.mean_estimate() - stream.mean()) ** 2)
            direct_err.append((direct.mean_estimate() - stream.mean()) ** 2)
        assert np.mean(pps_err) < np.mean(direct_err)
