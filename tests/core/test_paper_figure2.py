"""Paper-fidelity test: IPP's Figure-2 worked example, step by step.

The paper walks IPP through a concrete 5-slot stream.  We replay it with
a mechanism stub that returns exactly the perturbed values the figure
shows, and assert IPP computes the same inputs and deviations:

    original x_t   : 0.01  0.15  0.16  0.17  0.18
    input x^I_t    : 0.01  0.16  0.12  0.18  0.20
    perturbed x'_t : 0.00  0.19  0.15  0.15  0.25
    deviation d_t  : +0.01 -0.04 +0.01 +0.02 -0.07
"""

import numpy as np
import pytest

from repro.core import APP, IPP
from repro.mechanisms.base import Mechanism, OutputDomain

ORIGINAL = np.array([0.01, 0.15, 0.16, 0.17, 0.18])
EXPECTED_INPUTS = np.array([0.01, 0.16, 0.12, 0.18, 0.20])
SCRIPTED_OUTPUTS = [0.00, 0.19, 0.15, 0.15, 0.25]
EXPECTED_DEVIATIONS = np.array([0.01, -0.04, 0.01, 0.02, -0.07])


class ScriptedMechanism(Mechanism):
    """Returns a predetermined output sequence (test double)."""

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        self._outputs = list(SCRIPTED_OUTPUTS)
        self.seen_inputs = []

    @property
    def output_domain(self) -> OutputDomain:
        return OutputDomain(low=-0.5, high=1.5)

    def perturb(self, values, rng=None):
        arr, _ = self._prepare(values, rng)
        self.seen_inputs.append(float(arr))
        return np.asarray(self._outputs.pop(0))

    def expected_output(self, x):
        return np.asarray(x, dtype=float)

    def output_variance(self, x):
        return np.zeros_like(np.asarray(x, dtype=float))


class TestFigure2Walkthrough:
    def _run_ipp(self):
        ipp = IPP(1.0, 5)
        mech = ScriptedMechanism(ipp.epsilon_per_slot)
        ipp._make_mechanism = lambda: mech
        result = ipp.perturb_stream(ORIGINAL)
        return result, mech

    def test_inputs_match_figure(self):
        result, mech = self._run_ipp()
        np.testing.assert_allclose(result.inputs, EXPECTED_INPUTS, atol=1e-12)
        np.testing.assert_allclose(mech.seen_inputs, EXPECTED_INPUTS, atol=1e-12)

    def test_deviations_match_figure(self):
        result, _ = self._run_ipp()
        np.testing.assert_allclose(
            result.deviations, EXPECTED_DEVIATIONS, atol=1e-12
        )

    def test_perturbed_match_figure(self):
        result, _ = self._run_ipp()
        np.testing.assert_allclose(result.perturbed, SCRIPTED_OUTPUTS, atol=1e-12)

    def test_app_differs_from_ipp_on_same_script(self):
        # APP accumulates ALL deviations: its third input differs from
        # IPP's (0.16 + 0.01 - 0.04 = 0.13, not 0.12).
        app = APP(1.0, 5, smoothing_window=None)
        mech = ScriptedMechanism(app.epsilon_per_slot)
        app._make_mechanism = lambda: mech
        result = app.perturb_stream(ORIGINAL)
        assert result.inputs[2] == pytest.approx(0.16 + 0.01 - 0.04)
