"""Tests for the CAPP algorithm (clip/normalize/denormalize pipeline)."""

import numpy as np
import pytest

from repro.core import CAPP, choose_clip_bounds
from repro.core.clipping import ClipBounds


class TestConstruction:
    def test_auto_bounds_from_budget(self):
        capp = CAPP(1.0, 10)
        expected = choose_clip_bounds(0.1)
        assert capp.clip_bounds.low == pytest.approx(expected.low)
        assert capp.clip_bounds.high == pytest.approx(expected.high)

    def test_explicit_tuple_bounds(self):
        capp = CAPP(1.0, 10, clip_bounds=(-0.2, 1.2))
        assert capp.clip_bounds.low == pytest.approx(-0.2)
        assert capp.clip_bounds.high == pytest.approx(1.2)
        assert capp.clip_bounds.delta == pytest.approx(0.2)

    def test_explicit_clipbounds_object(self):
        bounds = ClipBounds(low=-0.1, high=1.1, delta=0.1)
        capp = CAPP(1.0, 10, clip_bounds=bounds)
        assert capp.clip_bounds is bounds

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            CAPP(1.0, 10, clip_bounds=(1.0, 0.0))

    def test_delta_clamp_none_uses_raw_equation(self):
        clamped = CAPP(1.0, 10).clip_bounds.delta
        raw = CAPP(1.0, 10, delta_clamp=None).clip_bounds.delta
        # At eps/w = 0.1 the raw delta exceeds the default clamp.
        assert raw != pytest.approx(clamped) or abs(raw) <= 0.25


class TestPerturbation:
    def test_inputs_are_normalized(self, smooth_stream, rng):
        result = CAPP(1.0, 10).perturb_stream(smooth_stream, rng)
        assert result.inputs.min() >= 0.0
        assert result.inputs.max() <= 1.0

    def test_reports_within_denormalized_domain(self, smooth_stream, rng):
        capp = CAPP(1.0, 10)
        result = capp.perturb_stream(smooth_stream, rng)
        low, high = capp.clip_bounds.low, capp.clip_bounds.high
        width = capp.clip_bounds.width
        # SW outputs live in [-b, 1+b] normalized -> denormalized range.
        from repro.mechanisms import SquareWaveMechanism

        b = SquareWaveMechanism(capp.epsilon_per_slot).b
        assert result.perturbed.min() >= low - b * width - 1e-9
        assert result.perturbed.max() <= high + b * width + 1e-9

    def test_deviation_accumulation(self, smooth_stream, rng):
        result = CAPP(1.0, 10).perturb_stream(smooth_stream, rng)
        assert result.accumulated_deviation == pytest.approx(
            result.deviations.sum()
        )

    def test_published_smoothed_by_default(self, smooth_stream, rng):
        result = CAPP(1.0, 10).perturb_stream(smooth_stream, rng)
        t = 30
        assert result.published[t] == pytest.approx(
            result.perturbed[t - 1 : t + 2].mean()
        )

    def test_budget_accounting(self, smooth_stream, rng):
        result = CAPP(1.0, 10).perturb_stream(smooth_stream, rng)
        assert result.accountant.max_window_spend() == pytest.approx(1.0)

    def test_clip_normalize_roundtrip(self, rng):
        # With a noiseless mechanism the pipeline would be the identity on
        # values inside [l, u]; verify the affine maps by reconstructing
        # the normalized input from the recorded report.
        capp = CAPP(2.0, 5, clip_bounds=(-0.25, 1.25))
        stream = np.linspace(0.1, 0.9, 40)
        result = capp.perturb_stream(stream, rng)
        width = capp.clip_bounds.width
        renormalized = (result.perturbed - capp.clip_bounds.low) / width
        # Each renormalized report must be a legal SW output.
        from repro.mechanisms import SquareWaveMechanism

        b = SquareWaveMechanism(capp.epsilon_per_slot).b
        assert renormalized.min() >= -b - 1e-9
        assert renormalized.max() <= 1 + b + 1e-9

    def test_wider_bounds_mean_more_noise(self, rng):
        # Sensitivity trade-off: a much wider clip range produces a larger
        # report spread at the same budget.
        stream = np.full(600, 0.5)
        narrow = CAPP(1.0, 10, clip_bounds=(-0.05, 1.05)).perturb_stream(
            stream, np.random.default_rng(0)
        )
        wide = CAPP(1.0, 10, clip_bounds=(-2.0, 3.0)).perturb_stream(
            stream, np.random.default_rng(0)
        )
        assert wide.perturbed.std() > narrow.perturbed.std()

    def test_deterministic_given_seed(self, smooth_stream):
        a = CAPP(1.0, 10).perturb_stream(smooth_stream, np.random.default_rng(5))
        b = CAPP(1.0, 10).perturb_stream(smooth_stream, np.random.default_rng(5))
        np.testing.assert_array_equal(a.perturbed, b.perturbed)
