"""Tests for SMA post-processing (Lemma IV.1)."""

import numpy as np
import pytest

from repro.core import (
    simple_moving_average,
    simple_moving_average_rows,
    smoothing_variance_reduction,
)


class TestSimpleMovingAverage:
    def test_window_one_is_identity(self):
        x = np.array([0.1, 0.5, 0.9])
        np.testing.assert_array_equal(simple_moving_average(x, 1), x)

    def test_interior_average(self):
        x = np.array([0.0, 3.0, 6.0, 9.0, 12.0])
        out = simple_moving_average(x, 3)
        assert out[2] == pytest.approx((3.0 + 6.0 + 9.0) / 3)

    def test_boundary_shrinks_window(self):
        # Paper: "when dealing with boundary windows ... simply average
        # the available values".
        x = np.array([0.0, 3.0, 6.0, 9.0, 12.0])
        out = simple_moving_average(x, 3)
        assert out[0] == pytest.approx((0.0 + 3.0) / 2)
        assert out[-1] == pytest.approx((9.0 + 12.0) / 2)

    def test_constant_stream_unchanged(self):
        x = np.full(20, 0.4)
        np.testing.assert_allclose(simple_moving_average(x, 5), x)

    def test_preserves_length(self):
        x = np.arange(11, dtype=float)
        assert simple_moving_average(x, 5).size == 11

    def test_matches_naive_implementation(self, rng):
        x = rng.random(50)
        k = 2
        naive = np.array(
            [x[max(0, t - k) : min(50, t + k + 1)].mean() for t in range(50)]
        )
        np.testing.assert_allclose(simple_moving_average(x, 2 * k + 1), naive)

    def test_reduces_noise_variance(self, rng):
        # Lemma IV.1: Var(smoothed) < Var(raw) for i.i.d. noise.
        noise = rng.normal(0, 1, size=10_000)
        smoothed = simple_moving_average(noise, 5)
        assert smoothed.var() < noise.var() / 3  # ~1/5 at interior points

    def test_approximately_mean_preserving(self, rng):
        # "Smoothing has no impact on the mean of the results" (up to
        # boundary effects).
        x = rng.random(500)
        assert simple_moving_average(x, 3).mean() == pytest.approx(
            x.mean(), abs=0.01
        )

    def test_rejects_even_window(self):
        with pytest.raises(ValueError, match="odd"):
            simple_moving_average(np.ones(5), 2)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            simple_moving_average(np.ones(5), 0)

    def test_single_element_stream(self):
        out = simple_moving_average(np.array([0.7]), 3)
        assert out.tolist() == [0.7]

    def test_window_larger_than_stream(self):
        x = np.array([0.0, 1.0])
        out = simple_moving_average(x, 5)
        # Every position averages all available values.
        np.testing.assert_allclose(out, [0.5, 0.5])


class TestSimpleMovingAverageRows:
    def test_matches_per_row_smoothing(self):
        matrix = np.random.default_rng(0).random((13, 27))
        rows = simple_moving_average_rows(matrix, 5)
        expected = np.stack([simple_moving_average(row, 5) for row in matrix])
        np.testing.assert_allclose(rows, expected)

    def test_window_one_is_identity(self):
        matrix = np.random.default_rng(1).random((3, 4))
        np.testing.assert_array_equal(simple_moving_average_rows(matrix, 1), matrix)

    def test_rejects_non_matrix_and_even_window(self):
        with pytest.raises(ValueError):
            simple_moving_average_rows(np.zeros(5), 3)
        with pytest.raises(ValueError):
            simple_moving_average_rows(np.zeros((2, 5)), 4)


class TestVarianceReduction:
    def test_factor(self):
        assert smoothing_variance_reduction(5) == pytest.approx(0.2)

    def test_rejects_even(self):
        with pytest.raises(ValueError):
            smoothing_variance_reduction(4)

    def test_empirical_agreement(self, rng):
        window = 7
        noise = rng.normal(0, 1, size=50_000)
        smoothed = simple_moving_average(noise, window)
        interior = smoothed[window : -window]
        assert interior.var() == pytest.approx(
            smoothing_variance_reduction(window), rel=0.1
        )
