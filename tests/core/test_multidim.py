"""Tests for Budget-Split and Sample-Split multi-dimensional strategies."""

import numpy as np
import pytest

from repro.baselines import SWDirect
from repro.core import APP, BudgetSplit, SampleSplit
from repro.datasets import sin_matrix


def _app_factory(epsilon, w):
    return APP(epsilon, w)


def _direct_factory(epsilon, w):
    return SWDirect(epsilon, w)


@pytest.fixture
def matrix():
    return sin_matrix(4, 60)


class TestBudgetSplit:
    def test_result_shapes(self, matrix, rng):
        run = BudgetSplit(_app_factory, epsilon=1.0, w=5).perturb_matrix(matrix, rng)
        assert run.original.shape == matrix.shape
        assert run.perturbed.shape == matrix.shape
        assert run.published.shape == matrix.shape
        assert run.n_dimensions == 4
        assert len(run.per_dimension) == 4

    def test_per_dimension_budget(self, matrix, rng):
        run = BudgetSplit(_app_factory, epsilon=1.0, w=5).perturb_matrix(matrix, rng)
        # Each dimension's perturber got eps/d total -> eps/(d*w) per slot.
        for result in run.per_dimension:
            assert result.epsilon_per_slot == pytest.approx(1.0 / (4 * 5))

    def test_accountant_within_total(self, matrix, rng):
        run = BudgetSplit(_app_factory, epsilon=1.0, w=5).perturb_matrix(matrix, rng)
        assert run.accountant.max_window_spend() <= 1.0 + 1e-9

    def test_mean_estimates_shape(self, matrix, rng):
        run = BudgetSplit(_direct_factory, epsilon=2.0, w=5).perturb_matrix(
            matrix, rng
        )
        assert run.mean_estimates().shape == (4,)

    def test_rejects_non_matrix(self, rng):
        with pytest.raises(ValueError, match="matrix"):
            BudgetSplit(_app_factory, 1.0, 5).perturb_matrix(np.zeros(10), rng)

    def test_rejects_out_of_range(self, rng):
        bad = np.full((2, 10), 1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            BudgetSplit(_app_factory, 1.0, 5).perturb_matrix(bad, rng)


class TestSampleSplit:
    def test_result_shapes(self, matrix, rng):
        run = SampleSplit(_app_factory, epsilon=1.0, w=8).perturb_matrix(matrix, rng)
        assert run.perturbed.shape == matrix.shape

    def test_round_robin_replication(self, matrix, rng):
        d = matrix.shape[0]
        run = SampleSplit(_direct_factory, epsilon=1.0, w=8).perturb_matrix(
            matrix, rng
        )
        # Between uploads the report is held constant: dim i uploads at
        # slots i, i+d, ...; slots in between repeat the last report.
        for i in range(d):
            for t in range(matrix.shape[1]):
                anchor = i if t < i else i + ((t - i) // d) * d
                assert run.perturbed[i, t] == run.perturbed[i, anchor]

    def test_per_upload_budget_is_eps_over_w(self, matrix, rng):
        run = SampleSplit(_app_factory, epsilon=1.0, w=8).perturb_matrix(matrix, rng)
        # d=4, w=8 -> inner window ceil(8/4)=2, inner eps = (1/8)*2 = 0.25;
        # per-slot = 0.125 = eps/w.
        for result in run.per_dimension:
            assert result.epsilon_per_slot == pytest.approx(1.0 / 8.0)

    def test_accountant_within_total(self, matrix, rng):
        run = SampleSplit(_app_factory, epsilon=1.0, w=8).perturb_matrix(matrix, rng)
        assert run.accountant.max_window_spend() <= 1.0 + 1e-9

    def test_rejects_more_dims_than_slots(self, rng):
        tall = np.full((10, 4), 0.5)
        with pytest.raises(ValueError, match="at least"):
            SampleSplit(_app_factory, 1.0, 5).perturb_matrix(tall, rng)


class TestStrategiesComparable:
    def test_bs_beats_ss_on_smooth_sinusoids(self):
        # Fig. 10's qualitative finding: BS outperforms SS because SS's
        # sparse uploads hurt more than the budget split.
        matrix = sin_matrix(5, 100)
        true_means = matrix.mean(axis=1)
        bs_err, ss_err = [], []
        for rep in range(8):
            local = np.random.default_rng(300 + rep)
            bs = BudgetSplit(_app_factory, 1.0, 10).perturb_matrix(matrix, local)
            ss = SampleSplit(_app_factory, 1.0, 10).perturb_matrix(matrix, local)
            bs_err.append(np.mean((bs.mean_estimates() - true_means) ** 2))
            ss_err.append(np.mean((ss.mean_estimates() - true_means) ** 2))
        # Allow statistical slack: BS should win on average.
        assert np.mean(bs_err) < 2.0 * np.mean(ss_err)
