"""Tests for StreamPerturber plumbing shared by all algorithms."""

import pytest

from repro.core import IPP, StreamPerturber
from repro.core.base import resolve_mechanism_class
from repro.mechanisms import (
    DuchiMechanism,
    LaplaceMechanism,
    SquareWaveMechanism,
)


class TestResolveMechanismClass:
    def test_none_defaults_to_sw(self):
        assert resolve_mechanism_class(None) is SquareWaveMechanism

    def test_name_lookup(self):
        assert resolve_mechanism_class("laplace") is LaplaceMechanism
        assert resolve_mechanism_class("SR") is DuchiMechanism

    def test_class_passthrough(self):
        assert resolve_mechanism_class(LaplaceMechanism) is LaplaceMechanism

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            resolve_mechanism_class("unknown")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_mechanism_class(3.14)

    def test_non_mechanism_class(self):
        with pytest.raises(TypeError):
            resolve_mechanism_class(dict)


class TestConstructorValidation:
    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            IPP(-1.0, 10)

    def test_window_validated(self):
        with pytest.raises(ValueError):
            IPP(1.0, 0)

    def test_per_slot_budget(self):
        assert IPP(2.0, 4).epsilon_per_slot == pytest.approx(0.5)

    def test_smoothing_window_must_be_odd(self):
        with pytest.raises(ValueError, match="odd"):
            IPP(1.0, 10, smoothing_window=2)

    def test_abstract_base_not_instantiable(self):
        with pytest.raises(TypeError):
            StreamPerturber(1.0, 10)


class TestPerturbStream:
    def test_original_is_copy(self, smooth_stream, rng):
        result = IPP(1.0, 10).perturb_stream(smooth_stream, rng)
        result.original[0] = 99.0
        assert smooth_stream[0] != 99.0

    def test_accountant_attached_and_valid(self, smooth_stream, rng):
        result = IPP(1.0, 10).perturb_stream(smooth_stream, rng)
        result.accountant.assert_valid()
        assert result.accountant.current_slot == smooth_stream.size - 1

    def test_default_rng_used_when_omitted(self, smooth_stream):
        result = IPP(1.0, 10).perturb_stream(smooth_stream)
        assert len(result) == smooth_stream.size

    def test_repr_mentions_class(self):
        assert "IPP" in repr(IPP(1.0, 10))
