"""Collector edge cases: sparse slots, gaps, Sample-Split-style reporting."""

import numpy as np
import pytest

from repro.protocol import Collector, Report


class TestSparseReporting:
    def test_users_reporting_different_slots(self):
        # Sample-Split style: user 0 reports even slots, user 1 odd slots.
        collector = Collector()
        for t in range(0, 10, 2):
            collector.ingest(Report(0, t, 0.2))
        for t in range(1, 10, 2):
            collector.ingest(Report(1, t, 0.8))
        assert collector.slots() == list(range(10))
        assert collector.population_mean(0) == pytest.approx(0.2)
        assert collector.population_mean(1) == pytest.approx(0.8)

    def test_user_series_skips_gaps(self):
        collector = Collector()
        collector.ingest(Report(0, 0, 0.1))
        collector.ingest(Report(0, 5, 0.9))
        np.testing.assert_allclose(collector.user_series(0), [0.1, 0.9])

    def test_subsequence_mean_over_gap(self):
        collector = Collector()
        collector.ingest(Report(0, 0, 0.2))
        collector.ingest(Report(0, 4, 0.4))
        # Only the observed slots inside the range count.
        assert collector.user_subsequence_mean(0, 0, 4) == pytest.approx(0.3)

    def test_subsequence_mean_no_reports_in_range(self):
        collector = Collector()
        collector.ingest(Report(0, 10, 0.5))
        with pytest.raises(KeyError, match="no reports in"):
            collector.user_subsequence_mean(0, 0, 5)

    def test_unknown_user_rejected(self):
        collector = Collector()
        collector.ingest(Report(0, 0, 0.5))
        with pytest.raises(KeyError, match="no reports from user"):
            collector.user_series(42)

    def test_out_of_order_ingestion_allowed(self):
        # Reports may arrive late/reordered (network reality); queries
        # still sort by slot.
        collector = Collector()
        collector.ingest(Report(0, 3, 0.3))
        collector.ingest(Report(0, 1, 0.1))
        collector.ingest(Report(0, 2, 0.2))
        np.testing.assert_allclose(collector.user_series(0), [0.1, 0.2, 0.3])


class TestPublication:
    def test_single_report_stream(self):
        collector = Collector(smoothing_window=3)
        collector.ingest(Report(0, 0, 0.7))
        np.testing.assert_allclose(collector.publish_user_stream(0), [0.7])

    def test_no_smoothing_configuration(self):
        collector = Collector(smoothing_window=None)
        for t in range(5):
            collector.ingest(Report(0, t, float(t) / 10))
        np.testing.assert_allclose(
            collector.publish_user_stream(0), [0.0, 0.1, 0.2, 0.3, 0.4]
        )

    def test_even_smoothing_window_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            Collector(smoothing_window=4)

    def test_crowd_estimates_sorted_by_user(self):
        collector = Collector()
        collector.ingest(Report(5, 0, 0.5))
        collector.ingest(Report(1, 0, 0.1))
        estimates = collector.crowd_mean_estimates(0, 0)
        np.testing.assert_allclose(estimates, [0.1, 0.5])  # user 1 first


class TestBatchIngest:
    def test_matches_per_report_ingest(self):
        values = np.random.default_rng(0).random(20)
        ids = np.arange(20)
        batched = Collector()
        batched.ingest_batch(0, ids, values)
        sequential = Collector()
        for uid, v in zip(ids, values):
            sequential.ingest(Report(int(uid), 0, float(v)))
        assert batched.n_reports == sequential.n_reports == 20
        assert batched.population_mean(0) == pytest.approx(
            sequential.population_mean(0)
        )
        for uid in ids:
            np.testing.assert_allclose(
                batched.user_series(int(uid)), sequential.user_series(int(uid))
            )

    def test_empty_batch_is_noop(self):
        collector = Collector()
        collector.ingest_batch(0, np.empty(0, dtype=int), np.empty(0))
        assert collector.n_reports == 0
        assert collector.slots() == []

    def test_duplicate_within_batch_rejected(self):
        collector = Collector()
        with pytest.raises(ValueError, match="duplicate user ids"):
            collector.ingest_batch(0, np.array([1, 1]), np.array([0.1, 0.2]))

    def test_duplicate_against_history_rejected_atomically(self):
        collector = Collector()
        collector.ingest(Report(2, 0, 0.5))
        with pytest.raises(ValueError, match="duplicate report for user 2"):
            collector.ingest_batch(0, np.array([1, 2]), np.array([0.1, 0.2]))
        # The rejected batch must leave no partial state behind.
        assert collector.n_reports == 1
        with pytest.raises(KeyError):
            collector.user_series(1)

    def test_validation(self):
        collector = Collector()
        with pytest.raises(ValueError, match="non-negative"):
            collector.ingest_batch(-1, np.array([0]), np.array([0.1]))
        with pytest.raises(ValueError, match="aligned"):
            collector.ingest_batch(0, np.array([0, 1]), np.array([0.1]))
        with pytest.raises(TypeError, match="integers"):
            collector.ingest_batch(0, np.array([0.5]), np.array([0.1]))
        with pytest.raises(ValueError, match="finite"):
            collector.ingest_batch(0, np.array([0]), np.array([np.nan]))
        with pytest.raises(ValueError, match="non-negative"):
            collector.ingest_batch(0, np.array([-1]), np.array([0.1]))
