"""Collector edge cases: sparse slots, gaps, Sample-Split-style reporting."""

import numpy as np
import pytest

from repro.protocol import Collector, Report


class TestSparseReporting:
    def test_users_reporting_different_slots(self):
        # Sample-Split style: user 0 reports even slots, user 1 odd slots.
        collector = Collector()
        for t in range(0, 10, 2):
            collector.ingest(Report(0, t, 0.2))
        for t in range(1, 10, 2):
            collector.ingest(Report(1, t, 0.8))
        assert collector.slots() == list(range(10))
        assert collector.population_mean(0) == pytest.approx(0.2)
        assert collector.population_mean(1) == pytest.approx(0.8)

    def test_user_series_skips_gaps(self):
        collector = Collector()
        collector.ingest(Report(0, 0, 0.1))
        collector.ingest(Report(0, 5, 0.9))
        np.testing.assert_allclose(collector.user_series(0), [0.1, 0.9])

    def test_subsequence_mean_over_gap(self):
        collector = Collector()
        collector.ingest(Report(0, 0, 0.2))
        collector.ingest(Report(0, 4, 0.4))
        # Only the observed slots inside the range count.
        assert collector.user_subsequence_mean(0, 0, 4) == pytest.approx(0.3)

    def test_subsequence_mean_no_reports_in_range(self):
        collector = Collector()
        collector.ingest(Report(0, 10, 0.5))
        with pytest.raises(KeyError, match="no reports in"):
            collector.user_subsequence_mean(0, 0, 5)

    def test_unknown_user_rejected(self):
        collector = Collector()
        collector.ingest(Report(0, 0, 0.5))
        with pytest.raises(KeyError, match="no reports from user"):
            collector.user_series(42)

    def test_out_of_order_ingestion_allowed(self):
        # Reports may arrive late/reordered (network reality); queries
        # still sort by slot.
        collector = Collector()
        collector.ingest(Report(0, 3, 0.3))
        collector.ingest(Report(0, 1, 0.1))
        collector.ingest(Report(0, 2, 0.2))
        np.testing.assert_allclose(collector.user_series(0), [0.1, 0.2, 0.3])


class TestPublication:
    def test_single_report_stream(self):
        collector = Collector(smoothing_window=3)
        collector.ingest(Report(0, 0, 0.7))
        np.testing.assert_allclose(collector.publish_user_stream(0), [0.7])

    def test_no_smoothing_configuration(self):
        collector = Collector(smoothing_window=None)
        for t in range(5):
            collector.ingest(Report(0, t, float(t) / 10))
        np.testing.assert_allclose(
            collector.publish_user_stream(0), [0.0, 0.1, 0.2, 0.3, 0.4]
        )

    def test_even_smoothing_window_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            Collector(smoothing_window=4)

    def test_crowd_estimates_sorted_by_user(self):
        collector = Collector()
        collector.ingest(Report(5, 0, 0.5))
        collector.ingest(Report(1, 0, 0.1))
        estimates = collector.crowd_mean_estimates(0, 0)
        np.testing.assert_allclose(estimates, [0.1, 0.5])  # user 1 first
