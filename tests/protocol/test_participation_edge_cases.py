"""Participation/dropout edge cases, exercised on both protocol paths.

Covers the regimes the paper's deployment story cares about: tiny
participation (most slots unobserved), slots every user skips, and
heterogeneous algorithm populations under dropout.
"""

import numpy as np
import pytest

from repro.protocol import run_protocol, run_protocol_vectorized

PATHS = [run_protocol, run_protocol_vectorized]
PATH_IDS = ["reference", "vectorized"]


def _streams(n_users=30, horizon=40, seed=0):
    return np.random.default_rng(seed).random((n_users, horizon))


@pytest.mark.parametrize("runner", PATHS, ids=PATH_IDS)
def test_tiny_participation_yields_sparse_slots(runner):
    streams = _streams()
    result = runner(
        streams, epsilon=2.0, w=5, participation=0.02,
        rng=np.random.default_rng(1),
    )
    # With p=0.02 over 30x40 trials we expect ~24 reports and many empty
    # slots; the collector must expose only observed slots.
    assert 0 < result.collector.n_reports < streams.size * 0.1
    observed = result.collector.slots()
    assert len(observed) < streams.shape[1]
    # MSE is still computable over the observed slots.
    assert np.isfinite(result.population_mean_mse())


@pytest.mark.parametrize("runner", PATHS, ids=PATH_IDS)
def test_all_users_skip_some_slots(runner):
    """Slots nobody reports must vanish from the collector, not crash it."""
    streams = _streams(n_users=4, horizon=60, seed=2)
    result = runner(
        streams, epsilon=2.0, w=5, participation=0.1,
        rng=np.random.default_rng(3),
    )
    observed = set(result.collector.slots())
    empty = set(range(streams.shape[1])) - observed
    assert empty, "with p=0.1 and 4 users some slots must be empty"
    for t in sorted(empty)[:3]:
        with pytest.raises(KeyError):
            result.collector.population_mean(t)


@pytest.mark.parametrize("runner", PATHS, ids=PATH_IDS)
def test_dropout_spends_no_budget(runner):
    streams = _streams(n_users=10, horizon=50, seed=4)
    epsilon, w = 1.0, 5
    result = runner(
        streams, epsilon=epsilon, w=w, participation=0.4,
        rng=np.random.default_rng(5),
    )
    per_slot = epsilon / w
    if runner is run_protocol:
        ledgers = [np.asarray(u.perturber.accountant._spends) for u in result.users]
    else:
        ledgers = [result.user_budget_spends(i) for i in range(10)]
    total_reports = result.collector.n_reports
    total_charged = sum(int(np.count_nonzero(ledger)) for ledger in ledgers)
    assert total_charged == total_reports
    for ledger in ledgers:
        assert set(np.round(ledger, 12)) <= {0.0, round(per_slot, 12)}


@pytest.mark.parametrize("runner", PATHS, ids=PATH_IDS)
def test_heterogeneous_algorithms_under_dropout(runner):
    streams = _streams(n_users=12, horizon=30, seed=6)
    algorithms = ["capp", "app", "ipp", "sw-direct"] * 3
    result = runner(
        streams, algorithm=algorithms, epsilon=2.0, w=5, participation=0.5,
        rng=np.random.default_rng(7),
    )
    assert 0 < result.collector.n_reports < streams.size
    assert np.isfinite(result.population_mean_mse())
    if runner is run_protocol_vectorized:
        for user_id, name in enumerate(algorithms):
            assert result.user_algorithm(user_id) == name


@pytest.mark.parametrize("runner", PATHS, ids=PATH_IDS)
def test_full_participation_reports_everything(runner):
    streams = _streams(n_users=6, horizon=10, seed=8)
    result = runner(streams, participation=1.0, rng=np.random.default_rng(9))
    assert result.collector.n_reports == streams.size
    assert result.collector.slots() == list(range(10))


@pytest.mark.parametrize("runner", PATHS, ids=PATH_IDS)
@pytest.mark.parametrize("participation", [-0.5, 0.0, 1.0001])
def test_invalid_participation_rejected(runner, participation):
    with pytest.raises(ValueError, match="participation"):
        runner(_streams(4, 5), participation=participation)
