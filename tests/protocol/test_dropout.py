"""Tests for dropout / skip support in the online API and protocol."""

import numpy as np
import pytest

from repro.core import OnlineAPP
from repro.protocol import UserAgent, run_protocol


class TestOnlineSkip:
    def test_skip_advances_slot_without_spend(self, rng):
        online = OnlineAPP(1.0, 5, rng)
        online.submit(0.5)
        online.skip()
        online.submit(0.5)
        assert online.slots_processed == 3
        assert online.accountant.slot_spend(1) == 0.0
        online.accountant.assert_valid()

    def test_skipping_preserves_state(self, rng):
        online = OnlineAPP(1.0, 5, rng)
        online.submit(0.5)
        before = online.accumulated_deviation
        online.skip()
        assert online.accumulated_deviation == before

    def test_all_skips_spend_nothing(self, rng):
        online = OnlineAPP(1.0, 5, rng)
        for _ in range(20):
            online.skip()
        assert online.accountant.max_window_spend() == 0.0


class TestUserAgentSkip:
    def test_skip_consumes_slot(self, smooth_stream, rng):
        agent = UserAgent(0, smooth_stream, epsilon=1.0, w=10, rng=rng)
        agent.skip()
        report = agent.step()
        assert report.t == 1  # slot 0 was skipped

    def test_skip_exhausted_raises(self, rng):
        agent = UserAgent(0, np.array([0.5]), epsilon=1.0, w=2, rng=rng)
        agent.skip()
        with pytest.raises(StopIteration):
            agent.skip()


class TestProtocolParticipation:
    def test_partial_participation_fewer_reports(self, rng):
        matrix = rng.random((10, 30))
        result = run_protocol(
            matrix, epsilon=1.0, w=5, participation=0.5, rng=rng
        )
        assert result.collector.n_reports < 10 * 30
        assert result.collector.n_reports > 10 * 30 * 0.2

    def test_full_participation_all_reports(self, rng):
        matrix = rng.random((5, 10))
        result = run_protocol(matrix, epsilon=1.0, w=5, participation=1.0, rng=rng)
        assert result.collector.n_reports == 50

    def test_ledgers_valid_under_dropout(self, rng):
        matrix = rng.random((8, 40))
        result = run_protocol(
            matrix, epsilon=1.0, w=5, participation=0.7, rng=rng
        )
        for user in result.users:
            user.perturber.accountant.assert_valid()

    def test_invalid_participation_rejected(self, rng):
        with pytest.raises(ValueError, match="participation"):
            run_protocol(rng.random((2, 5)), participation=0.0, rng=rng)

    def test_population_mean_still_estimable(self, rng):
        # population_mean_series only covers slots with >= 1 report; with
        # moderate dropout and enough users every slot is covered.
        matrix = np.full((30, 20), 0.5)
        result = run_protocol(
            matrix, algorithm="app", epsilon=5.0, w=2, participation=0.8, rng=rng
        )
        series = result.collector.population_mean_series()
        assert series.size == 20
