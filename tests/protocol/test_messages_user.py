"""Tests for protocol messages and the user agent."""

import numpy as np
import pytest

from repro.protocol import ONLINE_ALGORITHMS, Report, UserAgent


class TestReport:
    def test_fields(self):
        report = Report(user_id=3, t=7, value=0.42)
        assert report.user_id == 3
        assert report.t == 7
        assert report.value == 0.42

    def test_frozen(self):
        report = Report(0, 0, 0.5)
        with pytest.raises(AttributeError):
            report.value = 0.9

    def test_negative_user_rejected(self):
        with pytest.raises(ValueError):
            Report(-1, 0, 0.5)

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            Report(0, -1, 0.5)


class TestUserAgent:
    @pytest.mark.parametrize("name", sorted(ONLINE_ALGORITHMS))
    def test_every_algorithm(self, name, smooth_stream, rng):
        agent = UserAgent(1, smooth_stream, algorithm=name, epsilon=1.0, w=10, rng=rng)
        report = agent.step()
        assert report.user_id == 1
        assert report.t == 0

    def test_reports_iterate_whole_stream(self, smooth_stream, rng):
        agent = UserAgent(0, smooth_stream, epsilon=1.0, w=10, rng=rng)
        reports = list(agent.reports())
        assert len(reports) == smooth_stream.size
        assert [r.t for r in reports] == list(range(smooth_stream.size))
        assert agent.remaining == 0

    def test_exhausted_stream_raises(self, rng):
        agent = UserAgent(0, np.array([0.5]), epsilon=1.0, w=2, rng=rng)
        agent.step()
        with pytest.raises(StopIteration):
            agent.step()

    def test_true_value_local_only(self, rng):
        stream = np.array([0.1, 0.9])
        agent = UserAgent(0, stream, epsilon=1.0, w=2, rng=rng)
        assert agent.true_value(1) == 0.9

    def test_reports_are_sanitized(self, rng):
        # Reports never equal true values on a fine-grained stream except
        # with probability zero; check they differ somewhere.
        stream = np.full(50, 0.123456)
        agent = UserAgent(0, stream, algorithm="sw-direct", epsilon=1.0, w=10, rng=rng)
        values = [r.value for r in agent.reports()]
        assert any(abs(v - 0.123456) > 1e-9 for v in values)

    def test_custom_factory(self, smooth_stream, rng):
        from repro.core import OnlineAPP

        agent = UserAgent(
            5, smooth_stream, algorithm=lambda: OnlineAPP(2.0, 4, rng)
        )
        assert agent.perturber.w == 4

    def test_out_of_range_stream_rejected(self, rng):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            UserAgent(0, np.array([0.5, 1.5]), rng=rng)

    def test_unknown_algorithm_rejected(self, smooth_stream):
        with pytest.raises(KeyError, match="unknown online algorithm"):
            UserAgent(0, smooth_stream, algorithm="nope")

    def test_privacy_ledger_accessible(self, smooth_stream, rng):
        agent = UserAgent(0, smooth_stream, epsilon=1.0, w=10, rng=rng)
        list(agent.reports())
        agent.perturber.accountant.assert_valid()
