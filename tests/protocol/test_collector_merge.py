"""Merge algebra of CollectorShardState: the runtime's correctness core.

Shard states must form a commutative monoid under ``merge`` — counts and
the multiset of (user, slot, value) triples combine exactly, sums up to
float rounding — and merging shard states must be indistinguishable from
one collector ingesting every report itself, across every query type
(means, smoothing-backed publication, EM distribution reconstruction).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol import Collector, CollectorShardState, Report


def _ingest_rows(rows, **collector_kwargs):
    """Collector holding the given (user, t, value) reports."""
    collector = Collector(**collector_kwargs)
    for user, t, value in rows:
        collector.ingest(Report(user, t, value))
    return collector


def _random_rows(rng, n_users, horizon, density=0.7):
    rows = []
    for user in range(n_users):
        for t in range(horizon):
            if rng.random() < density:
                rows.append((user, t, float(rng.random())))
    return rows


def _partition(rows, n_parts):
    """Split rows by user id into disjoint shards."""
    parts = [[] for _ in range(n_parts)]
    for user, t, value in rows:
        parts[user % n_parts].append((user, t, value))
    return parts


class TestMergeAlgebra:
    def test_merge_equals_single_collector_ingestion(self):
        rng = np.random.default_rng(0)
        rows = _random_rows(rng, n_users=30, horizon=15)
        whole = _ingest_rows(rows, epsilon_per_report=0.5)
        merged = Collector(epsilon_per_report=0.5)
        for part in _partition(rows, 3):
            merged.merge_state(_ingest_rows(part, epsilon_per_report=0.5))

        assert merged.n_reports == whole.n_reports
        assert merged.n_users == whole.n_users
        assert merged.slots() == whole.slots()
        np.testing.assert_allclose(
            merged.population_mean_series(),
            whole.population_mean_series(),
            rtol=0,
            atol=1e-12,
        )
        # Per-user views are complete after the merge: publication
        # (smoothing included) matches the single collector exactly.
        for user in range(30):
            np.testing.assert_array_equal(
                merged.publish_user_stream(user), whole.publish_user_stream(user)
            )
        # EM distribution reconstruction sees the same report multiset.
        np.testing.assert_allclose(
            merged.estimate_slot_distribution(0, n_bins=8),
            whole.estimate_slot_distribution(0, n_bins=8),
            atol=1e-9,
        )

    def test_merge_is_commutative(self):
        rng = np.random.default_rng(1)
        parts = _partition(_random_rows(rng, 20, 10), 2)
        a = _ingest_rows(parts[0]).state
        b = _ingest_rows(parts[1]).state
        ab, ba = a.merge(b), b.merge(a)
        assert ab.n_reports == ba.n_reports
        assert ab.slot_counts == ba.slot_counts
        assert ab.by_user == ba.by_user
        for t in ab.slot_sums:
            # float addition of two terms is commutative bitwise
            assert ab.slot_sums[t] == ba.slot_sums[t]
            np.testing.assert_array_equal(
                np.sort(ab.slot_reports(t)), np.sort(ba.slot_reports(t))
            )

    def test_merge_is_associative(self):
        rng = np.random.default_rng(2)
        parts = _partition(_random_rows(rng, 21, 8), 3)
        a, b, c = (_ingest_rows(part).state for part in parts)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.n_reports == right.n_reports
        assert left.slot_counts == right.slot_counts
        assert left.by_user == right.by_user
        for t in left.slot_sums:
            assert left.slot_sums[t] == pytest.approx(right.slot_sums[t], abs=1e-12)
            np.testing.assert_array_equal(
                np.sort(left.slot_reports(t)), np.sort(right.slot_reports(t))
            )

    def test_merge_with_empty_state_is_identity(self):
        rows = _random_rows(np.random.default_rng(3), 5, 5)
        state = _ingest_rows(rows).state
        for merged in (state.merge(CollectorShardState()),
                       CollectorShardState().merge(state)):
            assert merged.n_reports == state.n_reports
            assert merged.slot_sums == state.slot_sums
            assert merged.by_user == state.by_user
            for t in state.slot_values:
                np.testing.assert_array_equal(
                    merged.slot_reports(t), state.slot_reports(t)
                )

    def test_merge_does_not_mutate_operands(self):
        a = _ingest_rows([(0, 0, 0.2)]).state
        b = _ingest_rows([(1, 0, 0.4)]).state
        a.merge(b)
        assert a.n_reports == 1 and b.n_reports == 1
        assert a.slot_counts == {0: 1} and b.slot_counts == {0: 1}

    def test_overlapping_users_rejected(self):
        a = _ingest_rows([(0, 0, 0.2), (0, 1, 0.3)]).state
        b = _ingest_rows([(0, 1, 0.4)]).state
        with pytest.raises(ValueError, match="duplicate report for user 0"):
            a.merge(b)
        # Disjoint slots of the same user merge fine (Sample-Split style).
        c = _ingest_rows([(0, 2, 0.4)]).state
        merged = a.merge(c)
        assert merged.by_user[0] == {0: 0.2, 1: 0.3, 2: 0.4}

    def test_merge_drops_user_tracking_when_either_side_lacks_it(self):
        tracking = _ingest_rows([(0, 0, 0.2)]).state
        bare = Collector(track_users=False)
        bare.ingest(Report(1, 0, 0.4))
        merged = tracking.merge(bare.state)
        assert not merged.track_users
        assert merged.by_user == {}
        assert merged.n_reports == 2
        assert merged.slot_counts[0] == 2

    @given(st.integers(0, 2**32 - 1), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_merge_equals_direct_ingestion(self, seed, n_parts):
        """Any user-partition of any report set merges to the same answers."""
        rng = np.random.default_rng(seed)
        rows = _random_rows(rng, n_users=int(rng.integers(2, 12)),
                            horizon=int(rng.integers(1, 8)), density=0.6)
        if not rows:
            return
        whole = _ingest_rows(rows)
        merged = Collector()
        for part in _partition(rows, n_parts):
            merged.merge_state(_ingest_rows(part))
        assert merged.n_reports == whole.n_reports
        assert merged.slots() == whole.slots()
        np.testing.assert_allclose(
            merged.population_mean_series(),
            whole.population_mean_series(),
            rtol=0,
            atol=1e-12,
        )
        assert merged.state.slot_counts == whole.state.slot_counts


class TestTrackUsersFlag:
    def test_aggregates_without_user_dict(self):
        collector = Collector(track_users=False)
        collector.ingest_batch(0, np.arange(100), np.full(100, 0.25))
        collector.ingest_batch(1, np.arange(100), np.full(100, 0.75))
        assert collector.n_reports == 200
        assert collector.population_mean(0) == pytest.approx(0.25)
        np.testing.assert_allclose(
            collector.population_mean_series(), [0.25, 0.75]
        )
        assert collector.state.by_user == {}

    def test_per_user_queries_raise(self):
        collector = Collector(track_users=False)
        collector.ingest(Report(0, 0, 0.5))
        for query in (
            lambda: collector.user_series(0),
            lambda: collector.publish_user_stream(0),
            lambda: collector.user_subsequence_mean(0, 0, 1),
            lambda: collector.crowd_mean_estimates(0, 1),
            lambda: collector.n_users,
        ):
            with pytest.raises(RuntimeError, match="track_users"):
                query()

    def test_cross_batch_duplicates_undetected_without_tracking(self):
        # The documented trade-off: dropping the per-user dict also drops
        # cross-batch duplicate detection (within-batch still enforced).
        collector = Collector(track_users=False)
        collector.ingest_batch(0, np.array([0]), np.array([0.5]))
        collector.ingest_batch(0, np.array([0]), np.array([0.5]))
        assert collector.n_reports == 2
        with pytest.raises(ValueError, match="duplicate user ids"):
            collector.ingest_batch(1, np.array([0, 0]), np.array([0.5, 0.5]))

    def test_keep_reports_false_keeps_running_aggregates_only(self):
        collector = Collector(track_users=False, keep_reports=False)
        collector.ingest_batch(0, np.arange(200), np.full(200, 0.25))
        collector.ingest(Report(500, 1, 0.75))
        assert collector.n_reports == 201
        assert collector.population_mean(0) == pytest.approx(0.25)
        assert collector.state.slot_values == {}
        with pytest.raises(RuntimeError, match="keep_reports"):
            collector.state.slot_reports(0)

    def test_keep_reports_false_disables_distribution_queries(self):
        collector = Collector(epsilon_per_report=1.0, keep_reports=False)
        collector.ingest_batch(0, np.arange(10), np.full(10, 0.5))
        with pytest.raises(RuntimeError, match="keep_reports"):
            collector.estimate_slot_distribution(0)

    def test_merge_drops_reports_when_either_side_lacks_them(self):
        keeping = _ingest_rows([(0, 0, 0.2)]).state
        bare = Collector(keep_reports=False)
        bare.ingest(Report(1, 0, 0.4))
        merged = keeping.merge(bare.state)
        assert not merged.keep_reports
        assert merged.slot_values == {}
        assert merged.slot_counts[0] == 2
        assert merged.slot_sums[0] == pytest.approx(0.6)

    def test_distribution_query_works_without_tracking(self):
        collector = Collector(epsilon_per_report=1.0, track_users=False)
        values = np.random.default_rng(0).random(200)
        collector.ingest_batch(0, np.arange(200), values)
        dist = collector.estimate_slot_distribution(0, n_bins=8)
        assert dist.shape == (8,)
        assert dist.sum() == pytest.approx(1.0)
