"""Tests for the collector service and the end-to-end simulation."""

import numpy as np
import pytest

from repro.protocol import Collector, Report, run_protocol


class TestCollectorIngestion:
    def test_counts(self):
        collector = Collector()
        collector.ingest(Report(0, 0, 0.5))
        collector.ingest(Report(1, 0, 0.7))
        collector.ingest(Report(0, 1, 0.6))
        assert collector.n_reports == 3
        assert collector.n_users == 2
        assert collector.slots() == [0, 1]

    def test_duplicate_rejected(self):
        collector = Collector()
        collector.ingest(Report(0, 0, 0.5))
        with pytest.raises(ValueError, match="duplicate"):
            collector.ingest(Report(0, 0, 0.9))

    def test_ingest_many(self):
        collector = Collector()
        collector.ingest_many([Report(0, t, 0.5) for t in range(5)])
        assert collector.n_reports == 5


class TestCollectorQueries:
    @pytest.fixture
    def populated(self):
        collector = Collector(epsilon_per_report=0.5, smoothing_window=3)
        for user in range(4):
            for t in range(6):
                collector.ingest(Report(user, t, (user + t) / 10.0))
        return collector

    def test_population_mean(self, populated):
        # At t=0 users report 0.0, 0.1, 0.2, 0.3.
        assert populated.population_mean(0) == pytest.approx(0.15)

    def test_population_mean_series(self, populated):
        series = populated.population_mean_series()
        assert series.size == 6
        assert series[1] == pytest.approx(0.25)

    def test_missing_slot_raises(self, populated):
        with pytest.raises(KeyError):
            populated.population_mean(99)

    def test_user_series(self, populated):
        np.testing.assert_allclose(
            populated.user_series(2), [0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
        )

    def test_publish_user_stream_smoothed(self, populated):
        published = populated.publish_user_stream(0)
        raw = populated.user_series(0)
        assert published.size == raw.size
        assert published[1] == pytest.approx(raw[0:3].mean())

    def test_subsequence_mean(self, populated):
        assert populated.user_subsequence_mean(1, 1, 3) == pytest.approx(0.3)

    def test_crowd_mean_estimates(self, populated):
        estimates = populated.crowd_mean_estimates(0, 5)
        assert estimates.size == 4
        assert estimates[0] == pytest.approx(0.25)

    def test_distribution_query(self, rng):
        from repro.mechanisms import SquareWaveMechanism

        mech = SquareWaveMechanism(1.0)
        collector = Collector(epsilon_per_report=1.0)
        reports = mech.perturb(np.full(3_000, 0.8), rng)
        for user, value in enumerate(reports):
            collector.ingest(Report(user, 0, float(value)))
        dist = collector.estimate_slot_distribution(0, n_bins=10)
        assert dist.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.argmax(dist) >= 6  # peak near 0.8

    def test_distribution_query_needs_epsilon(self):
        collector = Collector(epsilon_per_report=None)
        collector.ingest(Report(0, 0, 0.5))
        with pytest.raises(RuntimeError, match="epsilon_per_report"):
            collector.estimate_slot_distribution(0)

    def test_streaming_smoother(self, populated):
        smoother = populated.streaming_smoother()
        assert smoother.window == 3

    def test_smoother_requires_window(self):
        collector = Collector(smoothing_window=None)
        with pytest.raises(RuntimeError):
            collector.streaming_smoother()


class TestRunProtocol:
    @pytest.fixture
    def matrix(self, rng):
        return rng.random((8, 25))

    def test_full_run(self, matrix, rng):
        result = run_protocol(matrix, algorithm="app", epsilon=1.0, w=5, rng=rng)
        assert result.n_users == 8
        assert result.collector.n_reports == 8 * 25
        assert np.isfinite(result.population_mean_mse())

    def test_all_user_ledgers_valid(self, matrix, rng):
        result = run_protocol(matrix, algorithm="capp", epsilon=1.0, w=5, rng=rng)
        for user in result.users:
            user.perturber.accountant.assert_valid()

    def test_on_slot_callback(self, matrix, rng):
        seen = []
        run_protocol(matrix, epsilon=1.0, w=5, rng=rng, on_slot=seen.append)
        assert seen == list(range(25))

    def test_reproducible(self, matrix):
        a = run_protocol(matrix, epsilon=1.0, w=5, rng=np.random.default_rng(4))
        b = run_protocol(matrix, epsilon=1.0, w=5, rng=np.random.default_rng(4))
        np.testing.assert_array_equal(
            a.collector.population_mean_series(),
            b.collector.population_mean_series(),
        )

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError, match="matrix"):
            run_protocol(np.zeros(10), rng=rng)

    def test_population_mean_tracks_truth_at_high_budget(self, rng):
        matrix = np.tile(np.linspace(0.2, 0.8, 30), (40, 1))
        result = run_protocol(matrix, algorithm="app", epsilon=10.0, w=3, rng=rng)
        assert result.population_mean_mse() < 0.05

    def test_heterogeneous_population(self, rng):
        matrix = rng.random((4, 15))
        names = ["capp", "app", "ipp", "sw-direct"]
        result = run_protocol(matrix, algorithm=names, epsilon=1.0, w=5, rng=rng)
        observed = [type(u.perturber).__name__ for u in result.users]
        assert observed == ["OnlineCAPP", "OnlineAPP", "OnlineIPP", "OnlineSWDirect"]

    def test_heterogeneous_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="algorithm names"):
            run_protocol(rng.random((3, 10)), algorithm=["app"], rng=rng)
