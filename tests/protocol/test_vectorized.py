"""Equivalence suite: run_protocol_vectorized vs the per-user reference.

The vectorized path must match the reference distributionally (same
estimates within sampling tolerance) and exactly on everything
deterministic: report counts, observed slots, budget accounting, and
protocol-level validation behavior.
"""

import numpy as np
import pytest

from repro.privacy import PrivacyBudgetExceededError
from repro.protocol import (
    BATCH_ALGORITHMS,
    ONLINE_ALGORITHMS,
    run_protocol,
    run_protocol_vectorized,
)

ALGORITHMS = sorted(BATCH_ALGORITHMS)


def test_registries_cover_the_same_algorithms():
    assert set(BATCH_ALGORITHMS) == set(ONLINE_ALGORITHMS)


@pytest.fixture(scope="module")
def streams():
    rng = np.random.default_rng(0)
    # A drifting population signal, like the paper's streams.
    base = 0.5 + 0.3 * np.sin(np.linspace(0, 4 * np.pi, 60))
    return np.clip(base + 0.1 * rng.standard_normal((800, 60)), 0.0, 1.0)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_estimates_match_reference_within_tolerance(streams, algorithm):
    vec = run_protocol_vectorized(
        streams, algorithm=algorithm, epsilon=5.0, w=5,
        rng=np.random.default_rng(1),
    )
    ref = run_protocol(
        streams, algorithm=algorithm, epsilon=5.0, w=5,
        rng=np.random.default_rng(2),
    )
    assert vec.collector.n_reports == ref.collector.n_reports
    assert vec.collector.slots() == ref.collector.slots()
    # Two independent unbiased estimates of the same population mean
    # series; each carries ~1/sqrt(n_users) noise.
    np.testing.assert_allclose(
        vec.collector.population_mean_series(),
        ref.collector.population_mean_series(),
        atol=0.08,
    )
    # The SW randomizer is biased per slot (shrinkage toward the domain
    # centre), so neither path tracks truth exactly — but both must incur
    # the *same* error, being draws from the same law.
    assert vec.population_mean_mse() == pytest.approx(
        ref.population_mean_mse(), rel=0.25, abs=0.002
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_budget_accounting_identical_to_reference(streams, algorithm):
    """Full participation: every user's ledger must equal the reference."""
    sub = streams[:25]
    vec = run_protocol_vectorized(
        sub, algorithm=algorithm, epsilon=1.0, w=10, rng=np.random.default_rng(3)
    )
    ref = run_protocol(
        sub, algorithm=algorithm, epsilon=1.0, w=10, rng=np.random.default_rng(4)
    )
    for user in ref.users:
        np.testing.assert_allclose(
            vec.user_budget_spends(user.user_id),
            user.perturber.accountant._spends,
        )


def test_distribution_estimate_matches_reference(streams):
    vec = run_protocol_vectorized(
        streams, algorithm="sw-direct", epsilon=5.0, w=5,
        rng=np.random.default_rng(5),
    )
    ref = run_protocol(
        streams, algorithm="sw-direct", epsilon=5.0, w=5,
        rng=np.random.default_rng(6),
    )
    slot = 30
    vec_dist = vec.collector.estimate_slot_distribution(slot, n_bins=16)
    ref_dist = ref.collector.estimate_slot_distribution(slot, n_bins=16)
    assert vec_dist.sum() == pytest.approx(1.0)
    assert np.abs(vec_dist - ref_dist).sum() < 0.35  # L1 between EM solutions


def test_heterogeneous_population_groups(streams):
    sub = streams[:40]
    algorithms = (["capp", "app", "ipp", "sw-direct"] * 10)
    vec = run_protocol_vectorized(
        sub, algorithm=algorithms, epsilon=2.0, w=5, rng=np.random.default_rng(7)
    )
    assert sorted(g.algorithm for g in vec.groups) == ALGORITHMS
    assert sum(g.n_users for g in vec.groups) == 40
    for user_id, name in enumerate(algorithms):
        assert vec.user_algorithm(user_id) == name
    # Every user reported every slot.
    assert vec.collector.n_reports == sub.size
    vec.population_mean_mse()  # smoke: the MSE query works on mixed groups


def test_record_history_false_bounds_ledger_memory():
    streams = np.full((10, 20), 0.5)
    vec = run_protocol_vectorized(
        streams, rng=np.random.default_rng(0), record_history=False
    )
    assert vec.collector.n_reports == streams.size
    for group in vec.groups:
        assert len(group.engine.accountant._history) == 0
        group.engine.accountant.assert_valid()
    with pytest.raises(RuntimeError, match="record_history"):
        vec.user_budget_spends(0)


def test_on_slot_callback_order():
    seen = []
    run_protocol_vectorized(
        np.full((3, 5), 0.5), rng=np.random.default_rng(0), on_slot=seen.append
    )
    assert seen == [0, 1, 2, 3, 4]


def test_user_series_queries_match_reference_shapes(streams):
    sub = streams[:10]
    vec = run_protocol_vectorized(sub, rng=np.random.default_rng(8))
    series = vec.collector.user_series(3)
    assert series.shape == (sub.shape[1],)
    published = vec.collector.publish_user_stream(3)
    assert published.shape == series.shape


def test_validation_mirrors_reference():
    with pytest.raises(ValueError, match="matrix"):
        run_protocol_vectorized(np.zeros(5))
    with pytest.raises(KeyError, match="unknown algorithm"):
        run_protocol_vectorized(np.full((2, 3), 0.5), algorithm="nope")
    with pytest.raises(ValueError, match="algorithm names"):
        run_protocol_vectorized(np.full((2, 3), 0.5), algorithm=["capp"])
    with pytest.raises(ValueError, match="participation"):
        run_protocol_vectorized(np.full((2, 3), 0.5), participation=0.0)
    with pytest.raises(ValueError, match="participation"):
        run_protocol_vectorized(np.full((2, 3), 0.5), participation=1.5)
    # Invalid values must be rejected up front even when dropout masks
    # could hide them (parity with UserAgent construction-time checks).
    bad = np.full((4, 5), 0.5)
    bad[2, 3] = np.nan
    with pytest.raises(ValueError, match="finite"):
        run_protocol_vectorized(bad, participation=0.01, rng=np.random.default_rng(0))
    bad[2, 3] = 1.5
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        run_protocol_vectorized(bad, participation=0.01, rng=np.random.default_rng(0))
    with pytest.raises(ValueError, match="non-empty"):
        run_protocol_vectorized(np.empty((3, 0)))


def test_group_lookup_unknown_user(streams):
    vec = run_protocol_vectorized(streams[:4], rng=np.random.default_rng(9))
    with pytest.raises(KeyError):
        vec.group_for(99)


def test_participation_schedule_constant_matches_scalar():
    """A flat (T,) schedule is the scalar path, bit for bit (same draws)."""
    streams = np.full((30, 12), 0.5)
    scalar = run_protocol_vectorized(
        streams, participation=0.7, rng=np.random.default_rng(0)
    )
    schedule = run_protocol_vectorized(
        streams, participation=np.full(12, 0.7), rng=np.random.default_rng(0)
    )
    assert scalar.collector.n_reports == schedule.collector.n_reports
    np.testing.assert_array_equal(
        scalar.collector.population_mean_series(),
        schedule.collector.population_mean_series(),
    )


def test_participation_schedule_zero_slot_silences_population():
    """A 0-probability slot (churn trough) leaves no reports and no spend."""
    streams = np.full((8, 6), 0.5)
    schedule = np.array([1.0, 1.0, 0.0, 1.0, 0.0, 1.0])
    vec = run_protocol_vectorized(
        streams, participation=schedule, rng=np.random.default_rng(1)
    )
    assert vec.collector.slots() == [0, 1, 3, 5]
    assert vec.collector.n_reports == 8 * 4
    for user in range(8):
        spends = vec.user_budget_spends(user)
        np.testing.assert_array_equal(spends[[2, 4]], 0.0)
        assert np.all(spends[[0, 1, 3, 5]] > 0)


def test_participation_schedule_validation():
    streams = np.full((4, 5), 0.5)
    with pytest.raises(ValueError, match="one entry per slot"):
        run_protocol_vectorized(streams, participation=np.full(4, 0.5))
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        run_protocol_vectorized(streams, participation=np.full(5, 1.5))
    with pytest.raises(ValueError, match="scalar or a"):
        run_protocol_vectorized(streams, participation=np.full((5, 1), 0.5))


def test_user_id_offset_shifts_all_ids():
    """The sharded runtime's shards address users by global id."""
    streams = np.full((6, 8), 0.5)
    vec = run_protocol_vectorized(
        streams, rng=np.random.default_rng(2), user_id_offset=100
    )
    assert sorted(vec.collector._state.by_user) == list(range(100, 106))
    for group in vec.groups:
        assert group.indices.min() >= 100
    assert vec.user_algorithm(103) == "capp"
    assert vec.user_budget_spends(100).shape == (8,)
    with pytest.raises(KeyError):
        vec.group_for(0)
    with pytest.raises(ValueError, match="non-negative"):
        run_protocol_vectorized(streams, user_id_offset=-1)


def test_track_users_false_keeps_aggregates_only():
    """Population-scale memory fix: no O(users x slots) per-user dict."""
    streams = np.full((10, 7), 0.5)
    vec = run_protocol_vectorized(
        streams, rng=np.random.default_rng(3), track_users=False
    )
    assert vec.collector.n_reports == streams.size
    assert vec.collector.population_mean_series().shape == (7,)
    assert vec.collector.state.by_user == {}
    with pytest.raises(RuntimeError, match="track_users"):
        vec.collector.user_series(0)
    with pytest.raises(RuntimeError, match="track_users"):
        vec.collector.n_users


def test_budget_overspend_still_raises():
    """The vectorized path must keep the executable privacy invariant."""
    with pytest.raises(PrivacyBudgetExceededError):
        # w=1 with multiple slots is fine; force overspend via an absurd
        # epsilon split: submit the same engine twice per slot.
        from repro.core import BatchOnlineSWDirect

        engine = BatchOnlineSWDirect(1.0, 2, 4)
        engine.accountant.charge_next(0.6)
        engine.accountant.charge_next(0.6)


def test_empty_population_is_a_valid_trivial_run():
    """ensure_stream_matrix's zero-user contract holds on the batch path."""
    import numpy as np

    from repro.protocol import run_protocol_vectorized

    for shape in [(0, 5), (0, 0)]:
        result = run_protocol_vectorized(np.zeros(shape))
        assert result.collector.n_reports == 0
        assert result.groups == []
        assert result.n_users == 0
