"""The CI perf-regression gate over BENCH_population.json."""

import importlib.util
import json
import os

import pytest

_GATE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "perf_gate.py",
)

spec = importlib.util.spec_from_file_location("perf_gate", _GATE_PATH)
perf_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(perf_gate)


def _trajectory(path, estimators, n_users=None):
    population = {
        "estimators": {
            name: {"vectorized_users_per_sec": rate}
            for name, rate in estimators.items()
        }
    }
    if n_users is not None:
        population["n_users"] = n_users
    path.write_text(json.dumps({"population": population}))
    return str(path)


@pytest.fixture
def files(tmp_path):
    def _make(baseline, current):
        return (
            _trajectory(tmp_path / "baseline.json", baseline),
            _trajectory(tmp_path / "current.json", current),
        )

    return _make


class TestGateVerdicts:
    def test_passes_within_tolerance(self, files, capsys):
        baseline, current = files({"capp": 100_000.0}, {"capp": 70_000.0})
        code = perf_gate.main(["--baseline", baseline, "--current", current])
        assert code == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_fails_past_tolerance(self, files, capsys):
        baseline, current = files(
            {"capp": 100_000.0, "ipp": 50_000.0},
            {"capp": 100_500.0, "ipp": 20_000.0},  # ipp dropped 60%
        )
        code = perf_gate.main(["--baseline", baseline, "--current", current])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "ipp" in captured.err and "60% below" in captured.err

    def test_tolerance_flag_tightens_the_gate(self, files):
        baseline, current = files({"capp": 100_000.0}, {"capp": 85_000.0})
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0
        assert (
            perf_gate.main(
                ["--baseline", baseline, "--current", current, "--tolerance", "0.10"]
            )
            == 1
        )

    def test_env_tolerance_respected(self, files, monkeypatch):
        baseline, current = files({"capp": 100_000.0}, {"capp": 85_000.0})
        monkeypatch.setenv("REPRO_BENCH_GATE_TOLERANCE", "0.10")
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 1

    def test_unmatched_estimators_reported_not_failed(self, files, capsys):
        baseline, current = files(
            {"capp": 100_000.0, "retired": 9_000.0},
            {"capp": 99_000.0, "brand-new": 5.0},
        )
        code = perf_gate.main(["--baseline", baseline, "--current", current])
        assert code == 0
        out = capsys.readouterr().out
        assert "not measured — skipped" in out  # retired
        assert "no baseline — skipped" in out  # brand-new


class TestAbsoluteFloors:
    def _files(self, tmp_path, rates, n_users):
        baseline = _trajectory(tmp_path / "baseline.json", rates, n_users=n_users)
        current = _trajectory(tmp_path / "current.json", rates, n_users=n_users)
        return baseline, current

    def test_floor_breach_fails_at_full_scale(self, tmp_path, capsys):
        # Relative gate passes (identical numbers) but bd-sw sits below
        # its absolute floor — a revert of the population rewrite would
        # look exactly like this after a baseline refresh.
        baseline, current = self._files(
            tmp_path, {"bd-sw": 1_500.0, "topl": 6_000.0}, n_users=2000
        )
        code = perf_gate.main(["--baseline", baseline, "--current", current])
        assert code == 1
        captured = capsys.readouterr()
        assert "below the absolute floor" in captured.err
        assert "bd-sw" in captured.err and "topl" not in captured.err

    def test_floors_pass_above_the_line(self, tmp_path):
        baseline, current = self._files(
            tmp_path, {"bd-sw": 30_000.0, "topl": 6_000.0}, n_users=2000
        )
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0

    def test_floors_skip_at_smoke_scale(self, tmp_path, capsys):
        baseline, current = self._files(
            tmp_path, {"bd-sw": 100.0, "topl": 100.0}, n_users=300
        )
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0
        assert "floors: skipped" in capsys.readouterr().out

    def test_floors_skip_without_scale_metadata(self, files):
        baseline, current = files({"bd-sw": 100.0}, {"bd-sw": 100.0})
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0

    def test_env_override_raises_and_disables(self, tmp_path, monkeypatch, capsys):
        baseline, current = self._files(
            tmp_path, {"bd-sw": 30_000.0, "topl": 6_000.0}, n_users=2000
        )
        monkeypatch.setenv("REPRO_BENCH_FLOOR_BD_SW", "40000")
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 1
        monkeypatch.setenv("REPRO_BENCH_FLOOR_BD_SW", "0")
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0
        assert "floor bd-sw: disabled" in capsys.readouterr().out

    def test_unmeasured_floor_estimator_skips(self, tmp_path, capsys):
        baseline, current = self._files(tmp_path, {"capp": 90_000.0}, n_users=2000)
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0
        assert "not measured — skipped" in capsys.readouterr().out

    def test_committed_floors_hold_in_the_committed_trajectory(self):
        """The repo-root numbers must clear their own floors."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        path = os.path.join(root, "BENCH_population.json")
        rates = perf_gate.load_estimators(path)
        if perf_gate.load_bench_scale(path) >= perf_gate.FLOOR_MIN_USERS:
            for name, floor in perf_gate.DEFAULT_ESTIMATOR_FLOORS.items():
                assert rates[name] >= floor, (name, rates[name], floor)


def _distributed_trajectory(path, rates, scaling=None, cpu_count=None, extra=None):
    """A trajectory with estimators plus a ``distributed`` section."""
    section = {
        "workers": {
            count: {"reports_per_second": rate} for count, rate in rates.items()
        }
    }
    if scaling is not None:
        section["scaling"] = scaling
    if cpu_count is not None:
        section["cpu_count"] = cpu_count
    document = {
        "population": {
            "estimators": {"capp": {"vectorized_users_per_sec": 100_000.0}}
        },
        "distributed": section,
    }
    if extra is not None:
        document["distributed"].update(extra)
    path.write_text(json.dumps(document))
    return str(path)


class TestDistributedSection:
    def test_rate_regression_fails_the_gate(self, tmp_path, capsys):
        baseline = _distributed_trajectory(
            tmp_path / "b.json", {"1": 100_000.0, "4": 300_000.0}
        )
        current = _distributed_trajectory(
            tmp_path / "c.json", {"1": 100_000.0, "4": 100_000.0}  # 4w dropped 67%
        )
        code = perf_gate.main(["--baseline", baseline, "--current", current])
        assert code == 1
        captured = capsys.readouterr()
        assert "distributed 4 worker(s)" in captured.err
        assert "67% below" in captured.err

    def test_identical_rates_pass(self, tmp_path):
        baseline = _distributed_trajectory(
            tmp_path / "b.json", {"1": 100_000.0, "4": 300_000.0}
        )
        current = _distributed_trajectory(
            tmp_path / "c.json", {"1": 100_000.0, "4": 290_000.0}
        )
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0

    def test_scaling_floor_armed_with_enough_cpus(self, tmp_path, capsys):
        rates = {"1": 100_000.0, "4": 120_000.0}
        baseline = _distributed_trajectory(tmp_path / "b.json", rates)
        current = _distributed_trajectory(
            tmp_path / "c.json", rates, scaling=1.2, cpu_count=8
        )
        code = perf_gate.main(["--baseline", baseline, "--current", current])
        assert code == 1
        assert "below the 1.50x floor" in capsys.readouterr().err

    def test_scaling_floor_not_armed_on_small_machines(self, tmp_path, capsys):
        rates = {"1": 100_000.0, "4": 80_000.0}
        baseline = _distributed_trajectory(tmp_path / "b.json", rates)
        current = _distributed_trajectory(
            tmp_path / "c.json", rates, scaling=0.8, cpu_count=1
        )
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0
        assert "floor not armed on 1 cpu(s)" in capsys.readouterr().out

    def test_env_overrides_the_scaling_floor(self, tmp_path, monkeypatch):
        rates = {"1": 100_000.0, "4": 120_000.0}
        baseline = _distributed_trajectory(tmp_path / "b.json", rates)
        current = _distributed_trajectory(
            tmp_path / "c.json", rates, scaling=1.2, cpu_count=8
        )
        monkeypatch.setenv("REPRO_BENCH_DIST_MIN_SCALING", "1.1")
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0

    def test_absent_section_skips(self, files, capsys):
        baseline, current = files({"capp": 100_000.0}, {"capp": 100_000.0})
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0
        assert "distributed: not measured — skipped" in capsys.readouterr().out

    def test_new_fleet_size_has_no_baseline(self, tmp_path, capsys):
        baseline = _distributed_trajectory(tmp_path / "b.json", {"1": 100_000.0})
        current = _distributed_trajectory(
            tmp_path / "c.json", {"1": 100_000.0, "8": 500_000.0}
        )
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0
        assert "no baseline — skipped" in capsys.readouterr().out

    def test_committed_distributed_section_parses(self):
        """The repo-root trajectory's distributed section stays loadable."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        section = perf_gate.load_distributed(
            os.path.join(root, "BENCH_population.json")
        )
        assert section.get("workers"), "distributed section missing from BENCH"
        assert all(rate > 0 for rate in section["workers"].values())
        assert "cpu_count" in section


class TestGateErrors:
    def test_missing_section_is_usage_error(self, tmp_path, files, capsys):
        baseline, _ = files({"capp": 1.0}, {"capp": 1.0})
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        code = perf_gate.main(["--baseline", baseline, "--current", str(empty)])
        assert code == 2
        assert "no population.estimators" in capsys.readouterr().err

    def test_unreadable_baseline_is_usage_error(self, files, capsys):
        _, current = files({"capp": 1.0}, {"capp": 1.0})
        code = perf_gate.main(["--baseline", "/nonexistent.json", "--current", current])
        assert code == 2

    def test_bad_tolerance_is_usage_error(self, files):
        baseline, current = files({"capp": 1.0}, {"capp": 1.0})
        code = perf_gate.main(
            ["--baseline", baseline, "--current", current, "--tolerance", "1.5"]
        )
        assert code == 2

    def test_committed_baseline_parses(self):
        """The repo-root trajectory must stay gate-compatible."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        rates = perf_gate.load_estimators(os.path.join(root, "BENCH_population.json"))
        assert "capp" in rates and rates["capp"] > 0