"""The CI perf-regression gate over BENCH_population.json."""

import importlib.util
import json
import os

import pytest

_GATE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "perf_gate.py",
)

spec = importlib.util.spec_from_file_location("perf_gate", _GATE_PATH)
perf_gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(perf_gate)


def _trajectory(path, estimators):
    payload = {
        "population": {
            "estimators": {
                name: {"vectorized_users_per_sec": rate}
                for name, rate in estimators.items()
            }
        }
    }
    path.write_text(json.dumps(payload))
    return str(path)


@pytest.fixture
def files(tmp_path):
    def _make(baseline, current):
        return (
            _trajectory(tmp_path / "baseline.json", baseline),
            _trajectory(tmp_path / "current.json", current),
        )

    return _make


class TestGateVerdicts:
    def test_passes_within_tolerance(self, files, capsys):
        baseline, current = files({"capp": 100_000.0}, {"capp": 70_000.0})
        code = perf_gate.main(["--baseline", baseline, "--current", current])
        assert code == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_fails_past_tolerance(self, files, capsys):
        baseline, current = files(
            {"capp": 100_000.0, "ipp": 50_000.0},
            {"capp": 100_500.0, "ipp": 20_000.0},  # ipp dropped 60%
        )
        code = perf_gate.main(["--baseline", baseline, "--current", current])
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "ipp" in captured.err and "60% below" in captured.err

    def test_tolerance_flag_tightens_the_gate(self, files):
        baseline, current = files({"capp": 100_000.0}, {"capp": 85_000.0})
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 0
        assert (
            perf_gate.main(
                ["--baseline", baseline, "--current", current, "--tolerance", "0.10"]
            )
            == 1
        )

    def test_env_tolerance_respected(self, files, monkeypatch):
        baseline, current = files({"capp": 100_000.0}, {"capp": 85_000.0})
        monkeypatch.setenv("REPRO_BENCH_GATE_TOLERANCE", "0.10")
        assert perf_gate.main(["--baseline", baseline, "--current", current]) == 1

    def test_unmatched_estimators_reported_not_failed(self, files, capsys):
        baseline, current = files(
            {"capp": 100_000.0, "retired": 9_000.0},
            {"capp": 99_000.0, "brand-new": 5.0},
        )
        code = perf_gate.main(["--baseline", baseline, "--current", current])
        assert code == 0
        out = capsys.readouterr().out
        assert "not measured — skipped" in out  # retired
        assert "no baseline — skipped" in out  # brand-new


class TestGateErrors:
    def test_missing_section_is_usage_error(self, tmp_path, files, capsys):
        baseline, _ = files({"capp": 1.0}, {"capp": 1.0})
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        code = perf_gate.main(["--baseline", baseline, "--current", str(empty)])
        assert code == 2
        assert "no population.estimators" in capsys.readouterr().err

    def test_unreadable_baseline_is_usage_error(self, files, capsys):
        _, current = files({"capp": 1.0}, {"capp": 1.0})
        code = perf_gate.main(["--baseline", "/nonexistent.json", "--current", current])
        assert code == 2

    def test_bad_tolerance_is_usage_error(self, files):
        baseline, current = files({"capp": 1.0}, {"capp": 1.0})
        code = perf_gate.main(
            ["--baseline", baseline, "--current", current, "--tolerance", "1.5"]
        )
        assert code == 2

    def test_committed_baseline_parses(self):
        """The repo-root trajectory must stay gate-compatible."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        rates = perf_gate.load_estimators(os.path.join(root, "BENCH_population.json"))
        assert "capp" in rates and rates["capp"] > 0