"""Tests for pointwise error metrics."""

import numpy as np
import pytest

from repro.metrics import mae, mean_error, mse, rmse


class TestMSE:
    def test_zero_for_identical(self):
        x = np.array([0.1, 0.5, 0.9])
        assert mse(x, x) == 0.0

    def test_known_value(self):
        assert mse([1.0, 2.0], [0.0, 0.0]) == pytest.approx(2.5)

    def test_symmetry(self, rng):
        a, b = rng.random(20), rng.random(20)
        assert mse(a, b) == pytest.approx(mse(b, a))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            mse([1.0], [1.0, 2.0])

    def test_nonnegative(self, rng):
        assert mse(rng.random(10), rng.random(10)) >= 0.0


class TestMAE:
    def test_known_value(self):
        assert mae([1.0, -1.0], [0.0, 0.0]) == pytest.approx(1.0)

    def test_mae_le_rmse(self, rng):
        a, b = rng.random(50), rng.random(50)
        assert mae(a, b) <= rmse(a, b) + 1e-12


class TestRMSE:
    def test_is_sqrt_of_mse(self, rng):
        a, b = rng.random(30), rng.random(30)
        assert rmse(a, b) == pytest.approx(np.sqrt(mse(a, b)))


class TestMeanError:
    def test_signed(self):
        assert mean_error([2.0, 2.0], [1.0, 1.0]) == pytest.approx(1.0)
        assert mean_error([0.0, 0.0], [1.0, 1.0]) == pytest.approx(-1.0)

    def test_zero_when_means_match(self):
        assert mean_error([0.0, 1.0], [0.5, 0.5]) == pytest.approx(0.0)
