"""Tests for cosine, Wasserstein, and JSD metrics."""

import numpy as np
import pytest

from repro.metrics import (
    cosine_distance,
    empirical_cdf,
    jensen_shannon_divergence,
    wasserstein_distance,
)


class TestCosineDistance:
    def test_zero_for_same_direction(self):
        assert cosine_distance([1.0, 2.0], [2.0, 4.0]) == pytest.approx(0.0)

    def test_orthogonal(self):
        assert cosine_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_opposite(self):
        assert cosine_distance([1.0, 0.0], [-1.0, 0.0]) == pytest.approx(2.0)

    def test_symmetry(self, rng):
        a, b = rng.random(20) + 0.1, rng.random(20) + 0.1
        assert cosine_distance(a, b) == pytest.approx(cosine_distance(b, a))

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            cosine_distance([0.0, 0.0], [1.0, 1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cosine_distance([1.0], [1.0, 2.0])

    def test_range(self, rng):
        for _ in range(20):
            a = rng.normal(size=10)
            b = rng.normal(size=10)
            assert -1e-12 <= cosine_distance(a, b) <= 2.0 + 1e-12


class TestEmpiricalCdf:
    def test_values(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0, 4.0], np.array([0.5, 2.5, 9.0]))
        np.testing.assert_allclose(cdf, [0.0, 0.5, 1.0])

    def test_monotone(self, rng):
        grid = np.linspace(0, 1, 50)
        cdf = empirical_cdf(rng.random(200), grid)
        assert np.all(np.diff(cdf) >= 0.0)


class TestWassersteinDistance:
    def test_zero_for_identical_samples(self, rng):
        a = rng.random(100)
        assert wasserstein_distance(a, a) == pytest.approx(0.0)

    def test_symmetry(self, rng):
        a, b = rng.random(100), rng.random(100) + 0.2
        assert wasserstein_distance(a, b) == pytest.approx(
            wasserstein_distance(b, a)
        )

    def test_shifted_distributions(self, rng):
        a = rng.normal(0.0, 0.1, size=5_000)
        near = a + 0.05
        far = a + 0.5
        assert wasserstein_distance(a, near) < wasserstein_distance(a, far)

    def test_degenerate_equal_points(self):
        assert wasserstein_distance([1.0, 1.0], [1.0, 1.0]) == 0.0

    def test_nonnegative(self, rng):
        assert wasserstein_distance(rng.random(50), rng.random(50)) >= 0.0


class TestJSD:
    def test_zero_for_identical(self, rng):
        a = rng.random(1_000)
        assert jensen_shannon_divergence(a, a) == pytest.approx(0.0, abs=1e-12)

    def test_bounded_by_one(self, rng):
        # Base-2 JSD lies in [0, 1].
        a = rng.normal(0, 1, size=2_000)
        b = rng.normal(5, 1, size=2_000)
        value = jensen_shannon_divergence(a, b)
        assert 0.0 <= value <= 1.0

    def test_disjoint_supports_near_one(self, rng):
        a = rng.uniform(0, 1, size=3_000)
        b = rng.uniform(10, 11, size=3_000)
        assert jensen_shannon_divergence(a, b) > 0.95

    def test_symmetry(self, rng):
        a, b = rng.random(500), rng.random(500) * 2
        assert jensen_shannon_divergence(a, b) == pytest.approx(
            jensen_shannon_divergence(b, a)
        )
