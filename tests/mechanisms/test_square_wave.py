"""Tests for the Square Wave mechanism: parameters, sampling, moments."""

import math

import numpy as np
import pytest

from repro.mechanisms import SquareWaveMechanism, sw_half_width, sw_probabilities


class TestParameters:
    def test_half_width_matches_closed_form(self):
        # The raw paper formula at a budget where it is numerically safe.
        eps = 1.0
        expected = (eps * math.exp(eps) - math.exp(eps) + 1.0) / (
            2.0 * math.exp(eps) * (math.exp(eps) - eps - 1.0)
        )
        assert sw_half_width(eps) == pytest.approx(expected, rel=1e-12)

    def test_half_width_small_epsilon_limit(self):
        # b -> 1/2 as eps -> 0 (used by Lemma IV.2).
        assert sw_half_width(1e-6) == pytest.approx(0.5, abs=1e-5)

    def test_half_width_decreases_with_epsilon(self):
        values = [sw_half_width(e) for e in (0.1, 0.5, 1.0, 2.0, 5.0, 10.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_half_width_large_epsilon_vanishes(self):
        assert sw_half_width(30.0) < 1e-10

    def test_probability_normalization(self):
        # Total output mass: 2*b*p (near) + 1*q (far) = 1.
        for eps in (0.05, 0.5, 1.0, 3.0):
            b, p, q = sw_probabilities(eps)
            assert 2 * b * p + q == pytest.approx(1.0, rel=1e-12)

    def test_probability_ratio_is_exp_epsilon(self):
        for eps in (0.1, 1.0, 2.5):
            _, p, q = sw_probabilities(eps)
            assert p / q == pytest.approx(math.exp(eps), rel=1e-12)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            SquareWaveMechanism(0.0)
        with pytest.raises(ValueError):
            SquareWaveMechanism(-1.0)


class TestPerturb:
    def test_output_within_domain(self, rng):
        mech = SquareWaveMechanism(1.0)
        out = mech.perturb(rng.random(20_000), rng)
        assert out.min() >= -mech.b - 1e-12
        assert out.max() <= 1.0 + mech.b + 1e-12

    def test_scalar_input(self, rng):
        mech = SquareWaveMechanism(1.0)
        out = mech.perturb(0.5, rng)
        assert out.shape == ()
        assert mech.output_domain.contains(float(out))

    def test_preserves_shape(self, rng):
        mech = SquareWaveMechanism(1.0)
        arr = rng.random((4, 5))
        assert mech.perturb(arr, rng).shape == (4, 5)

    def test_rejects_out_of_domain(self, rng):
        mech = SquareWaveMechanism(1.0)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            mech.perturb(np.array([1.5]), rng)

    def test_rejects_nan(self, rng):
        mech = SquareWaveMechanism(1.0)
        with pytest.raises(ValueError, match="finite"):
            mech.perturb(np.array([float("nan")]), rng)

    def test_deterministic_given_seed(self):
        mech = SquareWaveMechanism(1.0)
        a = mech.perturb(np.full(10, 0.3), np.random.default_rng(7))
        b = mech.perturb(np.full(10, 0.3), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_near_mass_frequency(self, rng):
        # Empirical fraction of outputs inside the near-window ~= 2*b*p.
        mech = SquareWaveMechanism(1.0)
        x = 0.5
        out = mech.perturb(np.full(100_000, x), rng)
        fraction = np.mean(np.abs(out - x) <= mech.b)
        assert fraction == pytest.approx(mech.near_mass, abs=0.01)

    @pytest.mark.parametrize("x", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_empirical_mean_matches_analytic(self, rng, x):
        mech = SquareWaveMechanism(1.0)
        out = mech.perturb(np.full(150_000, x), rng)
        assert out.mean() == pytest.approx(float(mech.expected_output(x)), abs=0.005)

    @pytest.mark.parametrize("x", [0.0, 0.5, 1.0])
    def test_empirical_variance_matches_analytic(self, rng, x):
        mech = SquareWaveMechanism(0.5)
        out = mech.perturb(np.full(150_000, x), rng)
        assert out.var() == pytest.approx(float(mech.output_variance(x)), rel=0.03)


class TestPdf:
    def test_pdf_levels(self):
        mech = SquareWaveMechanism(1.0)
        x = 0.5
        assert float(mech.pdf(x, x)) == pytest.approx(mech.p)
        assert float(mech.pdf(x, x + mech.b + 0.01)) == pytest.approx(mech.q)
        assert float(mech.pdf(x, 1.0 + mech.b + 0.1)) == 0.0
        assert float(mech.pdf(x, -mech.b - 0.1)) == 0.0

    def test_pdf_integrates_to_one(self):
        mech = SquareWaveMechanism(2.0)
        ys = np.linspace(-mech.b, 1 + mech.b, 200_001)
        densities = mech.pdf(0.3, ys)
        integral = np.trapezoid(densities, ys)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_pdf_ratio_bounded_by_exp_epsilon(self):
        # The core LDP property: for any output y and inputs x, x',
        # pdf(x, y) / pdf(x', y) <= e^eps.
        eps = 1.3
        mech = SquareWaveMechanism(eps)
        ys = np.linspace(-mech.b, 1 + mech.b, 501)
        xs = np.linspace(0, 1, 51)
        densities = np.array([mech.pdf(x, ys) for x in xs])
        ratio = densities.max(axis=0) / densities.min(axis=0)
        assert np.all(ratio <= math.exp(eps) * (1 + 1e-9))


class TestMoments:
    def test_expected_output_matches_paper_mu(self):
        # Paper Section V: mu = 2b(p - q)x + qb + q/2.
        mech = SquareWaveMechanism(1.0)
        for x in (0.0, 0.3, 1.0):
            paper = 2 * mech.b * (mech.p - mech.q) * x + mech.q * mech.b + mech.q / 2
            assert float(mech.expected_output(x)) == pytest.approx(paper, rel=1e-12)

    def test_raw_moment_one_equals_mean(self):
        mech = SquareWaveMechanism(0.7)
        for x in (0.1, 0.9):
            assert float(mech.raw_output_moment(x, 1)) == pytest.approx(
                float(mech.expected_output(x)), rel=1e-12
            )

    def test_central_moment_two_equals_variance(self):
        mech = SquareWaveMechanism(1.5)
        assert float(mech.central_output_moment(0.4, 2)) == pytest.approx(
            float(mech.output_variance(0.4)), rel=1e-10
        )

    def test_central_moment_one_is_zero(self):
        mech = SquareWaveMechanism(1.5)
        assert float(mech.central_output_moment(0.4, 1)) == pytest.approx(0.0, abs=1e-12)

    def test_fourth_moment_against_numeric_integration(self):
        mech = SquareWaveMechanism(0.8)
        x = 1.0
        ys = np.linspace(-mech.b, 1 + mech.b, 400_001)
        dens = mech.pdf(x, ys)
        mean = np.trapezoid(ys * dens, ys)
        mu4 = np.trapezoid((ys - mean) ** 4 * dens, ys)
        assert float(mech.central_output_moment(x, 4)) == pytest.approx(mu4, rel=1e-3)

    def test_variance_positive(self):
        for eps in (0.1, 1.0, 5.0):
            mech = SquareWaveMechanism(eps)
            assert float(mech.output_variance(0.5)) > 0.0
