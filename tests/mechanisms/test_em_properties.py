"""Property-style tests for the EM distribution estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanisms import SquareWaveMechanism


class TestEMSimplexProperties:
    @given(
        eps=st.floats(min_value=0.2, max_value=5.0),
        n_bins=st.integers(min_value=4, max_value=40),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=20, deadline=None)
    def test_output_is_probability_vector(self, eps, n_bins, seed):
        rng = np.random.default_rng(seed)
        mech = SquareWaveMechanism(eps)
        reports = mech.perturb(rng.random(500), rng)
        dist = mech.estimate_distribution(reports, n_bins=n_bins)
        assert dist.shape == (n_bins,)
        assert dist.min() >= 0.0
        assert dist.sum() == pytest.approx(1.0, abs=1e-6)

    def test_permutation_of_reports_irrelevant(self, rng):
        mech = SquareWaveMechanism(1.0)
        reports = mech.perturb(rng.random(2_000), rng)
        a = mech.estimate_distribution(reports, n_bins=16)
        b = mech.estimate_distribution(reports[::-1].copy(), n_bins=16)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_scaling_sample_size_stabilizes(self, rng):
        # Doubling the sample keeps the estimate close (consistency).
        mech = SquareWaveMechanism(2.0)
        truth = np.clip(rng.normal(0.4, 0.1, size=40_000), 0, 1)
        reports = mech.perturb(truth, rng)
        small = mech.estimate_distribution(reports[:20_000], n_bins=10)
        large = mech.estimate_distribution(reports, n_bins=10)
        assert np.abs(small - large).sum() < 0.25

    def test_more_iterations_never_hurts_normalization(self, rng):
        mech = SquareWaveMechanism(1.0)
        reports = mech.perturb(rng.random(1_000), rng)
        for iterations in (1, 10, 100):
            dist = mech.estimate_distribution(
                reports, n_bins=12, max_iterations=iterations
            )
            assert dist.sum() == pytest.approx(1.0, abs=1e-6)

    def test_two_point_mixture_recovered(self, rng):
        mech = SquareWaveMechanism(3.0)
        truth = np.where(rng.random(50_000) < 0.5, 0.2, 0.8)
        reports = mech.perturb(truth, rng)
        dist = mech.estimate_distribution(reports, n_bins=10)
        # Bins around 0.2 and 0.8 carry most of the mass.
        assert dist[1] + dist[2] > 0.25
        assert dist[7] + dist[8] > 0.25
        assert dist[4] + dist[5] < 0.25
