"""Batch API of the mechanism layer: contract and distributional checks."""

import numpy as np
import pytest

from repro.mechanisms import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
)

ALL_MECHANISMS = [
    SquareWaveMechanism,
    PiecewiseMechanism,
    DuchiMechanism,
    LaplaceMechanism,
    HybridMechanism,
]


@pytest.mark.parametrize("mechanism_cls", ALL_MECHANISMS)
def test_batch_contract(mechanism_cls):
    mech = mechanism_cls(1.0)
    values = np.random.default_rng(0).random(257)
    out = mech.perturb_batch(values, np.random.default_rng(1))
    assert out.shape == (257,)
    assert out.dtype == np.float64
    assert np.all(np.isfinite(out))
    assert np.all(mech.output_domain.contains(out))


@pytest.mark.parametrize("mechanism_cls", ALL_MECHANISMS)
def test_batch_empty_slice(mechanism_cls):
    out = mechanism_cls(1.0).perturb_batch(np.empty(0))
    assert out.shape == (0,)


@pytest.mark.parametrize("mechanism_cls", ALL_MECHANISMS)
def test_batch_rejects_matrices(mechanism_cls):
    with pytest.raises(ValueError, match="1-D"):
        mechanism_cls(1.0).perturb_batch(np.zeros((2, 3)))


@pytest.mark.parametrize("mechanism_cls", ALL_MECHANISMS)
def test_batch_is_unbiased(mechanism_cls):
    """Empirical batch mean must track expected_output (law unchanged)."""
    mech = mechanism_cls(2.0)
    x = 0.3
    draws = mech.perturb_batch(np.full(60_000, x), np.random.default_rng(7))
    expected = float(mech.expected_output(x))
    tolerance = 4.5 * float(np.sqrt(mech.output_variance(x) / draws.size))
    assert abs(draws.mean() - expected) < tolerance


@pytest.mark.parametrize("epsilon", [0.4, 2.0])  # below/above the HM threshold
def test_hybrid_batch_matches_perturb_distribution(epsilon):
    """HM's masked-draw batch override keeps the mixture law."""
    mech = HybridMechanism(epsilon)
    x = np.full(40_000, 0.7)
    batch = mech.perturb_batch(x, np.random.default_rng(1))
    loop = mech.perturb(x, np.random.default_rng(2))
    assert batch.mean() == pytest.approx(loop.mean(), abs=0.05)
    assert batch.var() == pytest.approx(loop.var(), rel=0.1)
    # SR mass sits exactly on the two discrete points in both samplers.
    sr_points = mech._sr.output_domain
    batch_sr = np.isin(np.round(batch, 9), np.round([sr_points.low, sr_points.high], 9))
    loop_sr = np.isin(np.round(loop, 9), np.round([sr_points.low, sr_points.high], 9))
    assert batch_sr.mean() == pytest.approx(loop_sr.mean(), abs=0.02)


def test_sw_batch_matches_vectorized_perturb_bitwise():
    """For mechanisms without an override, batch == perturb on the array."""
    mech = SquareWaveMechanism(1.0)
    values = np.random.default_rng(3).random(100)
    np.testing.assert_array_equal(
        mech.perturb_batch(values, np.random.default_rng(9)),
        mech.perturb(values, np.random.default_rng(9)),
    )
