"""Tests for the Mechanism ABC, OutputDomain, and the registry."""

import math

import numpy as np
import pytest

from repro.mechanisms import (
    MECHANISM_REGISTRY,
    Mechanism,
    OutputDomain,
    SquareWaveMechanism,
    make_mechanism,
)


class TestOutputDomain:
    def test_bounded(self):
        dom = OutputDomain(-0.5, 1.5)
        assert dom.is_bounded
        assert dom.width == pytest.approx(2.0)

    def test_unbounded(self):
        dom = OutputDomain(-math.inf, math.inf)
        assert not dom.is_bounded
        assert dom.width == math.inf

    def test_contains(self):
        dom = OutputDomain(0.0, 1.0)
        mask = dom.contains(np.array([-0.5, 0.5, 1.5]))
        assert mask.tolist() == [False, True, False]

    def test_contains_tolerance(self):
        dom = OutputDomain(0.0, 1.0)
        assert bool(dom.contains(1.0 + 1e-12))

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError, match="empty"):
            OutputDomain(1.0, 1.0)


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(MECHANISM_REGISTRY))
    def test_instantiates_every_entry(self, name):
        mech = make_mechanism(name, 1.0)
        assert isinstance(mech, Mechanism)
        assert mech.epsilon == 1.0

    def test_case_insensitive(self):
        assert isinstance(make_mechanism("SW", 1.0), SquareWaveMechanism)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown mechanism"):
            make_mechanism("gauss", 1.0)


class TestPrepare:
    def test_clips_tiny_float_error(self, rng):
        mech = SquareWaveMechanism(1.0)
        # within the 1e-9 tolerance -> accepted and clipped
        out = mech.perturb(np.array([1.0 + 5e-10]), rng)
        assert out.shape == (1,)

    def test_epsilon_property(self):
        assert SquareWaveMechanism(0.25).epsilon == 0.25
