"""Tests for the Laplace, PM, SR, and HM mechanisms (Fig. 9 / ToPL substrate)."""

import math

import numpy as np
import pytest

from repro.mechanisms import (
    DuchiMechanism,
    HybridMechanism,
    LaplaceMechanism,
    PiecewiseMechanism,
)
from repro.mechanisms.hybrid import EPSILON_STAR


class TestLaplace:
    def test_unbiased(self, rng):
        mech = LaplaceMechanism(1.0)
        out = mech.perturb(np.full(200_000, 0.3), rng)
        assert out.mean() == pytest.approx(0.3, abs=0.01)

    def test_variance_matches_analytic(self, rng):
        mech = LaplaceMechanism(1.0)
        out = mech.perturb(np.full(200_000, 0.3), rng)
        assert out.var() == pytest.approx(float(mech.output_variance(0.3)), rel=0.03)

    def test_scale_in_canonical_units(self):
        # Native Lap(2/eps) on [-1,1] halves to Lap(1/eps) canonically.
        mech = LaplaceMechanism(2.0)
        assert mech.scale == pytest.approx(0.5)

    def test_output_unbounded_domain(self):
        dom = LaplaceMechanism(1.0).output_domain
        assert not dom.is_bounded

    def test_small_epsilon_has_huge_noise(self):
        # The paper's motivation: Laplace generates perturbations "well
        # beyond [-1, 1] even with small noise".
        assert float(LaplaceMechanism(0.05).output_variance(0.5)) > 100.0


class TestPiecewise:
    def test_unbiased(self, rng):
        mech = PiecewiseMechanism(1.0)
        for x in (0.0, 0.5, 1.0):
            out = mech.perturb(np.full(200_000, x), rng)
            assert out.mean() == pytest.approx(x, abs=0.02)

    def test_output_within_domain(self, rng):
        mech = PiecewiseMechanism(1.0)
        out = mech.perturb(rng.random(50_000), rng)
        dom = mech.output_domain
        assert out.min() >= dom.low - 1e-9
        assert out.max() <= dom.high + 1e-9

    def test_variance_matches_analytic(self, rng):
        mech = PiecewiseMechanism(1.5)
        out = mech.perturb(np.full(200_000, 0.7), rng)
        assert out.var() == pytest.approx(float(mech.output_variance(0.7)), rel=0.05)

    def test_small_epsilon_wide_domain(self):
        # Paper Section IV-C: PM at eps=0.01 spans roughly [-400, 400]
        # natively, i.e. C ~= 400.
        mech = PiecewiseMechanism(0.01)
        assert mech.C == pytest.approx(400.0, rel=0.01)

    def test_window_inside_output_domain(self):
        mech = PiecewiseMechanism(1.0)
        for t in (-1.0, 0.0, 1.0):
            left, right = mech._window(np.array([t]))
            assert left[0] >= -mech.C - 1e-9
            assert right[0] <= mech.C + 1e-9


class TestDuchi:
    def test_binary_output(self, rng):
        mech = DuchiMechanism(1.0)
        out = mech.perturb(rng.random(10_000), rng)
        assert len(np.unique(out)) == 2

    def test_unbiased(self, rng):
        mech = DuchiMechanism(1.0)
        for x in (0.1, 0.5, 0.9):
            out = mech.perturb(np.full(300_000, x), rng)
            assert out.mean() == pytest.approx(x, abs=0.02)

    def test_positive_probability_bounds(self):
        mech = DuchiMechanism(2.0)
        probs = mech.positive_probability(np.linspace(0, 1, 11))
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)

    def test_positive_probability_respects_ldp_ratio(self):
        eps = 1.0
        mech = DuchiMechanism(eps)
        p1 = float(mech.positive_probability(1.0))
        p0 = float(mech.positive_probability(0.0))
        assert p1 / p0 <= math.exp(eps) + 1e-9
        assert (1 - p0) / (1 - p1) <= math.exp(eps) + 1e-9

    def test_output_domain_discrete(self):
        assert DuchiMechanism(1.0).output_domain.discrete

    def test_variance_matches_analytic(self, rng):
        mech = DuchiMechanism(1.0)
        out = mech.perturb(np.full(200_000, 0.3), rng)
        assert out.var() == pytest.approx(float(mech.output_variance(0.3)), rel=0.03)


class TestHybrid:
    def test_degenerates_to_sr_below_threshold(self):
        assert HybridMechanism(EPSILON_STAR).alpha == 0.0
        assert HybridMechanism(0.3).alpha == 0.0

    def test_alpha_above_threshold(self):
        mech = HybridMechanism(2.0)
        assert mech.alpha == pytest.approx(1.0 - math.exp(-1.0))

    def test_unbiased(self, rng):
        for eps in (0.3, 2.0):
            mech = HybridMechanism(eps)
            out = mech.perturb(np.full(300_000, 0.4), rng)
            assert out.mean() == pytest.approx(0.4, abs=0.03)

    def test_variance_is_mixture(self, rng):
        mech = HybridMechanism(2.0)
        out = mech.perturb(np.full(300_000, 0.6), rng)
        assert out.var() == pytest.approx(float(mech.output_variance(0.6)), rel=0.05)

    def test_output_domain_covers_components(self):
        mech = HybridMechanism(2.0)
        dom = mech.output_domain
        assert dom.low <= mech._pm.output_domain.low
        assert dom.high >= mech._sr.output_domain.high
