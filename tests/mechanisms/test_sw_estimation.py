"""Tests for collector-side SW distribution/mean estimation (EM / EMS)."""

import numpy as np
import pytest

from repro.mechanisms import SquareWaveMechanism


class TestTransitionMatrix:
    def test_columns_sum_to_one(self):
        mech = SquareWaveMechanism(1.0)
        matrix = mech.transition_matrix(16, 32)
        np.testing.assert_allclose(matrix.sum(axis=0), 1.0, atol=1e-9)

    def test_shape(self):
        mech = SquareWaveMechanism(1.0)
        assert mech.transition_matrix(8, 24).shape == (24, 8)

    def test_entries_nonnegative(self):
        mech = SquareWaveMechanism(0.2)
        assert mech.transition_matrix(10, 20).min() >= 0.0

    def test_diagonal_dominance_direction(self):
        # The output bin containing the input's near-window should carry
        # more mass than a far bin.
        mech = SquareWaveMechanism(2.0)
        matrix = mech.transition_matrix(4, 16)
        # input bin 0 center = 0.125; near bins are those around it.
        width = 1 + 2 * mech.b
        center_bin = int((0.125 + mech.b) / width * 16)
        far_bin = 15
        assert matrix[center_bin, 0] > matrix[far_bin, 0]


class TestEstimateDistribution:
    def test_recovers_point_mass_location(self, rng):
        mech = SquareWaveMechanism(2.0)
        reports = mech.perturb(np.full(30_000, 0.75), rng)
        dist = mech.estimate_distribution(reports, n_bins=20)
        assert dist.sum() == pytest.approx(1.0, abs=1e-6)
        peak_center = (np.argmax(dist) + 0.5) / 20
        assert peak_center == pytest.approx(0.75, abs=0.1)

    def test_recovers_uniform_roughly(self, rng):
        mech = SquareWaveMechanism(2.0)
        truth = rng.random(40_000)
        reports = mech.perturb(truth, rng)
        dist = mech.estimate_distribution(reports, n_bins=10)
        # Every bin should carry mass in the right ballpark of 0.1.
        assert dist.min() > 0.02
        assert dist.max() < 0.25

    def test_rejects_empty_reports(self):
        mech = SquareWaveMechanism(1.0)
        with pytest.raises(ValueError, match="non-empty"):
            mech.estimate_distribution(np.array([]))

    def test_smoothing_off_still_normalizes(self, rng):
        mech = SquareWaveMechanism(1.0)
        reports = mech.perturb(rng.random(5_000), rng)
        dist = mech.estimate_distribution(reports, n_bins=16, smoothing=False)
        assert dist.sum() == pytest.approx(1.0, abs=1e-6)
        assert dist.min() >= 0.0

    def test_reports_outside_domain_are_clipped_not_fatal(self, rng):
        mech = SquareWaveMechanism(1.0)
        reports = np.concatenate([mech.perturb(rng.random(1_000), rng), [5.0, -5.0]])
        dist = mech.estimate_distribution(reports, n_bins=8)
        assert dist.sum() == pytest.approx(1.0, abs=1e-6)


class TestEstimateMean:
    @pytest.mark.parametrize("true_mean", [0.3, 0.6])
    def test_mean_estimate_close(self, rng, true_mean):
        mech = SquareWaveMechanism(2.0)
        truth = np.clip(rng.normal(true_mean, 0.05, size=30_000), 0, 1)
        reports = mech.perturb(truth, rng)
        assert mech.estimate_mean(reports, n_bins=32) == pytest.approx(
            true_mean, abs=0.08
        )
