"""Tests for repro.mechanisms.moments against the paper's closed forms
and Monte Carlo estimates."""

import math

import numpy as np
import pytest

from repro.mechanisms import (
    SquareWaveMechanism,
    deviation_expectation_closed_form,
    deviation_moments,
    deviation_variance_closed_form,
    output_moments_at_one,
    sampling_objective,
    variance_of_sample_variance,
)


class TestDeviationMoments:
    @pytest.mark.parametrize("eps", [0.1, 0.5, 1.0, 3.0])
    @pytest.mark.parametrize("x", [0.0, 0.5, 1.0])
    def test_mean_matches_paper_closed_form(self, eps, x):
        # Paper: E(D_x) = q((1 + 2b)x - (b + 1/2)).
        ours = deviation_moments(eps, x).mean
        paper = deviation_expectation_closed_form(eps, x)
        assert ours == pytest.approx(paper, rel=1e-10, abs=1e-12)

    @pytest.mark.parametrize("eps", [0.2, 1.0, 2.0])
    def test_variance_monte_carlo(self, rng, eps):
        mech = SquareWaveMechanism(eps)
        x = 1.0
        deviations = x - mech.perturb(np.full(200_000, x), rng)
        assert deviation_moments(eps, x).variance == pytest.approx(
            deviations.var(), rel=0.03
        )

    def test_variance_decreases_with_epsilon(self):
        variances = [deviation_moments(e).variance for e in (0.1, 0.5, 1.0, 2.0, 5.0)]
        assert all(a > b for a, b in zip(variances, variances[1:]))

    def test_std_is_sqrt_variance(self):
        m = deviation_moments(1.0)
        assert m.std == pytest.approx(math.sqrt(m.variance))


class TestPaperClosedFormVariance:
    """The paper's Var(D_x) closed form vs our exact integration at x=1."""

    @pytest.mark.parametrize("eps", [0.3, 0.7, 1.0, 2.0])
    def test_agreement_up_to_mean_term(self, eps):
        # The paper's closed form drops the (E D)^2 term's x-dependence by
        # evaluating at x=1; our exact Var at x=1 should match it closely.
        exact = deviation_moments(eps, x=1.0).variance
        paper = deviation_variance_closed_form(eps)
        # The printed formula carries minor typos; agreement within a few
        # percent confirms we reproduce the intended quantity.
        assert paper == pytest.approx(exact, rel=0.05)


class TestOutputMomentsAtOne:
    def test_against_monte_carlo(self, rng):
        eps = 1.0
        mu, sigma2, mu4 = output_moments_at_one(eps)
        mech = SquareWaveMechanism(eps)
        out = mech.perturb(np.full(300_000, 1.0), rng)
        assert mu == pytest.approx(out.mean(), abs=0.005)
        assert sigma2 == pytest.approx(out.var(), rel=0.02)
        assert mu4 == pytest.approx(((out - out.mean()) ** 4).mean(), rel=0.05)

    def test_paper_mu_closed_form(self):
        # mu = 2bp - bq + q/2 at x = 1.
        eps = 0.8
        mech = SquareWaveMechanism(eps)
        mu, _, _ = output_moments_at_one(eps)
        paper = 2 * mech.b * mech.p - mech.b * mech.q + mech.q / 2
        assert mu == pytest.approx(paper, rel=1e-10)


class TestVarianceOfSampleVariance:
    def test_classical_formula(self):
        # For n samples: Var(S^2) = (mu4 - sigma^4 (n-3)/(n-1)) / n.
        value = variance_of_sample_variance(10, sigma2=2.0, mu4=7.0)
        expected = (7.0 - 4.0 * 7.0 / 9.0) / 10.0
        assert value == pytest.approx(expected)

    def test_literal_paper_variant(self):
        value = variance_of_sample_variance(10, sigma2=2.0, mu4=7.0, literal=True)
        expected = (7.0 - 2.0 * 7.0 / 9.0) / 10.0
        assert value == pytest.approx(expected)

    def test_single_sample_is_infinite(self):
        assert variance_of_sample_variance(1, 1.0, 1.0) == math.inf

    def test_monte_carlo_agreement(self, rng):
        # Simulate the sample variance of n SW(1) draws many times.
        eps, n = 1.0, 8
        mech = SquareWaveMechanism(eps)
        draws = mech.perturb(np.ones((20_000, n)), rng)
        sample_vars = draws.var(axis=1, ddof=1)
        _, sigma2, mu4 = output_moments_at_one(eps)
        predicted = variance_of_sample_variance(n, sigma2, mu4)
        assert sample_vars.var() == pytest.approx(predicted, rel=0.08)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            variance_of_sample_variance(0, 1.0, 1.0)


class TestSamplingObjective:
    def test_positive_and_finite_for_n_at_least_two(self):
        assert 0 < sampling_objective(2, 1.0) < math.inf
        assert 0 < sampling_objective(50, 0.5) < math.inf

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            sampling_objective(5, 0.0)
