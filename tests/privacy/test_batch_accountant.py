"""BatchWEventAccountant: lockstep equivalence with scalar accountants."""

import numpy as np
import pytest

from repro.privacy import (
    BatchWEventAccountant,
    PrivacyBudgetExceededError,
    WEventAccountant,
)


def test_matches_independent_scalar_accountants():
    rng = np.random.default_rng(0)
    n_users, w, epsilon, horizon = 7, 4, 1.0, 25
    per_slot = epsilon / w

    batch = BatchWEventAccountant(epsilon, w, n_users)
    scalars = [WEventAccountant(epsilon, w) for _ in range(n_users)]
    spend_history = []
    for t in range(horizon):
        mask = rng.random(n_users) < 0.6
        spends = np.where(mask, per_slot, 0.0)
        batch.charge_next(spends)
        for i, acct in enumerate(scalars):
            acct.charge(t, spends[i])
        spend_history.append(spends)

    matrix = batch.spends_matrix()
    assert matrix.shape == (horizon, n_users)
    np.testing.assert_array_equal(matrix, np.stack(spend_history))
    for i, acct in enumerate(scalars):
        np.testing.assert_allclose(batch.user_spends(i), acct._spends)
        assert batch.window_spend()[i] == pytest.approx(acct.window_spend())
        assert batch.max_window_spend()[i] == pytest.approx(acct.max_window_spend())
    batch.assert_valid()


def test_scalar_spend_broadcasts():
    batch = BatchWEventAccountant(1.0, 2, 3)
    batch.charge_next(0.5)
    np.testing.assert_allclose(batch.window_spend(), [0.5, 0.5, 0.5])
    assert batch.current_slot == 0


def test_overspend_rejected_per_user():
    batch = BatchWEventAccountant(1.0, 2, 3)
    batch.charge_next([0.5, 0.5, 0.5])
    overspend = np.array([0.4, 0.6, 0.4])  # user 1 would hit 1.1 in-window
    with pytest.raises(PrivacyBudgetExceededError, match="user 1"):
        batch.charge_next(overspend)
    # The rejected charge must not have been recorded.
    assert batch.current_slot == 0
    np.testing.assert_allclose(batch.window_spend(), [0.5, 0.5, 0.5])


def test_window_eviction_allows_sustained_rate():
    batch = BatchWEventAccountant(1.0, 3, 2)
    for _ in range(20):  # eps/w per slot forever is exactly sustainable
        batch.charge_next(1.0 / 3.0)
    np.testing.assert_allclose(batch.window_spend(), [1.0, 1.0])
    batch.assert_valid()


def test_negative_spend_rejected():
    batch = BatchWEventAccountant(1.0, 2, 2)
    with pytest.raises(ValueError, match="non-negative"):
        batch.charge_next([-0.1, 0.0])


def test_nan_and_inf_spends_rejected():
    """NaN must not silently poison the window totals (batch and scalar)."""
    batch = BatchWEventAccountant(1.0, 2, 2)
    with pytest.raises(ValueError, match="finite"):
        batch.charge_next([np.nan, 0.0])
    with pytest.raises(ValueError, match="finite"):
        batch.charge_next(np.inf)
    # Rejected charges leave the invariant machinery functional.
    batch.charge_next(0.5)
    with pytest.raises(PrivacyBudgetExceededError):
        batch.charge_next(0.6)
    scalar = WEventAccountant(1.0, 2)
    with pytest.raises(ValueError, match="finite"):
        scalar.charge(0, float("nan"))
    with pytest.raises(ValueError, match="finite"):
        scalar.charge(0, float("inf"))


def test_record_history_false_bounds_memory_but_keeps_invariant():
    batch = BatchWEventAccountant(1.0, 3, 4, record_history=False)
    for _ in range(50):
        batch.charge_next(1.0 / 3.0)
    assert len(batch._history) == 0
    np.testing.assert_allclose(batch.window_spend(), np.ones(4))
    np.testing.assert_allclose(batch.max_window_spend(), np.ones(4))
    batch.assert_valid()
    with pytest.raises(PrivacyBudgetExceededError):
        batch.charge_next(0.5)
    with pytest.raises(RuntimeError, match="record_history"):
        batch.user_spends(0)
    with pytest.raises(RuntimeError, match="record_history"):
        batch.spends_matrix()
    with pytest.raises(RuntimeError, match="record_history"):
        batch.window_spend(2)


def test_empty_history_audits_clean():
    batch = BatchWEventAccountant(1.0, 2, 2)
    batch.assert_valid()
    assert batch.spends_matrix().shape == (0, 2)
    np.testing.assert_array_equal(batch.max_window_spend(), [0.0, 0.0])
