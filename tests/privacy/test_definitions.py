"""Tests for w-neighboring stream predicates and generators."""

import numpy as np
import pytest

from repro.privacy import are_w_neighboring, differing_span, make_w_neighbor


class TestDifferingSpan:
    def test_identical_streams(self):
        s = np.array([0.1, 0.2, 0.3])
        assert differing_span(s, s) is None

    def test_single_difference(self):
        a = np.array([0.1, 0.2, 0.3])
        b = np.array([0.1, 0.9, 0.3])
        assert differing_span(a, b) == (1, 1)

    def test_span_endpoints(self):
        a = np.zeros(6)
        b = np.zeros(6)
        b[1] = 1.0
        b[4] = 1.0
        assert differing_span(a, b) == (1, 4)

    def test_atol_tolerance(self):
        a = np.array([0.1, 0.2])
        b = np.array([0.1, 0.2 + 1e-12])
        assert differing_span(a, b, atol=1e-9) is None

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            differing_span(np.zeros(3), np.zeros(4))


class TestAreWNeighboring:
    def test_within_window(self):
        a = np.zeros(10)
        b = a.copy()
        b[3:6] = 1.0  # span length 3
        assert are_w_neighboring(a, b, w=3)
        assert not are_w_neighboring(a, b, w=2)

    def test_identical_always_neighboring(self):
        s = np.full(5, 0.5)
        assert are_w_neighboring(s, s, w=1)

    def test_scattered_differences(self):
        a = np.zeros(10)
        b = a.copy()
        b[0] = 1.0
        b[9] = 1.0  # span 10
        assert are_w_neighboring(a, b, w=10)
        assert not are_w_neighboring(a, b, w=9)


class TestMakeWNeighbor:
    def test_produces_neighbor(self, rng):
        stream = rng.random(30)
        neighbor = make_w_neighbor(stream, w=5, start=10, rng=rng)
        assert are_w_neighboring(stream, neighbor, w=5)
        # Unchanged outside the window.
        np.testing.assert_array_equal(stream[:10], neighbor[:10])
        np.testing.assert_array_equal(stream[15:], neighbor[15:])

    def test_window_clipped_at_stream_end(self, rng):
        stream = rng.random(10)
        neighbor = make_w_neighbor(stream, w=5, start=8, rng=rng)
        assert neighbor.size == 10
        np.testing.assert_array_equal(stream[:8], neighbor[:8])

    def test_values_stay_in_unit_interval(self, rng):
        stream = rng.random(20)
        neighbor = make_w_neighbor(stream, w=20, start=0, rng=rng)
        assert neighbor.min() >= 0.0 and neighbor.max() <= 1.0

    def test_invalid_start_rejected(self, rng):
        with pytest.raises(ValueError):
            make_w_neighbor(rng.random(5), w=2, start=5, rng=rng)
