"""Tests for composition theorems and budget-splitting helpers."""

import pytest

from repro.privacy import (
    BudgetAllocation,
    parallel_composition,
    per_sample_budget,
    per_slot_budget,
    samples_per_window,
    sequential_composition,
)


class TestComposition:
    def test_sequential_sums(self):
        assert sequential_composition([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_parallel_takes_max(self):
        assert parallel_composition([0.1, 0.5, 0.3]) == pytest.approx(0.5)

    def test_sequential_single(self):
        assert sequential_composition([1.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sequential_composition([])
        with pytest.raises(ValueError):
            parallel_composition([])

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            sequential_composition([0.1, -0.2])


class TestPerSlotBudget:
    def test_division(self):
        assert per_slot_budget(1.0, 10) == pytest.approx(0.1)

    def test_w_one_keeps_full_budget(self):
        assert per_slot_budget(2.0, 1) == 2.0


class TestSamplesPerWindow:
    @pytest.mark.parametrize(
        "w,seg,expected",
        [
            (3, 3, 1),   # Fig. 3's worked example: full budget per upload
            (10, 5, 2),
            (10, 3, 4),
            (10, 1, 10),  # degenerate sampling = per-slot budget
            (10, 20, 1),
            (7, 2, 4),
        ],
    )
    def test_ceiling_rule(self, w, seg, expected):
        assert samples_per_window(w, seg) == expected

    def test_per_sample_budget_theorem6(self):
        # seg_len = 3, w = 3 -> n_w = 1 -> full epsilon (Fig. 3).
        assert per_sample_budget(1.0, 3, 3) == pytest.approx(1.0)
        # seg_len = 1 degenerates to eps / w.
        assert per_sample_budget(1.0, 10, 1) == pytest.approx(0.1)

    def test_window_guarantee_holds(self):
        # n_w uploads of eps/n_w each can never exceed eps in a window.
        for w in (3, 7, 10):
            for seg in (1, 2, 3, 5, 12):
                n_w = samples_per_window(w, seg)
                assert n_w * per_sample_budget(1.0, w, seg) <= 1.0 + 1e-12


class TestBudgetAllocation:
    def test_even_split(self):
        alloc = BudgetAllocation.even_split(1.0, 4)
        assert alloc.parts == (0.25, 0.25, 0.25, 0.25)

    def test_weighted_split(self):
        alloc = BudgetAllocation.weighted_split(1.0, [1, 3])
        assert alloc.parts[0] == pytest.approx(0.25)
        assert alloc.parts[1] == pytest.approx(0.75)

    def test_rejects_oversubscription(self):
        with pytest.raises(ValueError, match="sum"):
            BudgetAllocation(1.0, (0.6, 0.6))

    def test_rejects_empty_parts(self):
        with pytest.raises(ValueError):
            BudgetAllocation(1.0, ())

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            BudgetAllocation.weighted_split(1.0, [1.0, 0.0])

    def test_undersubscription_allowed(self):
        alloc = BudgetAllocation(1.0, (0.3, 0.3))
        assert sum(alloc.parts) < alloc.total
