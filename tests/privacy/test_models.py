"""Tests for the stream-privacy model allocators."""

import pytest

from repro.privacy import EventLevel, PrivacyModel, UserLevel, WEvent


class TestEventLevel:
    def test_full_budget_every_slot(self):
        model = EventLevel(1.0)
        assert model.per_slot_budget(100) == 1.0
        assert model.per_slot_budget(1) == 1.0

    def test_protects_single_event(self):
        assert EventLevel(1.0).protected_span(100) == 1


class TestUserLevel:
    def test_splits_over_horizon(self):
        model = UserLevel(1.0)
        assert model.per_slot_budget(100) == pytest.approx(0.01)

    def test_protects_everything(self):
        assert UserLevel(1.0).protected_span(100) == 100

    def test_degrades_with_horizon(self):
        model = UserLevel(1.0)
        assert model.per_slot_budget(1_000) < model.per_slot_budget(10)


class TestWEvent:
    def test_budget_independent_of_horizon(self):
        model = WEvent(1.0, 10)
        assert model.per_slot_budget(100) == pytest.approx(0.1)
        assert model.per_slot_budget(10_000) == pytest.approx(0.1)

    def test_protected_span_capped_by_horizon(self):
        model = WEvent(1.0, 10)
        assert model.protected_span(100) == 10
        assert model.protected_span(5) == 5

    def test_interpolates_between_extremes(self):
        horizon = 100
        event = EventLevel(1.0).per_slot_budget(horizon)
        user = UserLevel(1.0).per_slot_budget(horizon)
        w_event = WEvent(1.0, 10).per_slot_budget(horizon)
        assert user < w_event < event


class TestCommon:
    @pytest.mark.parametrize(
        "model",
        [EventLevel(1.0), UserLevel(1.0), WEvent(1.0, 5)],
    )
    def test_describe(self, model):
        text = model.describe(50)
        assert type(model).__name__ in text

    def test_abstract_base(self):
        with pytest.raises(TypeError):
            PrivacyModel(1.0)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            EventLevel(1.0).per_slot_budget(0)
