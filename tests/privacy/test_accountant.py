"""Tests for the runtime w-event privacy accountant."""

import pytest

from repro.privacy import PrivacyBudgetExceededError, WEventAccountant


class TestBasicCharging:
    def test_single_charge(self):
        acct = WEventAccountant(1.0, 3)
        acct.charge(0, 0.4)
        assert acct.slot_spend(0) == pytest.approx(0.4)
        assert acct.window_spend(0) == pytest.approx(0.4)

    def test_window_spend_slides(self):
        acct = WEventAccountant(1.0, 2)
        acct.charge(0, 0.5)
        acct.charge(1, 0.5)
        acct.charge(2, 0.5)  # window [1, 2] = 1.0, ok
        assert acct.window_spend(2) == pytest.approx(1.0)
        assert acct.window_spend(1) == pytest.approx(1.0)

    def test_skipped_slots_spend_zero(self):
        acct = WEventAccountant(1.0, 3)
        acct.charge(5, 0.3)
        assert acct.slot_spend(2) == 0.0
        assert acct.current_slot == 5

    def test_same_slot_composes_sequentially(self):
        acct = WEventAccountant(1.0, 3)
        acct.charge(0, 0.2)
        acct.charge(0, 0.3)
        assert acct.slot_spend(0) == pytest.approx(0.5)

    def test_full_budget_in_one_slot(self):
        acct = WEventAccountant(1.0, 5)
        acct.charge(0, 1.0)
        acct.assert_valid()


class TestViolations:
    def test_overspend_single_slot(self):
        acct = WEventAccountant(1.0, 3)
        with pytest.raises(PrivacyBudgetExceededError):
            acct.charge(0, 1.5)

    def test_overspend_across_window(self):
        acct = WEventAccountant(1.0, 2)
        acct.charge(0, 0.6)
        with pytest.raises(PrivacyBudgetExceededError):
            acct.charge(1, 0.6)

    def test_spend_ok_once_window_slides_past(self):
        acct = WEventAccountant(1.0, 2)
        acct.charge(0, 0.9)
        acct.charge(1, 0.1)
        acct.charge(2, 0.9)  # window [1, 2] = 1.0
        acct.assert_valid()

    def test_out_of_order_rejected(self):
        acct = WEventAccountant(1.0, 3)
        acct.charge(4, 0.1)
        with pytest.raises(ValueError, match="order"):
            acct.charge(2, 0.1)

    def test_negative_spend_rejected(self):
        acct = WEventAccountant(1.0, 3)
        with pytest.raises(ValueError, match="non-negative"):
            acct.charge(0, -0.1)

    def test_failed_charge_leaves_state_unchanged(self):
        acct = WEventAccountant(1.0, 2)
        acct.charge(0, 0.6)
        with pytest.raises(PrivacyBudgetExceededError):
            acct.charge(0, 0.6)
        assert acct.slot_spend(0) == pytest.approx(0.6)
        acct.charge(1, 0.4)  # still fine afterwards
        acct.assert_valid()


class TestAudit:
    def test_max_window_spend(self):
        acct = WEventAccountant(1.0, 2)
        acct.charge(0, 0.2)
        acct.charge(1, 0.7)
        acct.charge(2, 0.3)
        assert acct.max_window_spend() == pytest.approx(1.0)

    def test_max_window_spend_empty(self):
        assert WEventAccountant(1.0, 2).max_window_spend() == 0.0

    def test_long_stream_constant_rate(self):
        # eps/w per slot for 200 slots never violates.
        acct = WEventAccountant(1.0, 10)
        for t in range(200):
            acct.charge(t, 0.1)
        acct.assert_valid()
        assert acct.max_window_spend() == pytest.approx(1.0)

    def test_window_spend_unknown_slot(self):
        acct = WEventAccountant(1.0, 2)
        with pytest.raises(ValueError):
            acct.window_spend(0)
