"""Tests for the budget-absorption BA-SW baseline."""

import numpy as np
import pytest

from repro.baselines import BASW


class TestConstruction:
    def test_budget_split(self):
        basw = BASW(1.0, 10, probe_fraction=0.5)
        assert basw.probe_epsilon == pytest.approx(0.05)
        assert basw.publish_share == pytest.approx(0.05)
        assert basw.pot_cap == pytest.approx(0.25)

    def test_probe_fraction_bounds(self):
        with pytest.raises(ValueError):
            BASW(1.0, 10, probe_fraction=0.0)
        with pytest.raises(ValueError):
            BASW(1.0, 10, probe_fraction=1.0)

    def test_asymmetric_fraction(self):
        basw = BASW(1.0, 10, probe_fraction=0.2)
        assert basw.probe_epsilon == pytest.approx(0.02)
        assert basw.publish_share == pytest.approx(0.08)


class TestBehaviour:
    def test_respects_w_event_budget(self, smooth_stream, rng):
        result = BASW(1.0, 10).perturb_stream(smooth_stream, rng)
        result.accountant.assert_valid()
        assert result.accountant.max_window_spend() <= 1.0 + 1e-9

    def test_respects_budget_on_constant_stream(self, rng):
        # Long constant stretches trigger heavy approximation + large pot
        # spends: the stress case for the absorption bookkeeping.
        stream = np.full(500, 0.42)
        result = BASW(1.0, 10).perturb_stream(stream, rng)
        result.accountant.assert_valid()

    def test_respects_budget_on_step_stream(self, step_stream, rng):
        result = BASW(1.0, 10).perturb_stream(step_stream, rng)
        result.accountant.assert_valid()

    def test_approximated_slots_repeat_last_report(self, rng):
        stream = np.full(100, 0.3)
        result = BASW(1.0, 10).perturb_stream(stream, rng)
        # On a constant stream most slots approximate: the report series
        # must contain long runs of identical values.
        runs = np.sum(np.diff(result.perturbed) == 0.0)
        assert runs > 50

    def test_first_slot_always_publishes(self, smooth_stream, rng):
        result = BASW(1.0, 10).perturb_stream(smooth_stream, rng)
        # Slot 0 must spend more than the probe alone.
        assert result.accountant.slot_spend(0) > BASW(1.0, 10).probe_epsilon

    def test_constant_stream_beats_direct_at_large_epsilon(self):
        # The paper's Power-dataset observation: on constant-heavy streams
        # at large eps, budget absorption beats per-slot reporting.
        from repro.baselines import SWDirect

        stream = np.full(200, 0.7)
        ba_err, direct_err = [], []
        for rep in range(10):
            local = np.random.default_rng(400 + rep)
            ba = BASW(3.0, 10).perturb_stream(stream, local)
            direct = SWDirect(3.0, 10).perturb_stream(stream, local)
            ba_err.append(np.mean((ba.perturbed - stream) ** 2))
            direct_err.append(np.mean((direct.perturbed - stream) ** 2))
        assert np.mean(ba_err) < np.mean(direct_err)

    def test_deterministic_given_seed(self, smooth_stream):
        a = BASW(1.0, 10).perturb_stream(smooth_stream, np.random.default_rng(9))
        b = BASW(1.0, 10).perturb_stream(smooth_stream, np.random.default_rng(9))
        np.testing.assert_array_equal(a.perturbed, b.perturbed)
