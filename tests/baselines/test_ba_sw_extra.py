"""Deeper BA-SW behaviour coverage: absorption dynamics and thresholds."""

import numpy as np

from repro.baselines import BASW


class TestAbsorptionDynamics:
    def test_step_stream_publishes_after_jump(self, step_stream, rng):
        # A large level shift must eventually trigger a real publication:
        # the reports after the jump should move toward the new level.
        result = BASW(3.0, 10).perturb_stream(step_stream, rng)
        before = result.perturbed[30:40].mean()   # level 0.2 region
        after = result.perturbed[55:70].mean()    # level 0.8 region
        assert after > before

    def test_constant_stream_publishes_rarely(self, rng):
        stream = np.full(300, 0.5)
        result = BASW(2.0, 10).perturb_stream(stream, rng)
        n_distinct = np.sum(np.diff(result.perturbed) != 0.0) + 1
        # Far fewer publications than slots.
        assert n_distinct < 100

    def test_noisy_stream_publishes_often(self, rng):
        stream = rng.random(300)
        result = BASW(2.0, 10).perturb_stream(stream, rng)
        n_changes = np.sum(np.diff(result.perturbed) != 0.0)
        # A rapidly changing stream triggers many publications.
        assert n_changes > 30

    def test_probe_fraction_trades_decisions_for_noise(self, rng):
        # Both extremes still satisfy the ledger — the property that
        # actually matters for correctness.
        stream = np.clip(0.5 + 0.3 * np.sin(np.arange(150) / 10), 0, 1)
        for fraction in (0.2, 0.5, 0.8):
            result = BASW(1.0, 10, probe_fraction=fraction).perturb_stream(
                stream, rng
            )
            result.accountant.assert_valid()

    def test_window_one_degenerates_gracefully(self, rng):
        # w = 1: each slot gets the whole budget; absorption has no room.
        stream = rng.random(50)
        result = BASW(1.0, 1).perturb_stream(stream, rng)
        result.accountant.assert_valid()

    def test_published_values_are_sw_outputs(self, rng):
        # All reports must lie in a legal SW output domain for *some*
        # budget <= pot cap: the widest domain is [-1/2, 3/2].
        stream = rng.random(200)
        result = BASW(1.0, 10).perturb_stream(stream, rng)
        assert result.perturbed.min() >= -0.5 - 1e-9
        assert result.perturbed.max() <= 1.5 + 1e-9
