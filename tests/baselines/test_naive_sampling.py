"""Tests for the naive Sampling baseline."""

import numpy as np

from repro.baselines import NaiveSampling
from repro.core import PPSampling


class TestNaiveSampling:
    def test_is_ppsampling_with_direct_base(self):
        assert issubclass(NaiveSampling, PPSampling)

    def test_runs(self, smooth_stream, rng):
        result = NaiveSampling(1.0, 10, n_samples=6).perturb_stream(
            smooth_stream, rng
        )
        assert result.n_samples == 6
        assert result.perturbed.size == smooth_stream.size

    def test_no_feedback_in_base(self, smooth_stream, rng):
        # The inner SW-direct perturber feeds segment means straight
        # through: inputs equal the (clipped) segment means.
        result = NaiveSampling(1.0, 10, n_samples=6).perturb_stream(
            smooth_stream, rng
        )
        np.testing.assert_allclose(
            result.base_result.inputs, result.segment_means
        )

    def test_budget_valid(self, smooth_stream, rng):
        result = NaiveSampling(1.0, 10, n_samples=12).perturb_stream(
            smooth_stream, rng
        )
        result.accountant.assert_valid()

    def test_feedback_variant_beats_naive_on_mean(self):
        # APP-S's deviation feedback should improve on naive sampling for
        # long streams (the Fig. 6 "Sampling worst" claim).
        stream = np.clip(0.5 + 0.4 * np.sin(np.arange(120) / 10), 0, 1)
        naive_err, app_err = [], []
        for rep in range(15):
            local = np.random.default_rng(600 + rep)
            naive = NaiveSampling(1.0, 10, n_samples=12).perturb_stream(
                stream, local
            )
            app_s = PPSampling(1.0, 10, base="app", n_samples=12).perturb_stream(
                stream, local
            )
            naive_err.append((naive.mean_estimate() - stream.mean()) ** 2)
            app_err.append((app_s.mean_estimate() - stream.mean()) ** 2)
        assert np.mean(app_err) < np.mean(naive_err)
