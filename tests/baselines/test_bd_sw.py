"""Tests for the Budget-Distribution BD-SW extension baseline."""

import numpy as np
import pytest

from repro.baselines import BASW, BDSW


class TestConstruction:
    def test_pool_and_probe_split(self):
        bd = BDSW(1.0, 10, probe_fraction=0.5)
        assert bd.probe_epsilon == pytest.approx(0.05)
        assert bd.publish_pool == pytest.approx(0.5)

    def test_probe_fraction_bounds(self):
        with pytest.raises(ValueError):
            BDSW(1.0, 10, probe_fraction=0.0)
        with pytest.raises(ValueError):
            BDSW(1.0, 10, probe_fraction=1.0)


class TestPrivacy:
    @pytest.mark.parametrize("w", [1, 5, 10])
    def test_ledger_valid_on_smooth_stream(self, smooth_stream, rng, w):
        result = BDSW(1.0, w).perturb_stream(smooth_stream, rng)
        result.accountant.assert_valid()
        assert result.accountant.max_window_spend() <= 1.0 + 1e-9

    def test_ledger_valid_on_volatile_stream(self, rng):
        result = BDSW(1.0, 10).perturb_stream(rng.random(300), rng)
        result.accountant.assert_valid()

    def test_ledger_valid_on_constant_stream(self, rng):
        result = BDSW(2.0, 10).perturb_stream(np.full(300, 0.4), rng)
        result.accountant.assert_valid()


class TestBehaviour:
    def test_halving_rule_first_publications(self, rng):
        # The first publication may spend at most pool/2.
        bd = BDSW(1.0, 10)
        stream = rng.random(30)
        result = bd.perturb_stream(stream, rng)
        slot0 = result.accountant.slot_spend(0)
        assert slot0 <= bd.probe_epsilon + bd.publish_pool / 2.0 + 1e-9
        assert slot0 > bd.probe_epsilon  # it did publish something

    def test_reports_within_sw_envelope(self, rng):
        result = BDSW(1.0, 10).perturb_stream(rng.random(200), rng)
        assert result.perturbed.min() >= -0.5 - 1e-9
        assert result.perturbed.max() <= 1.5 + 1e-9

    def test_constant_stream_approximates(self, rng):
        result = BDSW(2.0, 10).perturb_stream(np.full(200, 0.6), rng)
        repeats = np.sum(np.diff(result.perturbed) == 0.0)
        assert repeats > 100

    def test_reacts_faster_than_ba_after_jump(self):
        # BD has no payback dead-time, so after a level shift its reports
        # move to the new level at least as fast as BA's on average.
        stream = np.concatenate([np.full(60, 0.2), np.full(60, 0.9)])
        bd_lag, ba_lag = [], []
        for rep in range(10):
            rng = np.random.default_rng(5000 + rep)
            bd = BDSW(2.0, 10).perturb_stream(stream, rng)
            ba = BASW(2.0, 10).perturb_stream(stream, rng)
            # Error in the 20 slots right after the jump.
            bd_lag.append(np.mean(np.abs(bd.perturbed[60:80] - 0.9)))
            ba_lag.append(np.mean(np.abs(ba.perturbed[60:80] - 0.9)))
        assert np.mean(bd_lag) < np.mean(ba_lag) * 1.5

    def test_registry_integration(self, smooth_stream, rng):
        from repro.experiments import make_algorithm

        result = make_algorithm("bd-sw", 1.0, 10).perturb_stream(smooth_stream, rng)
        assert len(result) == smooth_stream.size
