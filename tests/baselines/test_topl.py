"""Tests for the ToPL baseline (SW range estimation + HM perturbation)."""

import numpy as np
import pytest

from repro.baselines import SWDirect, ToPL


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ToPL(1.0, 10, range_fraction=0.0)
        with pytest.raises(ValueError):
            ToPL(1.0, 10, range_fraction=1.0)
        with pytest.raises(ValueError):
            ToPL(1.0, 10, quantile=1.5)


class TestThresholdEstimation:
    def test_threshold_in_unit_interval(self, rng):
        topl = ToPL(1.0, 10)
        from repro.mechanisms import SquareWaveMechanism

        mech = SquareWaveMechanism(0.5)
        reports = mech.perturb(rng.random(2_000) * 0.5, rng)
        tau = topl.estimate_threshold(reports, 0.5)
        assert 0.05 <= tau <= 1.0

    def test_low_values_give_lower_threshold(self, rng):
        topl = ToPL(1.0, 10, quantile=0.95)
        from repro.mechanisms import SquareWaveMechanism

        mech = SquareWaveMechanism(2.0)
        low = topl.estimate_threshold(mech.perturb(np.full(5_000, 0.1), rng), 2.0)
        high = topl.estimate_threshold(mech.perturb(np.full(5_000, 0.9), rng), 2.0)
        assert low < high


class TestBehaviour:
    def test_runs_and_accounts(self, smooth_stream, rng):
        result = ToPL(1.0, 10).perturb_stream(smooth_stream, rng)
        assert len(result) == smooth_stream.size
        result.accountant.assert_valid()

    def test_short_stream_all_phase1(self, rng):
        result = ToPL(1.0, 10).perturb_stream(np.array([0.5, 0.6]), rng)
        assert len(result) == 2

    def test_phase2_reports_can_exceed_sw_domain(self, rng):
        # HM at eps/w = 0.05 has an enormous output range; at least one
        # report should land far outside [-1, 2] over 300 slots.
        stream = np.full(300, 0.5)
        result = ToPL(0.5, 10).perturb_stream(stream, rng)
        assert np.abs(result.perturbed).max() > 2.0

    def test_mse_much_worse_than_sw_direct(self):
        # Table I's headline: ToPL's mean-estimation MSE is orders of
        # magnitude above the SW-based algorithms at w-event budgets.
        stream = np.clip(0.5 + 0.3 * np.sin(np.arange(60) / 6), 0, 1)
        topl_err, direct_err = [], []
        for rep in range(10):
            local = np.random.default_rng(500 + rep)
            topl = ToPL(1.0, 20).perturb_stream(stream, local)
            direct = SWDirect(1.0, 20).perturb_stream(stream, local)
            topl_err.append((topl.mean_estimate() - stream.mean()) ** 2)
            direct_err.append((direct.mean_estimate() - stream.mean()) ** 2)
        assert np.mean(topl_err) > 10.0 * np.mean(direct_err)
