"""Tests for the SW-direct and generic mechanism-direct baselines."""

import numpy as np
import pytest

from repro.baselines import MechanismDirect, SWDirect
from repro.mechanisms import SquareWaveMechanism


class TestSWDirect:
    def test_inputs_equal_original(self, smooth_stream, rng):
        result = SWDirect(1.0, 10).perturb_stream(smooth_stream, rng)
        np.testing.assert_array_equal(result.inputs, result.original)

    def test_reports_in_sw_domain(self, smooth_stream, rng):
        direct = SWDirect(1.0, 10)
        result = direct.perturb_stream(smooth_stream, rng)
        b = SquareWaveMechanism(direct.epsilon_per_slot).b
        assert result.perturbed.min() >= -b - 1e-12
        assert result.perturbed.max() <= 1 + b + 1e-12

    def test_no_smoothing_by_default(self, smooth_stream, rng):
        result = SWDirect(1.0, 10).perturb_stream(smooth_stream, rng)
        np.testing.assert_array_equal(result.published, result.perturbed)

    def test_optional_smoothing(self, smooth_stream, rng):
        result = SWDirect(1.0, 10, smoothing_window=3).perturb_stream(
            smooth_stream, rng
        )
        assert not np.array_equal(result.published, result.perturbed)

    def test_budget_per_slot(self, smooth_stream, rng):
        result = SWDirect(2.0, 20).perturb_stream(smooth_stream, rng)
        assert result.epsilon_per_slot == pytest.approx(0.1)
        result.accountant.assert_valid()

    def test_deviations_consistent(self, smooth_stream, rng):
        result = SWDirect(1.0, 10).perturb_stream(smooth_stream, rng)
        np.testing.assert_allclose(
            result.deviations, result.original - result.perturbed
        )


class TestMechanismDirect:
    @pytest.mark.parametrize("name", ["laplace", "pm", "sr", "hm"])
    def test_all_mechanisms_run(self, name, smooth_stream, rng):
        result = MechanismDirect(1.0, 10, mechanism=name).perturb_stream(
            smooth_stream, rng
        )
        assert len(result) == smooth_stream.size

    def test_sr_binary_reports(self, smooth_stream, rng):
        result = MechanismDirect(1.0, 10, mechanism="sr").perturb_stream(
            smooth_stream, rng
        )
        assert len(np.unique(result.perturbed)) == 2

    def test_laplace_unbounded_reports_possible(self, rng):
        # At eps/w = 0.01 the Laplace noise regularly leaves [0, 1].
        stream = np.full(200, 0.5)
        result = MechanismDirect(0.1, 10, mechanism="laplace").perturb_stream(
            stream, rng
        )
        assert (result.perturbed < 0).any() or (result.perturbed > 1).any()
