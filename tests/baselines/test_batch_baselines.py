"""Batched baseline engines vs their scalar counterparts.

The registry's contract: for one user and the same generator, every
algorithm's vectorized population path is **bit-identical** to its scalar
``perturb_stream`` reference; for populations it must keep per-user
ledgers valid and states independent.  These tests pin that contract for
every name the registry can build, plus the streaming-sampling engine's
upload semantics.
"""

import numpy as np
import pytest

from repro.baselines import (
    BASW,
    BDSW,
    BatchBASW,
    BatchBDSW,
    BatchPPSampling,
    BatchToPL,
    ToPL,
)
from repro.core import PPSampling
from repro.registry import algorithm_names, capabilities, make_algorithm

STREAM = np.random.default_rng(5).random(40)


@pytest.mark.parametrize("name", algorithm_names())
def test_single_user_population_bit_identical(name):
    """perturb_population with one user == perturb_stream, bit for bit."""
    perturber = make_algorithm(name, 1.0, 8)
    scalar = perturber.perturb_stream(STREAM, np.random.default_rng(77))
    population = perturber.perturb_population(
        STREAM[None, :], np.random.default_rng(77)
    )
    np.testing.assert_array_equal(population.perturbed[0], scalar.perturbed)
    np.testing.assert_array_equal(population.published[0], scalar.published)


@pytest.mark.parametrize("name", algorithm_names())
def test_population_budget_audit(name):
    """Every engine's population ledger passes the w-event audit."""
    matrix = np.random.default_rng(0).random((30, 24))
    perturber = make_algorithm(name, 1.0, 6)
    result = perturber.perturb_population(matrix, np.random.default_rng(1))
    result.accountant.assert_valid()
    assert result.perturbed.shape == matrix.shape
    assert np.all(np.isfinite(result.perturbed))


class TestBatchBASW:
    def test_sw_domain_containment(self):
        matrix = np.random.default_rng(2).random((40, 30))
        result = BASW(1.0, 6).perturb_population(matrix, np.random.default_rng(3))
        # Every report is an SW draw at budget <= eps (b < 1/2 always).
        assert result.perturbed.min() >= -0.5 - 1e-9
        assert result.perturbed.max() <= 1.5 + 1e-9

    def test_masked_users_skip_state(self):
        engine = BatchBASW(1.0, 5, 3, np.random.default_rng(0))
        engine.submit(np.array([0.2, 0.5, 0.8]))
        pot_before = engine.pot[1]
        mask = np.array([True, False, True])
        reports = engine.submit(np.array([0.3, 0.6, 0.9]), mask)
        assert np.isnan(reports[1])
        assert engine.pot[1] == pot_before
        np.testing.assert_array_equal(engine.accountant.user_spends(1)[-1:], [0.0])

    def test_publication_spend_recorded(self):
        engine = BatchBASW(1.0, 5, 4, np.random.default_rng(1))
        engine.submit(np.full(4, 0.5))  # first slot always publishes
        spends = engine.accountant.spends_matrix()[0]
        assert np.all(spends > engine.probe_epsilon)  # probe + pot
        engine.accountant.assert_valid()


class TestBatchBDSW:
    def test_sw_domain_containment(self):
        matrix = np.random.default_rng(4).random((40, 30))
        result = BDSW(1.0, 6).perturb_population(matrix, np.random.default_rng(5))
        assert result.perturbed.min() >= -0.5 - 1e-9
        assert result.perturbed.max() <= 1.5 + 1e-9

    def test_window_state_tracks_time_order(self):
        engine = BatchBDSW(1.0, 4, 2, np.random.default_rng(0))
        for t in range(6):
            engine.submit(np.array([0.4, 0.6]))
        engine.accountant.assert_valid()
        # The window never holds more than w slots of publication spends.
        assert engine.window_spends.shape == (2, 4)


class TestBatchToPL:
    def test_requires_horizon(self):
        from repro.registry import make_batch_engine

        with pytest.raises(ValueError, match="horizon"):
            make_batch_engine("topl", 1.0, 8, 4)

    def test_phase_boundary_matches_scalar(self):
        engine = BatchToPL(1.0, 8, 3, horizon=40, rng=np.random.default_rng(0))
        assert engine.n_range == 12  # round(40 * 0.3)
        for t in range(40):
            engine.submit(np.full(3, 0.5))
        assert engine.tau is not None
        assert engine.tau.shape == (3,)
        assert np.all(engine.tau >= 0.05) and np.all(engine.tau <= 1.0)
        with pytest.raises(RuntimeError, match="already submitted"):
            engine.submit(np.full(3, 0.5))

    def test_fully_masked_user_gets_unit_threshold(self):
        engine = BatchToPL(1.0, 8, 2, horizon=10, rng=np.random.default_rng(0))
        mask = np.array([True, False])
        for t in range(engine.n_range):
            engine.submit(np.array([0.1, 0.1]), mask)
        engine.submit(np.array([0.1, 0.1]))  # first phase-2 slot fits tau
        assert engine.tau[1] == 1.0  # uniform prior -> no clipping
        assert engine.tau[0] < 1.0  # low values fit a low threshold


class TestBatchPPSampling:
    def test_upload_reports_match_scalar_segments(self):
        sampler = PPSampling(1.0, 8, base="capp")
        scalar = sampler.perturb_stream(STREAM, np.random.default_rng(9))
        engine = sampler._make_batch_engine(
            1, np.random.default_rng(9), horizon=STREAM.size
        )
        per_slot = [engine.submit(STREAM[t : t + 1])[0] for t in range(STREAM.size)]
        engine.accountant.assert_valid()
        uploads = sorted(engine._upload_slots)
        np.testing.assert_array_equal(
            np.array([per_slot[t] for t in uploads]), scalar.segment_reports
        )

    def test_republishes_between_uploads(self):
        engine = BatchPPSampling(
            1.0, 6, 2, horizon=20, base="app", rng=np.random.default_rng(0)
        )
        first_upload = min(engine._upload_slots)
        reports = [engine.submit(np.full(2, 0.5)) for _ in range(20)]
        for t in range(first_upload):
            assert np.isnan(reports[t]).all()  # nothing uploaded yet
        for t in range(first_upload, 20):
            assert np.isfinite(reports[t]).all()
        # Non-upload slots re-publish the previous upload verbatim.
        for t in range(first_upload + 1, 20):
            if t not in engine._upload_slots:
                np.testing.assert_array_equal(reports[t], reports[t - 1])

    def test_rejects_partial_participation(self):
        engine = BatchPPSampling(
            1.0, 6, 3, horizon=12, rng=np.random.default_rng(0)
        )
        with pytest.raises(NotImplementedError, match="participation"):
            engine.submit(np.full(3, 0.5), np.array([True, False, True]))

    def test_charges_only_at_uploads(self):
        engine = BatchPPSampling(
            1.0, 6, 2, horizon=12, rng=np.random.default_rng(0)
        )
        for t in range(12):
            engine.submit(np.full(2, 0.5))
        spends = engine.accountant.spends_matrix()[:, 0]
        uploads = sorted(engine._upload_slots)
        assert np.all(spends[uploads] == engine.epsilon_per_sample)
        others = [t for t in range(12) if t not in engine._upload_slots]
        assert np.all(spends[others] == 0.0)


class TestRegistryCapabilities:
    def test_sampling_family_needs_horizon_and_full_participation(self):
        for name in ("sampling", "app-s", "capp-s"):
            flags = capabilities(name)
            assert flags["needs_horizon"] and not flags["participation"]

    def test_topl_needs_horizon(self):
        assert capabilities("topl")["needs_horizon"]

    def test_slot_local_names_support_participation(self):
        for name in ("sw-direct", "ba-sw", "bd-sw", "ipp", "app", "capp"):
            assert capabilities(name)["participation"]


def test_scalar_topl_threshold_round_trip(rng):
    """The rows-EM threshold fit stays within the scalar contract."""
    topl = ToPL(1.0, 10)
    from repro.mechanisms import SquareWaveMechanism

    reports = SquareWaveMechanism(0.5).perturb(rng.random(2_000) * 0.4, rng)
    tau = topl.estimate_threshold(reports, 0.5)
    assert 0.05 <= tau <= 1.0
