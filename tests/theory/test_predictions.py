"""Tests validating the closed-form error predictions against Monte Carlo."""

import numpy as np
import pytest

from repro.baselines import SWDirect
from repro.theory.predictions import (
    MeanErrorPrediction,
    predict_sw_direct_mean_error,
    sw_shrinkage_slope,
)


class TestShrinkageSlope:
    def test_below_one(self):
        for eps in (0.05, 0.5, 1.0, 3.0):
            assert 0.0 < sw_shrinkage_slope(eps) < 1.0

    def test_increases_with_budget(self):
        slopes = [sw_shrinkage_slope(e) for e in (0.1, 0.5, 1.0, 3.0, 10.0)]
        assert all(a < b for a, b in zip(slopes, slopes[1:]))

    def test_matches_mean_map(self):
        # E[SW(x)] - E[SW(y)] = slope * (x - y).
        from repro.mechanisms import SquareWaveMechanism

        eps = 1.0
        mech = SquareWaveMechanism(eps)
        gap = float(mech.expected_output(0.9) - mech.expected_output(0.1))
        assert gap == pytest.approx(sw_shrinkage_slope(eps) * 0.8, rel=1e-10)

    def test_tiny_budget_nearly_flat(self):
        # At eps -> 0 every report collapses toward 0.5 (slope -> 0).
        assert sw_shrinkage_slope(0.01) < 0.02


class TestMeanErrorPrediction:
    def test_mse_decomposition(self):
        pred = MeanErrorPrediction(bias=0.1, variance=0.02)
        assert pred.mse == pytest.approx(0.01 + 0.02)

    @pytest.mark.parametrize("level", [0.1, 0.5, 0.9])
    def test_prediction_matches_monte_carlo(self, level):
        stream = np.full(40, level)
        eps_slot = 0.1
        pred = predict_sw_direct_mean_error(stream, eps_slot)

        errors = []
        for rep in range(300):
            rng = np.random.default_rng(8000 + rep)
            result = SWDirect(eps_slot * 10, 10).perturb_stream(stream, rng)
            errors.append((result.mean_estimate() - stream.mean()) ** 2)
        measured = float(np.mean(errors))
        assert measured == pytest.approx(pred.mse, rel=0.15)

    def test_bias_vanishes_at_domain_center(self):
        pred = predict_sw_direct_mean_error(np.full(20, 0.5), 0.1)
        assert pred.bias == pytest.approx(0.0, abs=1e-12)

    def test_bias_dominates_far_from_center_at_tiny_budget(self):
        # The EXPERIMENTS.md Fig.-6 argument in closed form: at tiny
        # budgets, a stream at 0.1 has bias^2 >> variance/n.
        pred = predict_sw_direct_mean_error(np.full(40, 0.1), 0.025)
        assert pred.bias**2 > 5 * pred.variance

    def test_variance_scales_inverse_n(self):
        short = predict_sw_direct_mean_error(np.full(10, 0.3), 0.1)
        long = predict_sw_direct_mean_error(np.full(100, 0.3), 0.1)
        assert long.variance == pytest.approx(short.variance / 10, rel=1e-9)
