"""Tests for the empirical Theorem 5 check."""

import numpy as np

from repro.theory import theorem5_dkw_bound_holds


class TestTheorem5:
    def test_failure_rate_within_delta(self):
        n, failure_rate = theorem5_dkw_bound_holds(
            eta=0.2, beta=0.1, delta=0.05, n_trials=60,
            rng=np.random.default_rng(0),
        )
        assert n >= 1
        # The theorem guarantees <= delta; allow trial noise.
        assert failure_rate <= 0.05 + 0.08

    def test_sample_bound_matches_formula(self):
        import math

        n, _ = theorem5_dkw_bound_holds(
            eta=0.3, beta=0.1, delta=0.1, n_trials=5,
            rng=np.random.default_rng(1),
        )
        expected = math.ceil(math.log(2 / 0.1) / (2 * (0.3 - 0.1) ** 2))
        assert n == expected

    def test_zero_corruption_also_holds(self):
        _, failure_rate = theorem5_dkw_bound_holds(
            eta=0.15, beta=0.0, delta=0.05, n_trials=40,
            rng=np.random.default_rng(2),
        )
        assert failure_rate <= 0.05 + 0.08
