"""Tests for the empirical privacy auditor.

Includes a deliberately broken algorithm as a positive control: an
auditor that cannot catch violations is worthless.
"""

import numpy as np
import pytest

from repro.baselines import SWDirect
from repro.core import APP, CAPP, IPP
from repro.core.base import StreamPerturber
from repro.mechanisms import DuchiMechanism, SquareWaveMechanism
from repro.theory import audit_mechanism, audit_stream_algorithm


class BudgetCheater(StreamPerturber):
    """Spends 4x the declared per-slot budget (a privacy violation)."""

    def _perturb_prepared(self, values, mechanism, accountant, rng):
        cheat = SquareWaveMechanism(min(self.epsilon_per_slot * 4.0, 50.0))
        perturbed = np.asarray(cheat.perturb(values, rng), dtype=float)
        for t in range(values.size):
            accountant.charge(t, self.epsilon_per_slot)  # lies to the ledger
        deviations = values - perturbed
        return values.copy(), perturbed, deviations, float(deviations.sum())


class TestMechanismAudit:
    def test_sw_passes_at_claimed_epsilon(self, rng):
        eps = 1.0
        result = audit_mechanism(
            lambda: SquareWaveMechanism(eps), 0.0, 1.0, eps, rng=rng
        )
        assert result.passed
        assert result.epsilon_hat <= eps + result.slack

    def test_sw_audit_is_tight(self, rng):
        # The worst-case pair (0, 1) should saturate most of the budget,
        # confirming the auditor has power (not just trivially passing).
        eps = 1.0
        result = audit_mechanism(
            lambda: SquareWaveMechanism(eps), 0.0, 1.0, eps,
            n_samples=100_000, rng=rng,
        )
        assert result.epsilon_hat > 0.4 * eps

    def test_sr_passes(self, rng):
        eps = 0.8
        result = audit_mechanism(
            lambda: DuchiMechanism(eps), 0.0, 1.0, eps, n_bins=2, rng=rng
        )
        assert result.passed

    def test_underclaimed_epsilon_fails(self, rng):
        # Claiming eps = 0.1 for a mechanism that actually runs at 2.0
        # must fail the audit.
        result = audit_mechanism(
            lambda: SquareWaveMechanism(2.0), 0.0, 1.0, epsilon=0.1,
            n_samples=100_000, slack=0.2, rng=rng,
        )
        assert not result.passed


class TestStreamAlgorithmAudit:
    STREAM_A = np.array([0.1, 0.2])
    STREAM_B = np.array([0.9, 0.8])  # differs on both slots: w = 2 window

    @pytest.mark.parametrize("cls", [SWDirect, IPP, APP, CAPP])
    def test_pp_algorithms_pass_w_event_audit(self, cls, rng):
        eps = 1.0
        result = audit_stream_algorithm(
            lambda: cls(eps, 2),
            self.STREAM_A,
            self.STREAM_B,
            epsilon=eps,
            n_samples=15_000,
            rng=rng,
        )
        assert result.passed, f"{cls.__name__}: eps_hat={result.epsilon_hat:.3f}"

    def test_budget_cheater_fails_audit(self, rng):
        eps = 0.5
        result = audit_stream_algorithm(
            lambda: BudgetCheater(eps, 2),
            self.STREAM_A,
            self.STREAM_B,
            epsilon=eps,
            n_samples=15_000,
            slack=0.2,
            rng=rng,
        )
        assert not result.passed

    def test_single_slot_stream(self, rng):
        eps = 1.0
        result = audit_stream_algorithm(
            lambda: APP(eps, 1),
            np.array([0.0]),
            np.array([1.0]),
            epsilon=eps,
            n_samples=15_000,
            rng=rng,
        )
        assert result.passed

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError, match="equal length"):
            audit_stream_algorithm(
                lambda: APP(1.0, 2),
                np.array([0.1]),
                np.array([0.1, 0.2]),
                epsilon=1.0,
                rng=rng,
            )

    def test_result_metadata(self, rng):
        result = audit_stream_algorithm(
            lambda: SWDirect(1.0, 1),
            np.array([0.2]),
            np.array([0.8]),
            epsilon=1.0,
            n_samples=5_000,
            rng=rng,
        )
        assert result.n_samples == 5_000
        assert result.n_cells > 0
        assert result.epsilon_claimed == 1.0
