"""Tests for the executable lemma checks."""

import numpy as np
import pytest

from repro.theory import (
    LemmaComparison,
    lemma_iii1_mean_deviation,
    lemma_iv1_variance_reduction,
    lemma_iv2_history_depth,
    lemma_iv3_cosine_similarity,
)


@pytest.fixture
def gentle_stream():
    # A smooth stream away from the domain centre so deviation feedback
    # has something to correct.
    return np.clip(0.35 + 0.1 * np.sin(np.arange(80) / 8.0), 0, 1)


class TestLemmaComparison:
    def test_holds_semantics(self):
        assert LemmaComparison(1.0, 2.0, "a", "b").holds
        assert not LemmaComparison(2.0, 1.0, "a", "b").holds

    def test_str_contains_labels(self):
        text = str(LemmaComparison(1.0, 2.0, "MD(IPP)", "MD(SW)"))
        assert "MD(IPP)" in text and "MD(SW)" in text


class TestLemmaIII1:
    def test_holds_on_gentle_stream(self, gentle_stream):
        comparison = lemma_iii1_mean_deviation(
            gentle_stream, epsilon=1.0, w=10, n_repeats=40,
            rng=np.random.default_rng(0),
        )
        assert comparison.holds, str(comparison)

    def test_deterministic_with_seed(self, gentle_stream):
        a = lemma_iii1_mean_deviation(
            gentle_stream, n_repeats=5, rng=np.random.default_rng(1)
        )
        b = lemma_iii1_mean_deviation(
            gentle_stream, n_repeats=5, rng=np.random.default_rng(1)
        )
        assert a.lhs == b.lhs and a.rhs == b.rhs


class TestLemmaIV1:
    def test_variance_reduction_holds(self):
        comparison = lemma_iv1_variance_reduction(
            n_repeats=150, rng=np.random.default_rng(2)
        )
        assert comparison.holds, str(comparison)

    def test_reduction_close_to_window_factor(self):
        comparison = lemma_iv1_variance_reduction(
            smoothing_window=3, n_repeats=400, rng=np.random.default_rng(3)
        )
        # Var(smoothed) ~= Var(raw) / 3 (Lemma IV.1's exact statement for
        # i.i.d. noise; APP deviations are weakly coupled so allow slack).
        ratio = comparison.lhs / comparison.rhs
        assert 0.15 < ratio < 0.75


class TestLemmaIV2:
    def test_full_history_beats_one_step_for_mean(self, gentle_stream):
        comparison = lemma_iv2_history_depth(
            gentle_stream, epsilon=1.0, w=10, n_repeats=60,
            rng=np.random.default_rng(4),
        )
        # Statistical claim with a generous margin: APP within 1.2x of
        # IPP's error at worst, typically below it.
        assert comparison.lhs < 1.2 * comparison.rhs, str(comparison)


class TestLemmaIV3:
    def test_app_cosine_beats_direct(self, gentle_stream):
        comparison = lemma_iv3_cosine_similarity(
            gentle_stream, epsilon=1.0, w=10, n_repeats=30,
            rng=np.random.default_rng(5),
        )
        assert comparison.holds, str(comparison)
