"""Tests for repro._validation — the shared argument-checking helpers."""

import numpy as np
import pytest

from repro._validation import (
    MAX_EPSILON,
    ensure_epsilon,
    ensure_in_unit_interval,
    ensure_positive_int,
    ensure_probability,
    ensure_rng,
    ensure_stream,
    ensure_window,
)


class TestEnsureEpsilon:
    def test_accepts_positive_float(self):
        assert ensure_epsilon(1.5) == 1.5

    def test_accepts_int(self):
        assert ensure_epsilon(2) == 2.0
        assert isinstance(ensure_epsilon(2), float)

    def test_accepts_numpy_scalar(self):
        assert ensure_epsilon(np.float64(0.5)) == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            ensure_epsilon(0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="positive"):
            ensure_epsilon(-1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            ensure_epsilon(float("nan"))

    def test_rejects_infinity(self):
        with pytest.raises(ValueError, match="finite"):
            ensure_epsilon(float("inf"))

    def test_rejects_above_cap(self):
        with pytest.raises(ValueError, match=str(MAX_EPSILON)):
            ensure_epsilon(MAX_EPSILON + 1)

    def test_accepts_cap_exactly(self):
        assert ensure_epsilon(MAX_EPSILON) == MAX_EPSILON

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_epsilon(True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            ensure_epsilon("1.0")

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="my_eps"):
            ensure_epsilon(-1.0, name="my_eps")


class TestEnsurePositiveInt:
    def test_accepts_positive(self):
        assert ensure_positive_int(3, "n") == 3

    def test_accepts_numpy_integer(self):
        assert ensure_positive_int(np.int64(5), "n") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ensure_positive_int(0, "n")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_positive_int(-2, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            ensure_positive_int(2.0, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_positive_int(True, "n")


class TestEnsureProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert ensure_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            ensure_probability(value, "p")


class TestEnsureStream:
    def test_returns_copy(self):
        original = np.array([0.1, 0.2])
        out = ensure_stream(original)
        out[0] = 9.0
        assert original[0] == 0.1

    def test_coerces_list(self):
        out = ensure_stream([1, 2, 3])
        assert out.dtype == float
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            ensure_stream([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            ensure_stream([[1.0, 2.0]])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            ensure_stream([0.1, float("nan")])


class TestEnsureInUnitInterval:
    def test_accepts_bounds(self):
        out = ensure_in_unit_interval(np.array([0.0, 1.0]))
        assert out.tolist() == [0.0, 1.0]

    def test_rejects_below(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            ensure_in_unit_interval(np.array([-0.1, 0.5]))

    def test_rejects_above(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            ensure_in_unit_interval(np.array([0.5, 1.1]))


class TestEnsureRng:
    def test_passes_through_generator(self, rng):
        assert ensure_rng(rng) is rng

    def test_creates_default(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_rejects_legacy_randomstate(self):
        with pytest.raises(TypeError):
            ensure_rng(np.random.RandomState(0))


class TestEnsureWindow:
    def test_accepts_positive(self):
        assert ensure_window(10) == 10

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ensure_window(0)
