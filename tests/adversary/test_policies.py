"""RobustPolicy: validation, folds, and collector integration."""

import numpy as np
import pytest

from repro.adversary import POLICIES, RobustPolicy, make_policy
from repro.protocol import Collector
from repro.protocol.collector import CollectorShardState


class TestValidation:
    def test_unknown_kind_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'clip'"):
            RobustPolicy(kind="clipp")
        with pytest.raises(ValueError, match="unknown robust policy"):
            RobustPolicy(kind="zzz")

    def test_known_kinds(self):
        assert set(POLICIES) == {"none", "clip", "trim", "median-of-means"}

    def test_bounds_and_trim_validated(self):
        with pytest.raises(ValueError, match="finite"):
            RobustPolicy(kind="clip", high=float("inf"))
        with pytest.raises(ValueError, match="low < high"):
            RobustPolicy(kind="clip", low=1.0, high=0.0)
        with pytest.raises(ValueError, match="trim fraction"):
            RobustPolicy(kind="trim", trim=0.5)
        with pytest.raises(ValueError, match="trim fraction"):
            RobustPolicy(kind="trim", trim=-0.1)

    def test_round_trip(self):
        policy = RobustPolicy(kind="trim", trim=0.2)
        assert RobustPolicy.from_dict(policy.to_dict()) == policy

    def test_make_policy_coercions(self):
        assert make_policy(None) is None
        assert make_policy("none") is None
        assert make_policy(RobustPolicy(kind="none")) is None
        policy = RobustPolicy(kind="clip")
        assert make_policy(policy) is policy
        assert make_policy("trim") == RobustPolicy(kind="trim")
        assert make_policy(policy.to_dict()) == policy
        with pytest.raises(TypeError, match="robust_policy must be"):
            make_policy(3)

    def test_capability_switches(self):
        assert RobustPolicy(kind="median-of-means").uses_groups
        assert not RobustPolicy(kind="clip").uses_groups
        assert RobustPolicy(kind="trim").needs_reports
        assert not RobustPolicy(kind="clip").needs_reports


class TestFolds:
    def test_clip_transform(self):
        policy = RobustPolicy(kind="clip")
        values = np.array([-0.5, 0.3, 1.7])
        np.testing.assert_array_equal(
            policy.transform(values), [0.0, 0.3, 1.0]
        )
        assert policy.transform_scalar(-2.0) == 0.0
        assert policy.transform_scalar(0.25) == 0.25
        # Non-clip transforms are the identity (same object, same bits).
        assert RobustPolicy(kind="trim").transform(values) is values

    def test_trimmed_mean_drops_tails(self):
        collector = Collector(
            epsilon_per_report=1.0,
            keep_reports=True,
            robust_policy=RobustPolicy(kind="trim", trim=0.2),
        )
        values = np.array([100.0, 0.4, 0.5, 0.6, -100.0])
        collector.ingest_batch(0, np.arange(5), values)
        assert collector.population_mean(0) == pytest.approx(0.5)

    def test_trim_degenerates_to_median(self):
        # Too few reports to trim both tails: fall back to the median.
        collector = Collector(
            epsilon_per_report=1.0,
            keep_reports=True,
            robust_policy=RobustPolicy(kind="trim", trim=0.4),
        )
        collector.ingest_batch(0, np.arange(3), np.array([0.0, 0.2, 9.0]))
        assert collector.population_mean(0) == pytest.approx(0.2)

    def test_median_of_means_uses_group_labels(self):
        policy = RobustPolicy(kind="median-of-means")
        collector = Collector(epsilon_per_report=1.0, robust_policy=policy)
        collector.ingest_batch(0, np.arange(3), np.full(3, 0.2), group=0)
        collector.ingest_batch(0, np.arange(3, 6), np.full(3, 0.4), group=1)
        collector.ingest_batch(0, np.arange(6, 9), np.full(3, 99.0), group=2)
        # Median of the three group means (0.2, 0.4, 99.0).
        assert collector.population_mean(0) == pytest.approx(0.4)

    def test_clip_applies_at_ingestion(self):
        collector = Collector(
            epsilon_per_report=1.0, robust_policy=RobustPolicy(kind="clip")
        )
        collector.ingest_batch(0, np.arange(2), np.array([-4.0, 5.0]))
        assert collector.population_mean(0) == pytest.approx(0.5)


class TestMerge:
    def _state(self, policy, group, values):
        state = CollectorShardState(robust_policy=policy)
        ids = np.arange(group * 100, group * 100 + len(values))
        state.add_slot_batch(0, ids, np.asarray(values, dtype=float), group=group)
        return state

    def test_policy_mismatch_fails_loudly(self):
        clip = self._state(RobustPolicy(kind="clip"), 0, [0.5])
        trim = self._state(RobustPolicy(kind="trim"), 1, [0.5])
        with pytest.raises(ValueError, match="different robust policies"):
            clip.merge_in_place(trim)

    def test_group_aggregates_merge(self):
        policy = RobustPolicy(kind="median-of-means")
        a = self._state(policy, 0, [0.2, 0.2])
        b = self._state(policy, 1, [0.8, 0.8])
        a.merge_in_place(b)
        assert a.group_sums[0] == {0: pytest.approx(0.4), 1: pytest.approx(1.6)}
        assert a.group_counts[0] == {0: 2, 1: 2}
        assert policy.slot_mean(a, 0) == pytest.approx(0.5)
