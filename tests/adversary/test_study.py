"""manipulation_gain and the attack x defense study harness."""

import numpy as np
import pytest

from repro.adversary import manipulation_gain, run_adversarial_study


class TestManipulationGain:
    def test_mean_absolute_shift(self):
        benign = np.array([0.5, 0.5, 0.5])
        attacked = np.array([0.6, 0.4, 0.5])
        assert manipulation_gain(benign, attacked) == pytest.approx(0.2 / 3)

    def test_identical_series_is_zero(self):
        series = np.linspace(0, 1, 10)
        assert manipulation_gain(series, series) == 0.0

    def test_length_mismatch_uses_common_prefix(self):
        assert manipulation_gain([0.5, 0.5, 9.0], [0.7, 0.3]) == pytest.approx(0.2)

    def test_empty_series(self):
        assert manipulation_gain([], []) == 0.0
        assert manipulation_gain([], [0.5]) == 0.0


class TestStudy:
    def test_rejects_benign_fraction(self):
        with pytest.raises(ValueError, match="attack_fraction"):
            run_adversarial_study(attack_fraction=0.0)

    def test_small_study_shape_and_clip_defense(self):
        study = run_adversarial_study(
            scenarios=("steady",),
            algorithms=("capp",),
            strategies=("random",),
            policies=("none", "clip"),
            attack_fraction=0.2,
            n_users=120,
            horizon=12,
            epsilon=1.0,
            w=4,
            n_shards=2,
            max_workers=1,
            seed=3,
        )
        cells = study["steady"]["capp"]["random"]
        assert set(cells) == {"none", "clip"}
        for metrics in cells.values():
            assert set(metrics) == {"manipulation_gain", "mse", "mse_benign"}
            assert metrics["manipulation_gain"] >= 0.0
        # Out-of-domain injection is exactly what clip-to-domain removes.
        assert (
            cells["clip"]["manipulation_gain"]
            < cells["none"]["manipulation_gain"]
        )
