"""AttackSpec: validation, stateless determinism, poisoning semantics."""

import numpy as np
import pytest

from repro.adversary import ATTACK_STRATEGIES, AttackSpec, hash_uniform, make_attack


class TestValidation:
    def test_fraction_range(self):
        AttackSpec(fraction=0.0)
        AttackSpec(fraction=1.0)
        with pytest.raises(ValueError, match="fraction"):
            AttackSpec(fraction=-0.1)
        with pytest.raises(ValueError, match="fraction"):
            AttackSpec(fraction=1.1)

    def test_unknown_strategy_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'extreme'"):
            AttackSpec(strategy="extrem")
        with pytest.raises(ValueError, match="unknown attack strategy"):
            AttackSpec(strategy="zzz")

    def test_known_strategies(self):
        assert set(ATTACK_STRATEGIES) == {"extreme", "random", "targeted"}
        for strategy in ATTACK_STRATEGIES:
            assert AttackSpec(strategy=strategy).strategy == strategy

    def test_other_fields_validated(self):
        with pytest.raises(ValueError, match="onset"):
            AttackSpec(onset=-1)
        with pytest.raises(ValueError, match="target"):
            AttackSpec(target=float("nan"))
        with pytest.raises(ValueError, match="magnitude"):
            AttackSpec(magnitude=-1.0)
        with pytest.raises(ValueError, match="seed"):
            AttackSpec(seed=-1)

    def test_round_trip(self):
        spec = AttackSpec(
            fraction=0.2, strategy="random", onset=3, target=0.0, magnitude=2.0, seed=9
        )
        assert AttackSpec.from_dict(spec.to_dict()) == spec

    def test_make_attack_coercions(self):
        assert make_attack(None) is None
        spec = AttackSpec(fraction=0.1)
        assert make_attack(spec) is spec
        assert make_attack(spec.to_dict()) == spec
        with pytest.raises(TypeError, match="attack must be"):
            make_attack(0.1)


class TestDeterminism:
    def test_hash_uniform_is_stateless_and_in_range(self):
        ids = np.arange(500, dtype=np.int64)
        a = hash_uniform(7, ids)
        b = hash_uniform(7, ids)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0.0 and a.max() < 1.0
        # Different seeds and different extras decorrelate the stream.
        assert not np.array_equal(a, hash_uniform(8, ids))
        assert not np.array_equal(a, hash_uniform(7, ids, 1))

    def test_compromise_mask_is_decomposition_invariant(self):
        spec = AttackSpec(fraction=0.3, seed=11)
        ids = np.arange(200, dtype=np.int64)
        whole = spec.compromised(ids)
        parts = np.concatenate(
            [spec.compromised(chunk) for chunk in np.array_split(ids, 7)]
        )
        np.testing.assert_array_equal(whole, parts)

    def test_compromise_rate_tracks_fraction(self):
        spec = AttackSpec(fraction=0.25, seed=3)
        rate = spec.compromised(np.arange(20_000)).mean()
        assert rate == pytest.approx(0.25, abs=0.02)

    def test_active_at_respects_onset_and_fraction(self):
        spec = AttackSpec(fraction=0.1, onset=5)
        assert not spec.active_at(4)
        assert spec.active_at(5)
        assert not AttackSpec(fraction=0.0).active_at(100)


class TestPoisoning:
    def test_extreme_moves_inputs_to_edge_without_mutating(self):
        spec = AttackSpec(fraction=0.5, strategy="extreme", target=1.0, seed=2)
        ids = np.arange(100, dtype=np.int64)
        column = np.full(100, 0.4)
        out = spec.poison_inputs(0, ids, column)
        assert out is not column and (column == 0.4).all()
        mask = spec.compromised(ids)
        assert (out[mask] == 1.0).all()
        assert (out[~mask] == 0.4).all()
        # Low targets push to the low edge.
        low = AttackSpec(fraction=0.5, strategy="extreme", target=0.0, seed=2)
        assert (low.poison_inputs(0, ids, column)[mask] == 0.0).all()

    def test_extreme_leaves_reports_untouched(self):
        spec = AttackSpec(fraction=0.5, strategy="extreme", seed=2)
        reports = np.linspace(-0.2, 1.2, 20)
        assert spec.poison_reports(0, np.arange(20), reports) is reports

    def test_targeted_replaces_only_finite_reports(self):
        spec = AttackSpec(fraction=1.0, strategy="targeted", target=0.7)
        reports = np.array([0.1, np.nan, 0.9, np.nan])
        out = spec.poison_reports(0, np.arange(4), reports)
        assert out[0] == 0.7 and out[2] == 0.7
        assert np.isnan(out[1]) and np.isnan(out[3])

    def test_targeted_leaves_inputs_untouched(self):
        spec = AttackSpec(fraction=1.0, strategy="targeted")
        column = np.full(5, 0.4)
        assert spec.poison_inputs(0, np.arange(5), column) is column

    def test_random_injects_out_of_domain(self):
        spec = AttackSpec(fraction=1.0, strategy="random", magnitude=3.0, seed=5)
        ids = np.arange(200, dtype=np.int64)
        out = spec.poison_reports(0, ids, np.full(200, 0.5))
        assert ((out > 1.0) | (out < 0.0)).all()
        assert out.max() <= 4.0 and out.min() >= -3.0
        # target >= 0.5 biases injections above the domain
        assert (out > 1.0).mean() > 0.5

    def test_random_is_slot_keyed_but_deterministic(self):
        spec = AttackSpec(fraction=1.0, strategy="random", seed=5)
        ids = np.arange(50, dtype=np.int64)
        reports = np.full(50, 0.5)
        a = spec.poison_reports(3, ids, reports)
        np.testing.assert_array_equal(a, spec.poison_reports(3, ids, reports))
        assert not np.array_equal(a, spec.poison_reports(4, ids, reports))

    def test_inactive_slots_are_identity(self):
        spec = AttackSpec(fraction=1.0, strategy="targeted", onset=10)
        reports = np.full(5, 0.5)
        assert spec.poison_reports(9, np.arange(5), reports) is reports
