"""Wire format: framing, control codec, batch payload exactness."""

import asyncio
import struct

import numpy as np
import pytest

from repro.gateway.wire import (
    MAX_PAYLOAD_BYTES,
    WIRE_MAGIC,
    WIRE_VERSION,
    FrameType,
    WireError,
    decode_batch_payload,
    decode_control,
    encode_batch_frame,
    encode_control,
    encode_frame,
    read_frame,
)
from repro.protocol.messages import decode_report_batch, encode_report_batch
from repro.service import ReportBatch


def _read_one(data: bytes):
    async def _go():
        # StreamReader must be built on a running loop (3.10/3.11).
        reader = asyncio.StreamReader()
        if data:
            reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(_go())


class TestBatchPayload:
    def test_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(0)
        values = np.concatenate(
            [
                rng.random(50),
                [0.0, 1.0, np.nextafter(0.0, 1.0), np.nextafter(1.0, 0.0), -3.5e300],
            ]
        )
        ids = np.arange(values.size, dtype=np.intp) * 7
        shard, t, out_ids, out_vals = decode_report_batch(
            encode_report_batch(3, 11, ids, values)
        )
        assert (shard, t) == (3, 11)
        np.testing.assert_array_equal(out_ids, ids)
        # Bitwise, not approximate: the gateway's determinism contract.
        assert out_vals.tobytes() == values.astype(float).tobytes()

    def test_empty_batch_round_trips(self):
        shard, t, ids, vals = decode_report_batch(
            encode_report_batch(0, 0, np.zeros(0, dtype=np.intp), np.zeros(0))
        )
        assert (shard, t, ids.size, vals.size) == (0, 0, 0, 0)

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            encode_report_batch(0, 0, np.arange(3), np.zeros(2))

    def test_truncated_payload_rejected(self):
        payload = encode_report_batch(0, 0, np.arange(4), np.zeros(4))
        with pytest.raises(ValueError, match="bytes"):
            decode_report_batch(payload[:-3])
        with pytest.raises(ValueError, match="truncated"):
            decode_report_batch(payload[:8])

    def test_unknown_dtype_codes_rejected(self):
        payload = bytearray(encode_report_batch(0, 0, np.arange(2), np.zeros(2)))
        payload[12] = 9  # id dtype code
        with pytest.raises(ValueError, match="dtype"):
            decode_report_batch(bytes(payload))


class TestFraming:
    def test_control_frame_round_trip(self):
        frame = encode_control(FrameType.HELLO, shard=2, extra="x")
        frame_type, payload = _read_one(frame)
        assert frame_type == FrameType.HELLO
        assert decode_control(payload) == {"shard": 2, "extra": "x"}

    def test_batch_frame_round_trip(self):
        batch = ReportBatch(
            shard=1, t=4, user_ids=np.array([3, 9]), values=np.array([0.25, 0.75])
        )
        frame_type, payload = _read_one(encode_batch_frame(batch))
        assert frame_type == FrameType.BATCH
        decoded = decode_batch_payload(payload)
        assert (decoded.shard, decoded.t) == (1, 4)
        np.testing.assert_array_equal(decoded.user_ids, batch.user_ids)
        np.testing.assert_array_equal(decoded.values, batch.values)

    def test_clean_eof_returns_none(self):
        assert _read_one(b"") is None

    def test_mid_frame_eof_raises_incomplete(self):
        frame = encode_control(FrameType.HELLO, shard=0)
        with pytest.raises(asyncio.IncompleteReadError):
            _read_one(frame[: len(frame) - 2])

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_control(FrameType.HELLO))
        frame[0:2] = b"XX"
        with pytest.raises(WireError, match="magic"):
            _read_one(bytes(frame))

    def test_unsupported_version_rejected(self):
        frame = bytearray(encode_control(FrameType.HELLO))
        frame[2] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="version"):
            _read_one(bytes(frame))

    def test_unknown_frame_type_rejected(self):
        frame = bytearray(encode_control(FrameType.HELLO))
        frame[3] = 200
        with pytest.raises(WireError, match="frame type"):
            _read_one(bytes(frame))
        with pytest.raises(WireError, match="frame type"):
            encode_frame(200)

    def test_oversized_payload_rejected_by_reader(self):
        header = struct.pack(">2sBBI", WIRE_MAGIC, WIRE_VERSION, FrameType.BATCH, 1 << 30)
        with pytest.raises(WireError, match="exceeds"):
            _read_one(header)

    def test_oversized_payload_rejected_by_encoder(self):
        with pytest.raises(WireError, match="exceeds"):
            encode_frame(FrameType.BATCH, b"\0" * (MAX_PAYLOAD_BYTES + 1))

    def test_non_json_control_payload_rejected(self):
        with pytest.raises(WireError, match="JSON"):
            decode_control(b"\xff\xfe")
        with pytest.raises(WireError, match="object"):
            decode_control(b"[1, 2]")
