"""Gateway server + fleet: bit-identity, fault tolerance, validation.

The acceptance headline — gateway-served estimates are bit-identical to
``run_protocol_sharded`` for the same seed and shard decomposition — is
pinned serially, with >= 4 concurrent client connections, with arrival
jitter, and with a forced mid-slot reconnect.  Server-side validation
(handshake, shard ranges, slot order, duplicates, load shedding,
version negotiation) is exercised against the real TCP listener.
"""

import asyncio
import json
import struct

import numpy as np
import pytest

from repro.gateway import (
    GatewayClient,
    GatewayError,
    GatewayServer,
    run_gateway,
)
from repro.gateway.wire import WIRE_MAGIC, FrameType, WireError, encode_control, read_frame
from repro.runtime import MatrixSource, run_protocol_sharded
from repro.service import (
    IngestionPipeline,
    JSONLSink,
    ReportBatch,
    replay_event_log,
    shard_feeds,
)

N_USERS, HORIZON, CHUNK = 36, 9, 10  # 4 shards, last one ragged
PARAMS = dict(algorithm="capp", epsilon=1.2, w=6, participation=0.9, seed=17)


def _source():
    matrix = np.random.default_rng(8).random((N_USERS, HORIZON))
    return MatrixSource(matrix, chunk_size=CHUNK)


@pytest.fixture(scope="module")
def offline():
    return run_protocol_sharded(_source(), **PARAMS)


def _assert_matches_offline(result, offline):
    np.testing.assert_array_equal(
        result.population_mean_series(),
        offline.collector.population_mean_series(),
    )
    assert result.collector.state.slot_sums == offline.collector.state.slot_sums
    assert result.collector.state.slot_counts == offline.collector.state.slot_counts
    assert result.n_reports == offline.collector.n_reports


class TestNetemSpec:
    def test_window_semantics(self):
        from repro.gateway import NetemSpec

        netem = NetemSpec(
            delay=0.5,
            delay_windows=((2, 4),),
            partition_windows=((7, 7), (9, 10)),
            shards=(1,),
        )
        assert netem.delay_at(1, 3) == 0.5
        assert netem.delay_at(1, 5) == 0.0  # outside the delay window
        assert netem.delay_at(0, 3) == 0.0  # shard not in scope
        assert netem.partitioned(1, 7)
        assert netem.partitioned(1, 10)
        assert not netem.partitioned(1, 8)
        assert not netem.partitioned(2, 7)
        assert netem.partition_slot_count() == 3

    def test_empty_delay_windows_delay_every_slot(self):
        from repro.gateway import NetemSpec

        netem = NetemSpec(delay=0.1)
        assert netem.delay_at(0, 0) == 0.1
        assert netem.delay_at(3, 99) == 0.1
        assert not netem.partitioned(0, 0)

    def test_invalid_specs_rejected(self):
        from repro.gateway import NetemSpec

        with pytest.raises(ValueError, match="delay"):
            NetemSpec(delay=-0.1)
        with pytest.raises(ValueError, match="partition_outage"):
            NetemSpec(partition_outage=-1.0)
        with pytest.raises(ValueError, match="start > end"):
            NetemSpec(partition_windows=((5, 2),))


class TestBitIdentity:
    def test_serial_upload_matches_offline(self, offline):
        """One shard at a time over its own connection — the serial mode."""
        feeds = shard_feeds(_source(), **PARAMS)
        pipeline = IngestionPipeline(n_shards=len(feeds), horizon=HORIZON, epsilon=1.2, w=6)

        async def _serve():
            server = GatewayServer(pipeline)
            await server.start()
            try:
                # Strict slot-major clock: every shard uploads slot t
                # before any shard uploads slot t+1.
                clients = [GatewayClient("127.0.0.1", server.port, f.shard) for f in feeds]
                for client in clients:
                    await client.connect()
                iterators = [iter(feed) for feed in feeds]
                for _ in range(HORIZON):
                    for client, iterator in zip(clients, iterators):
                        assert await client.send_batch(next(iterator)) == "accepted"
                for client in clients:
                    await client.finish()
                await server.wait_complete(timeout=30)
            finally:
                await server.stop()
            return server.result(feeds=feeds)

        result = asyncio.run(_serve())
        result.assert_valid()
        _assert_matches_offline(result, offline)

    def test_concurrent_fleet_matches_offline(self, offline):
        """>= 4 concurrent connections with arrival jitter."""
        run = run_gateway(_source(), jitter=0.002, **PARAMS)
        assert len(run.shard_reports) == 4
        assert run.metrics.connections_opened >= 4
        _assert_matches_offline(run.result, offline)

    def test_mid_slot_reconnect_matches_offline(self, offline):
        """Forced mid-slot drops (ack lost) must not change a bit."""
        run = run_gateway(_source(), drops={1: [3], 2: [0, 5]}, **PARAMS)
        by_shard = {r.shard: r for r in run.shard_reports}
        assert by_shard[1].reconnects >= 1
        assert by_shard[2].reconnects >= 2
        assert by_shard[1].dropped_slots == [3]
        # A dropped upload is recovered either by the resume handshake
        # (skipped) or by an idempotent duplicate resend.
        assert by_shard[1].skipped + by_shard[1].duplicates >= 1
        for report in run.shard_reports:
            assert report.delivered == HORIZON
        _assert_matches_offline(run.result, offline)

    def test_netem_impairment_matches_offline(self, offline):
        """Delay + partition windows reorder the wire, not the math."""
        from repro.gateway import NetemSpec

        netem = NetemSpec(
            delay=0.002,
            delay_windows=((1, 2),),
            partition_windows=((4, 5),),
            partition_outage=0.005,
            shards=(0, 2),
        )
        run = run_gateway(_source(), netem=netem, **PARAMS)
        by_shard = {r.shard: r for r in run.shard_reports}
        # Only the scoped shards hit the partition window: 2 slots each.
        assert by_shard[0].partitions == 2
        assert by_shard[2].partitions == 2
        assert by_shard[1].partitions == 0
        assert by_shard[3].partitions == 0
        assert by_shard[0].reconnects >= 2
        for report in run.shard_reports:
            assert report.delivered == HORIZON
        _assert_matches_offline(run.result, offline)

    def test_gateway_event_log_replays_bit_identically(self, offline, tmp_path):
        """record_batches through the gateway yields a replayable capture."""
        log = tmp_path / "gateway-events.jsonl"
        run = run_gateway(
            _source(), sinks=[JSONLSink(log)], record_batches=True, **PARAMS
        )
        replayed = replay_event_log(str(log))
        _assert_matches_offline(replayed, offline)
        assert replayed.n_reports == run.result.n_reports


class TestServerValidation:
    """Drive the real listener with hand-built clients and raw frames."""

    @staticmethod
    def _with_server(coro_factory, n_shards=2, horizon=3, max_slot_skew=8):
        async def _run():
            pipeline = IngestionPipeline(
                n_shards=n_shards, horizon=horizon, max_slot_skew=max_slot_skew
            )
            server = GatewayServer(pipeline, retry_after=0.01)
            await server.start()
            try:
                return await coro_factory(server, pipeline)
            finally:
                await server.stop()

        return asyncio.run(_run())

    @staticmethod
    def _batch(shard, t, ids=(0,), values=(0.5,)):
        return ReportBatch(
            shard=shard,
            t=t,
            user_ids=np.asarray(ids, dtype=np.intp),
            values=np.asarray(values, dtype=float),
        )

    def test_duplicate_upload_acked_idempotently(self):
        async def scenario(server, pipeline):
            client = GatewayClient("127.0.0.1", server.port, 0)
            await client.connect()
            batch = self._batch(0, 0)
            assert await client.send_batch(batch) == "accepted"
            client.resume_slot = 0  # feign amnesia and resend
            assert await client.send_batch(batch) == "duplicate"
            await client.finish()
            return pipeline

        pipeline = self._with_server(scenario)
        # Not double-ingested: the batch is still buffered exactly once.
        assert server_counts(pipeline) == {0: 1}
        assert pipeline.has_batch(0, 0) and not pipeline.has_batch(0, 1)

    def test_out_of_order_upload_rejected(self):
        async def scenario(server, pipeline):
            client = GatewayClient("127.0.0.1", server.port, 0)
            await client.connect()
            with pytest.raises(GatewayError, match="slot order"):
                await client.send_batch(self._batch(0, 2))

        self._with_server(scenario)

    def test_batch_before_hello_rejected(self):
        async def scenario(server, pipeline):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            from repro.gateway.wire import encode_batch_frame

            writer.write(encode_batch_frame(self._batch(0, 0)))
            await writer.drain()
            frame_type, payload = await read_frame(reader)
            assert frame_type == FrameType.ERROR
            assert b"HELLO" in payload
            writer.close()

        self._with_server(scenario)

    def test_shard_out_of_range_rejected(self):
        async def scenario(server, pipeline):
            client = GatewayClient("127.0.0.1", server.port, 7)
            with pytest.raises(GatewayError, match="out of range"):
                await client.connect()

        self._with_server(scenario)

    def test_batch_for_foreign_shard_rejected(self):
        async def scenario(server, pipeline):
            client = GatewayClient("127.0.0.1", server.port, 0)
            await client.connect()
            client.shard = 1  # lie locally so the client agrees to send it
            with pytest.raises(GatewayError, match="authenticated shard 0"):
                await client.send_batch(self._batch(1, 0))

        self._with_server(scenario)

    def test_slot_beyond_horizon_rejected(self):
        async def scenario(server, pipeline):
            client = GatewayClient("127.0.0.1", server.port, 0)
            await client.connect()
            with pytest.raises(GatewayError, match="horizon"):
                await client.send_batch(self._batch(0, 5))

        self._with_server(scenario, horizon=3)

    def test_load_shedding_rejects_far_ahead_shard(self):
        """A shard past the skew bound gets REJECT until the laggard lands."""

        async def scenario(server, pipeline):
            fast = GatewayClient("127.0.0.1", server.port, 1)
            slow = GatewayClient("127.0.0.1", server.port, 0)
            await fast.connect()
            await slow.connect()
            assert await fast.send_batch(self._batch(1, 0)) == "accepted"
            # Slot 1 is >= next_slot(0) + skew(1): shed, then accepted
            # once the laggard finalizes slot 0 (send_batch retries).
            sender = asyncio.create_task(fast.send_batch(self._batch(1, 1)))
            await asyncio.sleep(0.05)
            assert server.metrics.sheds >= 1
            assert not sender.done()
            assert await slow.send_batch(self._batch(0, 0, ids=(10,))) == "accepted"
            assert await sender == "accepted"
            await fast.finish()
            await slow.finish()
            return server.metrics.sheds

        sheds = self._with_server(scenario, max_slot_skew=1)
        assert sheds >= 1

    def test_unsupported_wire_version_gets_error_frame(self):
        async def scenario(server, pipeline):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            hello = bytearray(encode_control(FrameType.HELLO, shard=0))
            hello[2] = 99  # future wire version
            writer.write(bytes(hello))
            await writer.drain()
            frame_type, payload = await read_frame(reader)
            assert frame_type == FrameType.ERROR
            message = json.loads(payload)["message"]
            assert "version" in message
            writer.close()
            return message

        self._with_server(scenario)

    def test_garbage_preamble_gets_error_and_close(self):
        async def scenario(server, pipeline):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(struct.pack(">2sBBI", b"ZZ", 1, 1, 0))
            await writer.drain()
            frame_type, _ = await read_frame(reader)
            assert frame_type == FrameType.ERROR
            assert await reader.read() == b""  # server hung up
            writer.close()

        self._with_server(scenario)
        assert WIRE_MAGIC == b"RG"

    def test_wire_error_is_value_error(self):
        assert issubclass(WireError, ValueError)


def server_counts(pipeline):
    """Buffered batch count per slot (barrier introspection for tests)."""
    return {t: len(shards) for t, shards in pipeline._pending.items()}
