"""Distributed gateway: aggregation tree, scale-out, and recovery.

The contract under test is the repo's signature invariant extended one
tier up: however many worker processes the shard range is split across,
and however often workers die, reconnect, or resend, the root-merged
estimates are bit-identical to ``run_protocol_sharded`` with the same
seed and shard decomposition.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.experiments.cli import main
from repro.gateway import (
    GatewayWorker,
    RootAggregator,
    ShardStateAggregator,
    WorkerSpec,
    aggregate_worker_metrics,
    install_event_loop,
    recover_worker,
    run_chaos,
    run_distributed,
    run_distributed_fleet_async,
    run_distributed_processes,
    shard_ranges,
    worker_for_shard,
)
from repro.gateway.eventloop import LOOP_ENV_VAR
from repro.protocol.messages import ShardSlotState, encode_shard_state
from repro.runtime import MatrixSource, run_protocol_sharded
from repro.service import shard_feeds
from repro.wal import WriteAheadLog

N_USERS, HORIZON, CHUNK = 36, 9, 9  # four shards
PARAMS = dict(epsilon=1.2, w=6, seed=17)


def _source():
    matrix = np.random.default_rng(8).random((N_USERS, HORIZON))
    return MatrixSource(matrix, chunk_size=CHUNK)


@pytest.fixture(scope="module")
def offline():
    return run_protocol_sharded(_source(), **PARAMS)


def _assert_matches_offline(result, offline):
    np.testing.assert_array_equal(
        result.population_mean_series(),
        offline.collector.population_mean_series(),
    )
    assert result.collector.state.slot_sums == offline.collector.state.slot_sums
    assert result.collector.state.slot_counts == offline.collector.state.slot_counts
    assert result.n_reports == offline.collector.state.n_reports


class TestTopology:
    def test_shard_ranges_contiguous_and_near_even(self):
        assert shard_ranges(4, 2) == [(0, 2), (2, 4)]
        assert shard_ranges(7, 3) == [(0, 3), (3, 5), (5, 7)]
        ranges = shard_ranges(10, 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        assert all(hi == nxt_lo for (_, hi), (nxt_lo, _) in zip(ranges, ranges[1:]))
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_ranges_rejects_bad_fleet(self):
        with pytest.raises(ValueError):
            shard_ranges(4, 0)
        with pytest.raises(ValueError):
            shard_ranges(2, 3)

    def test_worker_for_shard_routes_by_range(self):
        topology = [WorkerSpec(0, 0, 2), WorkerSpec(1, 2, 4)]
        assert worker_for_shard(topology, 0).worker == 0
        assert worker_for_shard(topology, 3).worker == 1
        with pytest.raises(ValueError):
            worker_for_shard(topology, 4)


class TestAggregatorProtocol:
    def _agg(self, **kwargs):
        return ShardStateAggregator(2, 3, epsilon=1.0, w=3, **kwargs)

    def _state(self, shard, t, values):
        segment = np.asarray(values, dtype=float)
        return ShardSlotState(
            shard=shard,
            t=t,
            n_reports=len(values),
            total=float(segment.sum()),
            values=segment,
        )

    def test_duplicate_resend_is_idempotent(self):
        agg = self._agg()
        accepted, _ = agg.submit(self._state(0, 0, [0.5, 0.25]))
        assert accepted
        accepted, finalized = agg.submit(self._state(0, 0, [0.5, 0.25]))
        assert not accepted and finalized == []
        assert agg.collector.state.n_reports == 0  # nothing double-merged

    def test_slot_finalizes_once_all_shards_arrive(self):
        agg = self._agg()
        _, finalized = agg.submit(self._state(0, 0, [0.5]))
        assert finalized == []
        _, finalized = agg.submit(self._state(1, 0, [0.75]))
        assert [e.t for e in finalized] == [0]
        assert agg.collector.state.slot_counts[0] == 2

    def test_out_of_order_delivery_rejected(self):
        agg = self._agg()
        with pytest.raises(ValueError, match="slot order"):
            agg.submit(self._state(0, 1, [0.5]))

    def test_out_of_range_shard_and_slot_rejected(self):
        agg = self._agg()
        with pytest.raises(ValueError, match="shard"):
            agg.submit(self._state(5, 0, [0.5]))
        with pytest.raises(ValueError, match="horizon"):
            agg.submit(self._state(0, 3, [0.5]))

    def test_missing_values_segment_rejected_when_reports_kept(self):
        agg = self._agg(keep_reports=True)
        bare = ShardSlotState(shard=0, t=0, n_reports=2, total=1.0)
        with pytest.raises(ValueError, match="values segment"):
            agg.submit(bare)

    def test_resume_slot_is_earliest_missing_in_range(self):
        agg = self._agg()
        agg.submit(self._state(0, 0, [0.5]))
        assert agg.resume_slot(0, 1) == 1
        assert agg.resume_slot(0, 2) == 0  # shard 1 has delivered nothing
        with pytest.raises(ValueError):
            agg.resume_slot(1, 1)


class TestBitEquality:
    @pytest.mark.parametrize("algorithm", ["capp", "sw-direct", "pm-app"])
    def test_three_estimators_match_offline(self, algorithm):
        params = dict(PARAMS, algorithm=algorithm)
        offline = run_protocol_sharded(_source(), **params)
        run = run_distributed(_source(), workers=2, **params)
        _assert_matches_offline(run.result, offline)

    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_every_fleet_size_matches_offline(self, workers, offline):
        run = run_distributed(_source(), workers=workers, **PARAMS)
        _assert_matches_offline(run.result, offline)
        assert len(run.topology) == workers

    def test_track_users_and_report_memory_survive_the_tree(self):
        tracked = run_protocol_sharded(_source(), track_users=True, **PARAMS)
        run = run_distributed(_source(), workers=2, track_users=True, **PARAMS)
        _assert_matches_offline(run.result, tracked)
        assert run.result.collector.state.by_user == tracked.collector.state.by_user
        for t in range(HORIZON):
            np.testing.assert_array_equal(
                run.result.collector.state.slot_reports(t),
                tracked.collector.state.slot_reports(t),
            )

    def test_client_drops_and_jitter_do_not_change_answers(self, offline):
        run = run_distributed(
            _source(),
            workers=2,
            jitter=0.001,
            drops={1: [2, 5], 3: [0]},
            **PARAMS,
        )
        _assert_matches_offline(run.result, offline)
        assert sum(r.reconnects for r in run.shard_reports) >= 2

    def test_result_passes_the_w_event_audit(self):
        run = run_distributed(_source(), workers=2, **PARAMS)
        run.result.assert_valid()


class TestWorkerKillRecovery:
    def test_worker_crash_recover_resume_is_bit_identical(self, offline, tmp_path):
        """Kill a WAL-backed worker mid-run, recover it, finish the run."""
        wal_dir = str(tmp_path / "wal0")
        feeds = shard_feeds(_source(), **PARAMS)
        n_shards = len(feeds)
        ranges = shard_ranges(n_shards, 2)

        async def _drill():
            aggregator = ShardStateAggregator(
                n_shards, HORIZON, epsilon=PARAMS["epsilon"], w=PARAMS["w"]
            )
            root = RootAggregator(aggregator)
            await root.start()
            workers = []
            for i, (lo, hi) in enumerate(ranges):
                wkr = GatewayWorker(
                    worker=i,
                    shard_lo=lo,
                    shard_hi=hi,
                    horizon=HORIZON,
                    epsilon=PARAMS["epsilon"],
                    w=PARAMS["w"],
                    root_port=root.port,
                    retry_after=0.01,
                )
                workers.append(wkr)
            workers[0].pipeline.attach_wal(WriteAheadLog(wal_dir, fsync="never"))
            for wkr in workers:
                await wkr.start(metadata={"seed": PARAMS["seed"]})
            victim_port = workers[0].server.port
            topology = [
                WorkerSpec(i, lo, hi, port=workers[i].server.port)
                for i, (lo, hi) in enumerate(ranges)
            ]
            fleet = asyncio.ensure_future(
                run_distributed_fleet_async(feeds, topology, seed=PARAMS["seed"])
            )
            while workers[0].pipeline.next_slot < 4:
                await asyncio.sleep(0.005)
            await workers[0].crash()  # kill -9 equivalent: nothing flushed cleanly

            rebuilt, recovery = recover_worker(
                wal_dir,
                worker=0,
                shard_lo=ranges[0][0],
                shard_hi=ranges[0][1],
                root_host="127.0.0.1",
                root_port=root.port,
                port=victim_port,
                retry_after=0.01,
                fsync="never",
            )
            assert recovery.replayed_batches > 0
            for attempt in range(50):
                try:
                    await rebuilt.start(metadata={"seed": PARAMS["seed"]})
                    break
                except OSError:  # the crashed listener's socket lingers briefly
                    if attempt == 49:
                        raise
                    await asyncio.sleep(0.02)
            workers[0] = rebuilt
            reports = await fleet
            for wkr in workers:
                await wkr.wait_complete(timeout=60.0)
            await root.wait_complete(timeout=60.0)
            for wkr in workers:
                await wkr.stop()
            await root.stop()
            return root.result(feeds=feeds), reports

        result, reports = asyncio.run(_drill())
        _assert_matches_offline(result, offline)
        # The crashed worker's clients reconnected instead of restarting.
        assert sum(r.reconnects for r in reports if r.shard < ranges[0][1]) >= 1
        result.assert_valid()

    def test_chaos_harness_rejects_multi_worker_fleets(self, tmp_path):
        with pytest.raises(ValueError, match="workers must be 1"):
            run_chaos(_source(), str(tmp_path / "wal"), workers=2)


class TestProcessScaleOut:
    def test_process_per_worker_matches_offline(self, offline):
        run = run_distributed_processes(
            _source, n_shards=4, workers=2, **PARAMS
        )
        _assert_matches_offline(run.result, offline)
        assert [r.shard for r in run.shard_reports] == [0, 1, 2, 3]
        payload = run.metrics_payload()
        assert payload["totals"]["n_workers"] == 2
        assert (
            payload["totals"]["reports_accepted"]
            == offline.collector.state.n_reports
        )
        assert set(payload["workers"]) == {"0", "1"}


class TestMetricsAggregation:
    def test_totals_sum_counters_and_keep_worst_latency(self):
        workers = {
            "0": {
                "reports_accepted": 100,
                "bytes_received": 5000,
                "duplicates": 1,
                "elapsed_seconds": 2.0,
                "p50_slot_latency_seconds": 0.002,
                "p99_slot_latency_seconds": 0.010,
            },
            "1": {
                "reports_accepted": 60,
                "bytes_received": 3000,
                "duplicates": 0,
                "elapsed_seconds": 4.0,
                "p50_slot_latency_seconds": 0.003,
                "p99_slot_latency_seconds": 0.007,
            },
        }
        aggregated = aggregate_worker_metrics(workers)
        totals = aggregated["totals"]
        assert totals["reports_accepted"] == 160
        assert totals["bytes_received"] == 8000
        assert totals["duplicates"] == 1
        assert totals["n_workers"] == 2
        # The straggler bounds wall-clock, so the rate divides by it.
        assert totals["elapsed_seconds"] == 4.0
        assert totals["reports_per_second"] == 40.0
        assert totals["worst_p50_slot_latency_seconds"] == 0.003
        assert totals["worst_p99_slot_latency_seconds"] == 0.010
        assert aggregated["workers"] == workers

    def test_empty_fleet_yields_zero_rate(self):
        totals = aggregate_worker_metrics({})["totals"]
        assert totals["n_workers"] == 0
        assert totals["reports_per_second"] == 0.0


class TestEventLoopSelection:
    def test_asyncio_is_explicit_default(self, monkeypatch):
        monkeypatch.delenv(LOOP_ENV_VAR, raising=False)
        assert install_event_loop("asyncio") == "asyncio"
        assert install_event_loop(None) in ("asyncio", "uvloop")

    def test_invalid_choice_rejected(self):
        with pytest.raises(ValueError, match=LOOP_ENV_VAR):
            install_event_loop("gevent")

    def test_env_var_drives_selection(self, monkeypatch):
        monkeypatch.setenv(LOOP_ENV_VAR, "asyncio")
        assert install_event_loop() == "asyncio"

    def test_missing_uvloop_degrades_with_warning(self):
        try:
            import uvloop  # noqa: F401

            pytest.skip("uvloop installed; fallback path not reachable")
        except ImportError:
            pass
        with pytest.warns(RuntimeWarning, match="uvloop"):
            assert install_event_loop("uvloop") == "asyncio"

    def test_selection_never_changes_answers(self, offline):
        run = run_distributed(_source(), workers=2, **PARAMS)
        _assert_matches_offline(run.result, offline)


class TestDistributedCLI:
    def test_workers_with_standalone_exits_2(self, capsys):
        assert main(["gateway-serve", "--workers", "2", "--standalone"]) == 2
        assert "gateway-root" in capsys.readouterr().err

    def test_workers_with_wal_exits_2(self, capsys, tmp_path):
        code = main(
            ["gateway-serve", "--workers", "2", "--wal", str(tmp_path / "w")]
        )
        assert code == 2
        assert "per-worker" in capsys.readouterr().err

    def test_more_workers_than_shards_exits_2(self, capsys):
        code = main(
            ["gateway-serve", "--workers", "9", "--shards", "4", "--scale", "0.02"]
        )
        assert code == 2
        assert "exceeds" in capsys.readouterr().err

    def test_bad_connect_root_exits_2(self, capsys):
        assert main(["gateway-serve", "--connect-root", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_distributed_serve_verifies_and_writes_metrics(self, capsys, tmp_path):
        metrics_path = str(tmp_path / "dist.json")
        code = main(
            [
                "gateway-serve",
                "--workers", "2",
                "--shards", "4",
                "--scale", "0.02",
                "--verify",
                "--metrics-out", metrics_path,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical to sharded run" in out and "yes" in out
        import json

        with open(metrics_path) as fh:
            payload = json.load(fh)
        assert payload["bit_identical"] is True
        assert payload["n_workers"] == 2
        assert payload["totals"]["n_workers"] == 2
        assert len(payload["shards"]) == 4

    def test_gateway_root_times_out_cleanly(self, capsys):
        code = main(
            [
                "gateway-root",
                "--shards", "2",
                "--scale", "0.02",
                "--port", "0",
                "--serve-timeout", "0.2",
            ]
        )
        assert code == 2
        assert "serve-timeout" in capsys.readouterr().err


@pytest.mark.skipif(os.name != "posix", reason="fork start method")
class TestTwoCommandDeployment:
    def test_root_plus_connect_root_over_loopback(self, capsys):
        """gateway-root and gateway-serve --connect-root, one process each."""
        import threading

        root_codes = []

        def serve_root():
            root_codes.append(
                main(
                    [
                        "gateway-root",
                        "--shards", "4",
                        "--scale", "0.02",
                        "--port", "7278",
                        "--verify",
                        "--serve-timeout", "60",
                    ]
                )
            )

        thread = threading.Thread(target=serve_root, daemon=True)
        thread.start()
        import socket
        import time

        for _ in range(200):  # wait for the root to bind
            try:
                socket.create_connection(("127.0.0.1", 7278), timeout=0.1).close()
                break
            except OSError:
                time.sleep(0.05)
        code = main(
            [
                "gateway-serve",
                "--connect-root", "127.0.0.1:7278",
                "--workers", "2",
                "--shards", "4",
                "--scale", "0.02",
            ]
        )
        thread.join(timeout=60)
        assert code == 0
        assert root_codes == [0]
        out = capsys.readouterr().out
        assert "bit-identical to sharded run" in out


class TestShardStateCodecEdges:
    def test_segment_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="values"):
            encode_shard_state(0, 0, 3, 1.0, values=np.zeros(2))
        with pytest.raises(ValueError, match="user"):
            encode_shard_state(
                0, 0, 2, 1.0, values=np.zeros(2), user_ids=np.zeros(3, dtype=np.int64)
            )
