"""Chaos harness: random kill/reconnect/partition, bit-equal after each.

This is the acceptance drill from the durability work: a gateway fleet
streams a full run while the server is crashed at >= 20 random accepted
batch counts; each crash recovers from the WAL, every recovery must be
bit-identical to the pre-crash pipeline, and the completed run must be
bit-identical (estimates AND per-user privacy ledgers) to an offline
``run_protocol_sharded`` of the same source.
"""

import numpy as np
import pytest

from repro.gateway import run_chaos
from repro.gateway.chaos import _choose_crash_points
from repro.runtime import MatrixSource

N_USERS, HORIZON, CHUNK = 36, 30, 10  # 4 shards x 30 slots = 120 batches


def _source():
    return MatrixSource(
        np.random.default_rng(21).random((N_USERS, HORIZON)), chunk_size=CHUNK
    )


class TestCrashPoints:
    def test_points_deterministic_and_distinct(self):
        a = _choose_crash_points(20, 120, seed=5)
        b = _choose_crash_points(20, 120, seed=5)
        assert a == b
        assert len(set(a)) == 20
        assert a == sorted(a)
        assert all(1 <= p < 120 for p in a)

    def test_different_seed_different_points(self):
        assert _choose_crash_points(20, 120, seed=5) != _choose_crash_points(
            20, 120, seed=6
        )

    def test_excess_crashes_clamped_to_population(self):
        # 120 batches admit at most 119 mid-run crash points.
        points = _choose_crash_points(500, 120, seed=0)
        assert points == list(range(1, 120))

    def test_zero_crashes_refused(self):
        with pytest.raises(ValueError, match="n_crashes"):
            _choose_crash_points(0, 120, seed=0)


class TestChaosCampaign:
    def test_twenty_crashes_bit_equal(self, tmp_path):
        report = run_chaos(
            _source(),
            str(tmp_path / "wal"),
            n_crashes=20,
            algorithm="capp",
            epsilon=1.0,
            w=6,
            smoothing_window=3,
            seed=3,
            drops={0: [4, 11], 2: [7]},  # mid-run client kills too
            crash_seed=5,
        )
        report.assert_bit_equal()
        assert report.n_crashes == 20
        assert all(c.state_bit_equal for c in report.crashes)
        assert report.offline_bit_equal
        assert report.ledgers_bit_equal
        # The three dropped connections reconnected on top of the 20
        # crash-forced reconnect rounds.
        assert report.total_reconnects >= 20 + 3

    def test_refuses_existing_wal_dir(self, tmp_path):
        from repro.wal import WriteAheadLog

        WriteAheadLog(str(tmp_path / "wal")).close()
        with pytest.raises(ValueError, match="already holds a WAL"):
            run_chaos(_source(), str(tmp_path / "wal"), n_crashes=1)

    def test_netem_windows_stay_bit_equal(self, tmp_path):
        """Crashes + delay windows + partition windows: still bit-equal.

        Netem layers scheduled link impairment on top of the random
        server kills — slots 3-5 are uploaded into a dead network
        (abort before the frame is written) and slots 8-11 arrive late.
        None of it may move a single bit of the estimates or ledgers
        relative to the uninterrupted offline run.
        """
        from repro.gateway import NetemSpec

        netem = NetemSpec(
            delay=0.002,
            delay_windows=((8, 11),),
            partition_windows=((3, 5),),
            partition_outage=0.005,
        )
        report = run_chaos(
            _source(),
            str(tmp_path / "wal"),
            n_crashes=6,
            algorithm="capp",
            epsilon=1.0,
            w=6,
            smoothing_window=3,
            seed=3,
            netem=netem,
            crash_seed=5,
        )
        report.assert_bit_equal()
        # Every shard hit the partition window once per in-window slot
        # (unless a server crash got there first and the resume skipped
        # ahead); the fleet-wide total must show real partitions.
        total_partitions = sum(r.partitions for r in report.shard_reports)
        assert total_partitions > 0
        assert report.total_reconnects >= total_partitions
