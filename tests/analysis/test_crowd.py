"""Tests for crowd-level statistics (Theorem 5 / Fig. 8 machinery)."""

import math

import numpy as np
import pytest

from repro.analysis import (
    crowd_mean_distribution_distance,
    crowd_mean_estimates,
    dkw_sample_bound,
)
from repro.baselines import SWDirect
from repro.core import APP
from repro.datasets import taxi_matrix


@pytest.fixture
def small_crowd():
    return taxi_matrix(40, 30)


class TestCrowdMeanEstimates:
    def test_shapes(self, small_crowd, rng):
        est, true = crowd_mean_estimates(
            small_crowd, lambda: APP(1.0, 10), rng
        )
        assert est.shape == (40,)
        assert true.shape == (40,)

    def test_true_means_exact(self, small_crowd, rng):
        _, true = crowd_mean_estimates(small_crowd, lambda: APP(1.0, 10), rng)
        np.testing.assert_allclose(true, small_crowd.mean(axis=1))

    def test_rejects_1d_input(self, rng):
        with pytest.raises(ValueError, match="matrix"):
            crowd_mean_estimates(np.zeros(10), lambda: APP(1.0, 5), rng)

    def test_estimates_correlate_with_truth_at_high_budget(self, small_crowd, rng):
        est, true = crowd_mean_estimates(
            small_crowd, lambda: APP(10.0, 5), rng
        )
        assert np.corrcoef(est, true)[0, 1] > 0.3


class TestDistributionDistance:
    def test_nonnegative(self, small_crowd, rng):
        distance = crowd_mean_distribution_distance(
            small_crowd, lambda: SWDirect(1.0, 10), rng
        )
        assert distance >= 0.0

    def test_better_algorithm_smaller_distance(self, small_crowd):
        # More budget -> better individual estimates -> closer crowd
        # distribution (Theorem 5's monotonicity, statistically).
        lo, hi = [], []
        for rep in range(5):
            lo.append(
                crowd_mean_distribution_distance(
                    small_crowd,
                    lambda: APP(0.2, 10),
                    np.random.default_rng(700 + rep),
                )
            )
            hi.append(
                crowd_mean_distribution_distance(
                    small_crowd,
                    lambda: APP(5.0, 10),
                    np.random.default_rng(700 + rep),
                )
            )
        assert np.mean(hi) < np.mean(lo)


class TestDKWBound:
    def test_formula(self):
        # N >= ln(2/delta) / (2 (eta - beta)^2)
        n = dkw_sample_bound(eta=0.2, beta=0.1, delta=0.05)
        expected = math.ceil(math.log(2 / 0.05) / (2 * 0.01))
        assert n == expected

    def test_tighter_eta_needs_more_samples(self):
        loose = dkw_sample_bound(0.3, 0.1, 0.05)
        tight = dkw_sample_bound(0.15, 0.1, 0.05)
        assert tight > loose

    def test_eta_must_exceed_beta(self):
        with pytest.raises(ValueError, match="exceed"):
            dkw_sample_bound(0.1, 0.1, 0.05)

    def test_delta_validated(self):
        with pytest.raises(ValueError):
            dkw_sample_bound(0.2, 0.1, 1.5)

    def test_empirical_dkw_holds(self, rng):
        # Sanity: with N from the bound and beta = 0 the empirical CDF is
        # within eta of the truth (checked against a uniform sample).
        eta, delta = 0.15, 0.05
        n = dkw_sample_bound(eta, 0.0, delta)
        failures = 0
        for _ in range(20):
            sample = rng.random(n)
            grid = np.linspace(0, 1, 200)
            emp = np.searchsorted(np.sort(sample), grid, side="right") / n
            if np.abs(emp - grid).max() > eta:
                failures += 1
        assert failures <= 2  # 5% failure probability, generous margin
