"""Tests for trend analysis on published streams."""

import numpy as np
import pytest

from repro.analysis import (
    TrendSegment,
    classify_trend,
    detect_change_points,
    linear_trend,
    rolling_trend,
    segment_trends,
)


class TestLinearTrend:
    def test_exact_line(self):
        slope, intercept = linear_trend(0.1 * np.arange(10) + 0.5)
        assert slope == pytest.approx(0.1)
        assert intercept == pytest.approx(0.5)

    def test_constant_stream(self):
        slope, _ = linear_trend(np.full(20, 0.3))
        assert slope == pytest.approx(0.0, abs=1e-12)

    def test_single_point(self):
        slope, intercept = linear_trend(np.array([0.7]))
        assert slope == 0.0
        assert intercept == 0.7

    def test_noise_robustness(self, rng):
        truth = 0.02 * np.arange(200)
        noisy = truth + rng.normal(0, 0.1, size=200)
        slope, _ = linear_trend(noisy)
        assert slope == pytest.approx(0.02, abs=0.005)


class TestRollingTrend:
    def test_detects_direction_change(self):
        stream = np.concatenate([np.linspace(0, 1, 20), np.linspace(1, 0, 20)])
        slopes = rolling_trend(stream, window=5)
        assert slopes[15] > 0
        assert slopes[35] < 0

    def test_first_position_zero(self):
        slopes = rolling_trend(np.arange(5, dtype=float), window=3)
        assert slopes[0] == 0.0

    def test_length_preserved(self, rng):
        assert rolling_trend(rng.random(30), 7).size == 30


class TestClassifyTrend:
    def test_rising(self):
        assert classify_trend(np.linspace(0, 1, 50)) == "rising"

    def test_falling(self):
        assert classify_trend(np.linspace(1, 0, 50)) == "falling"

    def test_flat(self):
        assert classify_trend(np.full(50, 0.5)) == "flat"

    def test_threshold(self):
        gentle = 1e-4 * np.arange(50)
        assert classify_trend(gentle, threshold=1e-2) == "flat"
        assert classify_trend(gentle, threshold=1e-6) == "rising"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            classify_trend(np.ones(5), threshold=-1.0)


class TestChangePoints:
    def test_single_step_detected(self):
        stream = np.concatenate([np.zeros(30), np.ones(30)])
        points = detect_change_points(stream, threshold=0.5)
        assert len(points) >= 1
        assert 28 <= points[0] <= 33

    def test_no_change_on_constant(self):
        assert detect_change_points(np.full(50, 0.4), threshold=0.5) == []

    def test_multiple_steps(self):
        stream = np.concatenate([np.zeros(25), np.ones(25), np.zeros(25)])
        points = detect_change_points(stream, threshold=0.5)
        assert len(points) == 2

    def test_drift_desensitizes(self):
        ramp = np.linspace(0, 1, 100)
        sensitive = detect_change_points(ramp, threshold=0.3, drift=0.0)
        robust = detect_change_points(ramp, threshold=0.3, drift=0.02)
        assert len(robust) <= len(sensitive)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            detect_change_points(np.ones(5), threshold=0.0)


class TestSegmentTrends:
    def test_segments_cover_stream(self):
        stream = np.concatenate([np.zeros(30), np.ones(30)])
        segments = segment_trends(stream, threshold=0.5)
        assert segments[0].start == 0
        assert segments[-1].end == 59
        for a, b in zip(segments, segments[1:]):
            assert b.start == a.end + 1

    def test_direction_labels(self):
        stream = np.concatenate([np.linspace(0, 1, 40), np.linspace(1, 0.5, 30)])
        # A huge threshold suppresses all change points -> one segment
        # classified by the overall (rising) fit.
        segments = segment_trends(stream, threshold=100.0)
        assert len(segments) == 1
        assert segments[0].direction == "rising"

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            TrendSegment(start=5, end=4, direction="flat", slope=0.0)

    def test_on_published_stream(self, rng):
        # End-to-end: trend classification survives CAPP perturbation at a
        # generous budget.
        from repro.core import CAPP

        stream = np.linspace(0.1, 0.9, 80)
        result = CAPP(8.0, 4).perturb_stream(stream, rng)
        assert classify_trend(result.published, threshold=1e-3) == "rising"
