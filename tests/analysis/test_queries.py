"""Tests for the subsequence query index."""

import numpy as np
import pytest

from repro.analysis.queries import RangeStatistics, SubsequenceIndex


@pytest.fixture
def index(rng):
    return SubsequenceIndex(rng.random(100)), None


class TestRangeQueries:
    def test_mean_matches_numpy(self, rng):
        values = rng.random(50)
        index = SubsequenceIndex(values)
        for start, end in [(0, 49), (3, 7), (10, 10), (48, 49)]:
            assert index.mean(start, end) == pytest.approx(
                values[start : end + 1].mean()
            )

    def test_variance_matches_numpy(self, rng):
        values = rng.random(50)
        index = SubsequenceIndex(values)
        for start, end in [(0, 49), (5, 20)]:
            assert index.variance(start, end) == pytest.approx(
                values[start : end + 1].var(), abs=1e-12
            )

    def test_single_point_variance_zero(self, rng):
        index = SubsequenceIndex(rng.random(10))
        assert index.variance(4, 4) == pytest.approx(0.0, abs=1e-12)

    def test_range_sum(self):
        index = SubsequenceIndex([1.0, 2.0, 3.0])
        assert index.range_sum(0, 2) == pytest.approx(6.0)
        assert index.range_sum(1, 1) == pytest.approx(2.0)

    def test_invalid_ranges_rejected(self, rng):
        index = SubsequenceIndex(rng.random(10))
        with pytest.raises(ValueError):
            index.mean(5, 4)
        with pytest.raises(ValueError):
            index.mean(0, 10)
        with pytest.raises(ValueError):
            index.mean(-1, 3)

    def test_statistics_bundle(self, rng):
        values = rng.random(30)
        stats = SubsequenceIndex(values).statistics(5, 14)
        assert isinstance(stats, RangeStatistics)
        assert stats.count == 10
        assert stats.mean == pytest.approx(values[5:15].mean())
        assert stats.std == pytest.approx(values[5:15].std(), abs=1e-9)


class TestBatchQueries:
    def test_batch_means(self, rng):
        values = rng.random(40)
        index = SubsequenceIndex(values)
        ranges = [(0, 9), (10, 19), (0, 39)]
        out = index.batch_means(ranges)
        expected = [values[a : b + 1].mean() for a, b in ranges]
        np.testing.assert_allclose(out, expected)

    def test_empty_batch(self, rng):
        assert SubsequenceIndex(rng.random(5)).batch_means([]).size == 0

    def test_invalid_batch_rejected(self, rng):
        index = SubsequenceIndex(rng.random(5))
        with pytest.raises(ValueError):
            index.batch_means([(0, 5)])

    def test_sliding_means_match_convolution(self, rng):
        values = rng.random(30)
        index = SubsequenceIndex(values)
        window = 7
        out = index.sliding_means(window)
        expected = np.convolve(values, np.ones(window) / window, mode="valid")
        np.testing.assert_allclose(out, expected)

    def test_sliding_window_bounds(self, rng):
        index = SubsequenceIndex(rng.random(10))
        with pytest.raises(ValueError):
            index.sliding_means(0)
        with pytest.raises(ValueError):
            index.sliding_means(11)


class TestIntegrationWithPublishedStream:
    def test_query_published_stream(self, smooth_stream, rng):
        from repro.core import CAPP

        result = CAPP(2.0, 10).perturb_stream(smooth_stream, rng)
        index = SubsequenceIndex(result.published)
        assert len(index) == smooth_stream.size
        stats = index.statistics(20, 59)
        assert abs(stats.mean - smooth_stream[20:60].mean()) < 0.5
