"""Tests for the standing-query engine."""

import pytest

from repro.analysis.streaming_queries import (
    RollingExtrema,
    RollingMean,
    RollingTrend,
    StreamingQueryEngine,
    ThresholdAlert,
)


class TestRollingMean:
    def test_warmup_returns_none(self):
        query = RollingMean(3)
        assert query.answer() is None

    def test_partial_window(self):
        query = RollingMean(5)
        query.update(0.2)
        query.update(0.4)
        assert query.answer() == pytest.approx(0.3)

    def test_sliding(self):
        query = RollingMean(2)
        for v in (1.0, 2.0, 3.0):
            query.update(v)
        assert query.answer() == pytest.approx(2.5)

    def test_matches_numpy_on_long_stream(self, rng):
        values = rng.random(500)
        query = RollingMean(20)
        for v in values:
            query.update(v)
        assert query.answer() == pytest.approx(values[-20:].mean())

    def test_reset(self):
        query = RollingMean(3)
        query.update(1.0)
        query.reset()
        assert query.answer() is None


class TestRollingExtrema:
    def test_min_max(self):
        query = RollingExtrema(3)
        for v in (0.5, 0.1, 0.9, 0.4):
            query.update(v)
        assert query.answer() == (0.1, 0.9)

    def test_old_values_expire(self):
        query = RollingExtrema(2)
        for v in (0.9, 0.2, 0.3):
            query.update(v)
        assert query.answer() == (0.2, 0.3)


class TestRollingTrend:
    def test_needs_two_points(self):
        query = RollingTrend(5)
        query.update(0.5)
        assert query.answer() is None

    def test_rising_positive(self):
        query = RollingTrend(4)
        for v in (0.1, 0.2, 0.3, 0.4):
            query.update(v)
        assert query.answer() == pytest.approx(0.1)

    def test_window_must_hold_two(self):
        with pytest.raises(ValueError):
            RollingTrend(1)


class TestThresholdAlert:
    def test_fires_on_crossing(self):
        alert = ThresholdAlert(window=2, threshold=0.5)
        alert.update(0.2)
        alert.update(0.2)
        assert not alert.answer()
        alert.update(0.9)
        alert.update(0.9)
        assert alert.answer()
        assert alert.fired_count == 1

    def test_refire_after_recovery(self):
        alert = ThresholdAlert(window=1, threshold=0.5)
        for v in (0.9, 0.1, 0.9):
            alert.update(v)
        assert alert.fired_count == 2

    def test_below_mode(self):
        alert = ThresholdAlert(window=1, threshold=0.5, above=False)
        alert.update(0.1)
        assert alert.answer()


class TestEngine:
    def test_register_and_push(self):
        engine = StreamingQueryEngine()
        engine.register("mean", RollingMean(2))
        engine.register("trend", RollingTrend(3))
        answers = engine.push(0.5)
        assert answers["mean"] == pytest.approx(0.5)
        assert answers["trend"] is None
        assert engine.values_seen == 1

    def test_duplicate_name_rejected(self):
        engine = StreamingQueryEngine()
        engine.register("q", RollingMean(2))
        with pytest.raises(ValueError, match="already registered"):
            engine.register("q", RollingMean(3))

    def test_unregister(self):
        engine = StreamingQueryEngine()
        engine.register("q", RollingMean(2))
        engine.unregister("q")
        assert engine.names == []
        with pytest.raises(KeyError):
            engine.unregister("q")

    def test_query_accessor(self):
        engine = StreamingQueryEngine()
        alert = ThresholdAlert(1, threshold=0.5)
        engine.register("alert", alert)
        assert engine.query("alert") is alert
        with pytest.raises(KeyError):
            engine.query("missing")

    def test_non_query_rejected(self):
        engine = StreamingQueryEngine()
        with pytest.raises(TypeError):
            engine.register("bad", lambda v: v)

    def test_nan_rejected(self):
        engine = StreamingQueryEngine()
        with pytest.raises(ValueError, match="finite"):
            engine.push(float("nan"))

    def test_reset_clears_everything(self):
        engine = StreamingQueryEngine()
        engine.register("mean", RollingMean(2))
        engine.push(0.4)
        engine.reset()
        assert engine.values_seen == 0
        assert engine.answers()["mean"] is None

    def test_end_to_end_with_online_perturber(self, rng):
        # Published reports from an online CAPP stream drive the engine.
        from repro.core import OnlineCAPP

        publisher = OnlineCAPP(2.0, 10, rng)
        engine = StreamingQueryEngine()
        engine.register("mean", RollingMean(20))
        engine.register("alert", ThresholdAlert(20, threshold=0.95))
        for _ in range(100):
            report = publisher.submit(0.5)
            engine.push(report)
        assert engine.values_seen == 100
        assert 0.0 < engine.answers()["mean"] < 1.0


class TestNonFiniteRejection:
    """No path — engine push or direct query update — admits NaN/inf.

    A NaN folded into RollingMean's running sum would poison every later
    answer (it never leaves the sum, even after the value slides out of
    the window), and a NaN-poisoned mean silently disables
    ThresholdAlert: NaN comparisons are always False, so the alert could
    neither fire nor clear.  Validation therefore lives in update(), not
    just at the engine boundary.
    """

    BAD_VALUES = [float("nan"), float("inf"), float("-inf")]

    @pytest.mark.parametrize("bad", BAD_VALUES)
    def test_every_query_rejects_direct_update(self, bad):
        queries = [
            RollingMean(3),
            RollingExtrema(3),
            RollingTrend(3),
            ThresholdAlert(3, threshold=0.5),
        ]
        for query in queries:
            with pytest.raises(ValueError, match="finite"):
                query.update(bad)

    @pytest.mark.parametrize("bad", BAD_VALUES)
    def test_engine_push_rejects(self, bad):
        engine = StreamingQueryEngine()
        engine.register("mean", RollingMean(2))
        with pytest.raises(ValueError, match="finite"):
            engine.push(bad)
        assert engine.values_seen == 0

    def test_rejected_update_leaves_rolling_state_unpoisoned(self):
        mean = RollingMean(2)
        mean.update(0.4)
        with pytest.raises(ValueError):
            mean.update(float("nan"))
        mean.update(0.6)
        # Window is [0.4, 0.6]: the rejected NaN contributed nothing.
        assert mean.answer() == pytest.approx(0.5)
        mean.update(0.8)
        assert mean.answer() == pytest.approx(0.7)

    def test_rejected_update_leaves_alert_functional(self):
        alert = ThresholdAlert(2, threshold=0.5)
        alert.update(0.2)
        with pytest.raises(ValueError):
            alert.update(float("inf"))
        alert.update(0.9)
        alert.update(0.9)
        assert alert.answer() is True
        assert alert.fired_count == 1

    def test_threshold_alert_still_clears_after_rejected_value(self):
        alert = ThresholdAlert(1, threshold=0.5)
        alert.update(0.9)
        assert alert.answer() is True
        with pytest.raises(ValueError):
            alert.update(float("nan"))
        alert.update(0.1)
        assert alert.answer() is False
