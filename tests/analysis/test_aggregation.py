"""Tests for collector-side aggregation helpers."""

import numpy as np
import pytest

from repro.analysis import (
    estimate_mean,
    estimate_published_stream,
    subsequence,
    subsequence_mean,
)
from repro.core import APP


class TestSubsequence:
    def test_inclusive_slice(self):
        values = np.arange(10, dtype=float) / 10
        sub = subsequence(values, 2, 5)
        np.testing.assert_allclose(sub, [0.2, 0.3, 0.4, 0.5])

    def test_single_point(self):
        sub = subsequence(np.array([0.1, 0.2, 0.3]), 1, 1)
        assert sub.tolist() == [0.2]

    def test_invalid_range_rejected(self):
        values = np.zeros(5)
        with pytest.raises(ValueError):
            subsequence(values, 3, 2)
        with pytest.raises(ValueError):
            subsequence(values, 0, 5)
        with pytest.raises(ValueError):
            subsequence(values, -1, 2)

    def test_mean(self):
        values = np.array([0.0, 1.0, 1.0, 0.0])
        assert subsequence_mean(values, 1, 2) == pytest.approx(1.0)


class TestResultHelpers:
    def test_estimate_mean_delegates(self, smooth_stream, rng):
        result = APP(1.0, 10).perturb_stream(smooth_stream, rng)
        assert estimate_mean(result) == pytest.approx(result.perturbed.mean())

    def test_published_stream_is_copy(self, smooth_stream, rng):
        result = APP(1.0, 10).perturb_stream(smooth_stream, rng)
        out = estimate_published_stream(result)
        out[0] = 99.0
        assert result.published[0] != 99.0
