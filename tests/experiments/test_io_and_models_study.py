"""Tests for result persistence and the privacy-model study."""

import os

import numpy as np
import pytest

from repro.experiments import (
    ResultDocument,
    load_results,
    run_models_study,
    save_results,
)


class TestResultDocument:
    def test_json_roundtrip(self):
        doc = ResultDocument(
            experiment="fig4",
            parameters={"w": 10},
            results={"app": [0.1, 0.2]},
        )
        restored = ResultDocument.from_json(doc.to_json())
        assert restored.experiment == "fig4"
        assert restored.parameters == {"w": 10}
        assert restored.results == {"app": [0.1, 0.2]}

    def test_version_check(self):
        with pytest.raises(ValueError, match="version"):
            ResultDocument.from_json('{"experiment": "x", "version": 99}')


class TestSaveLoad:
    def test_roundtrip_on_disk(self, tmp_path):
        path = os.path.join(tmp_path, "sub", "result.json")
        save_results(
            path,
            "table1",
            results={("c6h6", 20): {"app": 0.1}},
            parameters={"epsilon": 1.0},
        )
        doc = load_results(path)
        assert doc.experiment == "table1"
        # Tuple keys are stringified deterministically.
        assert "('c6h6', 20)" in doc.results
        assert doc.parameters["epsilon"] == 1.0

    def test_numpy_values_serialized(self, tmp_path):
        path = os.path.join(tmp_path, "np.json")
        save_results(
            path,
            "fig4",
            results={"series": np.array([1.0, 2.0]), "scalar": np.float64(3.5)},
        )
        doc = load_results(path)
        assert doc.results["series"] == [1.0, 2.0]
        assert doc.results["scalar"] == 3.5


class TestModelsStudy:
    @pytest.fixture(scope="class")
    def study(self):
        stream = np.clip(0.4 + 0.2 * np.sin(np.arange(60) / 6), 0, 1)
        return run_models_study(
            stream, epsilon=1.0, w=10, n_repeats=8,
            rng=np.random.default_rng(0),
        )

    def test_all_models_present(self, study):
        assert set(study) == {"EventLevel", "WEvent", "UserLevel"}

    def test_budget_ordering(self, study):
        assert (
            study["UserLevel"]["per_slot"]
            < study["WEvent"]["per_slot"]
            < study["EventLevel"]["per_slot"]
        )

    def test_protection_ordering(self, study):
        assert (
            study["EventLevel"]["protected_span"]
            < study["WEvent"]["protected_span"]
            < study["UserLevel"]["protected_span"]
        )

    def test_utility_tracks_budget(self, study):
        # Event-level (most budget) publishes better streams than
        # user-level (least budget).
        assert study["EventLevel"]["cosine"] < study["UserLevel"]["cosine"]

    def test_metrics_finite(self, study):
        for metrics in study.values():
            assert all(np.isfinite(v) for v in metrics.values())
