"""Tests for the terminal plotting helpers."""

import numpy as np

from repro.experiments import line_chart, sparkline, sweep_chart


class TestSparkline:
    def test_length_matches_series(self, rng):
        assert len(sparkline(rng.random(17))) == 17

    def test_constant_series_flat(self):
        out = sparkline(np.full(8, 0.3))
        assert out == "▁" * 8

    def test_monotone_series_monotone_glyphs(self):
        out = sparkline(np.linspace(0, 1, 8))
        levels = "▁▂▃▄▅▆▇█"
        indices = [levels.index(ch) for ch in out]
        assert indices == sorted(indices)
        assert indices[0] == 0 and indices[-1] == 7

    def test_extremes_hit_both_ends(self):
        out = sparkline([0.0, 1.0])
        assert out[0] == "▁" and out[1] == "█"


class TestLineChart:
    def test_contains_title_and_bounds(self, rng):
        out = line_chart(rng.random(30), height=5, title="My Chart")
        assert out.splitlines()[0] == "My Chart"
        assert "┐" in out and "┘" in out

    def test_height_rows(self, rng):
        out = line_chart(rng.random(30), height=6)
        # 6 chart rows + 2 bound rows.
        assert len(out.splitlines()) == 8

    def test_downsampling(self, rng):
        out = line_chart(rng.random(1_000), height=4, width=40)
        chart_rows = out.splitlines()[1:-1]
        assert all(len(row) <= 7 + 40 for row in chart_rows)

    def test_one_dot_per_column(self, rng):
        series = rng.random(25)
        out = line_chart(series, height=8)
        rows = [line[7:] for line in out.splitlines()[1:-1]]
        for col in range(25):
            dots = sum(1 for row in rows if col < len(row) and row[col] == "•")
            assert dots == 1


class TestSweepChart:
    def test_contains_all_algorithms(self):
        out = sweep_chart(
            [0.5, 1.0],
            {"app": [0.2, 0.1], "capp": [0.15, 0.08]},
            title="Fig.4",
        )
        assert "Fig.4" in out
        assert "app" in out and "capp" in out
        assert "eps grid" in out

    def test_range_annotation(self):
        out = sweep_chart([1.0], {"x": [0.25]})
        assert "0.25" in out

    def test_log_scale_handles_huge_ratios(self):
        out = sweep_chart(
            [0.5, 1.0],
            {"topl": [100.0, 50.0], "app": [0.01, 0.005]},
            log_scale=True,
        )
        assert "topl" in out and "app" in out
