"""Smoke + structure tests for the table/figure runners (reduced scale)."""


from repro.experiments import (
    format_table1,
    run_fig4,
    run_fig6,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_table1,
)

# Shared reduced-scale knobs so the suite stays fast.
SMALL = dict(n_subsequences=3, n_repeats=1, stream_length=300, seed=0)


class TestTable1:
    def test_structure(self):
        result = run_table1(
            windows=(20,), datasets=("c6h6",), n_subsequences=3,
            stream_length=300,
        )
        assert set(result) == {"c6h6"}
        assert set(result["c6h6"]) == {20}
        cells = result["c6h6"][20]
        assert set(cells) == {"sw-direct", "ipp", "app", "topl"}
        assert all(v >= 0 for v in cells.values())

    def test_topl_orders_of_magnitude_worse(self):
        result = run_table1(
            windows=(20,), datasets=("c6h6",), n_subsequences=8,
            stream_length=500, seed=3,
        )
        cells = result["c6h6"][20]
        assert cells["topl"] > 10 * cells["app"]

    def test_formatting(self):
        result = run_table1(
            windows=(20,), datasets=("c6h6",), n_subsequences=2,
            stream_length=300,
        )
        text = format_table1(result)
        assert "Table I" in text
        assert "c6h6" in text


class TestFig4:
    def test_structure(self):
        result = run_fig4(
            datasets=("c6h6",), windows=(10,), epsilons=(0.5, 1.0), **SMALL
        )
        series = result["c6h6"][10]
        assert set(series) == {"sw-direct", "ba-sw", "ipp", "app", "capp"}
        assert all(len(v) == 2 for v in series.values())


class TestFig6:
    def test_structure(self):
        panels = (("volume", 20, 10),)
        result = run_fig6(panels=panels, epsilons=(1.0,), **SMALL)
        series = result[("volume", 20, 10)]
        assert "app-s" in series and "capp-s" in series and "sampling" in series


class TestFig8:
    def test_structure(self):
        panels = (("taxi", 10, 10, False), ("taxi", 20, 10, True))
        result = run_fig8(panels=panels, epsilons=(1.0,), n_users=15, seed=0)
        non_sampling = result[("taxi", 10, 10, False)]
        sampling = result[("taxi", 20, 10, True)]
        assert "ba-sw" in non_sampling
        assert "capp-s" in sampling
        assert all(v[0] >= 0 for v in non_sampling.values())


class TestFig9:
    def test_structure(self):
        result = run_fig9(datasets=("c6h6",), epsilons=(1.0,), **SMALL)
        assert set(result["c6h6"]) == {"mse", "cosine"}
        assert "laplace-app" in result["c6h6"]["mse"]
        assert "sw-app" in result["c6h6"]["cosine"]

    def test_sw_beats_laplace_direct_at_small_eps(self):
        result = run_fig9(
            datasets=("c6h6",), epsilons=(0.5,), n_subsequences=8,
            stream_length=500, seed=1,
        )
        mse = result["c6h6"]["mse"]
        assert mse["sw-direct"][0] < mse["laplace-direct"][0]


class TestFig10:
    def test_structure(self):
        result = run_fig10(dimensions=(3,), epsilons=(1.0,), length=60, n_repeats=1)
        per = result[3]
        assert set(per) == {"mse", "cosine"}
        assert set(per["mse"]) == {
            "sw-bs", "app-bs", "capp-bs", "sw-ss", "app-ss", "capp-ss",
        }


class TestFig11:
    def test_structure(self):
        deltas = (-0.2, 0.0, 0.2)
        result = run_fig11(
            datasets=("constant",), epsilons=(1.0,), deltas=deltas,
            n_subsequences=2, stream_length=100,
        )
        series = result["constant"][1.0]
        assert len(series) == 3
        assert all(v >= 0 for v in series)
