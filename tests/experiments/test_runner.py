"""Tests for the generic experiment runner."""

import numpy as np
import pytest

from repro.experiments import (
    SweepResult,
    mean_squared_error_of_mean,
    publication_cosine_distance,
    publication_jsd,
    run_epsilon_sweep,
    sample_subsequences,
)
from repro.experiments.registry import make_algorithm


class TestSampleSubsequences:
    def test_count_and_length(self, rng):
        stream = rng.random(500)
        subs = sample_subsequences(stream, 20, 7, rng)
        assert len(subs) == 7
        assert all(s.size == 20 for s in subs)

    def test_subsequences_are_views_of_stream_content(self, rng):
        stream = rng.random(100)
        subs = sample_subsequences(stream, 10, 3, rng)
        for sub in subs:
            # Each subsequence occurs contiguously in the stream.
            found = any(
                np.array_equal(stream[s : s + 10], sub)
                for s in range(91)
            )
            assert found

    def test_full_length_subsequence(self, rng):
        stream = rng.random(30)
        subs = sample_subsequences(stream, 30, 2, rng)
        for sub in subs:
            np.testing.assert_array_equal(sub, stream)

    def test_too_long_rejected(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            sample_subsequences(rng.random(10), 11, 1, rng)

    def test_deterministic_given_seed(self):
        stream = np.random.default_rng(0).random(200)
        a = sample_subsequences(stream, 10, 5, np.random.default_rng(42))
        b = sample_subsequences(stream, 10, 5, np.random.default_rng(42))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestMetrics:
    def test_mean_mse_nonnegative(self, smooth_stream, rng):
        perturber = make_algorithm("app", 1.0, 10)
        value = mean_squared_error_of_mean(perturber, smooth_stream, rng)
        assert value >= 0.0

    def test_cosine_in_range(self, smooth_stream, rng):
        perturber = make_algorithm("capp", 1.0, 10)
        value = publication_cosine_distance(perturber, smooth_stream, rng)
        assert -1e-9 <= value <= 2.0

    def test_jsd_in_range(self, smooth_stream, rng):
        perturber = make_algorithm("sw-direct", 1.0, 10)
        value = publication_jsd(perturber, smooth_stream, rng)
        assert 0.0 <= value <= 1.0


class TestRunEpsilonSweep:
    def test_structure(self, smooth_stream):
        sweep = run_epsilon_sweep(
            smooth_stream,
            ["sw-direct", "app"],
            epsilons=[0.5, 1.0],
            w=10,
            n_subsequences=3,
            seed=0,
        )
        assert isinstance(sweep, SweepResult)
        assert sweep.epsilons == [0.5, 1.0]
        assert set(sweep.values) == {"sw-direct", "app"}
        assert all(len(v) == 2 for v in sweep.values.values())

    def test_query_length_defaults_to_w(self, smooth_stream):
        sweep = run_epsilon_sweep(
            smooth_stream,
            ["app"],
            epsilons=[1.0],
            w=15,
            n_subsequences=2,
            seed=0,
        )
        assert len(sweep.values["app"]) == 1

    def test_reproducible(self, smooth_stream):
        kwargs = dict(
            algorithms=["app"], epsilons=[1.0], w=10, n_subsequences=3, seed=5
        )
        a = run_epsilon_sweep(smooth_stream, **kwargs)
        b = run_epsilon_sweep(smooth_stream, **kwargs)
        assert a.values == b.values

    def test_best_algorithm(self):
        sweep = SweepResult(
            epsilons=[1.0], values={"a": [0.5], "b": [0.1]}
        )
        assert sweep.best_algorithm(0) == "b"

    def test_as_rows_sorted(self):
        sweep = SweepResult(epsilons=[1.0], values={"z": [1.0], "a": [2.0]})
        assert [name for name, _ in sweep.as_rows()] == ["a", "z"]

    def test_repeats_accepted(self, smooth_stream):
        sweep = run_epsilon_sweep(
            smooth_stream,
            ["app"],
            epsilons=[1.0],
            w=10,
            n_subsequences=2,
            n_repeats=2,
            seed=0,
        )
        assert len(sweep.values["app"]) == 1


class TestScenarioStudy:
    def test_structure_and_determinism(self):
        from repro.experiments.runner import run_scenario_study

        kwargs = dict(
            scenarios=("steady", "churn"),
            algorithms=("capp", "sw-direct"),
            n_users=60,
            horizon=24,
            epsilon=2.0,
            w=6,
            n_shards=2,
            max_workers=1,
            seed=0,
        )
        study = run_scenario_study(**kwargs)
        assert sorted(study) == ["churn", "steady"]
        for per_algorithm in study.values():
            assert sorted(per_algorithm) == ["capp", "sw-direct"]
            for value in per_algorithm.values():
                assert value >= 0.0
        again = run_scenario_study(**kwargs)
        assert study == again

    def test_invalid_shards(self):
        from repro.experiments.runner import run_scenario_study

        with pytest.raises(ValueError):
            run_scenario_study(n_shards=0, n_users=10, horizon=5)


class TestEngineSwitch:
    """Scalar vs vectorized sweep engines: same statistics, one code path."""

    def test_invalid_engine_rejected(self, smooth_stream):
        with pytest.raises(ValueError, match="engine"):
            run_epsilon_sweep(
                smooth_stream, ["capp"], [1.0], w=10, engine="turbo"
            )

    def test_vectorized_matches_scalar_within_tolerance(self, smooth_stream):
        kwargs = dict(
            algorithms=["sw-direct", "capp", "topl", "capp-s"],
            epsilons=[2.0],
            w=10,
            n_subsequences=40,
            seed=0,
        )
        scalar = run_epsilon_sweep(smooth_stream, engine="scalar", **kwargs)
        vectorized = run_epsilon_sweep(smooth_stream, engine="vectorized", **kwargs)
        for name in kwargs["algorithms"]:
            s, v = scalar.values[name][0], vectorized.values[name][0]
            # Same estimator averaged over the same 40 subsequences with
            # independent noise draws: agree within sampling error.
            assert v == pytest.approx(s, rel=2.0, abs=0.05), name

    def test_vectorized_repeats_add_rows(self, smooth_stream):
        sweep = run_epsilon_sweep(
            smooth_stream,
            ["capp"],
            [1.0],
            w=10,
            n_subsequences=5,
            n_repeats=3,
            engine="vectorized",
        )
        assert len(sweep.values["capp"]) == 1

    def test_custom_metric_falls_back_to_scalar(self, smooth_stream):
        calls = []

        def metric(perturber, subsequence, rng):
            calls.append(len(subsequence))
            return 0.0

        sweep = run_epsilon_sweep(
            smooth_stream,
            ["capp"],
            [1.0],
            w=10,
            n_subsequences=3,
            metric=metric,
            engine="vectorized",
        )
        assert sweep.values["capp"] == [0.0]
        assert len(calls) == 3  # scalar loop ran the custom metric
