"""Additional smoke/structure coverage for figure runners (fig5, fig7)
and cross-runner consistency properties."""

import numpy as np

from repro.experiments import (
    publication_cosine_distance,
    run_epsilon_sweep,
    run_fig5,
    run_fig7,
)

SMALL = dict(n_subsequences=3, n_repeats=1, stream_length=300, seed=0)


class TestFig5:
    def test_structure(self):
        result = run_fig5(
            datasets=("volume",), windows=(10,), epsilons=(1.0,), **SMALL
        )
        series = result["volume"][10]
        assert set(series) == {"sw-direct", "ba-sw", "ipp", "app", "capp"}
        for values in series.values():
            assert len(values) == 1
            assert 0.0 <= values[0] <= 2.0  # cosine distance range

    def test_smoothed_pp_beats_direct(self):
        result = run_fig5(
            datasets=("volume",), windows=(30,), epsilons=(1.0,),
            n_subsequences=10, n_repeats=2, stream_length=500, seed=1,
        )
        series = result["volume"][30]
        assert series["app"][0] < series["sw-direct"][0]


class TestFig7:
    def test_structure(self):
        result = run_fig7(
            panels=(("volume", 20, 10),), epsilons=(1.0,), **SMALL
        )
        series = result[("volume", 20, 10)]
        assert set(series) == {
            "sw-direct", "app", "capp", "sampling", "app-s", "capp-s",
        }

    def test_sampling_variants_bounded(self):
        result = run_fig7(
            panels=(("c6h6", 20, 30),), epsilons=(2.0,),
            n_subsequences=8, stream_length=500, seed=2,
        )
        series = result[("c6h6", 20, 30)]
        # Replicated segment reports still form a sane publication.
        assert series["capp-s"][0] < 1.0


class TestSweepConsistency:
    def test_same_seed_same_result_across_metrics_object(self, rng):
        # The metric callable is pure: running the same sweep twice with
        # identical arguments produces identical dictionaries.
        stream = np.clip(0.4 + 0.2 * np.sin(np.arange(200) / 10), 0, 1)
        kwargs = dict(
            algorithms=["capp"],
            epsilons=[0.5, 1.0],
            w=10,
            metric=publication_cosine_distance,
            n_subsequences=4,
            seed=9,
        )
        a = run_epsilon_sweep(stream, **kwargs)
        b = run_epsilon_sweep(stream, **kwargs)
        assert a.values == b.values

    def test_more_subsequences_changes_nothing_structurally(self):
        stream = np.clip(0.4 + 0.2 * np.sin(np.arange(200) / 10), 0, 1)
        sweep = run_epsilon_sweep(
            stream, ["app", "ipp"], epsilons=[1.0], w=10,
            n_subsequences=7, seed=3,
        )
        assert set(sweep.values) == {"app", "ipp"}
        assert all(len(v) == 1 for v in sweep.values.values())
