"""Tests for the experiment algorithm registry."""

import pytest

from repro.core import StreamPerturber
from repro.experiments import ALGORITHM_FACTORIES, algorithm_names, make_algorithm


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
    def test_every_factory_builds(self, name):
        perturber = make_algorithm(name, 1.0, 10)
        assert isinstance(perturber, StreamPerturber)

    def test_case_insensitive(self):
        assert type(make_algorithm("CAPP", 1.0, 10)).__name__ == "CAPP"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_algorithm("magic", 1.0, 10)

    def test_unknown_suggests_close_matches(self):
        with pytest.raises(KeyError, match="did you mean 'capp'"):
            make_algorithm("cpap", 1.0, 10)
        with pytest.raises(KeyError, match="did you mean"):
            make_algorithm("topll", 1.0, 10)

    def test_names_sorted(self):
        names = algorithm_names()
        assert names == sorted(names)
        assert "capp" in names
        # The full Table-I / Fig. 4-9 comparison set is registered.
        for required in ("ba-sw", "bd-sw", "topl", "sampling", "app-s",
                         "capp-s", "laplace-app", "pm-direct", "sr-app"):
            assert required in names

    @pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
    def test_factories_run_end_to_end(self, name, smooth_stream, rng):
        perturber = make_algorithm(name, 1.0, 10)
        result = perturber.perturb_stream(smooth_stream, rng)
        assert len(result) == smooth_stream.size


class TestBatchRegistry:
    @pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
    def test_every_name_builds_a_batch_engine(self, name):
        import numpy as np

        from repro.experiments import make_batch_engine

        engine = make_batch_engine(
            name, 1.0, 5, 4, rng=np.random.default_rng(0), horizon=12
        )
        reports = engine.submit(np.full(4, 0.5))
        assert reports.shape == (4,)

    def test_horizon_required_when_flagged(self):
        import numpy as np

        from repro.experiments import capabilities, make_batch_engine

        for name in sorted(ALGORITHM_FACTORIES):
            if not capabilities(name)["needs_horizon"]:
                engine = make_batch_engine(
                    name, 1.0, 5, 2, rng=np.random.default_rng(0)
                )
                assert engine.n_users == 2
            else:
                with pytest.raises(ValueError, match="horizon"):
                    make_batch_engine(name, 1.0, 5, 2)

    def test_capability_matrix_covers_all_names(self):
        from repro.experiments import algorithm_names, capability_matrix

        matrix = capability_matrix()
        assert sorted(matrix) == algorithm_names()
        for flags in matrix.values():
            assert flags["scalar"] and flags["batch"]
            assert flags["sharded"] and flags["live"]
