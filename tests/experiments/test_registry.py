"""Tests for the experiment algorithm registry."""

import pytest

from repro.core import StreamPerturber
from repro.experiments import ALGORITHM_FACTORIES, algorithm_names, make_algorithm


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
    def test_every_factory_builds(self, name):
        perturber = make_algorithm(name, 1.0, 10)
        assert isinstance(perturber, StreamPerturber)

    def test_case_insensitive(self):
        assert type(make_algorithm("CAPP", 1.0, 10)).__name__ == "CAPP"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_algorithm("magic", 1.0, 10)

    def test_names_sorted(self):
        names = algorithm_names()
        assert names == sorted(names)
        assert "capp" in names

    @pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
    def test_factories_run_end_to_end(self, name, smooth_stream, rng):
        perturber = make_algorithm(name, 1.0, 10)
        result = perturber.perturb_stream(smooth_stream, rng)
        assert len(result) == smooth_stream.size
