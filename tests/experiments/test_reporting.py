"""Tests for the plain-text table rendering."""

from repro.experiments import format_sweep, format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        out = format_table(["a", "b"], [["x", 1.5], ["y", 2.0]])
        assert "a" in out and "b" in out
        assert "x" in out and "1.5" in out

    def test_title_rendered_first(self):
        out = format_table(["c"], [["v"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment_consistent(self):
        out = format_table(["col"], [["a"], ["longer"]])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[2]) or lines[1].rstrip()

    def test_float_formatting(self):
        out = format_table(["v"], [[0.000123456]], float_format="{:.2e}")
        assert "1.23e-04" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestFormatSweep:
    def test_renders_epsilons_and_algorithms(self):
        out = format_sweep([0.5, 1.0], {"app": [0.1, 0.2], "capp": [0.3, 0.4]})
        assert "eps=0.5" in out
        assert "app" in out and "capp" in out

    def test_rows_sorted_by_algorithm(self):
        out = format_sweep([1.0], {"z": [1.0], "a": [2.0]})
        lines = out.splitlines()
        assert lines[2].startswith("a")
