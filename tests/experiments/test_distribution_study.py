"""Tests for the per-slot distribution reconstruction study."""

import numpy as np
import pytest

from repro.experiments import run_distribution_study


class TestDistributionStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_distribution_study(
            shapes=("gaussian", "bimodal"),
            epsilons=(0.1, 2.0),
            n_users=3_000,
            rng=np.random.default_rng(0),
        )

    def test_structure(self, study):
        assert set(study) == {"gaussian", "bimodal"}
        for per_eps in study.values():
            assert set(per_eps) == {0.1, 2.0}

    def test_quality_improves_with_budget(self, study):
        for shape, per_eps in study.items():
            assert per_eps[2.0] < per_eps[0.1], shape

    def test_distances_finite_nonnegative(self, study):
        for per_eps in study.values():
            for value in per_eps.values():
                assert np.isfinite(value) and value >= 0.0

    def test_unknown_shape_rejected(self):
        with pytest.raises(KeyError, match="unknown population shape"):
            run_distribution_study(shapes=("weird",), epsilons=(1.0,), n_users=100)

    def test_reconstruction_good_at_large_budget(self):
        study = run_distribution_study(
            shapes=("gaussian",), epsilons=(4.0,), n_users=20_000,
            rng=np.random.default_rng(1),
        )
        # Wasserstein (sum-over-200-grid form) well below the small-budget
        # regime: the EM estimate is genuinely informative here.
        assert study["gaussian"][4.0] < 15.0
