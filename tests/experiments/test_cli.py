"""Tests for the experiments CLI."""

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_accepts_every_experiment(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_list_option(self):
        args = build_parser().parse_args(["list"])
        assert args.experiment == "list"

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig4", "--datasets", "c6h6", "--windows", "10", "--scale", "0.5"]
        )
        assert args.datasets == ["c6h6"]
        assert args.windows == [10]
        assert args.scale == 0.5


class TestMain:
    def test_list_prints_catalogue(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_invalid_scale(self, capsys):
        assert main(["table1", "--scale", "0"]) == 2

    def test_table1_tiny_run(self, capsys):
        code = main(
            ["table1", "--scale", "0.1", "--datasets", "c6h6", "--windows", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "topl" in out

    def test_fig4_tiny_run(self, capsys):
        code = main(
            [
                "fig4",
                "--scale", "0.1",
                "--datasets", "c6h6",
                "--windows", "10",
                "--epsilons", "1.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig.4 c6h6 w=10" in out
        assert "capp" in out

    def test_fig11_tiny_run(self, capsys):
        code = main(["fig11", "--scale", "0.1", "--datasets", "constant",
                     "--epsilons", "1.0"])
        assert code == 0
        assert "Fig.11 constant" in capsys.readouterr().out

    def test_models_tiny_run(self, capsys):
        code = main(["models", "--scale", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "WEvent" in out and "UserLevel" in out

    def test_distribution_tiny_run(self, capsys):
        code = main(["distribution", "--scale", "0.1", "--epsilons", "0.5"])
        assert code == 0
        assert "gaussian" in capsys.readouterr().out

    def test_scenarios_tiny_run(self, capsys):
        code = main(
            [
                "scenarios",
                "--scale", "0.05",
                "--datasets", "steady", "churn",
                "--epsilons", "1.0",
                "--windows", "8",
                "--shards", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario workloads" in out and "(2 shards)" in out
        assert "steady" in out and "churn" in out and "capp" in out


class TestErrorPaths:
    """Usage mistakes exit 2 with one suggestion-bearing line, no trace."""

    def test_unknown_dataset_exits_cleanly(self, capsys):
        assert main(["table1", "--scale", "0.05", "--datasets", "c6h7"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: unknown dataset 'c6h7'")
        assert "did you mean 'c6h6'" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_algorithm_exits_cleanly(self, capsys):
        assert main(["gateway-serve", "--scale", "0.05", "--algorithm", "cap"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown algorithm 'cap'")
        assert "did you mean" in err and "capp" in err

    def test_unknown_scenario_exits_cleanly(self, capsys):
        assert main(["scenarios", "--scale", "0.05", "--datasets", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown scenario 'nope'")

    def test_fleet_without_connect_exits_cleanly(self, capsys):
        assert main(["gateway-fleet"]) == 2
        err = capsys.readouterr().err
        assert "requires --connect" in err

    def test_malformed_connect_exits_cleanly(self, capsys):
        assert main(["gateway-fleet", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestGatewayServeCommand:
    def test_loopback_serve_with_verify_and_metrics(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "gw.json"
        code = main(
            [
                "gateway-serve",
                "--scale", "0.05",
                "--datasets", "bursty",
                "--shards", "3",
                "--verify",
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Gateway serve" in out
        assert "bit-identical to sharded run" in out and "yes" in out
        payload = json.loads(metrics_path.read_text())
        assert payload["bit_identical"] is True
        assert payload["gateway"]["reports_accepted"] > 0
        assert len(payload["shards"]) == 3


class TestEngineFlag:
    def test_engine_default_and_choices(self):
        args = build_parser().parse_args(["table1"])
        assert args.engine == "vectorized"
        args = build_parser().parse_args(["table1", "--engine", "scalar"])
        assert args.engine == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--engine", "turbo"])

    def test_table1_scalar_engine_runs(self, capsys):
        code = main(
            [
                "table1",
                "--scale", "0.1",
                "--datasets", "c6h6",
                "--windows", "20",
                "--engine", "scalar",
            ]
        )
        assert code == 0
        assert "Table I" in capsys.readouterr().out


class TestAlgorithmsCommand:
    def test_listing_shows_every_name_and_capabilities(self, capsys):
        from repro.experiments import algorithm_names

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in algorithm_names():
            assert name in out
        for column in ("scalar", "batch", "sharded", "live", "participation"):
            assert column in out


class TestCommandHelp:
    def test_every_command_documented(self):
        from repro.experiments.cli import COMMAND_HELP

        assert set(COMMAND_HELP) >= set(EXPERIMENTS) | {"list"}
        for name, text in COMMAND_HELP.items():
            assert "python -m repro" in text, f"{name} help lacks a runnable example"

    def test_help_epilog_renders(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "wal-compact" in out
        assert "gateway-serve" in out
        assert "python -m repro table1" in out


class TestWalCommands:
    def _serve_with_wal(self, tmp_path):
        return main(
            [
                "gateway-serve",
                "--scale", "0.05",
                "--datasets", "bursty",
                "--shards", "2",
                "--verify",
                "--wal", str(tmp_path / "wal"),
            ]
        )

    def test_serve_with_wal_then_compact(self, capsys, tmp_path):
        assert self._serve_with_wal(tmp_path) == 0
        out = capsys.readouterr().out
        assert "write-ahead log" in out
        assert "bit-identical to sharded run" in out and "yes" in out

        assert main(["wal-compact", "--wal", str(tmp_path / "wal"), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "dry run; log unchanged" in out
        assert "run_ended" in out

        assert main(["wal-compact", "--wal", str(tmp_path / "wal")]) == 0
        out = capsys.readouterr().out
        assert "WAL compaction" in out
        assert "checkpoint written" in out

    def test_reserve_of_completed_wal_reports_done(self, capsys, tmp_path):
        assert self._serve_with_wal(tmp_path) == 0
        capsys.readouterr()
        code = main(["gateway-serve", "--wal", str(tmp_path / "wal")])
        assert code == 0
        out = capsys.readouterr().out
        assert "run already complete; nothing to serve" in out

    def test_compact_requires_wal_flag(self, capsys):
        assert main(["wal-compact"]) == 2
        assert "requires --wal" in capsys.readouterr().err

    def test_compact_missing_directory(self, capsys, tmp_path):
        assert main(["wal-compact", "--wal", str(tmp_path / "nope")]) == 2
        assert "no write-ahead log" in capsys.readouterr().err

    def test_compact_damaged_log_exits_cleanly(self, capsys, tmp_path):
        from repro.wal import WriteAheadLog, list_segments

        wal = WriteAheadLog(str(tmp_path / "wal"))
        wal.append_run_start({"n_shards": 1, "horizon": 2, "epsilon": 1.0, "w": 2}, {})
        wal.close()
        _, path = list_segments(str(tmp_path / "wal"))[-1]
        with open(path, "r+b") as fh:
            data = bytearray(fh.read())
            data[len(data) // 2] ^= 0xFF
            fh.seek(0)
            fh.write(bytes(data))
        assert main(["wal-compact", "--wal", str(tmp_path / "wal")]) == 2
        err = capsys.readouterr().err
        assert "damaged" in err and "Traceback" not in err
