"""Tests for the experiments CLI."""

import socket
import threading
import time

import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, main


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_listening(port: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            socket.create_connection(("127.0.0.1", port), timeout=1.0).close()
            return
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


def _serve_in_thread(argv):
    """Run ``main(argv)`` on a thread, capturing the exit code (absent if
    the command raised — a traceback in a serve path must fail the test)."""
    outcome = {}

    def serve():
        outcome["code"] = main(argv)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread, outcome


class TestParser:
    def test_accepts_every_experiment(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_list_option(self):
        args = build_parser().parse_args(["list"])
        assert args.experiment == "list"

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig4", "--datasets", "c6h6", "--windows", "10", "--scale", "0.5"]
        )
        assert args.datasets == ["c6h6"]
        assert args.windows == [10]
        assert args.scale == 0.5


class TestMain:
    def test_list_prints_catalogue(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_invalid_scale(self, capsys):
        assert main(["table1", "--scale", "0"]) == 2

    def test_table1_tiny_run(self, capsys):
        code = main(
            ["table1", "--scale", "0.1", "--datasets", "c6h6", "--windows", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "topl" in out

    def test_fig4_tiny_run(self, capsys):
        code = main(
            [
                "fig4",
                "--scale", "0.1",
                "--datasets", "c6h6",
                "--windows", "10",
                "--epsilons", "1.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig.4 c6h6 w=10" in out
        assert "capp" in out

    def test_fig11_tiny_run(self, capsys):
        code = main(["fig11", "--scale", "0.1", "--datasets", "constant",
                     "--epsilons", "1.0"])
        assert code == 0
        assert "Fig.11 constant" in capsys.readouterr().out

    def test_models_tiny_run(self, capsys):
        code = main(["models", "--scale", "0.2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "WEvent" in out and "UserLevel" in out

    def test_distribution_tiny_run(self, capsys):
        code = main(["distribution", "--scale", "0.1", "--epsilons", "0.5"])
        assert code == 0
        assert "gaussian" in capsys.readouterr().out

    def test_scenarios_tiny_run(self, capsys):
        code = main(
            [
                "scenarios",
                "--scale", "0.05",
                "--datasets", "steady", "churn",
                "--epsilons", "1.0",
                "--windows", "8",
                "--shards", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario workloads" in out and "(2 shards)" in out
        assert "steady" in out and "churn" in out and "capp" in out


class TestErrorPaths:
    """Usage mistakes exit 2 with one suggestion-bearing line, no trace."""

    def test_unknown_dataset_exits_cleanly(self, capsys):
        assert main(["table1", "--scale", "0.05", "--datasets", "c6h7"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: unknown dataset 'c6h7'")
        assert "did you mean 'c6h6'" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_algorithm_exits_cleanly(self, capsys):
        assert main(["gateway-serve", "--scale", "0.05", "--algorithm", "cap"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown algorithm 'cap'")
        assert "did you mean" in err and "capp" in err

    def test_unknown_scenario_exits_cleanly(self, capsys):
        assert main(["scenarios", "--scale", "0.05", "--datasets", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown scenario 'nope'")

    def test_fleet_without_connect_exits_cleanly(self, capsys):
        assert main(["gateway-fleet"]) == 2
        err = capsys.readouterr().err
        assert "requires --connect" in err

    def test_malformed_connect_exits_cleanly(self, capsys):
        assert main(["gateway-fleet", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestGatewayServeCommand:
    def test_loopback_serve_with_verify_and_metrics(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "gw.json"
        code = main(
            [
                "gateway-serve",
                "--scale", "0.05",
                "--datasets", "bursty",
                "--shards", "3",
                "--verify",
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Gateway serve" in out
        assert "bit-identical to sharded run" in out and "yes" in out
        payload = json.loads(metrics_path.read_text())
        assert payload["bit_identical"] is True
        assert payload["gateway"]["reports_accepted"] > 0
        assert len(payload["shards"]) == 3


class TestEngineFlag:
    def test_engine_default_and_choices(self):
        args = build_parser().parse_args(["table1"])
        assert args.engine == "vectorized"
        args = build_parser().parse_args(["table1", "--engine", "scalar"])
        assert args.engine == "scalar"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--engine", "turbo"])

    def test_table1_scalar_engine_runs(self, capsys):
        code = main(
            [
                "table1",
                "--scale", "0.1",
                "--datasets", "c6h6",
                "--windows", "20",
                "--engine", "scalar",
            ]
        )
        assert code == 0
        assert "Table I" in capsys.readouterr().out


class TestAlgorithmsCommand:
    def test_listing_shows_every_name_and_capabilities(self, capsys):
        from repro.experiments import algorithm_names

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in algorithm_names():
            assert name in out
        for column in ("scalar", "batch", "sharded", "live", "participation"):
            assert column in out


class TestCommandHelp:
    def test_every_command_documented(self):
        from repro.experiments.cli import COMMAND_HELP

        assert set(COMMAND_HELP) >= set(EXPERIMENTS) | {"list"}
        for name, text in COMMAND_HELP.items():
            assert "python -m repro" in text, f"{name} help lacks a runnable example"

    def test_help_epilog_renders(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "wal-compact" in out
        assert "gateway-serve" in out
        assert "python -m repro table1" in out


class TestWalCommands:
    def _serve_with_wal(self, tmp_path):
        return main(
            [
                "gateway-serve",
                "--scale", "0.05",
                "--datasets", "bursty",
                "--shards", "2",
                "--verify",
                "--wal", str(tmp_path / "wal"),
            ]
        )

    def test_serve_with_wal_then_compact(self, capsys, tmp_path):
        assert self._serve_with_wal(tmp_path) == 0
        out = capsys.readouterr().out
        assert "write-ahead log" in out
        assert "bit-identical to sharded run" in out and "yes" in out

        assert main(["wal-compact", "--wal", str(tmp_path / "wal"), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "dry run; log unchanged" in out
        assert "run_ended" in out

        assert main(["wal-compact", "--wal", str(tmp_path / "wal")]) == 0
        out = capsys.readouterr().out
        assert "WAL compaction" in out
        assert "checkpoint written" in out

    def test_reserve_of_completed_wal_reports_done(self, capsys, tmp_path):
        assert self._serve_with_wal(tmp_path) == 0
        capsys.readouterr()
        code = main(["gateway-serve", "--wal", str(tmp_path / "wal")])
        assert code == 0
        out = capsys.readouterr().out
        assert "run already complete; nothing to serve" in out

    def test_standalone_serve_with_wal_logs_run_end(self, capsys, tmp_path):
        """--standalone --wal must append RUN_END before the log closes
        (the result is built while the WAL is still open)."""
        from repro.wal import recover_pipeline

        wal_dir = str(tmp_path / "wal")
        port = _free_port()
        thread, outcome = _serve_in_thread(
            [
                "gateway-serve", "--standalone",
                "--scale", "0.05",
                "--datasets", "bursty",
                "--shards", "2",
                "--wal", wal_dir,
                "--port", str(port),
                "--serve-timeout", "60",
            ]
        )
        try:
            _wait_listening(port)
            fleet_code = main(
                [
                    "gateway-fleet",
                    "--connect", f"127.0.0.1:{port}",
                    "--scale", "0.05",
                    "--datasets", "bursty",
                    "--shards", "2",
                ]
            )
        finally:
            thread.join(timeout=60)
        assert not thread.is_alive()
        assert fleet_code == 0
        assert outcome.get("code") == 0
        out = capsys.readouterr().out
        assert "Gateway serve (standalone)" in out
        assert "write-ahead log" in out
        assert recover_pipeline(wal_dir).run_ended

    def test_resume_interrupted_wal_to_completion(self, capsys, tmp_path):
        """gateway-serve --wal on an interrupted log resumes the run,
        finishes it, and durably logs RUN_END — the recovered-serve path
        must not close the WAL before the result is built."""
        import asyncio

        import numpy as np

        from repro.gateway import GatewayClient
        from repro.service import IngestionPipeline, ReportBatch
        from repro.wal import WriteAheadLog, recover_pipeline

        wal_dir = str(tmp_path / "wal")
        n_shards, horizon = 2, 3
        interrupted = IngestionPipeline(
            n_shards=n_shards, horizon=horizon, epsilon=1.0, w=2
        )
        interrupted.attach_wal(WriteAheadLog(wal_dir))
        interrupted.start_run({"origin": "resume-test"})

        def batch(shard, t):
            return ReportBatch(
                shard=shard,
                t=t,
                user_ids=np.arange(3, dtype=np.int64) + 100 * shard,
                values=np.linspace(-0.5, 0.5, 3) + 0.1 * shard + 0.01 * t,
            )

        for shard in range(n_shards):
            interrupted.submit(batch(shard, 0))
        interrupted.wal.abandon()  # "kill -9": slot 0 durable, run unfinished

        port = _free_port()
        thread, outcome = _serve_in_thread(
            [
                "gateway-serve",
                "--wal", wal_dir,
                "--port", str(port),
                "--serve-timeout", "60",
            ]
        )
        try:
            _wait_listening(port)

            async def upload_tail():
                for shard in range(n_shards):
                    client = GatewayClient("127.0.0.1", port, shard)
                    resume = await client.connect()
                    assert resume == 1  # the durable slot is not re-asked
                    for t in range(resume, horizon):
                        assert await client.send_batch(batch(shard, t)) == "accepted"
                    await client.finish()

            asyncio.run(upload_tail())
        finally:
            thread.join(timeout=60)
        assert not thread.is_alive()
        assert outcome.get("code") == 0
        out = capsys.readouterr().out
        assert "Gateway serve (recovered)" in out
        assert "reports ingested (total)" in out
        recovery = recover_pipeline(wal_dir)
        assert recovery.run_ended
        assert recovery.pipeline.complete

    def test_compact_requires_wal_flag(self, capsys):
        assert main(["wal-compact"]) == 2
        assert "requires --wal" in capsys.readouterr().err

    def test_compact_missing_directory(self, capsys, tmp_path):
        assert main(["wal-compact", "--wal", str(tmp_path / "nope")]) == 2
        assert "no write-ahead log" in capsys.readouterr().err

    def test_compact_damaged_log_exits_cleanly(self, capsys, tmp_path):
        from repro.wal import WriteAheadLog, list_segments

        wal = WriteAheadLog(str(tmp_path / "wal"))
        wal.append_run_start({"n_shards": 1, "horizon": 2, "epsilon": 1.0, "w": 2}, {})
        wal.close()
        _, path = list_segments(str(tmp_path / "wal"))[-1]
        with open(path, "r+b") as fh:
            data = bytearray(fh.read())
            data[len(data) // 2] ^= 0xFF
            fh.seek(0)
            fh.write(bytes(data))
        assert main(["wal-compact", "--wal", str(tmp_path / "wal")]) == 2
        err = capsys.readouterr().err
        assert "damaged" in err and "Traceback" not in err
