"""Analysis-layer queries over scan stores: tables, pivots, one-call curves."""

import numpy as np
import pytest

from repro.analysis import ScanTable, load_scan_table, metric_vs_epsilon
from repro.scan import ScanStore, run_scan


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    from repro.scan import parse_config

    from .conftest import DOCUMENT

    path = str(tmp_path_factory.mktemp("queries") / "store")
    run = run_scan(parse_config(DOCUMENT), store_path=path, workers=2)
    assert run.complete
    return path


class TestScanTable:
    def test_load_from_path_and_open_store(self, store_path):
        by_path = load_scan_table(store_path)
        by_store = load_scan_table(ScanStore(store_path))
        assert len(by_path) == len(by_store) == 10
        np.testing.assert_array_equal(by_path["mse"], by_store["mse"])

    def test_partial_store_is_queryable(self, tmp_path):
        from repro.scan import parse_config

        from .conftest import DOCUMENT

        path = str(tmp_path / "partial")
        run_scan(parse_config(DOCUMENT), store_path=path, workers=1, stop_after=4)
        table = load_scan_table(path)
        assert len(table) == 4

    def test_filter_and_unique(self, store_path):
        table = load_scan_table(store_path)
        steady = table.filter(scenario="steady")
        assert set(steady["scenario"]) == {"steady"}
        assert len(steady) == 6  # 3 algorithms x 2 epsilons
        pair = table.filter(algorithm=["capp", "sw-direct"])
        assert set(pair["algorithm"]) == {"capp", "sw-direct"}
        assert table.unique("epsilon") == [0.5, 1.0]

    def test_unknown_column_lists_known(self, store_path):
        table = load_scan_table(store_path)
        with pytest.raises(KeyError, match="known:"):
            table["msa"]

    def test_pivot(self, store_path):
        table = load_scan_table(store_path)
        rows, cols, matrix = table.pivot("mse", rows="algorithm", cols="epsilon")
        assert rows == ["capp", "sampling", "sw-direct"]
        assert cols == [0.5, 1.0]
        assert matrix.shape == (3, 2)
        # sampling x churn was pruned, so its cells average over the one
        # steady scenario; every pivot cell still has data.
        assert not np.isnan(matrix).any()

    def test_pivot_rejects_unknown_reducer(self, store_path):
        with pytest.raises(ValueError, match="reduce"):
            load_scan_table(store_path).pivot(
                "mse", rows="algorithm", cols="epsilon", reduce="median"
            )


class TestMetricVsEpsilon:
    def test_one_call_answers_the_headline_question(self, store_path):
        curves = metric_vs_epsilon(store_path, metric="mae")
        assert set(curves) == {"steady", "churn"}
        assert set(curves["steady"]) == {"capp", "sampling", "sw-direct"}
        assert set(curves["churn"]) == {"capp", "sw-direct"}  # sampling pruned
        epsilons, values = curves["steady"]["capp"]
        np.testing.assert_array_equal(epsilons, [0.5, 1.0])
        assert values.shape == (2,)
        assert np.all(np.isfinite(values))

    def test_scenario_and_extra_criteria_filters(self, store_path):
        curves = metric_vs_epsilon(
            store_path, metric="mse", scenario="steady", algorithm="capp"
        )
        assert set(curves) == {"steady"}
        assert set(curves["steady"]) == {"capp"}

    def test_accepts_prefiltered_table(self, store_path):
        table = load_scan_table(store_path).filter(scenario="churn")
        curves = metric_vs_epsilon(table)
        assert set(curves) == {"churn"}
