"""Scan store: atomic cell persistence, corruption detection, staleness."""

import json
import os

import numpy as np
import pytest

from repro.scan import (
    ScanStore,
    StoreError,
    config_digest,
    execute_cell,
    expand_cells,
)


@pytest.fixture
def cells(config):
    expanded, _ = expand_cells(config)
    return expanded


@pytest.fixture
def populated(tmp_path, config, cells):
    """A store holding the first three executed cells."""
    store = ScanStore(tmp_path / "store", config_digest=config_digest(config))
    store.set_n_cells(len(cells))
    for cell in cells[:3]:
        store.write_cell(execute_cell(cell))
    return store


class TestRoundTrip:
    def test_cells_read_back_bit_identical(self, populated, cells):
        for cell in cells[:3]:
            result = execute_cell(cell)
            stored = populated.read_cell(cell.index)
            assert stored.params == result.params
            assert stored.ledger == result.ledger
            assert stored.deterministic_scalars() == result.deterministic_scalars()
            for name, values in result.series.items():
                np.testing.assert_array_equal(stored.series[name], values)
            assert stored.fingerprint() == result.fingerprint()

    def test_completed_indices_sorted(self, populated):
        assert populated.completed_indices() == [0, 1, 2]
        assert populated.n_cells == 10

    def test_no_tmp_litter_after_writes(self, populated):
        leftovers = [
            name
            for root, _, names in os.walk(populated.path)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_missing_cell_refused(self, populated):
        with pytest.raises(StoreError, match="holds no cell 7"):
            populated.read_cell(7)

    def test_fingerprint_stable_across_reopen(self, populated):
        before = populated.fingerprint()
        reopened = ScanStore(populated.path)
        assert reopened.fingerprint() == before


class TestCorruption:
    def test_bit_flip_detected_and_dropped(self, populated):
        path = populated.cell_path(1)
        payload = bytearray(open(path, "rb").read())
        payload[len(payload) // 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(payload))
        assert populated.verify() == [1]
        assert populated.completed_indices() == [0, 2]
        # Dropped from the manifest, so reading is a clean error.
        with pytest.raises(StoreError, match="holds no cell 1"):
            populated.read_cell(1)

    def test_truncation_detected(self, populated):
        path = populated.cell_path(0)
        payload = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(payload[: len(payload) // 3])
        assert populated.verify() == [0]

    def test_deleted_cell_file_detected(self, populated):
        os.unlink(populated.cell_path(2))
        assert populated.verify() == [2]

    def test_corrupted_cell_read_raises_before_verify(self, populated):
        path = populated.cell_path(1)
        with open(path, "ab") as fh:
            fh.write(b"garbage")
        with pytest.raises(StoreError, match="do not match the manifest digest"):
            populated.read_cell(1)

    def test_intact_store_verifies_clean(self, populated):
        assert populated.verify() == []


class TestStaleness:
    def test_wrong_config_digest_refused(self, populated):
        with pytest.raises(StoreError, match="different scan config"):
            ScanStore(populated.path, config_digest="sha256:" + "0" * 64)

    def test_read_only_open_needs_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="no scan store"):
            ScanStore(tmp_path / "empty")

    def test_garbage_manifest_refused(self, populated):
        with open(populated.manifest_path(), "w") as fh:
            fh.write("{not json")
        with pytest.raises(StoreError, match="not valid JSON"):
            ScanStore(populated.path)

    def test_foreign_format_refused(self, populated):
        with open(populated.manifest_path(), "w") as fh:
            json.dump({"format": "something.else.v9"}, fh)
        with pytest.raises(StoreError, match="is not a repro.scan-store.v1"):
            ScanStore(populated.path)


class TestFinalize:
    def test_table_columns_and_npz(self, tmp_path, config, cells):
        store = ScanStore(tmp_path / "s", config_digest=config_digest(config))
        store.set_n_cells(len(cells))
        for cell in cells:
            store.write_cell(execute_cell(cell))
        written = store.finalize()
        assert store.table_path() in written
        assert store.finalized
        with np.load(store.table_path()) as data:
            table = {name: data[name] for name in data.files}
        assert len(table["index"]) == len(cells)
        for column in ("algorithm", "scenario", "epsilon", "mse", "mae",
                       "max_window_spend", "ledger", "n_shards"):
            assert column in table
        # Ledger digests are real commitments, not placeholders.
        assert all(str(d).startswith("sha256:") for d in table["ledger"])

    def test_parquet_written_only_when_pyarrow_present(
        self, tmp_path, config, cells
    ):
        from repro.scan import parquet_available

        store = ScanStore(tmp_path / "s", config_digest=config_digest(config))
        for cell in cells[:2]:
            store.write_cell(execute_cell(cell))
        written = store.finalize()
        assert (store.parquet_path() in written) == parquet_available()

    def test_parquet_round_trips_equal_to_npz(self, tmp_path, config, cells):
        from repro.scan import parquet_available

        if not parquet_available():
            pytest.skip("pyarrow not installed; npz is the tested contract")
        import pyarrow.parquet as pq

        store = ScanStore(tmp_path / "s", config_digest=config_digest(config))
        store.set_n_cells(len(cells))
        for cell in cells:
            store.write_cell(execute_cell(cell))
        store.finalize()
        with np.load(store.table_path()) as data:
            npz = {name: data[name] for name in data.files}
        parquet = pq.read_table(store.parquet_path())
        assert sorted(parquet.column_names) == sorted(npz)
        for name, reference in npz.items():
            values = parquet.column(name).to_pylist()
            if reference.dtype.kind in "if":
                np.testing.assert_array_equal(
                    np.asarray(values, dtype=reference.dtype), reference
                )
            else:
                assert [str(v) for v in values] == [str(v) for v in reference]
