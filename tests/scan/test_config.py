"""Scan config layer: parsing, validation, filters, pruning, seeds."""

import numpy as np
import pytest

from repro.scan import (
    GridSpec,
    ScanConfig,
    config_digest,
    expand_cells,
    load_config,
    parse_config,
)

from .conftest import DOCUMENT, TOML_TEXT


def _document(**overrides):
    doc = {
        "scan": dict(DOCUMENT["scan"]),
        "grid": dict(DOCUMENT["grid"]),
    }
    doc.update(overrides)
    return doc


class TestParsing:
    def test_toml_file_round_trip(self, toml_path, config):
        loaded = load_config(toml_path)
        assert loaded == config
        assert loaded.name == "tiny"
        assert loaded.seed == 9
        assert loaded.grid.n_raw_cells == 12

    def test_yaml_file_matches_toml(self, tmp_path, config):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "tiny.yaml"
        path.write_text(yaml.safe_dump(DOCUMENT))
        loaded = load_config(str(path))
        assert config_digest(loaded) == config_digest(config)

    def test_name_defaults_to_file_stem(self, tmp_path):
        path = tmp_path / "my-scan.toml"
        path.write_text(
            TOML_TEXT.replace('name = "tiny"\n', "")
        )
        assert load_config(str(path)).name == "my-scan"

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_config(str(tmp_path / "nope.toml"))

    def test_unsupported_extension(self, tmp_path):
        path = tmp_path / "scan.ini"
        path.write_text("[scan]\n")
        with pytest.raises(ValueError, match="unsupported scan config extension"):
            load_config(str(path))

    def test_invalid_toml_names_the_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[scan\nname = ")
        with pytest.raises(ValueError, match="invalid TOML in .*broken.toml"):
            load_config(str(path))

    def test_unknown_top_level_section(self):
        with pytest.raises(ValueError, match="unknown top-level"):
            parse_config(_document(bogus={}))

    def test_unknown_scan_key(self):
        doc = _document()
        doc["scan"]["typo"] = 1
        with pytest.raises(ValueError, match=r"unknown \[scan\] keys"):
            parse_config(doc)

    def test_unknown_grid_axis(self):
        doc = _document()
        doc["grid"]["epsilon"] = [1.0]  # singular: not an axis name
        with pytest.raises(ValueError, match=r"unknown \[grid\] axes"):
            parse_config(doc)

    def test_missing_required_axis(self):
        doc = _document()
        del doc["grid"]["scenarios"]
        with pytest.raises(ValueError, match="must declare scenarios"):
            parse_config(doc)

    def test_unknown_algorithm_and_scenario(self):
        doc = _document()
        doc["grid"]["algorithms"] = ["nope"]
        with pytest.raises(ValueError, match="unknown algorithm 'nope'"):
            parse_config(doc)
        doc = _document()
        doc["grid"]["scenarios"] = ["lunar"]
        with pytest.raises(ValueError, match="unknown scenario 'lunar'"):
            parse_config(doc)

    def test_filter_validation(self):
        with pytest.raises(ValueError, match="unknown keys"):
            parse_config(_document(include=[{"algorithmz": "capp"}]))
        with pytest.raises(ValueError, match="non-empty mapping"):
            parse_config(_document(exclude=[{}]))

    def test_scalar_axis_promoted_to_tuple(self):
        doc = _document()
        doc["grid"]["epsilons"] = 1.0
        assert parse_config(doc).grid.epsilons == (1.0,)


class TestGridSpecValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty tuple"):
            GridSpec(algorithms=(), epsilons=(1.0,), scenarios=("steady",))

    def test_nonpositive_epsilon_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            GridSpec(
                algorithms=("capp",), epsilons=(0.0,), scenarios=("steady",)
            )

    def test_bad_seed_mode_and_backend(self, config):
        with pytest.raises(ValueError, match="seed_mode"):
            ScanConfig(name="x", grid=config.grid, seed_mode="chaos")
        with pytest.raises(ValueError, match="backend"):
            ScanConfig(name="x", grid=config.grid, backend="csv")


class TestExpansion:
    def test_capability_pruning(self, config):
        cells, pruned = expand_cells(config)
        assert len(cells) == 10
        assert len(pruned) == 2
        for entry in pruned:
            assert entry.params["algorithm"] == "sampling"
            assert entry.params["scenario"] == "churn"
            assert "full participation" in entry.reason
        # Indices are contiguous and assigned after pruning.
        assert [cell.index for cell in cells] == list(range(10))

    def test_exclude_filter(self):
        doc = _document(exclude=[{"algorithm": "capp", "scenario": "churn"}])
        cells, _ = expand_cells(parse_config(doc))
        assert not any(
            c.algorithm == "capp" and c.scenario == "churn" for c in cells
        )
        assert any(c.algorithm == "capp" and c.scenario == "steady" for c in cells)

    def test_include_filter_with_alternatives(self):
        doc = _document(include=[{"algorithm": ["capp", "sw-direct"]}])
        cells, _ = expand_cells(parse_config(doc))
        assert {c.algorithm for c in cells} == {"capp", "sw-direct"}

    def test_expansion_is_deterministic(self, config):
        a, _ = expand_cells(config)
        b, _ = expand_cells(config)
        assert a == b


class TestSeeds:
    def test_spawn_mode_gives_independent_streams(self, config):
        seeds = [config.cell_seeds(i) for i in range(10)]
        assert len(set(seeds)) == 10
        # Matches the documented SeedSequence spawn exactly.
        state = np.random.SeedSequence(9, spawn_key=(3,)).generate_state(2)
        assert seeds[3] == (int(state[0]), int(state[1]))

    def test_shared_mode_reproduces_legacy_convention(self, config):
        shared = ScanConfig(
            name=config.name, grid=config.grid, seed=9, seed_mode="shared"
        )
        assert shared.cell_seeds(0) == (9, 10)
        assert shared.cell_seeds(7) == (9, 10)


class TestDigest:
    def test_digest_ignores_store_and_backend(self, config):
        moved = ScanConfig(
            name=config.name,
            grid=config.grid,
            seed=config.seed,
            store="/elsewhere",
            backend="npz",
        )
        assert config_digest(moved) == config_digest(config)

    def test_digest_changes_with_grid_and_seed(self, config):
        reseeded = ScanConfig(name=config.name, grid=config.grid, seed=10)
        assert config_digest(reseeded) != config_digest(config)
