"""Shared fixtures for the scan-subsystem tests: one tiny grid config."""

import pytest

from repro.scan import parse_config

#: 3 algorithms x 2 epsilons x 2 scenarios = 12 raw cells; the sampling
#: family cannot run churn's partial participation, so 2 cells prune to
#: a 10-cell executable grid — small enough that the kill-at-every-cell
#: resume matrix stays fast, big enough to exercise real fan-out.
DOCUMENT = {
    "scan": {"name": "tiny", "seed": 9},
    "grid": {
        "algorithms": ["capp", "sw-direct", "sampling"],
        "epsilons": [0.5, 1.0],
        "scenarios": ["steady", "churn"],
        "n_users": [40],
        "horizons": [10],
        "shards": [2],
        "engines": ["sharded"],
        "w": [4],
    },
}

TOML_TEXT = """
[scan]
name = "tiny"
seed = 9

[grid]
algorithms = ["capp", "sw-direct", "sampling"]
epsilons = [0.5, 1.0]
scenarios = ["steady", "churn"]
n_users = [40]
horizons = [10]
shards = [2]
engines = ["sharded"]
w = [4]
"""


@pytest.fixture
def config():
    return parse_config(DOCUMENT)


@pytest.fixture
def toml_path(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(TOML_TEXT)
    return str(path)
