"""Scan orchestration: worker invariance, the kill/resume matrix, SIGKILL.

The contract under test is the headline of the scan subsystem: the
store's deterministic fingerprint is a pure function of the config —
independent of worker count, of where the scan was interrupted, and of
how many resume rounds it took to finish.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.scan import (
    ScanStore,
    StoreError,
    config_digest,
    expand_cells,
    run_scan,
)

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


@pytest.fixture
def reference_fingerprint(tmp_path, config):
    """The uninterrupted single-worker store's fingerprint."""
    run = run_scan(config, store_path=str(tmp_path / "reference"), workers=1)
    assert run.complete and run.finalized
    return ScanStore(str(tmp_path / "reference")).fingerprint()


class TestWorkerInvariance:
    def test_two_workers_match_serial(self, tmp_path, config, reference_fingerprint):
        run = run_scan(config, store_path=str(tmp_path / "w2"), workers=2)
        assert run.complete
        assert ScanStore(str(tmp_path / "w2")).fingerprint() == reference_fingerprint

    def test_in_memory_run_matches_store_results(self, config, tmp_path):
        stored = run_scan(config, store_path=str(tmp_path / "s"), workers=1)
        in_memory = run_scan(config, workers=1)
        assert in_memory.store_path is None
        assert sorted(in_memory.results) == sorted(stored.results)
        for index, result in in_memory.results.items():
            assert result.fingerprint() == stored.results[index].fingerprint()


class TestKillResumeMatrix:
    def test_resume_after_every_boundary(
        self, tmp_path, config, reference_fingerprint
    ):
        """Stop after each k = 1..n-1 completed cells, resume, compare.

        Every interrupt boundary, under both worker counts, must resume
        to a store bit-identical to the uninterrupted scan.
        """
        n = len(expand_cells(config)[0])
        for workers in (1, 2):
            for k in range(1, n):
                store = str(tmp_path / f"kill-{workers}-{k}")
                partial = run_scan(
                    config, store_path=store, workers=workers, stop_after=k
                )
                done = len(ScanStore(store).completed_indices())
                # A pool can drain a couple of extra already-running
                # cells past the budget; serial stops exactly at k.
                assert done >= k
                if workers == 1:
                    assert done == k
                if partial.stopped:
                    assert not partial.finalized
                    assert done < n
                    resumed = run_scan(
                        config, store_path=store, workers=workers, resume=True
                    )
                    assert resumed.complete and resumed.finalized
                    assert sorted(resumed.resumed) == sorted(partial.executed)
                assert (
                    ScanStore(store).fingerprint() == reference_fingerprint
                ), f"divergence after stop at k={k} with {workers} workers"

    def test_multi_round_resume(self, tmp_path, config, reference_fingerprint):
        """Three interrupts in a row still converge to the same store."""
        store = str(tmp_path / "rounds")
        for _ in range(3):
            run_scan(config, store_path=store, workers=2, stop_after=3,
                     resume=os.path.exists(os.path.join(store, "manifest.json")))
        final = run_scan(config, store_path=store, workers=2, resume=True)
        assert final.complete
        assert ScanStore(store).fingerprint() == reference_fingerprint


class TestResumeSafety:
    def test_existing_store_without_resume_refused(self, tmp_path, config):
        store = str(tmp_path / "s")
        run_scan(config, store_path=store, workers=1, stop_after=1)
        with pytest.raises(ValueError, match="pass resume=True"):
            run_scan(config, store_path=store, workers=1)

    def test_stale_store_refused_on_resume(self, tmp_path, config):
        from repro.scan import ScanConfig

        store = str(tmp_path / "s")
        run_scan(config, store_path=store, workers=1, stop_after=1)
        reseeded = ScanConfig(name=config.name, grid=config.grid, seed=99)
        assert config_digest(reseeded) != config_digest(config)
        with pytest.raises(StoreError, match="different scan config"):
            run_scan(reseeded, store_path=store, workers=1, resume=True)

    def test_corrupted_cell_rerun_on_resume(
        self, tmp_path, config, reference_fingerprint
    ):
        store_path = str(tmp_path / "s")
        run_scan(config, store_path=store_path, workers=1, stop_after=4)
        store = ScanStore(store_path)
        victim = store.completed_indices()[1]
        with open(store.cell_path(victim), "r+b") as fh:
            fh.write(b"\x00\x00\x00\x00")
        resumed = run_scan(config, store_path=store_path, workers=1, resume=True)
        assert victim in resumed.reran
        assert victim in resumed.executed
        assert resumed.complete
        assert ScanStore(store_path).fingerprint() == reference_fingerprint

    def test_dry_run_touches_nothing(self, tmp_path, config):
        store = str(tmp_path / "planned")
        plan = run_scan(config, store_path=store, dry_run=True)
        assert plan.dry_run
        assert len(plan.cells) == 10
        assert len(plan.pruned) == 2
        assert not os.path.exists(store)

    def test_all_cells_filtered_is_an_error(self, config):
        from repro.scan import ScanConfig

        empty = ScanConfig(
            name=config.name,
            grid=config.grid,
            seed=config.seed,
            include=({"algorithm": "sampling", "scenario": "churn"},),
        )
        with pytest.raises(ValueError, match="pruned every cell"):
            run_scan(empty, workers=1)


#: the SIGKILL drill needs cells slow enough (~0.2 s) that the kill
#: reliably lands mid-scan: 8 cells of 20k users x 48 slots.
DRILL_TOML = """
[scan]
name = "drill"
seed = 4

[grid]
algorithms = ["capp", "sw-direct"]
epsilons = [0.5, 1.0]
scenarios = ["steady", "bursty"]
n_users = [20000]
horizons = [48]
shards = [2]
w = [6]
"""


class TestSigkillDrill:
    def test_kill_minus_nine_mid_scan_resumes_bit_identically(self, tmp_path):
        """A real OS-level SIGKILL mid-scan, then ``--resume`` via the CLI.

        The process dies without cleanup while workers are mid-cell; the
        atomic write discipline must leave the store resumable, and the
        resumed store must land on the uninterrupted fingerprint.
        """
        from repro.scan import load_config

        drill_toml = tmp_path / "drill.toml"
        drill_toml.write_text(DRILL_TOML)
        drill_config = load_config(str(drill_toml))
        reference = run_scan(
            drill_config, store_path=str(tmp_path / "drill-ref"), workers=2
        )
        assert reference.complete
        reference_fp = ScanStore(str(tmp_path / "drill-ref")).fingerprint()
        n_cells = len(reference.cells)

        store = str(tmp_path / "killed")
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "scan", str(drill_toml),
             "--store", store, "--workers", "2"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            manifest = os.path.join(store, "manifest.json")
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if os.path.exists(manifest):
                    try:
                        if ScanStore(store).completed_indices():
                            break
                    except StoreError:
                        pass  # manifest mid-replace; try again
                if proc.poll() is not None:
                    pytest.fail("scan finished before it could be killed")
                time.sleep(0.005)
            else:
                pytest.fail("scan never completed a first cell")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        survivors = ScanStore(store).completed_indices()
        assert survivors  # the kill landed after >= 1 completed cell
        assert len(survivors) < n_cells  # ... and before the scan finished
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "scan", str(drill_toml),
             "--store", store, "--workers", "2", "--resume"],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        final = ScanStore(store)
        assert final.finalized
        assert final.fingerprint() == reference_fp
