"""Bitwise-equivalence harness for the compiled-kernel tier.

Three layers of pinning:

1. **Backend selection** — the ``REPRO_KERNELS`` switch, the
   numba-missing fallback (simulated by poisoning ``sys.modules``), and
   the error contract of :func:`repro.kernels.select_backend`.
2. **Kernel vs frozen reference** — each kernel against an embedded
   copy of the historical inline expressions (independent of
   ``repro.kernels._numpy``, so a refactor there cannot silently move
   the goalposts), on every available backend.
3. **Engine vs frozen reference** — the rewritten grouped publish
   passes and the batched ToPL threshold fit against per-group /
   per-row reference implementations that consume the generator the
   historical way, bit for bit at population scale.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro import kernels
from repro.baselines.batch import (
    _B,
    _BASE_MOMENT,
    _MEAN_COEF,
    _MEAN_CONST,
    _NEAR_MASS,
    _P_MINUS_Q,
    BatchBASW,
    _sw_constants,
)
from repro.baselines.topl import estimate_tau_matrix, estimate_tau_rows
from repro.mechanisms import SquareWaveMechanism

BACKENDS = ["numpy"] + (["numba"] if kernels.numba_available() else [])


@pytest.fixture(autouse=True)
def _restore_backend():
    """Leave the process-wide backend as the environment dictates."""
    yield
    kernels.select_backend()


@pytest.fixture()
def backend(request):
    kernels.select_backend(request.param)
    return request.param


# ---------------------------------------------------------------------------
# backend selection
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_numpy_and_off_force_the_fallback(self):
        assert kernels.select_backend("numpy") == "numpy"
        assert kernels.active_backend() == "numpy"
        assert kernels.select_backend("off") == "numpy"

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError, match="REPRO_KERNELS"):
            kernels.select_backend("fast")

    def test_env_variable_drives_the_default(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "off")
        assert kernels.select_backend() == "numpy"
        monkeypatch.setenv(kernels.ENV_VAR, " NumPy ")
        assert kernels.select_backend() == "numpy"
        monkeypatch.setenv(kernels.ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="turbo"):
            kernels.select_backend()

    def test_auto_matches_numba_availability(self):
        expected = "numba" if kernels.numba_available() else "numpy"
        assert kernels.select_backend("auto") == expected

    def test_forced_numba_errors_when_missing(self):
        if kernels.numba_available():
            assert kernels.select_backend("numba") == "numba"
        else:
            with pytest.raises(ImportError):
                kernels.select_backend("numba")

    def test_simulated_numba_absence(self, monkeypatch):
        # Poison the import machinery: a None entry in sys.modules makes
        # ``import numba`` raise ImportError, and dropping the cached
        # backend module forces the re-import to go through it.
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.delitem(sys.modules, "repro.kernels._numba", raising=False)
        assert not kernels.numba_available()
        assert kernels.select_backend("auto") == "numpy"
        with pytest.raises(ImportError):
            kernels.select_backend("numba")
        # The engines still run end to end on the fallback.
        engine = BatchBASW(1.0, 5, 4, np.random.default_rng(0))
        out = engine.submit(np.linspace(0.1, 0.9, 4))
        assert np.isfinite(out).all()


# ---------------------------------------------------------------------------
# kernels vs frozen inline expressions
# ---------------------------------------------------------------------------


def _reference_sw_report(values, b, near_mass, u_near, u_span, u_far):
    """The SW draw exactly as ``SquareWaveMechanism.perturb`` wrote it
    before the kernel tier existed."""
    near = u_near < near_mass
    near_draw = values + b * (2.0 * u_span - 1.0)
    left = u_far < values
    far_draw = np.where(left, -b + u_far, b + u_far)
    return np.where(near, near_draw, far_draw)


def _reference_publish_noise(values, b, p_minus_q, mean_const, mean_coef, base_moment):
    """``sqrt(output_variance)`` exactly as the publish pass wrote it."""
    mean = mean_const + mean_coef * values
    window = p_minus_q * ((values + b) ** 3 - (values - b) ** 3) / 3
    raw_second = base_moment + window
    return np.sqrt(raw_second - mean**2)


def _random_inputs(seed, n):
    rng = np.random.default_rng(seed)
    values = rng.random(n)
    uniforms = rng.random((3, n))
    budgets = rng.random(n) * 2.0 + 0.01
    return values, uniforms, budgets


@pytest.mark.parametrize("backend", BACKENDS, indirect=True)
class TestKernelBitwise:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_sw_report_scalar_constants(self, backend, seed):
        values, uniforms, _ = _random_inputs(seed, 257)
        mech = SquareWaveMechanism(0.8)
        got = kernels.sw_report_from_uniforms(
            values, mech.b, mech.near_mass, *uniforms
        )
        expected = _reference_sw_report(values, mech.b, mech.near_mass, *uniforms)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("seed", [1, 42])
    def test_sw_report_per_element_constants(self, backend, seed):
        values, uniforms, budgets = _random_inputs(seed, 193)
        consts = np.array([_sw_constants(eps) for eps in budgets.tolist()])
        got = kernels.sw_report_from_uniforms(
            values, consts[:, _B], consts[:, _NEAR_MASS], *uniforms
        )
        expected = _reference_sw_report(
            values, consts[:, _B], consts[:, _NEAR_MASS], *uniforms
        )
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("seed", [3, 99])
    def test_publish_noise_matches_output_variance(self, backend, seed):
        values, _, budgets = _random_inputs(seed, 151)
        consts = np.array([_sw_constants(eps) for eps in budgets.tolist()])
        got = kernels.sw_publish_noise(
            values,
            consts[:, _B],
            consts[:, _P_MINUS_Q],
            consts[:, _MEAN_CONST],
            consts[:, _MEAN_COEF],
            consts[:, _BASE_MOMENT],
        )
        # Element by element against the mechanism's own variance — the
        # constants rows must reproduce the scalar formula exactly.
        expected = np.empty(values.size)
        for i, eps in enumerate(budgets.tolist()):
            mech = SquareWaveMechanism(eps)
            expected[i] = np.sqrt(mech.output_variance(values[i : i + 1]))[0]
        np.testing.assert_array_equal(got, expected)

    def test_backends_agree_with_each_other(self, backend):
        # Redundant with the reference checks, but pins the cross-backend
        # statement directly: whatever backend is active produces the
        # reference-numpy bits.
        values, uniforms, budgets = _random_inputs(11, 509)
        consts = np.array([_sw_constants(eps) for eps in budgets.tolist()])
        from repro.kernels import _numpy as reference

        got = kernels.sw_report_from_uniforms(
            values, consts[:, _B], consts[:, _NEAR_MASS], *uniforms
        )
        expected = reference.sw_report_from_uniforms(
            values, consts[:, _B], consts[:, _NEAR_MASS], *uniforms
        )
        np.testing.assert_array_equal(got, expected)


# ---------------------------------------------------------------------------
# engines vs per-group / per-row frozen references
# ---------------------------------------------------------------------------


def _reference_grouped_noise(budgets, values):
    """Pre-rewrite publish noise: one mechanism per distinct budget."""
    out = np.empty(values.size)
    for budget in np.unique(budgets):
        members = np.flatnonzero(budgets == budget)
        mech = SquareWaveMechanism(float(budget))
        out[members] = np.sqrt(mech.output_variance(values[members]))
    return out


def _reference_grouped_draw(budgets, values, rng):
    """Pre-rewrite publish draw: one ``perturb_batch`` per distinct
    budget, in ascending-budget order (the historical rng contract)."""
    out = np.empty(values.size)
    for budget in np.unique(budgets):
        members = np.flatnonzero(budgets == budget)
        mech = SquareWaveMechanism(float(budget))
        out[members] = mech.perturb_batch(values[members], rng)
    return out


def _engine(seed):
    return BatchBASW(1.0, 5, 4, np.random.default_rng(seed))


@pytest.mark.parametrize("backend", BACKENDS, indirect=True)
class TestEngineBitwise:
    @pytest.mark.parametrize("seed", [0, 5, 21])
    def test_grouped_noise_matches_per_group_reference(self, backend, seed):
        rng = np.random.default_rng(seed)
        n = 400
        values = rng.random(n)
        # Duplicated budgets exercise the grouping; distinct ones the cache.
        budgets = rng.choice(rng.random(60) * 1.5 + 0.01, size=n)
        engine = _engine(seed)
        got = engine._grouped_publish_noise(budgets, values)
        np.testing.assert_array_equal(got, _reference_grouped_noise(budgets, values))

    @pytest.mark.parametrize("seed", [2, 9, 33])
    def test_grouped_draw_matches_per_group_reference(self, backend, seed):
        rng = np.random.default_rng(seed)
        n = 400
        values = rng.random(n)
        budgets = rng.choice(rng.random(60) * 1.5 + 0.01, size=n)
        engine = _engine(seed)
        engine._rng = np.random.default_rng(1234)
        got = engine._grouped_publish_draw(budgets, values)
        expected = _reference_grouped_draw(
            budgets, values, np.random.default_rng(1234)
        )
        np.testing.assert_array_equal(got, expected)

    def test_draw_with_precomputed_constants_is_identical(self, backend):
        rng = np.random.default_rng(77)
        n = 128
        values = rng.random(n)
        budgets = rng.choice(rng.random(12) * 1.5 + 0.01, size=n)
        engine = _engine(77)
        consts = engine._constants_rows(budgets)
        engine._rng = np.random.default_rng(5)
        with_rows = engine._grouped_publish_draw(budgets, values, consts)
        engine._rng = np.random.default_rng(5)
        without = engine._grouped_publish_draw(budgets, values)
        np.testing.assert_array_equal(with_rows, without)

    @pytest.mark.parametrize("seed", [4, 18])
    def test_tau_matrix_matches_row_fit(self, backend, seed):
        rng = np.random.default_rng(seed)
        n_users, n_range = 40, 6
        matrix = rng.random((n_users, n_range)) * 1.4 - 0.2
        # NaN-pad a ragged participation pattern, including an all-NaN row.
        mask = rng.random((n_users, n_range)) < 0.3
        matrix[mask] = np.nan
        matrix[0, :] = np.nan
        rows = [row[np.isfinite(row)] for row in matrix]
        got = estimate_tau_matrix(matrix, 0.2, 0.98)
        expected = estimate_tau_rows(rows, 0.2, 0.98)
        np.testing.assert_array_equal(got, expected)
        assert got[0] == 1.0  # no reports -> uniform prior -> no clipping


class TestConstantsCache:
    def test_rows_match_fresh_mechanisms(self):
        budgets = np.random.default_rng(3).random(300) * 2.0 + 0.005
        engine = _engine(0)
        rows = engine._constants_rows(budgets)
        for i, eps in enumerate(budgets.tolist()):
            mech = SquareWaveMechanism(eps)
            assert rows[i, _B] == mech.b
            assert rows[i, _NEAR_MASS] == mech.near_mass
            assert rows[i, _P_MINUS_Q] == mech.p - mech.q

    def test_duplicate_and_repeat_lookups_hit_the_same_rows(self):
        engine = _engine(0)
        budgets = np.array([0.3, 0.7, 0.3, 0.1, 0.7, 0.7])
        first = engine._constants_rows(budgets)
        again = engine._constants_rows(budgets)
        np.testing.assert_array_equal(first, again)
        assert engine._const_n == 3

    def test_cache_grows_past_initial_capacity(self):
        engine = _engine(0)
        budgets = np.random.default_rng(8).random(1000) * 2.0 + 0.005
        rows = engine._constants_rows(budgets)
        assert engine._const_n == np.unique(budgets).size
        resampled = engine._constants_rows(budgets[::-1])
        np.testing.assert_array_equal(rows[::-1], resampled)
