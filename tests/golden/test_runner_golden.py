"""Golden fixtures for the experiment-runner compatibility wrappers.

PR "repro.scan" rebuilt :func:`run_epsilon_sweep` (vectorized standard
metrics) and :func:`run_scenario_study` on top of the scan cell engine.
These fixtures pin their exact numeric outputs at fixed seeds, so the
delegation is a provable no-op going forward: any change to cell
seeding, execution order, or float accumulation diffs a checked-in
file.

Regenerate deliberately with::

    python -m pytest tests/golden --update-golden
"""

import numpy as np
import pytest

from repro.experiments.runner import (
    mean_squared_error_of_mean,
    publication_cosine_distance,
    run_epsilon_sweep,
    run_scenario_study,
)

from .test_golden_fixtures import GOLDEN_FORMAT, _check_against_golden

SWEEP_CONFIG = dict(
    algorithms=["capp", "app", "sampling"],
    epsilons=[0.5, 1.0, 2.0],
    w=10,
    n_subsequences=6,
    n_repeats=2,
    seed=11,
)

STUDY_CONFIG = dict(
    scenarios=["steady", "bursty", "churn"],
    algorithms=["capp", "sw-direct"],
    n_users=240,
    horizon=48,
    epsilon=1.0,
    w=8,
    n_shards=3,
    seed=17,
)


def _sweep_stream(seed=11, size=400):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.05, 0.95, size=size)


@pytest.mark.parametrize(
    "name,metric",
    [
        ("epsilon_sweep", mean_squared_error_of_mean),
        ("epsilon_sweep_cosine", publication_cosine_distance),
    ],
)
def test_epsilon_sweep_matches_golden(name, metric, update_golden):
    result = run_epsilon_sweep(
        _sweep_stream(), metric=metric, **SWEEP_CONFIG
    )
    snapshot = {
        "format": GOLDEN_FORMAT,
        "config": {
            key: value
            for key, value in SWEEP_CONFIG.items()
            if key != "algorithms"
        },
        "metric": name,
        "epsilons": result.epsilons,
        "values": {
            algo: [float(v) for v in vals]
            for algo, vals in result.values.items()
        },
    }
    _check_against_golden(name, snapshot, update_golden)


def test_scenario_study_matches_golden(update_golden):
    result = run_scenario_study(max_workers=1, **STUDY_CONFIG)
    snapshot = {
        "format": GOLDEN_FORMAT,
        "config": {
            key: value
            for key, value in STUDY_CONFIG.items()
            if key not in ("scenarios", "algorithms")
        },
        "mse": {
            scenario: {algo: float(v) for algo, v in per.items()}
            for scenario, per in result.items()
        },
    }
    _check_against_golden("scenario_study", snapshot, update_golden)


def test_scenario_study_worker_invariant():
    """The wrapper's numbers cannot depend on the worker count."""
    serial = run_scenario_study(max_workers=1, **STUDY_CONFIG)
    parallel = run_scenario_study(max_workers=2, **STUDY_CONFIG)
    assert serial == parallel


def test_scenario_study_matches_inline_legacy_loop():
    """The scan delegation reproduces the pre-scan per-run loop bit for bit."""
    from repro.runtime import ScenarioSource, make_scenario, run_protocol_sharded

    config = STUDY_CONFIG
    chunk = -(-config["n_users"] // config["n_shards"])
    legacy = {}
    for scenario in config["scenarios"]:
        spec = make_scenario(
            scenario, n_users=config["n_users"], horizon=config["horizon"]
        )
        source = ScenarioSource(spec, chunk_size=chunk, seed=config["seed"])
        legacy[scenario] = {
            name: run_protocol_sharded(
                source,
                algorithm=name,
                epsilon=config["epsilon"],
                w=config["w"],
                seed=config["seed"] + 1,
                max_workers=1,
            ).population_mean_mse()
            for name in config["algorithms"]
        }
    assert run_scenario_study(max_workers=1, **config) == legacy
