"""Golden regression fixtures: canonical outputs for fixed seeds.

Every execution mode of the protocol — the in-memory vectorized run, the
offline sharded runtime, and the live ingestion pipeline — must
reproduce the checked-in per-slot estimates and budget-ledger digests
**bit for bit**.  These fixtures pin the actual numbers, so any change
to mechanism sampling, generator seeding, merge order, or float
accumulation shows up as a diff against a file in version control, not
as a silent drift.

Regenerate deliberately with::

    python -m pytest tests/golden --update-golden

and commit the diff (the review of that diff *is* the determinism
review).
"""

import hashlib
import json
import os

import numpy as np
import pytest

from repro.protocol import run_protocol_vectorized
from repro.runtime import MatrixSource, run_protocol_sharded, shard_rng
from repro.service import run_live

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))
GOLDEN_FORMAT = "repro.golden.v1"

#: fixed-seed configurations pinned by the fixtures; ``chunk_size`` is
#: part of the contract — estimates are a pure function of
#: (data, parameters, seed, chunk decomposition)
CONFIGS = {
    "single_chunk": dict(
        n_users=12,
        horizon=8,
        chunk_size=12,
        algorithm="capp",
        epsilon=1.3,
        w=5,
        participation=0.8,
        data_seed=21,
        seed=7,
    ),
    "multi_shard": dict(
        n_users=30,
        horizon=10,
        chunk_size=8,
        algorithm=["capp", "app", "ipp", "sw-direct"] * 7 + ["capp", "app"],
        epsilon=1.0,
        w=6,
        participation=0.9,
        data_seed=5,
        seed=3,
    ),
    # A registry baseline (not one of the core four) through the sharded
    # runtime: pins ToPL's two-phase schedule — SW range slots, the
    # multi-row EM threshold fit, HM value slots — per shard.  Full
    # participation: ToPL's estimates at fixed seed are part of the
    # contract, and the sampling-free schedule keeps every slot populated.
    "topl_sharded": dict(
        n_users=10,
        horizon=12,
        chunk_size=4,
        algorithm="topl",
        epsilon=1.0,
        w=5,
        participation=1.0,
        data_seed=13,
        seed=9,
    ),
    # The two data-dependent-budget stragglers, pinned before their inner
    # loops were rewritten as true population passes: these fixtures hold
    # the vectorized/sharded/live/gateway paths to the pre-rewrite
    # numbers bit for bit (the kernel tier is held to the same files).
    "bd_sw_single_chunk": dict(
        n_users=12,
        horizon=10,
        chunk_size=12,
        algorithm="bd-sw",
        epsilon=1.2,
        w=4,
        participation=0.9,
        data_seed=17,
        seed=11,
    ),
    "bd_sw_multi_shard": dict(
        n_users=18,
        horizon=10,
        chunk_size=5,
        algorithm="bd-sw",
        epsilon=0.8,
        w=5,
        participation=1.0,
        data_seed=29,
        seed=4,
    ),
    "topl_single_chunk": dict(
        n_users=10,
        horizon=12,
        chunk_size=10,
        algorithm="topl",
        epsilon=1.0,
        w=5,
        participation=0.9,
        data_seed=31,
        seed=6,
    ),
}

#: configs additionally served through the loopback TCP gateway; kept out
#: of the config dicts so the pre-existing fixtures' ``config`` sections
#: stay byte-identical
GATEWAY_CONFIGS = {"bd_sw_single_chunk", "bd_sw_multi_shard", "topl_single_chunk"}


def _matrix(config):
    rng = np.random.default_rng(config["data_seed"])
    return rng.random((config["n_users"], config["horizon"]))


def _source(config):
    return MatrixSource(_matrix(config), chunk_size=config["chunk_size"])


def _ledger_digest(shard_ledgers):
    """SHA-256 over the canonical per-shard, per-cohort ledger summary.

    ``shard_ledgers`` is ``[(shard_index, [(algorithm, indices,
    max_window_spend), ...]), ...]``.  JSON float encoding is
    ``repr``-exact, so the digest is stable across platforms yet changes
    on any single-bit spend difference.
    """
    canonical = [
        {
            "shard": int(shard),
            "cohorts": [
                {
                    "algorithm": algorithm,
                    "indices": [int(i) for i in np.asarray(indices).tolist()],
                    "max_window_spend": np.asarray(spends, dtype=float).tolist(),
                }
                for algorithm, indices, spends in cohorts
            ],
        }
        for shard, cohorts in shard_ledgers
    ]
    payload = json.dumps(canonical, sort_keys=True).encode()
    return "sha256:" + hashlib.sha256(payload).hexdigest()


def _sharded_ledgers(run):
    return [
        (
            shard.index,
            [
                (ledger.algorithm, ledger.indices, ledger.max_window_spend)
                for ledger in shard.ledgers
            ],
        )
        for shard in run.shards
    ]


def _live_ledgers(result):
    return [
        (
            feed.shard,
            [
                (
                    group.algorithm,
                    group.indices,
                    group.engine.accountant.max_window_spend(),
                )
                for group in feed.engine.groups
            ],
        )
        for feed in sorted(result.feeds, key=lambda feed: feed.shard)
    ]


def _vectorized_ledgers(result):
    return [
        (
            0,
            [
                (
                    group.algorithm,
                    group.indices,
                    group.engine.accountant.max_window_spend(),
                )
                for group in result.groups
            ],
        )
    ]


def _snapshot(config, collector, ledger_digest):
    slots = collector.slots()
    return {
        "format": GOLDEN_FORMAT,
        "config": {
            key: value for key, value in config.items() if key != "algorithm"
        },
        "algorithm": (
            config["algorithm"]
            if isinstance(config["algorithm"], str)
            else "per-user"
        ),
        "slots": [int(t) for t in slots],
        "counts": [int(collector.state.slot_counts[t]) for t in slots],
        "means": [float(collector.population_mean(t)) for t in slots],
        "n_reports": int(collector.n_reports),
        "ledger_digest": ledger_digest,
    }


def _check_against_golden(name, snapshot, update):
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    if update:
        with open(path, "w") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not os.path.exists(path):
        pytest.fail(
            f"golden fixture {path} is missing; generate it with "
            "`python -m pytest tests/golden --update-golden` and commit it"
        )
    with open(path) as fh:
        golden = json.load(fh)
    assert golden["format"] == GOLDEN_FORMAT
    # Exact comparison on purpose: JSON floats round-trip bit-for-bit, and
    # these fixtures exist to catch single-ULP drift.
    assert snapshot == golden


def _run_all_paths(config):
    """Execute one pinned config through every execution mode."""
    matrix = _matrix(config)
    sharded = run_protocol_sharded(
        _source(config),
        algorithm=config["algorithm"],
        epsilon=config["epsilon"],
        w=config["w"],
        participation=config["participation"],
        seed=config["seed"],
    )
    live = run_live(
        _source(config),
        algorithm=config["algorithm"],
        epsilon=config["epsilon"],
        w=config["w"],
        participation=config["participation"],
        seed=config["seed"],
    )
    vectorized = None
    if config["chunk_size"] >= config["n_users"]:
        # A single-chunk decomposition is exactly one vectorized run with
        # the shard-0 child generator.
        vectorized = run_protocol_vectorized(
            matrix,
            algorithm=config["algorithm"],
            epsilon=config["epsilon"],
            w=config["w"],
            participation=config["participation"],
            rng=shard_rng(config["seed"], 0),
        )
    return sharded, live, vectorized


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_all_execution_modes_reproduce_golden(name, update_golden):
    config = CONFIGS[name]
    sharded, live, vectorized = _run_all_paths(config)

    if name in GATEWAY_CONFIGS:
        from repro.gateway import run_gateway

        gateway = run_gateway(
            _source(config),
            algorithm=config["algorithm"],
            epsilon=config["epsilon"],
            w=config["w"],
            participation=config["participation"],
            seed=config["seed"],
        ).result
        np.testing.assert_array_equal(
            gateway.population_mean_series(),
            sharded.collector.population_mean_series(),
        )
        assert gateway.n_reports == sharded.collector.n_reports
        assert _ledger_digest(_live_ledgers(gateway)) == _ledger_digest(
            _sharded_ledgers(sharded)
        )

    reference = sharded.collector.population_mean_series()
    np.testing.assert_array_equal(live.population_mean_series(), reference)
    assert live.n_reports == sharded.collector.n_reports
    assert (
        live.collector.state.slot_counts == sharded.collector.state.slot_counts
    )

    sharded_digest = _ledger_digest(_sharded_ledgers(sharded))
    live_digest = _ledger_digest(_live_ledgers(live))
    assert live_digest == sharded_digest

    if vectorized is not None:
        np.testing.assert_array_equal(
            vectorized.collector.population_mean_series(), reference
        )
        assert _ledger_digest(_vectorized_ledgers(vectorized)) == sharded_digest

    snapshot = _snapshot(config, sharded.collector, sharded_digest)
    _check_against_golden(name, snapshot, update_golden)


def test_update_flag_writes_fixture(tmp_path, monkeypatch, update_golden):
    """--update-golden rewrites the fixture file it then asserts against."""
    import sys

    if update_golden:
        pytest.skip("meta-test is for normal runs")
    monkeypatch.setattr(sys.modules[__name__], "GOLDEN_DIR", str(tmp_path))
    snapshot = {"format": GOLDEN_FORMAT, "means": [0.5]}
    _check_against_golden("scratch", snapshot, update=True)
    with open(tmp_path / "scratch.json") as fh:
        assert json.load(fh) == snapshot
