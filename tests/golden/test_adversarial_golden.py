"""Golden fixtures for attacked runs: every execution mode, bit for bit.

Companion to :mod:`tests.golden.test_golden_fixtures` for the adversarial
tier (:mod:`repro.adversary`): one poisoned configuration per fixture is
executed through the vectorized, sharded, live, gateway, and distributed
paths, every path must agree bit for bit, and the sharded result is
pinned against a checked-in JSON snapshot.  Attacks are stateless hashes
of ``(attack seed, global user id[, slot])`` and robust policies fold at
the collector boundary, so neither may perturb the runtime's
decomposition invariance — these fixtures are the regression net for
that claim.

Regenerate deliberately with::

    python -m pytest tests/golden --update-golden
"""

import numpy as np
import pytest

from repro.adversary import AttackSpec, RobustPolicy
from repro.gateway import run_distributed, run_gateway
from repro.protocol import run_protocol_vectorized
from repro.runtime import run_protocol_sharded, shard_rng
from repro.service import run_live

from .test_golden_fixtures import (
    GOLDEN_FORMAT,
    _check_against_golden,
    _ledger_digest,
    _live_ledgers,
    _matrix,
    _sharded_ledgers,
    _source,
    _vectorized_ledgers,
)

#: one attacked configuration per (strategy, policy) pairing worth
#: pinning; ``attack``/``robust_policy`` are serialized into the fixture
#: via ``to_dict`` so the snapshot documents the exact threat model
CONFIGS = {
    # Input poisoning with no defense, single chunk: pins the vectorized
    # attack path (the poisoned column enters the mechanism unchanged).
    "adversarial_extreme_single_chunk": dict(
        n_users=12,
        horizon=8,
        chunk_size=12,
        algorithm="capp",
        epsilon=1.0,
        w=4,
        participation=0.9,
        data_seed=23,
        seed=5,
        attack=AttackSpec(fraction=0.25, strategy="extreme", onset=2, seed=99),
        robust_policy=None,
    ),
    # Out-of-domain report injection under clip-to-domain, multi-shard:
    # pins the ingestion-time transform through every merge tree.
    "adversarial_random_clip_multi_shard": dict(
        n_users=16,
        horizon=8,
        chunk_size=4,
        algorithm="capp",
        epsilon=1.0,
        w=4,
        participation=0.9,
        data_seed=23,
        seed=5,
        attack=AttackSpec(fraction=0.25, strategy="random", onset=0, seed=7),
        robust_policy=RobustPolicy(kind="clip"),
    ),
}


def _protocol_kwargs(config):
    return dict(
        algorithm=config["algorithm"],
        epsilon=config["epsilon"],
        w=config["w"],
        participation=config["participation"],
        seed=config["seed"],
        attack=config["attack"],
        robust_policy=config["robust_policy"],
    )


def _snapshot(config, collector, ledger_digest):
    slots = collector.slots()
    return {
        "format": GOLDEN_FORMAT,
        "config": {
            key: value
            for key, value in config.items()
            if key not in ("attack", "robust_policy")
        },
        "attack": config["attack"].to_dict(),
        "robust_policy": (
            None
            if config["robust_policy"] is None
            else config["robust_policy"].to_dict()
        ),
        "slots": [int(t) for t in slots],
        "counts": [int(collector.state.slot_counts[t]) for t in slots],
        "means": [float(collector.population_mean(t)) for t in slots],
        "n_reports": int(collector.n_reports),
        "ledger_digest": ledger_digest,
    }


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_attacked_runs_reproduce_golden_across_modes(name, update_golden):
    config = CONFIGS[name]
    kwargs = _protocol_kwargs(config)

    sharded = run_protocol_sharded(_source(config), **kwargs)
    live = run_live(_source(config), **kwargs)
    gateway = run_gateway(_source(config), **kwargs).result
    n_shards = -(-config["n_users"] // config["chunk_size"])
    distributed = run_distributed(
        _source(config), workers=min(2, n_shards), **kwargs
    ).result

    reference = sharded.collector.population_mean_series()
    sharded_digest = _ledger_digest(_sharded_ledgers(sharded))
    for mode in (live, gateway, distributed):
        np.testing.assert_array_equal(
            mode.population_mean_series(), reference
        )
        assert mode.n_reports == sharded.collector.n_reports
        assert _ledger_digest(_live_ledgers(mode)) == sharded_digest

    if config["chunk_size"] >= config["n_users"]:
        # One chunk: the sharded run is exactly one vectorized pass with
        # the shard-0 child generator — the attack hash stream included.
        vectorized = run_protocol_vectorized(
            _matrix(config),
            algorithm=config["algorithm"],
            epsilon=config["epsilon"],
            w=config["w"],
            participation=config["participation"],
            rng=shard_rng(config["seed"], 0),
            attack=config["attack"],
            robust_policy=config["robust_policy"],
        )
        np.testing.assert_array_equal(
            vectorized.collector.population_mean_series(), reference
        )
        assert _ledger_digest(_vectorized_ledgers(vectorized)) == sharded_digest

    snapshot = _snapshot(config, sharded.collector, sharded_digest)
    _check_against_golden(name, snapshot, update_golden)


def test_attack_changes_estimates_but_not_counts():
    """The paired-run contract: same slots and counts, shifted means."""
    config = CONFIGS["adversarial_random_clip_multi_shard"]
    kwargs = _protocol_kwargs(config)
    benign_kwargs = dict(kwargs, attack=AttackSpec(fraction=0.0))
    attacked = run_protocol_sharded(_source(config), **kwargs)
    benign = run_protocol_sharded(_source(config), **benign_kwargs)
    assert (
        attacked.collector.state.slot_counts
        == benign.collector.state.slot_counts
    )
    assert not np.array_equal(
        attacked.collector.population_mean_series(),
        benign.collector.population_mean_series(),
    )


@pytest.mark.parametrize("workers", [1, 3])
def test_distributed_worker_count_invariance(workers):
    """Attacked + policed estimates don't depend on the fleet size."""
    config = CONFIGS["adversarial_random_clip_multi_shard"]
    kwargs = _protocol_kwargs(config)
    sharded = run_protocol_sharded(_source(config), **kwargs)
    run = run_distributed(_source(config), workers=workers, **kwargs)
    np.testing.assert_array_equal(
        run.result.population_mean_series(),
        sharded.collector.population_mean_series(),
    )
    assert run.result.n_reports == sharded.collector.n_reports
