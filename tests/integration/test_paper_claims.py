"""Statistical checks of the paper's headline qualitative claims.

These run at moderate scale with fixed seeds; each encodes one claim the
evaluation section makes about orderings between algorithms.
"""

import numpy as np
import pytest

from repro.baselines import SWDirect, ToPL
from repro.core import APP, CAPP, IPP
from repro.datasets import load_stream
from repro.metrics import cosine_distance


def _mean_mse(cls_or_factory, stream, eps, w, reps, seed, **kwargs):
    errors = []
    for rep in range(reps):
        rng = np.random.default_rng(seed + rep)
        perturber = cls_or_factory(eps, w, **kwargs)
        result = perturber.perturb_stream(stream, rng)
        errors.append((result.mean_estimate() - stream.mean()) ** 2)
    return float(np.mean(errors))


def _publication_cosine(cls, stream, eps, w, reps, seed):
    scores = []
    for rep in range(reps):
        rng = np.random.default_rng(seed + rep)
        result = cls(eps, w).perturb_stream(stream, rng)
        scores.append(cosine_distance(result.published, stream))
    return float(np.mean(scores))


@pytest.fixture(scope="module")
def c6h6():
    return load_stream("c6h6", length=60)


class TestTable1Claim:
    def test_topl_mse_100x_worse(self, c6h6):
        """Table I: ToPL's MSE is orders of magnitude above SW-based."""
        topl = _mean_mse(ToPL, c6h6, 1.0, 20, reps=12, seed=0)
        app = _mean_mse(APP, c6h6, 1.0, 20, reps=12, seed=0)
        assert topl > 20 * app


class TestFig5Claims:
    def test_sw_direct_worst_for_publication(self, c6h6):
        """Fig. 5: SW-direct has the largest cosine distance."""
        direct = _publication_cosine(SWDirect, c6h6, 1.0, 10, reps=10, seed=10)
        capp = _publication_cosine(CAPP, c6h6, 1.0, 10, reps=10, seed=10)
        app = _publication_cosine(APP, c6h6, 1.0, 10, reps=10, seed=10)
        assert direct > capp
        assert direct > app

    def test_capp_best_for_publication_at_large_eps(self, c6h6):
        """Fig. 5: CAPP achieves the best publication utility."""
        capp = _publication_cosine(CAPP, c6h6, 3.0, 10, reps=10, seed=20)
        ipp = _publication_cosine(IPP, c6h6, 3.0, 10, reps=10, seed=20)
        assert capp < ipp


class TestFig4Claims:
    def test_pp_algorithms_beat_direct_for_mean_at_small_eps(self):
        """Fig. 4: the PP family improves mean estimation at small eps.

        Uses a stream whose mean sits away from 0.5 so SW-direct's
        shrinkage bias is visible.
        """
        stream = np.clip(0.25 + 0.1 * np.sin(np.arange(60) / 6), 0, 1)
        direct = _mean_mse(SWDirect, stream, 0.5, 30, reps=15, seed=30)
        app = _mean_mse(APP, stream, 0.5, 30, reps=15, seed=30)
        assert app < direct

    def test_utility_improves_with_window_length_for_app(self, c6h6):
        """Fig. 4 rows: longer subsequences average more reports, so the
        APP mean error falls with w (same per-slot budget scaling)."""
        short = load_stream("c6h6", length=300)[:20]
        long = load_stream("c6h6", length=300)[:60]
        short_err = _mean_mse(APP, short, 1.0, 20, reps=15, seed=40)
        long_err = _mean_mse(APP, long, 1.0, 60, reps=15, seed=40)
        # Not strictly monotone in theory (budget also shrinks); the paper
        # observes improvement and so do we, within generous slack.
        assert long_err < 3.0 * short_err


class TestLemmaClaims:
    def test_lemma_iii1_ipp_mean_deviation_below_direct(self):
        """Lemma III.1: IPP's mean deviation is below SW-direct's."""
        stream = np.clip(0.3 + 0.05 * np.sin(np.arange(100) / 10), 0, 1)
        ipp_md, direct_md = [], []
        for rep in range(20):
            rng = np.random.default_rng(50 + rep)
            ipp = IPP(1.0, 10).perturb_stream(stream, rng)
            direct = SWDirect(1.0, 10).perturb_stream(stream, rng)
            ipp_md.append(abs(ipp.perturbed.mean() - stream.mean()))
            direct_md.append(abs(direct.perturbed.mean() - stream.mean()))
        assert np.mean(ipp_md) < np.mean(direct_md)

    def test_lemma_iv1_smoothing_reduces_pointwise_variance(self):
        """Lemma IV.1: smoothed APP output has lower pointwise variance."""
        stream = np.full(80, 0.5)
        raw_vals, smooth_vals = [], []
        for rep in range(30):
            rng = np.random.default_rng(60 + rep)
            result = APP(1.0, 10).perturb_stream(stream, rng)
            raw_vals.append(result.perturbed[40])
            smooth_vals.append(result.published[40])
        assert np.var(smooth_vals) < np.var(raw_vals)

    def test_lemma_iv3_app_cosine_similarity_above_direct(self):
        """Lemma IV.3: APP + smoothing has higher cosine similarity."""
        stream = np.clip(0.5 + 0.3 * np.sin(np.arange(100) / 8), 0, 1)
        app_scores, direct_scores = [], []
        for rep in range(15):
            rng = np.random.default_rng(70 + rep)
            app = APP(1.0, 10).perturb_stream(stream, rng)
            direct = SWDirect(1.0, 10).perturb_stream(stream, rng)
            app_scores.append(cosine_distance(app.published, stream))
            direct_scores.append(cosine_distance(direct.published, stream))
        assert np.mean(app_scores) < np.mean(direct_scores)
