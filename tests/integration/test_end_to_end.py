"""End-to-end integration tests across the full pipeline."""

import numpy as np
import pytest

from repro import (
    APP,
    BASW,
    CAPP,
    IPP,
    PPSampling,
    SWDirect,
    ToPL,
)
from repro.analysis import crowd_mean_distribution_distance, estimate_mean
from repro.core import BudgetSplit, SampleSplit
from repro.datasets import load_matrix, load_stream, sin_matrix
from repro.metrics import cosine_distance, mse

ALL_STREAM_ALGORITHMS = [SWDirect, BASW, IPP, APP, CAPP, ToPL]


class TestFullPipelinePerDataset:
    @pytest.mark.parametrize("dataset", ["volume", "c6h6", "taxi", "power"])
    def test_every_algorithm_on_every_dataset(self, dataset, rng):
        stream = load_stream(dataset, length=80)
        for cls in ALL_STREAM_ALGORITHMS:
            result = cls(1.0, 10).perturb_stream(stream, rng)
            result.accountant.assert_valid()
            assert np.all(np.isfinite(result.published))
            assert np.isfinite(estimate_mean(result))

    @pytest.mark.parametrize("base", ["ipp", "app", "capp"])
    def test_sampling_variants(self, base, rng):
        stream = load_stream("volume", length=90)
        result = PPSampling(1.0, 10, base=base, n_samples=9).perturb_stream(
            stream, rng
        )
        result.accountant.assert_valid()
        assert result.perturbed.size == 90


class TestCollectorWorkflow:
    def test_publication_and_statistics_workflow(self, rng):
        """The Fig. 1 protocol: perturb locally, aggregate at collector."""
        stream = load_stream("c6h6", length=100)
        capp = CAPP(2.0, 10)
        result = capp.perturb_stream(stream, rng)

        published = result.published
        assert published.size == stream.size
        assert cosine_distance(published, stream) < cosine_distance(
            rng.random(100), stream
        ) + 2.0  # sanity: finite, comparable

        mean = estimate_mean(result)
        assert abs(mean - stream.mean()) < 0.5

    def test_crowd_workflow(self, rng):
        matrix = load_matrix("power", n_users=25, length=40)
        distance = crowd_mean_distribution_distance(
            matrix, lambda: APP(2.0, 10), rng
        )
        assert np.isfinite(distance)

    def test_multidim_workflow(self, rng):
        matrix = sin_matrix(4, 80)
        for strategy_cls in (BudgetSplit, SampleSplit):
            strategy = strategy_cls(lambda e, w: APP(e, w), epsilon=2.0, w=8)
            run = strategy.perturb_matrix(matrix, rng)
            run.accountant.assert_valid()
            assert run.published.shape == matrix.shape


class TestUtilityImprovesWithBudget:
    @pytest.mark.parametrize("cls", [SWDirect, APP, CAPP])
    def test_mse_decreases_from_tiny_to_large_budget(self, cls):
        stream = load_stream("volume", length=60)
        small, large = [], []
        for rep in range(8):
            rng_small = np.random.default_rng(800 + rep)
            rng_large = np.random.default_rng(900 + rep)
            r_small = cls(0.2, 10).perturb_stream(stream, rng_small)
            r_large = cls(10.0, 10).perturb_stream(stream, rng_large)
            small.append(mse(r_small.published, stream))
            large.append(mse(r_large.published, stream))
        assert np.mean(large) < np.mean(small)


class TestReproducibility:
    def test_identical_runs_identical_outputs(self):
        stream = load_stream("c6h6", length=70)
        for cls in ALL_STREAM_ALGORITHMS:
            a = cls(1.0, 10).perturb_stream(stream, np.random.default_rng(1))
            b = cls(1.0, 10).perturb_stream(stream, np.random.default_rng(1))
            np.testing.assert_array_equal(a.perturbed, b.perturbed)
