"""Event records and sinks: validation, round trips, float exactness."""

import json

import numpy as np
import pytest

from repro.service import (
    CallbackSink,
    JSONLSink,
    MemorySink,
    ReportBatch,
    SlotEstimate,
)
from repro.service.events import jsonify


class TestReportBatch:
    def test_round_trip_is_float_exact(self):
        values = np.random.default_rng(0).random(17) * (1.0 / 3.0)
        batch = ReportBatch(
            shard=2, t=5, user_ids=np.arange(17, dtype=np.intp), values=values
        )
        restored = ReportBatch.from_record(
            json.loads(json.dumps(batch.to_record()))
        )
        assert restored.shard == 2 and restored.t == 5
        np.testing.assert_array_equal(restored.values, values)
        np.testing.assert_array_equal(restored.user_ids, batch.user_ids)

    def test_empty_batch_allowed(self):
        batch = ReportBatch(
            shard=0, t=0, user_ids=np.zeros(0, dtype=np.intp), values=np.zeros(0)
        )
        assert batch.n_reports == 0
        assert ReportBatch.from_record(batch.to_record()).n_reports == 0

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError, match="aligned"):
            ReportBatch(
                shard=0, t=0, user_ids=np.arange(3), values=np.zeros(2)
            )

    def test_float_ids_rejected(self):
        with pytest.raises(TypeError, match="integers"):
            ReportBatch(
                shard=0, t=0, user_ids=np.array([0.5]), values=np.zeros(1)
            )

    def test_negative_slot_and_shard_rejected(self):
        ids, vals = np.arange(1), np.zeros(1)
        with pytest.raises(ValueError, match="t must be non-negative"):
            ReportBatch(shard=0, t=-1, user_ids=ids, values=vals)
        with pytest.raises(ValueError, match="shard must be non-negative"):
            ReportBatch(shard=-1, t=0, user_ids=ids, values=vals)

    def test_from_record_rejects_other_types(self):
        with pytest.raises(ValueError, match="not a batch record"):
            ReportBatch.from_record({"type": "slot"})


class TestSlotEstimate:
    def test_record_carries_answers_json_safely(self):
        estimate = SlotEstimate(
            t=3,
            n_reports=10,
            mean=np.float64(0.25),
            answers={"dash": {"extrema": (np.float64(0.1), np.float64(0.9))}},
        )
        record = json.loads(json.dumps(estimate.to_record()))
        assert record["type"] == "slot"
        assert record["mean"] == 0.25
        assert record["answers"]["dash"]["extrema"] == [0.1, 0.9]

    def test_empty_slot_serializes_none_mean(self):
        record = SlotEstimate(t=0, n_reports=0, mean=None).to_record()
        assert record["mean"] is None


class TestJsonify:
    def test_coerces_numpy_scalars_and_containers(self):
        payload = jsonify(
            {
                "f": np.float64(1.5),
                "i": np.int64(3),
                "b": np.bool_(True),
                "arr": np.array([1.0, 2.0]),
                "tup": (1, 2),
                "none": None,
            }
        )
        assert payload == {
            "f": 1.5,
            "i": 3,
            "b": True,
            "arr": [1.0, 2.0],
            "tup": [1, 2],
            "none": None,
        }
        json.dumps(payload)  # must be JSON-safe end to end


class TestSinks:
    def test_memory_sink_filters_by_type(self):
        sink = MemorySink()
        sink.emit({"type": "a", "x": 1})
        sink.emit({"type": "b"})
        sink.emit({"type": "a", "x": 2})
        assert [r["x"] for r in sink.of_type("a")] == [1, 2]

    def test_jsonl_sink_writes_one_line_per_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JSONLSink(path) as sink:
            sink.emit({"type": "a", "value": 1.0 / 3.0})
            sink.emit({"type": "b"})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["value"] == 1.0 / 3.0
        assert sink.n_records == 2

    def test_jsonl_sink_rejects_emit_after_close(self, tmp_path):
        sink = JSONLSink(tmp_path / "events.jsonl")
        sink.close()
        with pytest.raises(RuntimeError, match="closed"):
            sink.emit({"type": "a"})

    def test_jsonl_sink_creates_parent_directories(self, tmp_path):
        sink = JSONLSink(tmp_path / "deep" / "nested" / "events.jsonl")
        sink.emit({"type": "a"})
        sink.close()
        assert (tmp_path / "deep" / "nested" / "events.jsonl").exists()

    def test_callback_sink_forwards(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit({"type": "a"})
        assert seen == [{"type": "a"}]

    def test_callback_sink_requires_callable(self):
        with pytest.raises(TypeError):
            CallbackSink("not callable")


class TestSinkEdgeCases:
    def test_jsonl_sink_unwritable_path_raises_cleanly(self, tmp_path):
        """A path under a regular file fails at construction, not mid-run."""
        blocker = tmp_path / "blocker"
        blocker.write_text("i am a file, not a directory")
        with pytest.raises(OSError):
            JSONLSink(blocker / "events.jsonl")

    def test_jsonl_sink_close_is_idempotent(self, tmp_path):
        sink = JSONLSink(tmp_path / "events.jsonl")
        sink.close()
        sink.close()  # second close must not raise

    def test_memory_sink_truncation_flag(self):
        sink = MemorySink(max_records=2)
        for i in range(5):
            sink.emit({"type": "a", "i": i})
        assert [r["i"] for r in sink.records] == [0, 1]
        assert sink.truncated
        assert sink.n_emitted == 5

    def test_memory_sink_untruncated_by_default(self):
        sink = MemorySink()
        for i in range(1000):
            sink.emit({"i": i})
        assert not sink.truncated
        assert len(sink.records) == sink.n_emitted == 1000

    def test_memory_sink_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="max_records"):
            MemorySink(max_records=0)

    @pytest.mark.parametrize("max_workers", [1, 3])
    def test_callback_sink_raising_mid_slot_does_not_deadlock(self, max_workers):
        """A sink blowing up during finalization must fail the run fast —
        propagating the error and joining every producer thread — rather
        than wedging the slot barrier."""
        from repro.runtime import MatrixSource
        from repro.service import run_live

        class SinkBoom(RuntimeError):
            pass

        def explode(record):
            if record.get("type") == "slot" and record["t"] == 2:
                raise SinkBoom("sink failed mid-slot")

        matrix = np.random.default_rng(3).random((12, 8))
        with pytest.raises(SinkBoom):
            run_live(
                MatrixSource(matrix, chunk_size=4),
                epsilon=1.0,
                w=4,
                seed=9,
                max_workers=max_workers,
                sinks=[CallbackSink(explode)],
            )
        # Reaching here at all proves no deadlock; the failing slot never
        # finalized more than once and threads were joined by serve().
