"""IngestionPipeline: slot barrier, determinism, dashboards, replay.

The determinism headline — live == offline sharded, bit for bit — is
pinned here for serial and threaded serving, out-of-order submission,
and event-log replay; the golden fixtures (tests/golden) additionally
pin the absolute values.
"""

import numpy as np
import pytest

from repro.analysis.streaming_queries import (
    RollingMean,
    StreamingQueryEngine,
    ThresholdAlert,
)
from repro.runtime import MatrixSource, ScenarioSource, make_scenario, run_protocol_sharded
from repro.service import (
    EventLogSource,
    IngestionPipeline,
    JSONLSink,
    MemorySink,
    ReportBatch,
    replay_event_log,
    run_live,
    shard_feeds,
)

N_USERS, HORIZON, CHUNK = 36, 9, 10  # 4 shards, last one ragged
PARAMS = dict(algorithm="capp", epsilon=1.2, w=6, participation=0.9, seed=17)


def _source():
    matrix = np.random.default_rng(8).random((N_USERS, HORIZON))
    return MatrixSource(matrix, chunk_size=CHUNK)


@pytest.fixture(scope="module")
def offline():
    return run_protocol_sharded(_source(), **PARAMS)


def _batch(shard, t, ids=(), values=()):
    return ReportBatch(
        shard=shard,
        t=t,
        user_ids=np.asarray(ids, dtype=np.intp),
        values=np.asarray(values, dtype=float),
    )


class TestDeterminism:
    def test_serial_live_matches_offline_bitwise(self, offline):
        live = run_live(_source(), **PARAMS)
        np.testing.assert_array_equal(
            live.population_mean_series(),
            offline.collector.population_mean_series(),
        )
        assert live.collector.state.slot_sums == offline.collector.state.slot_sums
        assert (
            live.collector.state.slot_counts
            == offline.collector.state.slot_counts
        )
        assert live.n_reports == offline.collector.n_reports

    @pytest.mark.parametrize("max_workers", [2, 5])
    def test_threaded_live_matches_offline_bitwise(self, offline, max_workers):
        live = run_live(
            _source(),
            max_workers=max_workers,
            queue_capacity=3,
            coalesce=2,
            **PARAMS,
        )
        np.testing.assert_array_equal(
            live.population_mean_series(),
            offline.collector.population_mean_series(),
        )
        assert live.queue_stats is not None
        assert live.queue_stats.total_batches == 4 * HORIZON

    def test_out_of_order_submission_is_reordered_by_barrier(self, offline):
        """Reversed shard arrival per slot must not change a single bit."""
        feeds = shard_feeds(_source(), **PARAMS)
        pipeline = IngestionPipeline(
            n_shards=len(feeds), horizon=HORIZON, epsilon=1.2, w=6
        )
        iterators = [iter(feed) for feed in feeds]
        for _ in range(HORIZON):
            for iterator in reversed(iterators):
                pipeline.submit(next(iterator))
        pipeline.finish()
        np.testing.assert_array_equal(
            pipeline.collector.population_mean_series(),
            offline.collector.population_mean_series(),
        )

    def test_slot_reports_match_offline(self, offline):
        live = run_live(_source(), **PARAMS)
        for t in offline.collector.slots():
            np.testing.assert_array_equal(
                live.collector.state.slot_reports(t),
                offline.collector.state.slot_reports(t),
            )


class TestBarrier:
    def test_slot_finalizes_only_when_all_shards_arrive(self):
        pipeline = IngestionPipeline(n_shards=2, horizon=2)
        assert pipeline.submit(_batch(0, 0, [0], [0.5])) == []
        assert pipeline.next_slot == 0
        finalized = pipeline.submit(_batch(1, 0, [10], [0.7]))
        assert [est.t for est in finalized] == [0]
        assert pipeline.next_slot == 1

    def test_laggard_batch_finalizes_multiple_slots(self):
        pipeline = IngestionPipeline(n_shards=2, horizon=3)
        pipeline.submit(_batch(0, 0, [0], [0.5]))
        pipeline.submit(_batch(0, 1, [0], [0.6]))
        pipeline.submit(_batch(1, 1, [10], [0.7]))  # slot 0 still open
        assert pipeline.next_slot == 0
        finalized = pipeline.submit(_batch(1, 0, [10], [0.4]))
        assert [est.t for est in finalized] == [0, 1]

    def test_duplicate_shard_slot_rejected(self):
        pipeline = IngestionPipeline(n_shards=2, horizon=2)
        pipeline.submit(_batch(0, 0, [0], [0.5]))
        with pytest.raises(ValueError, match="duplicate batch"):
            pipeline.submit(_batch(0, 0, [1], [0.5]))

    def test_late_arrival_after_finalization_rejected(self):
        pipeline = IngestionPipeline(n_shards=1, horizon=2)
        pipeline.submit(_batch(0, 0, [0], [0.5]))
        with pytest.raises(ValueError, match="after the slot finalized"):
            pipeline.submit(_batch(0, 0, [1], [0.5]))

    def test_out_of_range_slot_and_shard_rejected(self):
        pipeline = IngestionPipeline(n_shards=1, horizon=2)
        with pytest.raises(ValueError, match="beyond the run horizon"):
            pipeline.submit(_batch(0, 2, [0], [0.5]))
        with pytest.raises(ValueError, match="shard 1"):
            pipeline.submit(_batch(1, 0, [0], [0.5]))

    def test_finish_reports_missing_shards(self):
        pipeline = IngestionPipeline(n_shards=3, horizon=1)
        pipeline.submit(_batch(1, 0, [0], [0.5]))
        with pytest.raises(RuntimeError, match=r"shards \[0, 2\]"):
            pipeline.finish()

    def test_submit_after_finish_rejected(self):
        pipeline = IngestionPipeline(n_shards=1, horizon=1)
        pipeline.submit(_batch(0, 0, [0], [0.5]))
        pipeline.finish()
        with pytest.raises(RuntimeError, match="already finished"):
            pipeline.submit(_batch(0, 0, [0], [0.5]))

    def test_empty_slot_finalizes_with_none_mean(self):
        pipeline = IngestionPipeline(n_shards=1, horizon=1)
        dashboard = pipeline.register_dashboard("dash")
        dashboard.register("mean", RollingMean(3))
        finalized = pipeline.submit(_batch(0, 0))
        assert finalized[0].mean is None
        assert finalized[0].n_reports == 0
        # No published value exists, so the dashboard must not advance.
        assert dashboard.values_seen == 0
        assert finalized[0].answers["dash"]["mean"] is None


class TestDashboardsAndSinks:
    def test_dashboard_sees_every_published_slot_mean(self, offline):
        dashboard = StreamingQueryEngine()
        dashboard.register("mean", RollingMean(window=HORIZON))
        live = run_live(_source(), dashboards={"main": dashboard}, **PARAMS)
        assert dashboard.values_seen == HORIZON
        expected = float(np.mean(offline.collector.population_mean_series()))
        assert dashboard.answers()["mean"] == pytest.approx(expected)
        assert live.slots[-1].answers["main"]["mean"] == pytest.approx(expected)

    def test_alerts_fire_from_slot_estimates(self):
        source = MatrixSource(np.full((20, 6), 0.95), chunk_size=10)
        dashboard = StreamingQueryEngine()
        dashboard.register("hot", ThresholdAlert(2, threshold=0.6))
        run_live(
            source,
            algorithm="sw-direct",
            epsilon=3.0,
            w=4,
            seed=1,
            dashboards={"d": dashboard},
        )
        assert dashboard.query("hot").fired_count >= 1

    def test_sink_receives_lifecycle_and_slot_records(self):
        sink = MemorySink()
        run_live(_source(), sinks=[sink], **PARAMS)
        types = [record["type"] for record in sink.records]
        assert types[0] == "run_started"
        assert types[-1] == "run_finished"
        assert types.count("slot") == HORIZON
        assert sink.records[0]["n_shards"] == 4

    def test_record_batches_captures_every_batch(self):
        sink = MemorySink()
        run_live(_source(), sinks=[sink], record_batches=True, **PARAMS)
        assert len(sink.of_type("batch")) == 4 * HORIZON

    def test_duplicate_dashboard_name_rejected(self):
        pipeline = IngestionPipeline(n_shards=1, horizon=1)
        pipeline.register_dashboard("dash")
        with pytest.raises(ValueError, match="already registered"):
            pipeline.register_dashboard("dash")

    def test_wrong_sink_and_engine_types_rejected(self):
        pipeline = IngestionPipeline(n_shards=1, horizon=1)
        with pytest.raises(TypeError):
            pipeline.add_sink(object())
        with pytest.raises(TypeError):
            pipeline.register_dashboard("x", engine=object())


class TestServeValidation:
    def test_feed_count_must_match_shards(self):
        feeds = shard_feeds(_source(), **PARAMS)
        pipeline = IngestionPipeline(n_shards=2, horizon=HORIZON)
        with pytest.raises(ValueError, match="2 shards but got 4 feeds"):
            pipeline.serve(feeds)

    def test_producer_error_propagates_in_threaded_mode(self):
        feeds = shard_feeds(_source(), **PARAMS)

        class Boom(RuntimeError):
            pass

        class ExplodingFeed:
            shard = feeds[1].shard
            horizon = feeds[1].horizon

            def __iter__(self):
                raise Boom("producer died")

        broken = [feeds[0], ExplodingFeed(), feeds[2], feeds[3]]
        pipeline = IngestionPipeline(n_shards=4, horizon=HORIZON)
        with pytest.raises(Boom):
            pipeline.serve(broken, max_workers=3)


class TestReplay:
    def test_replay_reproduces_recorded_run_bitwise(self, tmp_path, offline):
        log = tmp_path / "events.jsonl"
        live = run_live(
            _source(), sinks=[JSONLSink(log)], record_batches=True, **PARAMS
        )
        replayed = replay_event_log(log)
        np.testing.assert_array_equal(
            replayed.population_mean_series(),
            offline.collector.population_mean_series(),
        )
        assert replayed.collector.state.slot_sums == live.collector.state.slot_sums
        assert replayed.n_reports == live.n_reports

    def test_replay_feeds_dashboards(self, tmp_path):
        log = tmp_path / "events.jsonl"
        run_live(_source(), sinks=[JSONLSink(log)], record_batches=True, **PARAMS)
        dashboard = StreamingQueryEngine()
        dashboard.register("mean", RollingMean(3))
        replay_event_log(log, dashboards={"d": dashboard})
        assert dashboard.values_seen == HORIZON

    def test_replayed_result_has_no_ledgers_to_audit(self, tmp_path):
        log = tmp_path / "events.jsonl"
        run_live(_source(), sinks=[JSONLSink(log)], record_batches=True, **PARAMS)
        replayed = replay_event_log(log)
        with pytest.raises(RuntimeError, match="no budget ledgers"):
            replayed.assert_valid()

    def test_log_without_batches_raises(self, tmp_path):
        log = tmp_path / "events.jsonl"
        run_live(_source(), sinks=[JSONLSink(log)], **PARAMS)  # no batches
        with pytest.raises(ValueError, match="no batch records"):
            replay_event_log(log)

    def test_log_without_run_started_raises(self, tmp_path):
        log = tmp_path / "bare.jsonl"
        log.write_text('{"type": "batch", "shard": 0, "t": 0}\n')
        with pytest.raises(ValueError, match="no run_started record"):
            EventLogSource(log).metadata()

    def test_corrupted_log_line_raises(self, tmp_path):
        log = tmp_path / "corrupt.jsonl"
        log.write_text('{"type": "run_started"}\n{broken\n')
        with pytest.raises(ValueError, match="line 2 is not valid JSON"):
            list(EventLogSource(log).batches())

    def test_wrong_format_tag_raises(self, tmp_path):
        log = tmp_path / "other.jsonl"
        log.write_text('{"type": "run_started", "format": "other.v9"}\n')
        with pytest.raises(ValueError, match="unsupported event log format"):
            EventLogSource(log).metadata()


class TestScenarioServing:
    def test_scenario_source_uses_its_churn_schedule(self):
        spec = make_scenario("churn", n_users=40, horizon=12)
        source = ScenarioSource(spec, chunk_size=20, seed=3)
        live = run_live(source, epsilon=1.0, w=5, seed=4)
        offline = run_protocol_sharded(source, epsilon=1.0, w=5, seed=4)
        np.testing.assert_array_equal(
            live.population_mean_series(),
            offline.collector.population_mean_series(),
        )
        # Churn means not everyone reports every slot.
        assert live.n_reports < 40 * 12

    def test_live_audit_passes(self):
        live = run_live(_source(), **PARAMS)
        live.assert_valid()  # must not raise


class TestCrossShardDuplicates:
    def test_same_user_from_two_shards_rejected_without_tracking(self):
        """The barrier catches id collisions even at serving scale
        (track_users=False), where the collector itself cannot."""
        pipeline = IngestionPipeline(n_shards=2, horizon=1)
        pipeline.submit(_batch(0, 0, [3], [0.4]))
        with pytest.raises(ValueError, match="more than one shard"):
            pipeline.submit(_batch(1, 0, [3], [0.6]))

    def test_disjoint_ids_from_two_shards_accepted(self):
        pipeline = IngestionPipeline(n_shards=2, horizon=1)
        pipeline.submit(_batch(0, 0, [3], [0.4]))
        finalized = pipeline.submit(_batch(1, 0, [4], [0.6]))
        assert finalized[0].n_reports == 2


class TestSlotSkewBound:
    def test_stalled_shard_cannot_blow_up_the_barrier_buffer(self, offline):
        """With one producer stalling per slot, fast shards must be gated
        at max_slot_skew — the barrier buffer stays bounded and results
        stay bit-identical."""
        import time as _time

        feeds = shard_feeds(_source(), **PARAMS)

        class SlowFeed:
            def __init__(self, feed):
                self._feed = feed
                self.shard = feed.shard
                self.horizon = feed.horizon

            def __iter__(self):
                for batch in self._feed:
                    _time.sleep(0.002)  # always the laggard
                    yield batch

        slowed = [SlowFeed(feeds[0]), *feeds[1:]]
        pipeline = IngestionPipeline(
            n_shards=4,
            horizon=HORIZON,
            epsilon=1.2,
            w=6,
            max_slot_skew=2,
            queue_capacity=64,
        )
        # One thread per shard: the three fast shards would otherwise run
        # the whole horizon ahead of the stalled one.
        result = pipeline.serve(slowed, max_workers=4)
        np.testing.assert_array_equal(
            result.population_mean_series(),
            offline.collector.population_mean_series(),
        )
        assert pipeline.pending_high_watermark <= 4 * (2 + 1)

    def test_serial_serving_has_minimal_barrier_occupancy(self):
        feeds = shard_feeds(_source(), **PARAMS)
        pipeline = IngestionPipeline(n_shards=4, horizon=HORIZON, epsilon=1.2, w=6)
        pipeline.serve(feeds, max_workers=1)
        assert pipeline.pending_high_watermark <= 4


class TestSinkLifecycleOnFailure:
    def test_sinks_are_flushed_when_the_run_dies(self, tmp_path):
        """A crashed serve must still leave a readable event log behind."""

        class Boom(RuntimeError):
            pass

        feeds = shard_feeds(_source(), **PARAMS)

        class ExplodingFeed:
            shard = feeds[1].shard
            horizon = feeds[1].horizon

            def __iter__(self):
                yield from ()
                raise Boom("producer died")

        sink = JSONLSink(tmp_path / "postmortem.jsonl")
        pipeline = IngestionPipeline(n_shards=4, horizon=HORIZON)
        pipeline.add_sink(sink)
        with pytest.raises((Boom, RuntimeError)):
            pipeline.serve([feeds[0], ExplodingFeed(), feeds[2], feeds[3]])
        assert sink._fh.closed
        lines = (tmp_path / "postmortem.jsonl").read_text().splitlines()
        assert lines, "run_started must have been flushed for post-mortem"
