"""BoundedBatchQueue: backpressure, coalescing, close semantics."""

import threading
import time

import pytest

from repro.service import BoundedBatchQueue, QueueClosedError


class TestBasics:
    def test_fifo_order_within_capacity(self):
        queue = BoundedBatchQueue(capacity=8, coalesce=8)
        for item in range(5):
            queue.put(item)
        assert len(queue) == 5
        assert queue.get_batch() == [0, 1, 2, 3, 4]
        assert len(queue) == 0

    def test_coalesce_caps_drain_size(self):
        queue = BoundedBatchQueue(capacity=16, coalesce=3)
        for item in range(7):
            queue.put(item)
        assert queue.get_batch() == [0, 1, 2]
        assert queue.get_batch() == [3, 4, 5]
        assert queue.get_batch() == [6]

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            BoundedBatchQueue(capacity=0)
        with pytest.raises(ValueError):
            BoundedBatchQueue(capacity=4, coalesce=0)

    def test_stats_track_traffic(self):
        queue = BoundedBatchQueue(capacity=4, coalesce=2)
        for item in range(4):
            queue.put(item)
        queue.get_batch()
        queue.get_batch()
        stats = queue.stats
        assert stats.total_batches == 4
        assert stats.high_watermark == 4
        assert stats.drains == 2
        assert stats.max_drain == 2
        assert stats.mean_drain == pytest.approx(2.0)

    def test_mean_drain_zero_before_any_drain(self):
        assert BoundedBatchQueue().stats.mean_drain == 0.0


class TestBackpressure:
    def test_put_blocks_at_capacity_until_consumer_drains(self):
        queue = BoundedBatchQueue(capacity=2, coalesce=1)
        queue.put("a")
        queue.put("b")
        done = threading.Event()

        def producer():
            queue.put("c")  # must block until a drain frees a slot
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not done.is_set()
        assert queue.get_batch() == ["a"]
        thread.join(timeout=2.0)
        assert done.is_set()
        assert queue.stats.producer_waits >= 1

    def test_put_timeout_raises(self):
        queue = BoundedBatchQueue(capacity=1)
        queue.put("a")
        with pytest.raises(TimeoutError, match="queue full"):
            queue.put("b", timeout=0.01)

    def test_get_timeout_raises(self):
        queue = BoundedBatchQueue(capacity=1)
        with pytest.raises(TimeoutError, match="queue empty"):
            queue.get_batch(timeout=0.01)


class TestClose:
    def test_put_after_close_raises(self):
        queue = BoundedBatchQueue()
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.put("x")

    def test_close_drains_remaining_then_signals_end(self):
        queue = BoundedBatchQueue(capacity=8, coalesce=8)
        queue.put("a")
        queue.put("b")
        queue.close()
        assert queue.get_batch() == ["a", "b"]
        assert queue.get_batch() == []

    def test_abort_discards_pending(self):
        queue = BoundedBatchQueue(capacity=8)
        queue.put("a")
        queue.close(abort=True)
        assert queue.get_batch() == []

    def test_close_unblocks_waiting_producer(self):
        queue = BoundedBatchQueue(capacity=1)
        queue.put("a")
        raised = threading.Event()

        def producer():
            try:
                queue.put("b")
            except QueueClosedError:
                raised.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=2.0)
        assert raised.is_set()

    def test_close_unblocks_waiting_consumer(self):
        queue = BoundedBatchQueue()
        got = []

        def consumer():
            got.append(queue.get_batch())

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(timeout=2.0)
        assert got == [[]]

    def test_close_is_idempotent(self):
        queue = BoundedBatchQueue()
        queue.close()
        queue.close(abort=True)
        assert queue.closed
