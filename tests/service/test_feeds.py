"""ShardFeed / shard_feeds: construction contracts and batch streams."""

import numpy as np
import pytest

from repro.protocol import PopulationSlotEngine
from repro.runtime import MatrixSource, shard_rng
from repro.runtime.sources import PopulationChunk
from repro.service import ShardFeed, shard_feeds


def _chunk(index=0, start=0, n_users=6, horizon=4, seed=0):
    matrix = np.random.default_rng(seed).random((n_users, horizon))
    return PopulationChunk(index=index, start=start, matrix=matrix)


def _engine(chunk, **overrides):
    kwargs = dict(
        algorithm="capp",
        epsilon=1.0,
        w=4,
        rng=shard_rng(0, chunk.index),
        user_id_offset=chunk.start,
    )
    kwargs.update(overrides)
    return PopulationSlotEngine(chunk.n_users, chunk.matrix.shape[1], **kwargs)


class TestShardFeed:
    def test_yields_one_batch_per_slot_in_order(self):
        chunk = _chunk(index=2, start=12)
        feed = ShardFeed(chunk, _engine(chunk))
        batches = list(feed)
        assert [batch.t for batch in batches] == [0, 1, 2, 3]
        assert all(batch.shard == 2 for batch in batches)
        assert all(batch.n_reports == 6 for batch in batches)
        # Global ids respect the chunk's offset.
        assert batches[0].user_ids.tolist() == list(range(12, 18))

    def test_dropout_slots_still_yield_batches(self):
        chunk = _chunk(n_users=4, horizon=5)
        schedule = np.array([1.0, 0.0, 1.0, 0.0, 1.0])
        feed = ShardFeed(chunk, _engine(chunk, participation=schedule))
        batches = list(feed)
        assert len(batches) == 5
        assert batches[1].n_reports == 0  # nobody reports, batch still flows
        assert batches[0].n_reports == 4

    def test_mismatched_users_rejected(self):
        chunk = _chunk(n_users=6)
        other = _chunk(n_users=5)
        with pytest.raises(ValueError, match="drives 5 users"):
            ShardFeed(chunk, _engine(other))

    def test_mismatched_offset_rejected(self):
        chunk = _chunk(start=10)
        engine = _engine(chunk, user_id_offset=0)
        with pytest.raises(ValueError, match="offset 0"):
            ShardFeed(chunk, engine)

    def test_mismatched_horizon_rejected(self):
        chunk = _chunk(horizon=4)
        other = _chunk(horizon=7)
        with pytest.raises(ValueError, match="horizon 7"):
            ShardFeed(chunk, _engine(other))


class TestShardFeeds:
    def test_one_feed_per_chunk_with_matching_offsets(self):
        matrix = np.random.default_rng(1).random((25, 6))
        feeds = shard_feeds(MatrixSource(matrix, chunk_size=10), seed=5)
        assert [feed.shard for feed in feeds] == [0, 1, 2]
        assert [feed.n_users for feed in feeds] == [10, 10, 5]
        assert [feed.engine.user_id_offset for feed in feeds] == [0, 10, 20]

    def test_raw_matrix_accepts_chunk_size(self):
        matrix = np.random.default_rng(1).random((8, 4))
        feeds = shard_feeds(matrix, chunk_size=3, seed=0)
        assert [feed.n_users for feed in feeds] == [3, 3, 2]

    def test_per_user_algorithms_sliced_per_shard(self):
        matrix = np.random.default_rng(1).random((6, 4))
        names = ["capp", "app", "ipp", "sw-direct", "capp", "app"]
        feeds = shard_feeds(matrix, algorithm=names, chunk_size=4, seed=0)
        assert [g.algorithm for g in feeds[0].engine.groups] == [
            "capp",
            "app",
            "ipp",
            "sw-direct",
        ]
        assert [g.algorithm for g in feeds[1].engine.groups] == ["capp", "app"]

    def test_short_algorithm_sequence_rejected(self):
        matrix = np.random.default_rng(1).random((6, 4))
        with pytest.raises(ValueError, match="too short"):
            shard_feeds(matrix, algorithm=["capp"] * 4, chunk_size=4, seed=0)


class TestSlotEngineContract:
    def test_step_past_horizon_rejected(self):
        chunk = _chunk(horizon=2)
        engine = _engine(chunk)
        engine.step(chunk.matrix[:, 0])
        engine.step(chunk.matrix[:, 1])
        with pytest.raises(RuntimeError, match="already stepped"):
            engine.step(chunk.matrix[:, 0])

    def test_step_validates_column_shape(self):
        chunk = _chunk(n_users=6)
        with pytest.raises(ValueError, match=r"shape \(6,\)"):
            _engine(chunk).step(np.zeros(5))

    def test_stepping_equals_batch_run_bitwise(self):
        """The incremental engine IS the batch engine, slot by slot."""
        from repro.protocol import run_protocol_vectorized

        matrix = np.random.default_rng(9).random((11, 7))
        batch = run_protocol_vectorized(
            matrix, epsilon=1.4, w=5, participation=0.8, rng=shard_rng(4, 0)
        )
        engine = PopulationSlotEngine(
            11, 7, epsilon=1.4, w=5, participation=0.8, rng=shard_rng(4, 0)
        )
        for t in range(7):
            ids, values = engine.step(matrix[:, t])
            expected = batch.collector.state.slot_reports(t)
            np.testing.assert_array_equal(values, expected)
        assert engine.slots_processed == 7


class TestChunkRelease:
    def test_exhausted_feed_releases_its_matrix(self):
        chunk = _chunk()
        feed = ShardFeed(chunk, _engine(chunk))
        list(feed)
        assert feed.chunk is None  # O(users x slots) freed
        assert feed.shard == 0 and feed.n_users == 6  # metadata survives
        assert len(feed.engine.groups) == 1  # ledgers survive for the audit

    def test_second_iteration_fails_loudly(self):
        chunk = _chunk()
        feed = ShardFeed(chunk, _engine(chunk))
        list(feed)
        with pytest.raises(RuntimeError, match="already consumed"):
            list(feed)
