"""Shared fixtures for the test suite."""

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden regression fixtures under tests/golden/ "
        "from the current implementation instead of asserting against them",
    )


@pytest.fixture
def update_golden(request):
    """Whether this run should rewrite golden fixtures (--update-golden)."""
    return request.config.getoption("--update-golden")


@pytest.fixture
def rng():
    """A deterministic random generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def smooth_stream():
    """A smooth bounded stream (sinusoid in [0.2, 0.8]), length 120."""
    t = np.arange(120, dtype=float)
    return 0.5 + 0.3 * np.sin(2 * np.pi * t / 40.0)


@pytest.fixture
def step_stream():
    """A piecewise-constant stream, length 100."""
    stream = np.empty(100)
    stream[:40] = 0.2
    stream[40:70] = 0.8
    stream[70:] = 0.5
    return stream
