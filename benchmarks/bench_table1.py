"""Table I: mean-estimation MSE — ToPL vs SW-direct / IPP / APP.

Paper configuration: C6H6 + Taxi, eps = 1, w in {20, 40, 60}.  Expected
shape: ToPL's MSE is orders of magnitude (paper: >100x) above the
SW-based algorithms, growing with w.
"""

from repro.experiments import format_table1, run_table1

SCALE = dict(n_subsequences=15, n_repeats=1, stream_length=800, seed=0)


def test_table1(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_table1(windows=(20, 40, 60), datasets=("c6h6", "taxi"), **SCALE),
        rounds=1,
        iterations=1,
    )
    record_table("table1", format_table1(result))

    # Qualitative shape: ToPL far worse than every SW-based algorithm in
    # every cell; its error grows with w (smaller per-slot budget).
    for dataset, per_w in result.items():
        for w, cells in per_w.items():
            for name in ("sw-direct", "ipp", "app"):
                assert cells["topl"] > 10 * cells[name], (dataset, w, name)
    for dataset in result:
        assert result[dataset][60]["topl"] > result[dataset][20]["topl"]
