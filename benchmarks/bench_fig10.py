"""Figure 10: high-dimensional Budget-Split vs Sample-Split on Sin-data.

Expected shape: APP/CAPP variants improve on the SW variants within each
strategy; BS strategies beat SS strategies (sampling's sparse uploads hurt
more than budget splitting).
"""

import numpy as np

from repro.experiments import format_sweep, run_fig10

EPSILONS = (0.5, 1.0, 2.0, 3.0)


def test_fig10(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_fig10(
            dimensions=(5, 10), epsilons=EPSILONS, w=10, length=150, n_repeats=4
        ),
        rounds=1,
        iterations=1,
    )
    blocks = []
    for d, metrics in result.items():
        for metric, series in metrics.items():
            blocks.append(
                format_sweep(list(EPSILONS), series, title=f"Fig.10 d={d} ({metric})")
            )
    record_table("fig10", "\n\n".join(blocks))

    for d, metrics in result.items():
        cos = metrics["cosine"]
        # Within each strategy, the PP variants publish better streams
        # than plain SW.
        assert np.mean(cos["app-bs"]) < np.mean(cos["sw-bs"]), d
        assert np.mean(cos["app-ss"]) < np.mean(cos["sw-ss"]), d
        # BS beats SS for the matching algorithm (paper's key finding).
        assert np.mean(cos["app-bs"]) < np.mean(cos["app-ss"]) * 1.5, d
