"""Smoother ablation: SMA vs EWMA vs variance-informed Kalman (beyond the
paper).

The collector knows the mechanism's noise variance, so smarter-than-SMA
post-processing is free.  Expected shape: Kalman (RTS) <= SMA <= raw on
pointwise MSE for smooth streams.
"""

import numpy as np

from repro.core import (
    APP,
    KalmanSmoother,
    exponential_smoothing,
    observation_variance_for,
    simple_moving_average,
)
from repro.datasets import load_stream
from repro.experiments import format_table


def test_smoother_ablation(benchmark, record_table):
    truth = load_stream("c6h6", length=600)[:200]
    eps, w = 2.0, 10

    def run():
        raw_err, sma_err, ewma_err, kalman_err = [], [], [], []
        for rep in range(12):
            rng = np.random.default_rng(4000 + rep)
            result = APP(eps, w, smoothing_window=None).perturb_stream(truth, rng)
            reports = result.perturbed
            smoother = KalmanSmoother(
                observation_var=observation_variance_for(eps / w),
                process_var=5e-4,
            )
            raw_err.append(float(np.mean((reports - truth) ** 2)))
            sma_err.append(
                float(np.mean((simple_moving_average(reports, 3) - truth) ** 2))
            )
            ewma_err.append(
                float(np.mean((exponential_smoothing(reports, 0.15) - truth) ** 2))
            )
            kalman_err.append(
                float(np.mean((smoother.smooth(reports) - truth) ** 2))
            )
        return [
            ["raw reports", float(np.mean(raw_err))],
            ["SMA window 3 (paper)", float(np.mean(sma_err))],
            ["EWMA alpha 0.15", float(np.mean(ewma_err))],
            ["Kalman RTS (variance-informed)", float(np.mean(kalman_err))],
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "smoother_ablation",
        format_table(
            ["post-processing", "pointwise MSE"],
            rows,
            title="Smoother ablation (APP reports, c6h6, eps=2, w=10)",
        ),
    )
    by_name = {row[0]: row[1] for row in rows}
    assert by_name["SMA window 3 (paper)"] < by_name["raw reports"]
    assert by_name["Kalman RTS (variance-informed)"] < by_name["SMA window 3 (paper)"]


def test_distribution_reconstruction(benchmark, record_table):
    """EM distribution reconstruction quality vs budget (beyond the paper)."""
    from repro.experiments import run_distribution_study

    epsilons = (0.1, 0.5, 1.0, 2.0)

    def run():
        return run_distribution_study(
            epsilons=epsilons, n_users=4_000, rng=np.random.default_rng(0)
        )

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [shape] + [per_eps[e] for e in epsilons] for shape, per_eps in study.items()
    ]
    record_table(
        "distribution_study",
        format_table(
            ["population"] + [f"eps={e:g}" for e in epsilons],
            rows,
            title="Per-slot EM distribution reconstruction (Wasserstein)",
        ),
    )
    for shape, per_eps in study.items():
        assert per_eps[2.0] < per_eps[0.1], shape
