"""Ablation benches for design choices DESIGN.md calls out.

1. Smoothing window size (the paper fixes 3; we sweep it).
2. Theorem-6 vs literal Algorithm-3 per-sample budget.
3. Clamped vs raw Equation-11 delta for CAPP.
"""

import numpy as np

from repro.core import APP, CAPP, PPSampling
from repro.core.sampling import literal_gamma_budget
from repro.datasets import load_stream
from repro.experiments import format_table
from repro.metrics import cosine_distance
from repro.privacy import per_sample_budget


def test_ablation_smoothing_window(benchmark, record_table):
    """Larger SMA windows help the mean but blur the published stream."""
    stream = load_stream("c6h6", length=400)

    def run():
        rows = []
        for window in (None, 3, 5, 9):
            cos_scores, mse_scores = [], []
            for rep in range(10):
                rng = np.random.default_rng(1000 + rep)
                app = APP(1.0, 10, smoothing_window=window)
                result = app.perturb_stream(stream[:60], rng)
                cos_scores.append(cosine_distance(result.published, stream[:60]))
                mse_scores.append(
                    float(np.mean((result.published - stream[:60]) ** 2))
                )
            rows.append(
                [str(window), float(np.mean(cos_scores)), float(np.mean(mse_scores))]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ablation_smoothing",
        format_table(
            ["window", "cosine distance", "pointwise MSE"],
            rows,
            title="Ablation: SMA window (APP, c6h6, eps=1, w=10)",
        ),
    )
    by_window = {row[0]: row for row in rows}
    # Any smoothing beats none for publication.
    assert by_window["3"][1] < by_window["None"][1]


def test_ablation_sampling_budget_rule(benchmark, record_table):
    """Theorem-6 budgets vs the literal Algorithm-3 line 2.

    The literal rule is (weakly) more conservative whenever the segment
    length exceeds the per-window sample count, so the theorem-consistent
    rule never hurts utility.
    """
    length, w = 60, 10

    def run():
        rows = []
        for n_samples in (2, 4, 6, 10):
            seg = length // n_samples
            theorem = per_sample_budget(1.0, w, seg)
            literal = literal_gamma_budget(1.0, w, length, n_samples)
            rows.append([n_samples, seg, theorem, literal])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ablation_sampling_budget",
        format_table(
            ["n_s", "segment length", "Theorem-6 eps/sample", "Alg.3 literal eps/sample"],
            rows,
            title="Ablation: per-sample budget rules (eps=1, w=10, q=60)",
        ),
    )
    for _, _, theorem, literal in rows:
        assert theorem >= literal - 1e-12


def test_ablation_delta_clamp(benchmark, record_table):
    """Clamped vs raw Equation-11 delta across budgets (CAPP)."""
    stream = load_stream("c6h6", length=400)[:40]

    def run():
        rows = []
        for eps in (0.5, 1.0, 3.0):
            clamped_err, raw_err = [], []
            for rep in range(10):
                rng = np.random.default_rng(2000 + rep)
                clamped = CAPP(eps, 10).perturb_stream(stream, rng)
                raw = CAPP(eps, 10, delta_clamp=None).perturb_stream(stream, rng)
                clamped_err.append((clamped.mean_estimate() - stream.mean()) ** 2)
                raw_err.append((raw.mean_estimate() - stream.mean()) ** 2)
            rows.append([eps, float(np.mean(clamped_err)), float(np.mean(raw_err))])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ablation_delta_clamp",
        format_table(
            ["eps", "clamped delta MSE", "raw delta MSE"],
            rows,
            title="Ablation: delta clamp (CAPP, c6h6, w=10)",
        ),
    )
    # Both variants produce finite, sane errors.
    for _, clamped, raw in rows:
        assert np.isfinite(clamped) and np.isfinite(raw)


def test_ablation_pps_num_samples(benchmark, record_table):
    """Mean-MSE of APP-S across n_s (context for the Eq.-12 selection)."""
    stream = load_stream("volume", length=800)[:40]

    def run():
        rows = []
        for n_samples in (2, 4, 8, 20):
            errors = []
            for rep in range(10):
                rng = np.random.default_rng(3000 + rep)
                pps = PPSampling(1.0, 30, base="app", n_samples=n_samples)
                result = pps.perturb_stream(stream, rng)
                errors.append((result.mean_estimate() - stream.mean()) ** 2)
            rows.append([n_samples, float(np.mean(errors))])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ablation_pps_num_samples",
        format_table(
            ["n_s", "mean MSE"],
            rows,
            title="Ablation: APP-S sample count (volume, eps=1, w=30, q=40)",
        ),
    )
    assert all(np.isfinite(row[1]) for row in rows)
