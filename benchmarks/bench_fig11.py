"""Figure 11: sensitivity of the CAPP clip parameter delta on MSE.

Expected shape: for fixed eps the MSE over delta forms a rough U (both
extreme narrowing and extreme widening hurt); MSE decreases with eps; the
Equation-11 recommended delta lands in the stable low region.
"""

import numpy as np

from repro.core import clip_delta
from repro.experiments import format_table, run_fig11

EPSILONS = (0.5, 1.0, 3.0, 5.0)
DELTAS = tuple(np.round(np.arange(-0.45, 0.51, 0.15), 2))


def test_fig11(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_fig11(
            datasets=("constant", "pulse", "sinusoidal", "c6h6"),
            epsilons=EPSILONS,
            deltas=DELTAS,
            w=10,
            n_subsequences=15,
            n_repeats=3,
            stream_length=400,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    blocks = []
    for dataset, per_eps in result.items():
        headers = ["eps"] + [f"d={d:g}" for d in DELTAS] + ["recommended d"]
        rows = []
        for eps, series in per_eps.items():
            rec = clip_delta(eps / 10.0)  # per-slot budget eps/w
            rows.append([f"{eps:g}"] + list(series) + [rec])
        blocks.append(
            format_table(headers, rows, title=f"Fig.11 {dataset} (MSE over delta)")
        )
    record_table("fig11", "\n\n".join(blocks))

    for dataset, per_eps in result.items():
        for eps, series in per_eps.items():
            # The recommended delta's MSE is within 2.5x of the best
            # delta on the grid (it lands in the stable region).
            rec = clip_delta(eps / 10.0)
            idx = int(np.argmin(np.abs(np.array(DELTAS) - rec)))
            assert series[idx] <= 2.5 * min(series) + 1e-4, (dataset, eps)
        # MSE at the largest eps is below MSE at the smallest eps for the
        # best-delta choice.
        best_small = min(per_eps[EPSILONS[0]])
        best_large = min(per_eps[EPSILONS[-1]])
        assert best_large < 2.0 * best_small, dataset
