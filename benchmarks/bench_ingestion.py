"""Live ingestion bench: sustained throughput and slot-finalization tail.

Serves a population through the live pipeline (`repro.service`) and
records sustained reports/sec plus p50/p99 slot-finalization latency for
each producer configuration.  The merged estimates are asserted
bit-identical across worker counts — the bench doubles as the live
determinism gate — and the best configuration must clear a throughput
floor (the serving-readiness acceptance bar).

Sized through the environment so CI smoke jobs run it at toy scale:

* ``REPRO_BENCH_INGEST_USERS`` / ``REPRO_BENCH_INGEST_SLOTS`` —
  population shape (default 20000 x 50).
* ``REPRO_BENCH_INGEST_SHARDS`` — user-shards / producers (default 4).
* ``REPRO_BENCH_INGEST_WORKERS`` — space-separated producer thread
  counts (default "1 2 4"; 1 is the strict serial slot clock).
* ``REPRO_BENCH_INGEST_MIN_RPS`` — sustained reports/sec floor the best
  configuration must clear (default 100000).
"""

import os

import numpy as np

from repro.runtime import MatrixSource
from repro.service import run_live


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def test_ingestion_throughput(record_table):
    n_users = _env_int("REPRO_BENCH_INGEST_USERS", 20_000)
    horizon = _env_int("REPRO_BENCH_INGEST_SLOTS", 50)
    n_shards = _env_int("REPRO_BENCH_INGEST_SHARDS", 4)
    min_rps = _env_int("REPRO_BENCH_INGEST_MIN_RPS", 100_000)
    workers = [
        int(token)
        for token in os.environ.get("REPRO_BENCH_INGEST_WORKERS", "1 2 4").split()
    ]

    matrix = np.random.default_rng(0).random((n_users, horizon))
    chunk = -(-n_users // n_shards)  # ceil division

    lines = [
        f"live ingestion at {n_users} users x {horizon} slots "
        f"({n_shards} shards, chunk={chunk}, {os.cpu_count()} cpus)",
        "  workers   reports/s   p50 slot ms   p99 slot ms   backpressure",
    ]
    reference = None
    best_rps = 0.0
    for max_workers in workers:
        result = run_live(
            MatrixSource(matrix, chunk_size=chunk),
            epsilon=1.0,
            w=10,
            seed=1,
            max_workers=max_workers,
            queue_capacity=max(2 * n_shards, 8),
            coalesce=n_shards,
        )
        assert result.n_reports == n_users * horizon
        rps = result.reports_per_second
        best_rps = max(best_rps, rps)
        waits = 0 if result.queue_stats is None else result.queue_stats.producer_waits
        lines.append(
            f"  {max_workers:7d} {rps:11.0f} "
            f"{result.latency_quantile(0.50) * 1e3:13.3f} "
            f"{result.latency_quantile(0.99) * 1e3:13.3f} {waits:14d}"
        )
        series = result.population_mean_series()
        if reference is None:
            reference = series
        else:
            # Producer threading must never change the answer, bit for bit.
            np.testing.assert_array_equal(series, reference)
    lines.append(f"  floor: {min_rps} reports/s (best observed {best_rps:.0f})")
    record_table("ingestion_throughput", "\n".join(lines))
    assert best_rps >= min_rps, (
        f"sustained ingestion throughput {best_rps:.0f} reports/s is below "
        f"the {min_rps} reports/s serving floor"
    )
