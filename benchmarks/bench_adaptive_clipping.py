"""Ablation: CAPP with non-SW mechanisms via adaptive clip bounds.

Section IV-C says CAPP needs mechanism-specific clip intervals but omits
them; `repro.core.adaptive_clipping` supplies a numeric model.  This
bench compares, per mechanism, plain APP (clip to [0,1]) against CAPP
with the adaptively chosen bounds — and confirms the paper's headline
that SW dominates regardless.
"""

import numpy as np

from repro.core import APP, CAPP, choose_adaptive_clip_bounds
from repro.datasets import load_stream
from repro.experiments import format_table
from repro.metrics import cosine_distance

EPS, W = 1.0, 10
MECHANISMS = ("sw", "laplace", "pm")


def test_adaptive_clipping_capp(benchmark, record_table):
    stream = load_stream("c6h6", length=400)[:60]

    def run():
        rows = []
        for name in MECHANISMS:
            bounds = choose_adaptive_clip_bounds(EPS / W, name)
            app_scores, capp_scores = [], []
            for rep in range(10):
                rng = np.random.default_rng(7000 + rep)
                app = APP(EPS, W, mechanism=name).perturb_stream(stream, rng)
                capp = CAPP(
                    EPS, W, mechanism=name, clip_bounds=bounds
                ).perturb_stream(stream, rng)
                app_scores.append(cosine_distance(app.published, stream))
                capp_scores.append(cosine_distance(capp.published, stream))
            rows.append(
                [
                    name,
                    bounds.delta,
                    float(np.mean(app_scores)),
                    float(np.mean(capp_scores)),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "adaptive_clipping",
        format_table(
            ["mechanism", "chosen delta", "APP cosine", "CAPP(adaptive) cosine"],
            rows,
            title=f"Adaptive clip bounds per mechanism (c6h6, eps={EPS}, w={W})",
        ),
    )
    by_name = {row[0]: row for row in rows}
    # The paper's headline claim survives the extension: SW beats the
    # unbounded mechanisms under either algorithm.
    assert by_name["sw"][3] < by_name["laplace"][3]
    assert by_name["sw"][3] < by_name["pm"][3]
