"""Perf-regression gate over the committed ``BENCH_population.json``.

Compares a freshly measured perf trajectory against the baseline
committed at the repo root and **fails (exit 1)** when any estimator's
vectorized users/sec dropped below ``(1 - tolerance)`` of its committed
value.  CI's ``bench-gate`` job snapshots the committed file, re-runs
``benchmarks/bench_registry.py`` (which rewrites the trajectory in
place), then runs this gate::

    cp BENCH_population.json bench-baseline.json
    python -m pytest benchmarks/bench_registry.py -x -q
    python benchmarks/perf_gate.py --baseline bench-baseline.json

The tolerance is deliberately loose (default 40% — configurable via
``--tolerance`` or ``REPRO_BENCH_GATE_TOLERANCE``): shared CI runners
are noisy, and the gate exists to catch algorithmic regressions (a hot
path going quadratic, vectorization silently lost), not scheduler
jitter.  Estimators present in only one file are reported but never
fail the gate — new estimators have no baseline yet, and smoke runs may
measure a subset.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple

#: the per-estimator metric the gate enforces
METRIC = "vectorized_users_per_sec"


def load_estimators(path: str) -> Dict[str, float]:
    """The ``{estimator: vectorized users/sec}`` map from a trajectory file."""
    with open(path) as fh:
        document = json.load(fh)
    estimators = document.get("population", {}).get("estimators", {})
    if not isinstance(estimators, dict) or not estimators:
        raise ValueError(
            f"{path} has no population.estimators section; run "
            "benchmarks/bench_registry.py to produce one"
        )
    rates = {}
    for name, payload in estimators.items():
        rate = payload.get(METRIC)
        if isinstance(rate, (int, float)) and rate > 0:
            rates[name] = float(rate)
    if not rates:
        raise ValueError(f"{path} records no positive {METRIC} values")
    return rates


#: absolute users/sec floors for the rewritten population passes.  These
#: lock in the true-population rewrites of the two former stragglers:
#: the relative tolerance alone would let a revert slip through whenever
#: the baseline file is refreshed, the absolute floor cannot drift.  Set
#: conservatively below the single-core reference numbers (bd-sw ~35k,
#: topl ~7k measured where the committed baseline was recorded) so
#: scheduler noise on shared runners stays clear of the line.  Override
#: per estimator via ``REPRO_BENCH_FLOOR_BD_SW`` / ``REPRO_BENCH_FLOOR_TOPL``
#: (0 disables a floor).
DEFAULT_ESTIMATOR_FLOORS = {
    "bd-sw": 20_000.0,
    "topl": 5_000.0,
}

#: floors only apply at full bench scale — tiny smoke populations spend
#: their time in per-slot overhead, not in the gated passes
FLOOR_MIN_USERS = 2000


def estimator_floors() -> Dict[str, float]:
    """The active absolute floors, after environment overrides."""
    floors = {}
    for name, default in DEFAULT_ESTIMATOR_FLOORS.items():
        env_key = "REPRO_BENCH_FLOOR_" + name.upper().replace("-", "_")
        floors[name] = float(os.environ.get(env_key, default))
    return floors


def load_bench_scale(path: str) -> int:
    """``population.n_users`` of a trajectory file (0 when unrecorded)."""
    with open(path) as fh:
        document = json.load(fh)
    n_users = document.get("population", {}).get("n_users", 0)
    return int(n_users) if isinstance(n_users, (int, float)) else 0


def compare_floors(
    current: Dict[str, float],
    n_users: int,
) -> Tuple[List[str], List[str]]:
    """Verdict lines and regressions for the absolute users/sec floors."""
    lines: List[str] = []
    regressions: List[str] = []
    if n_users < FLOOR_MIN_USERS:
        lines.append(
            f"  floors: skipped (measured at n_users={n_users}, "
            f"applied from {FLOOR_MIN_USERS})"
        )
        return lines, regressions
    for name, floor in sorted(estimator_floors().items()):
        if floor <= 0.0:
            lines.append(f"  floor {name}: disabled")
            continue
        rate = current.get(name)
        if rate is None:
            lines.append(f"  floor {name}: not measured — skipped")
            continue
        verdict = "ok" if rate >= floor else "REGRESSED"
        lines.append(
            f"  floor {name:14s} {rate:12.0f} u/s  (floor {floor:10.0f})  {verdict}"
        )
        if rate < floor:
            regressions.append(
                f"{name}: {rate:.0f} users/sec is below the absolute "
                f"floor of {floor:.0f}"
            )
    return lines, regressions


#: hard ceiling on the WAL's fractional gateway-throughput cost
WAL_MAX_OVERHEAD = float(os.environ.get("REPRO_BENCH_WAL_MAX_OVERHEAD", 0.15))


def load_wal(path: str) -> Dict[str, float]:
    """The gated scalars from a trajectory file's ``wal`` section.

    Returns an empty dict when the section is absent (smoke runs that
    measured only the estimator matrix) — the WAL gate then skips.
    """
    with open(path) as fh:
        document = json.load(fh)
    section = document.get("wal", {})
    if not isinstance(section, dict):
        return {}
    gated = {}
    for key in (
        "gateway_reports_per_second_wal",
        "recovery_batches_per_second",
        "overhead_fraction",
    ):
        value = section.get(key)
        if isinstance(value, (int, float)):
            gated[key] = float(value)
    return gated


def compare_wal(
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Verdict lines and regressions for the durability numbers.

    Two checks: the absolute overhead ceiling (logging must stay under
    ``WAL_MAX_OVERHEAD`` of gateway throughput, regardless of history)
    and the usual relative floors on WAL-logged throughput and recovery
    replay rate against the committed baseline.
    """
    lines: List[str] = []
    regressions: List[str] = []
    if not current:
        lines.append("  wal: not measured — skipped")
        return lines, regressions
    overhead = current.get("overhead_fraction")
    if overhead is not None:
        verdict = "ok" if overhead < WAL_MAX_OVERHEAD else "REGRESSED"
        lines.append(
            f"  wal overhead      {overhead * 100:11.1f}%  "
            f"(ceiling {WAL_MAX_OVERHEAD * 100:.0f}%)  {verdict}"
        )
        if overhead >= WAL_MAX_OVERHEAD:
            regressions.append(
                f"wal: logging overhead {overhead * 100:.1f}% breaches the "
                f"{WAL_MAX_OVERHEAD * 100:.0f}% ceiling"
            )
    floor_factor = 1.0 - tolerance
    for key in ("gateway_reports_per_second_wal", "recovery_batches_per_second"):
        if key not in current:
            continue
        if key not in baseline:
            lines.append(f"  wal {key}: {current[key]:.0f}  (no baseline — skipped)")
            continue
        ratio = current[key] / baseline[key]
        verdict = "ok" if ratio >= floor_factor else "REGRESSED"
        lines.append(
            f"  wal {key:32s} {baseline[key]:12.0f} -> "
            f"{current[key]:12.0f}  ({ratio:6.2f}x)  {verdict}"
        )
        if ratio < floor_factor:
            regressions.append(
                f"wal {key}: {current[key]:.0f}/s is "
                f"{(1.0 - ratio) * 100:.0f}% below the committed "
                f"{baseline[key]:.0f} (allowed drop: {tolerance * 100:.0f}%)"
            )
    return lines, regressions


#: absolute floor on pooled scan-orchestration throughput (0 = disabled)
SCAN_MIN_CPS = float(os.environ.get("REPRO_BENCH_SCAN_MIN_CPS", 0.0))


def load_scan(path: str) -> Dict[str, float]:
    """The gated scalars from a trajectory file's ``scan`` section.

    Returns an empty dict when the section is absent (smoke runs that
    measured only the estimator matrix) — the scan gate then skips.
    """
    with open(path) as fh:
        document = json.load(fh)
    section = document.get("scan", {})
    if not isinstance(section, dict):
        return {}
    gated = {}
    for key in ("pooled_cells_per_second", "serial_cells_per_second"):
        value = section.get(key)
        if isinstance(value, (int, float)):
            gated[key] = float(value)
    return gated


def compare_scan(
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Verdict lines and regressions for scan-orchestration throughput.

    Two checks: the optional absolute cells/sec floor
    (``REPRO_BENCH_SCAN_MIN_CPS``) on the pooled rate, and the usual
    relative floors against the committed baseline.
    """
    lines: List[str] = []
    regressions: List[str] = []
    if not current:
        lines.append("  scan: not measured — skipped")
        return lines, regressions
    pooled = current.get("pooled_cells_per_second")
    if SCAN_MIN_CPS > 0.0 and pooled is not None:
        verdict = "ok" if pooled >= SCAN_MIN_CPS else "REGRESSED"
        lines.append(
            f"  scan pooled cells/s {pooled:11.2f}  "
            f"(floor {SCAN_MIN_CPS:.2f})  {verdict}"
        )
        if pooled < SCAN_MIN_CPS:
            regressions.append(
                f"scan: {pooled:.2f} pooled cells/s is below the "
                f"REPRO_BENCH_SCAN_MIN_CPS floor of {SCAN_MIN_CPS:.2f}"
            )
    floor_factor = 1.0 - tolerance
    for key in ("pooled_cells_per_second", "serial_cells_per_second"):
        if key not in current:
            continue
        if key not in baseline:
            lines.append(f"  scan {key}: {current[key]:.2f}  (no baseline — skipped)")
            continue
        ratio = current[key] / baseline[key]
        verdict = "ok" if ratio >= floor_factor else "REGRESSED"
        lines.append(
            f"  scan {key:31s} {baseline[key]:12.2f} -> "
            f"{current[key]:12.2f}  ({ratio:6.2f}x)  {verdict}"
        )
        if ratio < floor_factor:
            regressions.append(
                f"scan {key}: {current[key]:.2f} cells/s is "
                f"{(1.0 - ratio) * 100:.0f}% below the committed "
                f"{baseline[key]:.2f} (allowed drop: {tolerance * 100:.0f}%)"
            )
    return lines, regressions


def distributed_min_scaling() -> float:
    """The multi-worker speedup floor (read at call time for tests)."""
    return float(os.environ.get("REPRO_BENCH_DIST_MIN_SCALING", 1.5))


def load_distributed(path: str) -> Dict[str, object]:
    """The gated scalars from a trajectory file's ``distributed`` section.

    Returns an empty dict when the section is absent (smoke runs that
    measured only the estimator matrix) — the distributed gate then
    skips.
    """
    with open(path) as fh:
        document = json.load(fh)
    section = document.get("distributed", {})
    if not isinstance(section, dict):
        return {}
    gated: Dict[str, object] = {}
    workers = section.get("workers")
    if isinstance(workers, dict):
        rates = {}
        for count, payload in workers.items():
            rate = (payload or {}).get("reports_per_second")
            if isinstance(rate, (int, float)) and rate > 0:
                rates[str(count)] = float(rate)
        if rates:
            gated["workers"] = rates
    for key in ("scaling", "cpu_count"):
        value = section.get(key)
        if isinstance(value, (int, float)):
            gated[key] = float(value)
    return gated


def compare_distributed(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Verdict lines and regressions for the worker scaling curve.

    Two checks: the relative floor on each fleet size's aggregate
    reports/sec against the committed baseline, and the absolute
    multi-worker scaling floor (``REPRO_BENCH_DIST_MIN_SCALING``,
    default 1.5x) — the latter armed only when the measuring machine
    recorded at least as many CPUs as the largest fleet, because a
    single-core box cannot express process-level parallelism.
    """
    lines: List[str] = []
    regressions: List[str] = []
    if not current:
        lines.append("  distributed: not measured — skipped")
        return lines, regressions
    floor_factor = 1.0 - tolerance
    base_rates = baseline.get("workers") or {}
    cur_rates = current.get("workers") or {}
    for count in sorted(cur_rates, key=int):
        rate = cur_rates[count]
        if count not in base_rates:
            lines.append(
                f"  distributed {count} worker(s): {rate:.0f}  "
                "(no baseline — skipped)"
            )
            continue
        ratio = rate / base_rates[count]
        verdict = "ok" if ratio >= floor_factor else "REGRESSED"
        lines.append(
            f"  distributed {count} worker(s) {base_rates[count]:12.0f} -> "
            f"{rate:12.0f}  ({ratio:6.2f}x)  {verdict}"
        )
        if ratio < floor_factor:
            regressions.append(
                f"distributed {count} worker(s): {rate:.0f} reports/s is "
                f"{(1.0 - ratio) * 100:.0f}% below the committed "
                f"{base_rates[count]:.0f} (allowed drop: {tolerance * 100:.0f}%)"
            )
    scaling = current.get("scaling")
    if isinstance(scaling, float) and cur_rates:
        top_fleet = max(int(count) for count in cur_rates)
        cpus = int(current.get("cpu_count") or 0)
        min_scaling = distributed_min_scaling()
        if cpus >= top_fleet > 1:
            verdict = "ok" if scaling >= min_scaling else "REGRESSED"
            lines.append(
                f"  distributed scaling at {top_fleet} workers: "
                f"{scaling:.2f}x  (floor {min_scaling:.2f}x)  {verdict}"
            )
            if scaling < min_scaling:
                regressions.append(
                    f"distributed: {scaling:.2f}x scaling at {top_fleet} "
                    f"workers is below the {min_scaling:.2f}x floor "
                    f"(measured on {cpus} cpus)"
                )
        else:
            lines.append(
                f"  distributed scaling at {top_fleet} workers: "
                f"{scaling:.2f}x  (floor not armed on {cpus} cpu(s))"
            )
    return lines, regressions


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Per-estimator verdict lines and the regressions among them."""
    lines: List[str] = []
    regressions: List[str] = []
    floor_factor = 1.0 - tolerance
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            lines.append(f"  {name:16s} baseline {baseline[name]:12.0f}  (not measured — skipped)")
            continue
        if name not in baseline:
            lines.append(f"  {name:16s} current  {current[name]:12.0f}  (no baseline — skipped)")
            continue
        ratio = current[name] / baseline[name]
        verdict = "ok" if ratio >= floor_factor else "REGRESSED"
        lines.append(
            f"  {name:16s} {baseline[name]:12.0f} -> {current[name]:12.0f} "
            f"u/s  ({ratio:6.2f}x)  {verdict}"
        )
        if ratio < floor_factor:
            regressions.append(
                f"{name}: {current[name]:.0f} users/sec is "
                f"{(1.0 - ratio) * 100:.0f}% below the committed "
                f"{baseline[name]:.0f} (allowed drop: {tolerance * 100:.0f}%)"
            )
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--baseline",
        required=True,
        help="committed trajectory snapshot (taken before re-running benches)",
    )
    parser.add_argument(
        "--current",
        default="BENCH_population.json",
        help="freshly measured trajectory (default: repo-root file, which "
        "bench_registry rewrites in place)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_GATE_TOLERANCE", 0.40)),
        help="max allowed fractional drop in vectorized users/sec "
        "(default 0.40, or REPRO_BENCH_GATE_TOLERANCE)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        print(f"tolerance must be in (0, 1), got {args.tolerance}", file=sys.stderr)
        return 2

    try:
        baseline = load_estimators(args.baseline)
        current = load_estimators(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"perf gate error: {error}", file=sys.stderr)
        return 2

    lines, regressions = compare(baseline, current, args.tolerance)
    floor_lines, floor_regressions = compare_floors(
        current, load_bench_scale(args.current)
    )
    lines += floor_lines
    regressions += floor_regressions
    wal_lines, wal_regressions = compare_wal(
        load_wal(args.baseline), load_wal(args.current), args.tolerance
    )
    lines += wal_lines
    regressions += wal_regressions
    scan_lines, scan_regressions = compare_scan(
        load_scan(args.baseline), load_scan(args.current), args.tolerance
    )
    lines += scan_lines
    regressions += scan_regressions
    dist_lines, dist_regressions = compare_distributed(
        load_distributed(args.baseline), load_distributed(args.current), args.tolerance
    )
    lines += dist_lines
    regressions += dist_regressions
    print(
        f"perf gate: {METRIC}, tolerance {args.tolerance * 100:.0f}% "
        f"({len(current)} measured vs {len(baseline)} baseline)"
    )
    print("\n".join(lines))
    if regressions:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
