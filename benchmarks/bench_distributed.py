"""Distributed gateway bench: scaling curve across worker processes.

Serves one population through the shard-state aggregation tree at 1, 2,
and 4 worker processes — each worker an OS process with its own
listener, pipeline, and loopback client fleet, streaming finalized
per-slot shard states to the root over TCP — and records aggregate
worker-side reports/sec per fleet size.  Every point on the curve is
asserted bit-identical to ``run_protocol_sharded`` (scale-out must
never change an answer), and on machines with enough cores the curve
must clear the scaling floor.

Sized through the environment so CI smoke jobs run at toy scale:

* ``REPRO_BENCH_DIST_USERS`` / ``REPRO_BENCH_DIST_SLOTS`` — population
  shape (default 8000 x 40).
* ``REPRO_BENCH_DIST_SHARDS`` — user-shards (default 8; every worker
  count must divide into contiguous ranges of these).
* ``REPRO_BENCH_DIST_WORKERS`` — comma-separated fleet sizes
  (default ``1,2,4``).
* ``REPRO_BENCH_DIST_MIN_SCALING`` — required speedup of the largest
  fleet over one worker (default 1.5).  Enforced only when the machine
  has at least as many CPUs as the largest fleet; the recorded
  ``cpu_count`` lets ``perf_gate.py`` apply the same rule offline.
"""

import os

import numpy as np

from repro.gateway import run_distributed_processes
from repro.runtime import MatrixSource, run_protocol_sharded

_PARAMS = dict(epsilon=1.0, w=10, seed=1)


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _matrix_source(n_users: int, horizon: int, chunk: int) -> MatrixSource:
    """Rebuild the bench population inside each worker process.

    Top-level so ``functools.partial`` over it pickles under any
    multiprocessing start method; the seeded generator makes every
    process materialize the same matrix.
    """
    matrix = np.random.default_rng(0).random((n_users, horizon))
    return MatrixSource(matrix, chunk_size=chunk)


def test_distributed_scaling(record_table, record_population_bench):
    import functools

    n_users = _env_int("REPRO_BENCH_DIST_USERS", 8_000)
    horizon = _env_int("REPRO_BENCH_DIST_SLOTS", 40)
    n_shards = _env_int("REPRO_BENCH_DIST_SHARDS", 8)
    min_scaling = float(os.environ.get("REPRO_BENCH_DIST_MIN_SCALING", "1.5"))
    fleet_sizes = [
        int(part)
        for part in os.environ.get("REPRO_BENCH_DIST_WORKERS", "1,2,4").split(",")
        if part.strip()
    ]
    cpu_count = os.cpu_count() or 1

    chunk = -(-n_users // n_shards)  # ceil division
    make_source = functools.partial(_matrix_source, n_users, horizon, chunk)
    offline = run_protocol_sharded(make_source(), **_PARAMS)

    curve = {}
    for workers in fleet_sizes:
        run = run_distributed_processes(
            make_source,
            n_shards=n_shards,
            workers=workers,
            keep_reports=False,
            **_PARAMS,
        )
        # Scale-out must never change an answer, bit for bit.
        assert (
            run.result.collector.state.slot_sums == offline.collector.state.slot_sums
        )
        assert (
            run.result.collector.state.slot_counts
            == offline.collector.state.slot_counts
        )
        np.testing.assert_array_equal(
            run.result.population_mean_series(),
            offline.collector.population_mean_series(),
        )
        assert run.result.n_reports == n_users * horizon
        totals = run.metrics_payload()["totals"]
        curve[str(workers)] = {
            "reports_per_second": totals["reports_per_second"],
            "elapsed_seconds": totals["elapsed_seconds"],
        }

    base = curve[str(fleet_sizes[0])]["reports_per_second"]
    top_fleet = max(fleet_sizes)
    scaling = curve[str(top_fleet)]["reports_per_second"] / base if base else 0.0
    floor_armed = cpu_count >= top_fleet

    lines = [
        f"distributed tree at {n_users} users x {horizon} slots "
        f"({n_shards} shards, {cpu_count} cpus)",
    ]
    for workers in fleet_sizes:
        point = curve[str(workers)]
        lines.append(
            f"  {workers} worker(s): {point['reports_per_second']:12.0f} "
            f"reports/s  ({point['elapsed_seconds']:7.3f}s)"
        )
    lines.append(
        f"  scaling at {top_fleet} workers: {scaling:.2f}x  "
        f"(floor {min_scaling:.2f}x, "
        f"{'armed' if floor_armed else f'not armed on {cpu_count} cpu(s)'})"
    )
    record_table("distributed_scaling", "\n".join(lines))
    record_population_bench(
        "distributed",
        {
            "n_users": n_users,
            "horizon": horizon,
            "n_shards": n_shards,
            "cpu_count": cpu_count,
            "workers": curve,
            "scaling": round(scaling, 3),
            "min_scaling": min_scaling,
        },
    )
    if floor_armed:
        assert scaling >= min_scaling, (
            f"distributed scaling {scaling:.2f}x at {top_fleet} workers is "
            f"below the {min_scaling:.2f}x floor on a {cpu_count}-cpu machine"
        )
