"""Figure 7: publication cosine distance, sampling vs non-sampling.

Expected shape: sampling variants remain competitive for publication
(reduced collection per window) but CAPP stays the best publisher; the
sampling variants do not collapse.
"""

import numpy as np

from repro.experiments import format_sweep, run_fig7
from repro.experiments.figures import FIG6_PANELS

EPSILONS = (0.5, 1.0, 2.0, 3.0)
SCALE = dict(n_subsequences=20, n_repeats=2, stream_length=800, seed=0)


def test_fig7(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_fig7(panels=FIG6_PANELS, epsilons=EPSILONS, **SCALE),
        rounds=1,
        iterations=1,
    )
    blocks = [
        format_sweep(
            list(EPSILONS),
            series,
            title=f"Fig.7 {dataset} w={w} q={q} (cosine distance)",
        )
        for (dataset, w, q), series in result.items()
    ]
    record_table("fig7", "\n\n".join(blocks))

    # Shape: CAPP beats SW-direct for publication on every panel (the
    # paper's consistent finding), and the sampling variants stay within
    # a small factor of their non-sampling counterparts.
    for (dataset, w, q), series in result.items():
        assert np.mean(series["capp"]) < np.mean(series["sw-direct"]), (dataset, w, q)
        assert np.mean(series["capp-s"]) < 3.0 * np.mean(series["capp"]), (dataset, w, q)
