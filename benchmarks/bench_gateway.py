"""Network gateway bench: end-to-end reports/sec over loopback TCP.

Serves a population through the full transport tier — shard feeds
encoded to the binary wire format, uploaded by a concurrent client
fleet over real TCP connections, decoded and barrier-ingested by the
asyncio server — and records sustained reports/sec plus p50/p99
slot-finalization latency.  The served estimates are asserted
bit-identical to ``run_protocol_sharded`` (the gateway determinism
gate), and throughput must clear the serving floor.

Sized through the environment so CI smoke jobs run at toy scale:

* ``REPRO_BENCH_GATEWAY_USERS`` / ``REPRO_BENCH_GATEWAY_SLOTS`` —
  population shape (default 20000 x 50).
* ``REPRO_BENCH_GATEWAY_SHARDS`` — user-shards / concurrent client
  connections (default 4).
* ``REPRO_BENCH_GATEWAY_MIN_RPS`` — sustained reports/sec floor
  (default 50000, the acceptance bar).
"""

import os

import numpy as np

from repro.gateway import run_gateway
from repro.runtime import MatrixSource, run_protocol_sharded


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def test_gateway_throughput(record_table, record_population_bench):
    n_users = _env_int("REPRO_BENCH_GATEWAY_USERS", 20_000)
    horizon = _env_int("REPRO_BENCH_GATEWAY_SLOTS", 50)
    n_shards = _env_int("REPRO_BENCH_GATEWAY_SHARDS", 4)
    min_rps = _env_int("REPRO_BENCH_GATEWAY_MIN_RPS", 50_000)

    matrix = np.random.default_rng(0).random((n_users, horizon))
    chunk = -(-n_users // n_shards)  # ceil division
    params = dict(epsilon=1.0, w=10, seed=1)

    run = run_gateway(MatrixSource(matrix, chunk_size=chunk), **params)
    offline = run_protocol_sharded(MatrixSource(matrix, chunk_size=chunk), **params)
    # The transport tier must never change an answer, bit for bit.
    np.testing.assert_array_equal(
        run.result.population_mean_series(),
        offline.collector.population_mean_series(),
    )
    assert run.result.n_reports == n_users * horizon

    snapshot = run.metrics.snapshot()
    rps = snapshot["reports_per_second"]
    lines = [
        f"gateway over loopback TCP at {n_users} users x {horizon} slots "
        f"({n_shards} shards / connections, {os.cpu_count()} cpus)",
        f"  reports/s sustained : {rps:12.0f}",
        f"  p50 slot finalize   : {snapshot['p50_slot_latency_seconds'] * 1e3:9.3f} ms",
        f"  p99 slot finalize   : {snapshot['p99_slot_latency_seconds'] * 1e3:9.3f} ms",
        f"  wire bytes received : {snapshot['bytes_received']:12d}",
        f"  frames received     : {snapshot['frames_received']:12d}",
        f"  duplicates / sheds  : {snapshot['duplicates']} / {snapshot['sheds']}",
        f"  floor: {min_rps} reports/s",
    ]
    record_table("gateway_throughput", "\n".join(lines))
    record_population_bench(
        "gateway",
        {
            "n_users": n_users,
            "horizon": horizon,
            "n_shards": n_shards,
            "reports_per_second": rps,
            "p50_slot_latency_seconds": snapshot["p50_slot_latency_seconds"],
            "p99_slot_latency_seconds": snapshot["p99_slot_latency_seconds"],
            "bytes_received": snapshot["bytes_received"],
        },
    )
    assert rps >= min_rps, (
        f"gateway throughput {rps:.0f} reports/s is below the {min_rps} "
        f"reports/s serving floor"
    )
