"""Raw performance benches: mechanism and algorithm throughput.

Not a paper figure — these track the library's own performance so
regressions in the hot loops are visible.
"""

import numpy as np
import pytest

from repro.core import APP, CAPP
from repro.mechanisms import SquareWaveMechanism


@pytest.fixture(scope="module")
def values():
    return np.random.default_rng(0).random(10_000)


def test_sw_perturb_throughput(benchmark, values):
    mech = SquareWaveMechanism(1.0)
    rng = np.random.default_rng(1)
    benchmark(mech.perturb, values, rng)


def test_sw_estimate_distribution_throughput(benchmark, values):
    mech = SquareWaveMechanism(1.0)
    reports = mech.perturb(values, np.random.default_rng(2))
    benchmark(mech.estimate_distribution, reports, 32)


def test_app_stream_throughput(benchmark):
    stream = np.random.default_rng(3).random(500)
    rng = np.random.default_rng(4)
    app = APP(1.0, 10)
    benchmark(app.perturb_stream, stream, rng)


def test_capp_stream_throughput(benchmark):
    stream = np.random.default_rng(5).random(500)
    rng = np.random.default_rng(6)
    capp = CAPP(1.0, 10)
    benchmark(capp.perturb_stream, stream, rng)
