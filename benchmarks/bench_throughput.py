"""Raw performance benches: mechanism and algorithm throughput.

Not a paper figure — these track the library's own performance so
regressions in the hot loops are visible.

The vectorized-vs-reference protocol comparison is sized through the
environment so CI smoke jobs can run it at toy scale:

* ``REPRO_BENCH_USERS`` / ``REPRO_BENCH_SLOTS`` — population shape
  (default 10000 x 100, the paper-scale acceptance point).
* ``REPRO_BENCH_MIN_SPEEDUP`` — required vectorized speedup factor
  (default 10 at full size; automatically waived for tiny populations
  where fixed overheads dominate).
"""

import os
import time

import numpy as np
import pytest

from repro.core import APP, CAPP
from repro.mechanisms import SquareWaveMechanism
from repro.protocol import run_protocol, run_protocol_vectorized


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="module")
def values():
    return np.random.default_rng(0).random(10_000)


def test_sw_perturb_throughput(benchmark, values):
    mech = SquareWaveMechanism(1.0)
    rng = np.random.default_rng(1)
    benchmark(mech.perturb, values, rng)


def test_sw_estimate_distribution_throughput(benchmark, values):
    mech = SquareWaveMechanism(1.0)
    reports = mech.perturb(values, np.random.default_rng(2))
    benchmark(mech.estimate_distribution, reports, 32)


def test_app_stream_throughput(benchmark):
    stream = np.random.default_rng(3).random(500)
    rng = np.random.default_rng(4)
    app = APP(1.0, 10)
    benchmark(app.perturb_stream, stream, rng)


def test_capp_stream_throughput(benchmark):
    stream = np.random.default_rng(5).random(500)
    rng = np.random.default_rng(6)
    capp = CAPP(1.0, 10)
    benchmark(capp.perturb_stream, stream, rng)


def test_capp_population_throughput(benchmark):
    """Vectorized population pass of the batch CAPP algorithm."""
    streams = np.random.default_rng(7).random((2000, 50))
    capp = CAPP(1.0, 10)
    benchmark(capp.perturb_population, streams, np.random.default_rng(8))


def test_protocol_vectorized_vs_reference(record_table, record_population_bench):
    """Wall-clock comparison of the two protocol paths.

    This is the acceptance gate for the population engine: at the default
    10k users x 100 slots the vectorized path must be >= 10x faster than
    the per-user reference while producing statistically indistinguishable
    estimates.
    """
    n_users = _env_int("REPRO_BENCH_USERS", 10_000)
    horizon = _env_int("REPRO_BENCH_SLOTS", 100)
    big_enough = n_users * horizon >= 500_000
    min_speedup = float(
        os.environ.get("REPRO_BENCH_MIN_SPEEDUP", 10.0 if big_enough else 0.0)
    )
    streams = np.random.default_rng(0).random((n_users, horizon))

    start = time.perf_counter()
    ref = run_protocol(streams, epsilon=1.0, w=10, rng=np.random.default_rng(1))
    ref_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vec = run_protocol_vectorized(
        streams, epsilon=1.0, w=10, rng=np.random.default_rng(2)
    )
    vec_seconds = time.perf_counter() - start

    assert vec.collector.n_reports == ref.collector.n_reports
    speedup = ref_seconds / vec_seconds
    reports = n_users * horizon
    record_table(
        "protocol_throughput",
        "\n".join(
            [
                f"protocol throughput at {n_users} users x {horizon} slots",
                f"  reference : {ref_seconds:8.3f} s "
                f"({reports / ref_seconds:12.0f} reports/s)",
                f"  vectorized: {vec_seconds:8.3f} s "
                f"({reports / vec_seconds:12.0f} reports/s)",
                f"  speedup   : {speedup:8.1f} x",
                f"  ref MSE   : {ref.population_mean_mse():.6f}",
                f"  vec MSE   : {vec.population_mean_mse():.6f}",
            ]
        ),
    )
    record_population_bench(
        "protocol",
        {
            "n_users": n_users,
            "horizon": horizon,
            "reference_users_per_sec": round(n_users / ref_seconds, 1),
            "vectorized_users_per_sec": round(n_users / vec_seconds, 1),
            "speedup": round(speedup, 2),
        },
    )
    if min_speedup > 0:
        assert speedup >= min_speedup, (
            f"vectorized path is only {speedup:.1f}x faster than the "
            f"reference at {n_users} users x {horizon} slots "
            f"(required: {min_speedup:.1f}x)"
        )
