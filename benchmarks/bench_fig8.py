"""Figure 8: Wasserstein distance between estimated and true crowd-mean
distributions (Taxi / Power populations).

Expected shape: distances shrink as eps grows; the PP family beats BA-SW
on the non-sampling panels.
"""

import numpy as np

from repro.experiments import format_sweep, run_fig8
from repro.experiments.figures import FIG8_PANELS

EPSILONS = (0.5, 1.0, 2.0, 3.0)


def test_fig8(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_fig8(
            panels=FIG8_PANELS, epsilons=EPSILONS, n_users=120, n_repeats=3, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    blocks = [
        format_sweep(
            list(EPSILONS),
            series,
            title=(
                f"Fig.8 {dataset} w={w} q={q} "
                f"({'sampling' if sampling else 'non-sampling'}, Wasserstein)"
            ),
        )
        for (dataset, w, q, sampling), series in result.items()
    ]
    record_table("fig8", "\n\n".join(blocks))

    # Robust shape checks.  (The eps-trend is weak here by construction:
    # SW's output variance is bounded in [~0.07, ~0.33] across the grid,
    # so crowd-distribution distances move slowly with eps — see
    # EXPERIMENTS.md for the full discussion, including the Power panels
    # where BA-SW's raw single reports preserve the wide population
    # distribution.)
    for (dataset, w, q, sampling), series in result.items():
        for name, values in series.items():
            assert all(np.isfinite(v) and v >= 0 for v in values), (dataset, name)
    # The paper's headline: the PP family beats BA-SW on the short-window
    # Taxi panel.
    taxi_short = result[("taxi", 10, 10, False)]
    best_pp = min(np.mean(taxi_short[name]) for name in ("ipp", "app", "capp"))
    assert best_pp < np.mean(taxi_short["ba-sw"])
