"""Privacy-model trade-off bench: event-level vs w-event vs user-level.

Quantifies the paper's Section-I motivation: w-event sits between the two
classical models in both per-slot budget and protection span, and its
utility lands between theirs.
"""

import numpy as np

from repro.datasets import load_stream
from repro.experiments import format_table, run_models_study


def test_models_study(benchmark, record_table):
    stream = load_stream("c6h6", length=400)[:60]

    def run():
        return run_models_study(
            stream, epsilon=1.0, w=10, n_repeats=10,
            rng=np.random.default_rng(0),
        )

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            name,
            metrics["per_slot"],
            int(metrics["protected_span"]),
            metrics["mean_mse"],
            metrics["cosine"],
        ]
        for name, metrics in study.items()
    ]
    record_table(
        "models_study",
        format_table(
            ["model", "eps/slot", "protected span", "mean MSE", "cosine"],
            rows,
            title="Privacy models: utility vs protection (APP, c6h6, eps=1)",
        ),
    )
    assert (
        study["UserLevel"]["per_slot"]
        < study["WEvent"]["per_slot"]
        < study["EventLevel"]["per_slot"]
    )
    assert study["EventLevel"]["cosine"] < study["UserLevel"]["cosine"]
