"""Sharded-runtime scaling bench: throughput and memory vs worker count.

Not a paper figure — tracks the runtime's scaling behavior so the perf
trajectory captures the sharding win (and regressions in it).  Each
worker count executes the same chunked workload end to end *in a fresh
forked process* so its peak-RSS reading is that configuration's own
high-water mark (``ru_maxrss`` is monotone over a process lifetime, so
in-process readings would only ever report the running maximum of all
earlier configurations).  The merged estimates are asserted bit-identical
across worker counts, so the bench doubles as the determinism acceptance
gate at benchmark scale.

Sized through the environment so CI smoke jobs run it at toy scale:

* ``REPRO_BENCH_SHARD_USERS`` / ``REPRO_BENCH_SHARD_SLOTS`` — population
  shape (default 8000 x 50).
* ``REPRO_BENCH_SHARD_WORKERS`` — space-separated worker counts
  (default "1 2 4").
* ``REPRO_BENCH_SHARD_CHUNK`` — users per shard (default: users / 8).
"""

import multiprocessing
import os
import resource
import time

import numpy as np

from repro.runtime import MatrixSource, run_protocol_sharded


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _run_config(streams, chunk, max_workers, conn):
    """One configuration, executed in its own forked process."""
    source = MatrixSource(streams, chunk_size=chunk)
    start = time.perf_counter()
    result = run_protocol_sharded(
        source, epsilon=1.0, w=10, seed=1, max_workers=max_workers
    )
    seconds = time.perf_counter() - start
    peak_kb = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    )
    conn.send(
        (
            seconds,
            peak_kb / 1024.0,
            result.collector.n_reports,
            result.collector.population_mean_series(),
        )
    )
    conn.close()


def _measure(streams, chunk, max_workers):
    """Fork, run, and collect (seconds, peak MiB, n_reports, series)."""
    if "fork" not in multiprocessing.get_all_start_methods():  # pragma: no cover
        # No fork (e.g. macOS spawn-only dev box): measure in-process;
        # RSS is then a lifetime high-water mark, which the table notes.
        conn_out = []

        class _Inline:
            def send(self, payload):
                conn_out.append(payload)

            def close(self):
                pass

        _run_config(streams, chunk, max_workers, _Inline())
        return conn_out[0]
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe(duplex=False)
    process = ctx.Process(target=_run_config, args=(streams, chunk, max_workers, child))
    process.start()
    child.close()
    payload = parent.recv()
    process.join()
    assert process.exitcode == 0
    return payload


def test_sharded_scaling(record_table, record_population_bench):
    n_users = _env_int("REPRO_BENCH_SHARD_USERS", 8_000)
    horizon = _env_int("REPRO_BENCH_SHARD_SLOTS", 50)
    chunk = _env_int("REPRO_BENCH_SHARD_CHUNK", max(n_users // 8, 1))
    workers = [
        int(token)
        for token in os.environ.get("REPRO_BENCH_SHARD_WORKERS", "1 2 4").split()
    ]

    streams = np.random.default_rng(0).random((n_users, horizon))
    user_slots = n_users * horizon

    lines = [
        f"sharded runtime at {n_users} users x {horizon} slots "
        f"(chunk={chunk}, {-(-n_users // chunk)} shards, "
        f"{os.cpu_count()} cpus)",
        "  workers   wall s    user-slots/s   peak RSS MiB",
    ]
    reference = None
    per_worker = {}
    for max_workers in workers:
        seconds, peak_mib, n_reports, series = _measure(streams, chunk, max_workers)
        lines.append(
            f"  {max_workers:7d} {seconds:8.3f} {user_slots / seconds:14.0f} "
            f"{peak_mib:14.1f}"
        )
        per_worker[str(max_workers)] = {
            "users_per_sec": round(n_users / seconds, 1),
            "user_slots_per_sec": round(user_slots / seconds, 1),
            "peak_rss_mib": round(peak_mib, 1),
        }
        assert n_reports == user_slots
        if reference is None:
            reference = series
        else:
            # Worker count must never change the answer, bit for bit.
            np.testing.assert_array_equal(series, reference)
    record_table("sharded_scaling", "\n".join(lines))
    record_population_bench(
        "sharded",
        {
            "n_users": n_users,
            "horizon": horizon,
            "chunk": chunk,
            "workers": per_worker,
        },
    )
