"""Figure 6: mean-estimation MSE, sampling vs non-sampling algorithms.

Paper panels: Volume with (w, q) combinations plus C6H6/Power/Taxi at
w=20, q=30.  Expected shape: every algorithm improves with eps; the
PP-based sampling variants (APP-S, CAPP-S) beat naive Sampling.

Reproduction note (see EXPERIMENTS.md): under the strict Theorem-6 budget
rule the sampling variants track their non-sampling counterparts instead
of dominating them as the paper plots; the shape we assert is the one that
survives honest accounting.
"""

import numpy as np

from repro.experiments import format_sweep, run_fig6
from repro.experiments.figures import FIG6_PANELS

EPSILONS = (0.5, 1.0, 2.0, 3.0)
SCALE = dict(n_subsequences=20, n_repeats=2, stream_length=800, seed=0)


def test_fig6(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_fig6(panels=FIG6_PANELS, epsilons=EPSILONS, **SCALE),
        rounds=1,
        iterations=1,
    )
    blocks = [
        format_sweep(
            list(EPSILONS),
            series,
            title=f"Fig.6 {dataset} w={w} q={q} (MSE)",
        )
        for (dataset, w, q), series in result.items()
    ]
    record_table("fig6", "\n\n".join(blocks))

    # Shape: MSE decreases from the smallest to the largest budget for the
    # PP algorithms on the long-query panels.
    for (dataset, w, q), series in result.items():
        if q >= 30:
            for name in ("app", "capp"):
                assert series[name][-1] < 2.0 * series[name][0], (dataset, w, q, name)

    # PP-based sampling beats naive sampling on average.
    gains = []
    for series in result.values():
        gains.append(np.mean(series["sampling"]) - np.mean(series["app-s"]))
    assert np.mean(gains) > 0.0
