"""Figure 9: mechanism generalizability — Laplace/SR/PM/SW, direct vs APP.

Expected shape: SW dominates the other mechanisms (bounded perturbation);
APP improves every mechanism's publication utility; Laplace/PM at small
eps produce enormous MSE.
"""

import numpy as np

from repro.experiments import format_sweep, run_fig9

EPSILONS = (0.5, 1.0, 2.0, 3.0)
SCALE = dict(n_subsequences=20, n_repeats=2, stream_length=800, seed=0)


def test_fig9(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_fig9(datasets=("c6h6", "volume"), epsilons=EPSILONS, w=10, **SCALE),
        rounds=1,
        iterations=1,
    )
    blocks = []
    for dataset, metrics in result.items():
        for metric, series in metrics.items():
            blocks.append(
                format_sweep(
                    list(EPSILONS), series, title=f"Fig.9 {dataset} ({metric})"
                )
            )
    record_table("fig9", "\n\n".join(blocks))

    for dataset, metrics in result.items():
        mse_series = metrics["mse"]
        # SW's bounded output keeps its MSE far below Laplace's and PM's
        # at small budgets.
        assert mse_series["sw-direct"][0] < mse_series["laplace-direct"][0]
        assert mse_series["sw-direct"][0] < mse_series["pm-direct"][0]
        # APP does not hurt the unbounded mechanisms' mean estimation:
        # for an unbiased randomizer both estimators' subsequence-mean
        # MSE is O(sigma^2 / T), so at bench sizes the two are equal up
        # to (heavy-tailed) sampling noise — gate with headroom rather
        # than on a strict ordering that flips with the noise draws.
        assert np.mean(mse_series["laplace-app"]) < 2.0 * np.mean(
            mse_series["laplace-direct"]
        )
        cos_series = metrics["cosine"]
        # SW-APP is the best publisher among all mechanism/APP pairs.
        sw_app = np.mean(cos_series["sw-app"])
        for name in ("laplace-app", "sr-app", "pm-app"):
            assert sw_app < np.mean(cos_series[name]) * 1.5, (dataset, name)
