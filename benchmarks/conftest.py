"""Benchmark-suite plumbing.

Benches record the paper-style result tables through the ``record_table``
fixture; the tables are printed in the terminal summary (so they survive
pytest's output capturing) and appended to ``benchmarks/results/`` for
EXPERIMENTS.md.

Setting ``REPRO_BENCH_PROFILE=<path>`` additionally records every
benchmark test's wall time to a JSON artifact (uploaded by CI, so perf
regressions leave a queryable trail per run).
"""

import json
import os
import platform
import sys
import time

import pytest

_TABLES = []
_PROFILE = {}

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))

#: machine-readable perf trajectory: users/sec per estimator per engine,
#: merged section by section so future PRs can gate on regressions
POPULATION_BENCH_PATH = os.path.join(
    os.path.dirname(_BENCH_DIR), "BENCH_population.json"
)


@pytest.fixture
def record_population_bench():
    """Merge one section into the repo-root ``BENCH_population.json``.

    Each contributing bench (registry matrix, table1 gate, sharded
    scaling, protocol throughput) owns one top-level section; the file
    accumulates whichever benches ran, so smoke runs update only their
    own numbers.
    """

    def _record(section: str, payload: dict) -> None:
        document = {}
        if os.path.exists(POPULATION_BENCH_PATH):
            try:
                with open(POPULATION_BENCH_PATH) as fh:
                    document = json.load(fh)
            except (json.JSONDecodeError, OSError):
                document = {}
        if not isinstance(document, dict):
            document = {}
        document["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        document["python"] = sys.version.split()[0]
        document["platform"] = platform.platform()
        document[section] = payload
        with open(POPULATION_BENCH_PATH, "w") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")

    return _record


@pytest.fixture
def record_table():
    """Record a formatted result table under a bench name."""

    def _record(name: str, text: str) -> None:
        _TABLES.append((name, text))
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")

    return _record


def pytest_runtest_logreport(report):
    # Only profile the call phase of tests that live in this directory.
    if report.when != "call" or not os.environ.get("REPRO_BENCH_PROFILE"):
        return
    path = report.fspath.replace(os.sep, "/")
    if "benchmarks/" not in path and not os.path.abspath(path).startswith(_BENCH_DIR):
        return
    _PROFILE[report.nodeid] = {
        "duration_seconds": round(report.duration, 6),
        "outcome": report.outcome,
    }


def pytest_sessionfinish(session):
    target = os.environ.get("REPRO_BENCH_PROFILE")
    if not target or not _PROFILE:
        return
    payload = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "total_seconds": round(
            sum(entry["duration_seconds"] for entry in _PROFILE.values()), 6
        ),
        "benchmarks": _PROFILE,
    }
    parent = os.path.dirname(os.path.abspath(target))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(target, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def pytest_terminal_summary(terminalreporter):
    if os.environ.get("REPRO_BENCH_PROFILE") and _PROFILE:
        terminalreporter.write_sep(
            "-", f"bench profile: {len(_PROFILE)} timings -> "
            f"{os.environ['REPRO_BENCH_PROFILE']}"
        )
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for name, text in _TABLES:
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(text)
