"""Benchmark-suite plumbing.

Benches record the paper-style result tables through the ``record_table``
fixture; the tables are printed in the terminal summary (so they survive
pytest's output capturing) and appended to ``benchmarks/results/`` for
EXPERIMENTS.md.
"""

import os

import pytest

_TABLES = []

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_table():
    """Record a formatted result table under a bench name."""

    def _record(name: str, text: str) -> None:
        _TABLES.append((name, text))
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for name, text in _TABLES:
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(text)
