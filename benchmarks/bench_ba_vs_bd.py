"""Ablation: budget absorption (BA) vs budget distribution (BD).

Kellaris et al.'s two w-event schemes adapted to SW.  Expected shape:
BA shines on constant-heavy streams (pot builds up, rare high-budget
publications); BD reacts faster on volatile streams (no payback
dead-time) — and both lose to CAPP on smooth real-like data.
"""

import numpy as np

from repro.baselines import BASW, BDSW
from repro.core import CAPP
from repro.datasets import load_stream
from repro.experiments import format_table
from repro.metrics import mse


def test_ba_vs_bd(benchmark, record_table):
    workloads = {
        "constant-heavy (power)": load_stream("power", length=96),
        "smooth (c6h6)": load_stream("c6h6", length=400)[:96],
        "volatile (uniform)": np.random.default_rng(0).random(96),
    }
    eps, w = 2.0, 10

    def run():
        rows = []
        for name, stream in workloads.items():
            scores = {"ba-sw": [], "bd-sw": [], "capp": []}
            for rep in range(12):
                rng = np.random.default_rng(6000 + rep)
                for label, cls in (
                    ("ba-sw", BASW),
                    ("bd-sw", BDSW),
                    ("capp", CAPP),
                ):
                    result = cls(eps, w).perturb_stream(stream, rng)
                    scores[label].append(mse(result.published, stream))
            rows.append(
                [
                    name,
                    float(np.mean(scores["ba-sw"])),
                    float(np.mean(scores["bd-sw"])),
                    float(np.mean(scores["capp"])),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "ba_vs_bd",
        format_table(
            ["workload", "BA-SW MSE", "BD-SW MSE", "CAPP MSE"],
            rows,
            title=f"Budget absorption vs distribution (eps={eps}, w={w})",
        ),
    )
    by_name = {row[0]: row for row in rows}
    # CAPP beats both Kellaris adaptations on the smooth workload.
    smooth = by_name["smooth (c6h6)"]
    assert smooth[3] < smooth[1] and smooth[3] < smooth[2]
