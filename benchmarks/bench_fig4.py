"""Figure 4: mean-estimation MSE vs eps for the non-sampling algorithms.

Paper grid: {C6H6, Volume, Taxi, Power} x w in {10, 30, 50},
eps in 0.5 .. 3.0.  Expected shape: BA-SW worst on most panels (except
Power at large eps), the PP family at or below SW-direct, errors falling
as w grows.
"""

import numpy as np

from repro.experiments import format_sweep, run_fig4

EPSILONS = (0.5, 1.0, 2.0, 3.0)
SCALE = dict(n_subsequences=20, n_repeats=2, stream_length=800, seed=0)


def test_fig4(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_fig4(
            datasets=("c6h6", "volume", "taxi", "power"),
            windows=(10, 30, 50),
            epsilons=EPSILONS,
            **SCALE,
        ),
        rounds=1,
        iterations=1,
    )
    blocks = []
    for dataset, per_w in result.items():
        for w, series in per_w.items():
            blocks.append(
                format_sweep(
                    list(EPSILONS), series, title=f"Fig.4 {dataset} w={w} (MSE)"
                )
            )
    record_table("fig4", "\n\n".join(blocks))

    # Shape checks (averaged across the eps grid to damp noise):
    def avg(dataset, w, name):
        return float(np.mean(result[dataset][w][name]))

    # 1) BA-SW is the worst algorithm on the smooth datasets.
    for dataset in ("c6h6", "volume", "taxi"):
        for w in (10, 30, 50):
            pp_best = min(avg(dataset, w, n) for n in ("ipp", "app", "capp"))
            assert avg(dataset, w, "ba-sw") > pp_best, (dataset, w)

    # 2) Errors fall as the subsequence/window length grows (more reports
    #    averaged into the mean).
    for dataset in ("volume", "taxi"):
        assert avg(dataset, 50, "app") < avg(dataset, 10, "app")
