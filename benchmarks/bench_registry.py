"""Estimator-registry benches: the population engines across all names.

Two acceptance gates for the registry refactor, plus the machine-readable
perf trajectory:

* ``test_table1_vectorized_vs_scalar`` — the paper-figure harness on the
  vectorized engine must be an order of magnitude faster than the scalar
  reference at population scale while agreeing statistically (the
  experiment-layer analogue of ``bench_throughput``'s protocol gate).
* ``test_population_engine_matrix`` — users/sec of every registered
  estimator under both engines, written to the repo-root
  ``BENCH_population.json`` (uploaded as a CI artifact) so future PRs can
  gate on per-estimator regressions.

Sized through the environment so CI smoke jobs run at toy scale:

* ``REPRO_BENCH_TABLE1_USERS`` — subsequence-rows for the table1 gate
  (default 10000, the acceptance point).
* ``REPRO_BENCH_TABLE1_MIN_SPEEDUP`` — required vectorized speedup
  (default 10 at full size; waived automatically for tiny runs where
  fixed overheads dominate).
* ``REPRO_BENCH_MATRIX_USERS`` / ``REPRO_BENCH_MATRIX_SLOTS`` — population
  shape for the per-estimator matrix (default 2000 x 40).
* ``REPRO_BENCH_MATRIX_SCALAR_USERS`` — how many users the scalar
  reference is timed on before extrapolating its rate (default 100).
"""

import os
import time

import numpy as np
import pytest

from repro.experiments import run_table1
from repro.registry import algorithm_names, make_algorithm


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def test_table1_vectorized_vs_scalar(record_table, record_population_bench):
    """Wall-clock gate: run_table1 on the vectorized vs the scalar engine."""
    n_rows = _env_int("REPRO_BENCH_TABLE1_USERS", 10_000)
    big_enough = n_rows >= 5_000
    min_speedup = float(
        os.environ.get("REPRO_BENCH_TABLE1_MIN_SPEEDUP", 10.0 if big_enough else 0.0)
    )
    config = dict(
        windows=(20,),
        datasets=("c6h6",),
        n_subsequences=n_rows,
        n_repeats=1,
        stream_length=2_000,
        seed=0,
    )

    start = time.perf_counter()
    scalar = run_table1(engine="scalar", **config)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vectorized = run_table1(engine="vectorized", **config)
    vectorized_seconds = time.perf_counter() - start

    speedup = scalar_seconds / vectorized_seconds
    lines = [
        f"run_table1 at {n_rows} subsequence-rows (c6h6, w=20)",
        f"  scalar    : {scalar_seconds:8.3f} s",
        f"  vectorized: {vectorized_seconds:8.3f} s",
        f"  speedup   : {speedup:8.1f} x",
        "  cells (scalar vs vectorized):",
    ]
    agreement = {}
    for name, s_value in scalar["c6h6"][20].items():
        v_value = vectorized["c6h6"][20][name]
        lines.append(f"    {name:10s} {s_value:12.6g} {v_value:12.6g}")
        agreement[name] = {"scalar": s_value, "vectorized": v_value}
        # Same estimator over the same subsequences with independent
        # noise: cells agree within sampling tolerance, and at this many
        # rows the sampling error is small.
        assert v_value == pytest.approx(s_value, rel=0.5, abs=0.05), name
    record_table("registry_table1", "\n".join(lines))
    record_population_bench(
        "table1",
        {
            "rows": n_rows,
            "scalar_seconds": round(scalar_seconds, 4),
            "vectorized_seconds": round(vectorized_seconds, 4),
            "speedup": round(speedup, 2),
            "cells": agreement,
        },
    )
    if min_speedup > 0:
        assert speedup >= min_speedup, (
            f"vectorized table1 is only {speedup:.1f}x faster than the "
            f"scalar path at {n_rows} rows (required: {min_speedup:.1f}x)"
        )


def test_population_engine_matrix(record_table, record_population_bench):
    """Users/sec of every registered estimator, scalar vs batch engine."""
    n_users = _env_int("REPRO_BENCH_MATRIX_USERS", 2_000)
    horizon = _env_int("REPRO_BENCH_MATRIX_SLOTS", 40)
    scalar_users = min(_env_int("REPRO_BENCH_MATRIX_SCALAR_USERS", 100), n_users)
    matrix = np.random.default_rng(0).random((n_users, horizon))

    lines = [
        f"population engines at {n_users} users x {horizon} slots "
        f"(scalar timed on {scalar_users} users)",
        "  algorithm        scalar u/s   vectorized u/s   speedup",
    ]
    payload = {}
    for name in algorithm_names():
        perturber = make_algorithm(name, 1.0, 10)

        start = time.perf_counter()
        rng = np.random.default_rng(1)
        for i in range(scalar_users):
            perturber.perturb_stream(matrix[i], rng)
        scalar_rate = scalar_users / (time.perf_counter() - start)

        start = time.perf_counter()
        perturber.perturb_population(matrix, np.random.default_rng(2))
        vectorized_rate = n_users / (time.perf_counter() - start)

        speedup = vectorized_rate / scalar_rate
        lines.append(
            f"  {name:16s} {scalar_rate:10.0f} {vectorized_rate:16.0f} "
            f"{speedup:9.1f}x"
        )
        payload[name] = {
            "scalar_users_per_sec": round(scalar_rate, 1),
            "vectorized_users_per_sec": round(vectorized_rate, 1),
            "speedup": round(speedup, 2),
        }
    record_table("registry_matrix", "\n".join(lines))
    record_population_bench(
        "population",
        {"n_users": n_users, "horizon": horizon, "estimators": payload},
    )
