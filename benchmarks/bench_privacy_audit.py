"""Empirical privacy audit across all core algorithms (beyond the paper).

Turns Theorems 3/4 into a measured table: for each algorithm, the
estimated worst-case log likelihood ratio over neighboring 2-slot streams
at a claimed w-event budget, plus a positive control (a deliberate
4x budget cheater) that must fail.
"""

import numpy as np

from repro.baselines import SWDirect
from repro.core import APP, CAPP, IPP
from repro.core.base import StreamPerturber
from repro.experiments import format_table
from repro.mechanisms import SquareWaveMechanism
from repro.theory import audit_stream_algorithm


class BudgetCheater(StreamPerturber):
    """Positive control: spends 4x the declared per-slot budget."""

    def _perturb_prepared(self, values, mechanism, accountant, rng):
        cheat = SquareWaveMechanism(min(self.epsilon_per_slot * 4.0, 50.0))
        perturbed = np.asarray(cheat.perturb(values, rng), dtype=float)
        for t in range(values.size):
            accountant.charge(t, self.epsilon_per_slot)  # lies to the ledger
        deviations = values - perturbed
        return values.copy(), perturbed, deviations, float(deviations.sum())

EPSILON = 1.0
STREAM_A = np.array([0.1, 0.2])
STREAM_B = np.array([0.9, 0.8])


def test_privacy_audit_table(benchmark, record_table):
    def run():
        rows = []
        for name, cls in (
            ("sw-direct", SWDirect),
            ("ipp", IPP),
            ("app", APP),
            ("capp", CAPP),
            ("budget-cheater (control)", BudgetCheater),
        ):
            rng = np.random.default_rng(0)
            result = audit_stream_algorithm(
                lambda c=cls: c(EPSILON, 2),
                STREAM_A,
                STREAM_B,
                epsilon=EPSILON,
                n_samples=12_000,
                rng=rng,
            )
            rows.append(
                [name, result.epsilon_hat, EPSILON, "PASS" if result.passed else "FAIL"]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(
        "privacy_audit",
        format_table(
            ["algorithm", "eps_hat (measured)", "eps (claimed)", "verdict"],
            rows,
            title="Empirical w-event privacy audit (2-slot neighboring streams)",
        ),
    )
    verdicts = {row[0]: row[3] for row in rows}
    for name in ("sw-direct", "ipp", "app", "capp"):
        assert verdicts[name] == "PASS", name
    assert verdicts["budget-cheater (control)"] == "FAIL"
