"""Scan-orchestration bench: cells/sec through the sweep engine.

Runs one small-but-real scan grid (every cell a full sharded scenario
run) twice — serially and across a worker pool — and records the
``scan`` section of ``BENCH_population.json``:

* **cells/sec** — newly executed cells per wall-clock second, serial
  and pooled, plus the pool speedup.  The perf gate holds a relative
  floor on the pooled rate (and an absolute floor when
  ``REPRO_BENCH_SCAN_MIN_CPS`` is set);
* **worker invariance** — every bench run re-proves the headline scan
  contract: the serial and pooled stores have bit-identical
  fingerprints.

Sized through the environment so CI smoke jobs run at toy scale:

* ``REPRO_BENCH_SCAN_USERS`` / ``REPRO_BENCH_SCAN_SLOTS`` — population
  shape per cell (default 4000 x 32).
* ``REPRO_BENCH_SCAN_WORKERS`` — pool size for the pooled pass
  (default 2).
* ``REPRO_BENCH_SCAN_MIN_CPS`` — absolute floor on pooled cells/sec
  (default 0 = disabled; the committed baseline provides the
  relative floor).
"""

import os
import shutil
import tempfile
import time

from repro.scan import ScanStore, parse_config, run_scan


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _grid_document(n_users: int, horizon: int) -> dict:
    """An 8-cell grid: 2 algorithms x 2 epsilons x 2 scenarios."""
    return {
        "scan": {"name": "bench", "seed": 7},
        "grid": {
            "algorithms": ["capp", "sw-direct"],
            "epsilons": [0.5, 1.0],
            "scenarios": ["steady", "bursty"],
            "n_users": [n_users],
            "horizons": [horizon],
            "shards": [2],
            "w": [8],
        },
    }


def test_scan_throughput_and_invariance(record_table, record_population_bench):
    n_users = _env_int("REPRO_BENCH_SCAN_USERS", 4_000)
    horizon = _env_int("REPRO_BENCH_SCAN_SLOTS", 32)
    pool_workers = _env_int("REPRO_BENCH_SCAN_WORKERS", 2)
    min_cps = _env_float("REPRO_BENCH_SCAN_MIN_CPS", 0.0)

    config = parse_config(_grid_document(n_users, horizon))
    root = tempfile.mkdtemp(prefix="bench-scan-")
    try:
        serial_store = os.path.join(root, "serial")
        start = time.perf_counter()
        serial = run_scan(config, store_path=serial_store, workers=1)
        serial_elapsed = time.perf_counter() - start
        assert serial.complete and serial.finalized

        pooled_store = os.path.join(root, "pooled")
        start = time.perf_counter()
        pooled = run_scan(config, store_path=pooled_store, workers=pool_workers)
        pooled_elapsed = time.perf_counter() - start
        assert pooled.complete and pooled.finalized

        # The bench re-proves the contract it measures: worker count
        # must never change the store, bit for bit.
        serial_fp = ScanStore(serial_store).fingerprint()
        pooled_fp = ScanStore(pooled_store).fingerprint()
        assert serial_fp == pooled_fp
    finally:
        shutil.rmtree(root, ignore_errors=True)

    n_cells = serial.n_cells
    serial_cps = n_cells / serial_elapsed
    pooled_cps = n_cells / pooled_elapsed
    speedup = pooled_cps / serial_cps if serial_cps else 0.0

    lines = [
        f"scan orchestration: {n_cells} cells of {n_users} users x "
        f"{horizon} slots (2 shards/cell)",
        f"  serial cells/s      : {serial_cps:12.2f} "
        f"({serial_elapsed:.2f} s total)",
        f"  pooled cells/s      : {pooled_cps:12.2f} "
        f"({pool_workers} workers, {pooled_elapsed:.2f} s total)",
        f"  pool speedup        : {speedup:12.2f}x",
        f"  store fingerprints  : bit-identical ({serial_fp[:16]}...)",
    ]
    if min_cps > 0.0:
        lines.append(f"  absolute floor      : {min_cps:12.2f} cells/s")
    record_table("scan_throughput", "\n".join(lines))
    record_population_bench(
        "scan",
        {
            "n_cells": n_cells,
            "n_users": n_users,
            "horizon": horizon,
            "pool_workers": pool_workers,
            "serial_cells_per_second": round(serial_cps, 3),
            "pooled_cells_per_second": round(pooled_cps, 3),
            "pool_speedup": round(speedup, 3),
            "worker_invariant": serial_fp == pooled_fp,
        },
    )
    if min_cps > 0.0:
        assert pooled_cps >= min_cps, (
            f"scan orchestration ran {pooled_cps:.2f} cells/s; the "
            f"REPRO_BENCH_SCAN_MIN_CPS floor is {min_cps:.2f}"
        )
