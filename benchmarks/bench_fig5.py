"""Figure 5: publication cosine distance vs eps, non-sampling algorithms.

Expected shape: SW-direct worst on every panel; the smoothed PP
algorithms (APP, CAPP) clearly better; CAPP best overall.
"""

import numpy as np

from repro.experiments import format_sweep, run_fig5

EPSILONS = (0.5, 1.0, 2.0, 3.0)
SCALE = dict(n_subsequences=20, n_repeats=2, stream_length=800, seed=0)


def test_fig5(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_fig5(
            datasets=("c6h6", "volume", "taxi", "power"),
            windows=(10, 30, 50),
            epsilons=EPSILONS,
            **SCALE,
        ),
        rounds=1,
        iterations=1,
    )
    blocks = []
    for dataset, per_w in result.items():
        for w, series in per_w.items():
            blocks.append(
                format_sweep(
                    list(EPSILONS),
                    series,
                    title=f"Fig.5 {dataset} w={w} (cosine distance)",
                )
            )
    record_table("fig5", "\n\n".join(blocks))

    def avg(dataset, w, name):
        return float(np.mean(result[dataset][w][name]))

    for dataset in ("c6h6", "volume", "taxi", "power"):
        for w in (10, 30, 50):
            # SW-direct worse than both smoothed PP algorithms.
            assert avg(dataset, w, "sw-direct") > avg(dataset, w, "app")
            assert avg(dataset, w, "sw-direct") > avg(dataset, w, "capp")
