"""Write-ahead log bench: append throughput, gateway overhead, recovery.

Three durability numbers, recorded as the ``wal`` section of
``BENCH_population.json`` so the perf gate can hold the line:

* **append throughput** — batches/sec and MB/sec appended under each
  fsync policy (``never`` / ``commit`` / ``always``), pure WAL cost
  with no pipeline attached;
* **gateway overhead** — end-to-end reports/sec of ``run_gateway``
  with and without a WAL at the default ``commit`` policy.  The
  acceptance bar: logging every batch costs **< 15%** of gateway
  throughput;
* **recovery rate** — batches/sec replayed by ``recover_pipeline``
  over a crashed run's log (how fast a restart catches up).

Sized through the environment so CI smoke jobs run at toy scale:

* ``REPRO_BENCH_WAL_USERS`` / ``REPRO_BENCH_WAL_SLOTS`` — population
  shape for the gateway-overhead pass (default 8000 x 40).
* ``REPRO_BENCH_WAL_BATCHES`` — appended batches per fsync policy in
  the throughput pass (default 2000).
* ``REPRO_BENCH_WAL_MAX_OVERHEAD`` — allowed fractional throughput
  loss with the WAL enabled (default 0.15, the acceptance bar).
"""

import os
import shutil
import tempfile
import time

import numpy as np

from repro.gateway import run_gateway
from repro.runtime import MatrixSource
from repro.service import ReportBatch
from repro.wal import WriteAheadLog, recover_pipeline


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def _batch(t: int, shard: int = 0, n: int = 64) -> ReportBatch:
    rng = np.random.default_rng(t)
    return ReportBatch(
        shard=shard,
        t=t,
        user_ids=np.arange(n, dtype=np.int64),
        values=rng.uniform(-1.0, 1.0, size=n),
    )


def _append_rate(policy: str, n_batches: int) -> dict:
    """Pure append cost: batches/sec and MB/sec under one fsync policy."""
    directory = tempfile.mkdtemp(prefix=f"bench-wal-{policy}-")
    try:
        wal = WriteAheadLog(directory, fsync=policy)
        batches = [_batch(t) for t in range(min(n_batches, 256))]
        start = time.perf_counter()
        for i in range(n_batches):
            wal.append_batch(batches[i % len(batches)])
            if policy == "commit" and i % 16 == 15:
                wal.append_commit(i // 16, 64 * 16, 0.0)
        elapsed = time.perf_counter() - start
        stats = wal.stats()
        wal.close()
        return {
            "batches_per_second": round(n_batches / elapsed, 1),
            "mb_per_second": round(stats["bytes_appended"] / elapsed / 1e6, 2),
            "syncs": stats["syncs"],
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def test_wal_throughput_and_overhead(record_table, record_population_bench):
    n_users = _env_int("REPRO_BENCH_WAL_USERS", 8_000)
    horizon = _env_int("REPRO_BENCH_WAL_SLOTS", 40)
    n_batches = _env_int("REPRO_BENCH_WAL_BATCHES", 2_000)
    max_overhead = _env_float("REPRO_BENCH_WAL_MAX_OVERHEAD", 0.15)
    n_shards = 4

    append = {policy: _append_rate(policy, n_batches) for policy in
              ("never", "commit", "always")}

    # Gateway throughput with and without the log, same source and seed.
    matrix = np.random.default_rng(0).random((n_users, horizon))
    chunk = -(-n_users // n_shards)
    params = dict(epsilon=1.0, w=10, seed=1)

    repeats = _env_int("REPRO_BENCH_WAL_REPEATS", 3)

    def _serve(wal_dir=None):
        run = run_gateway(
            MatrixSource(matrix, chunk_size=chunk), wal_dir=wal_dir, **params
        )
        return run, run.metrics.snapshot()["reports_per_second"]

    # Best-of-N on both sides: a single short serve is at the mercy of
    # the scheduler, and the gate compares peaks, not averages.
    plain_run, plain_rps = _serve()
    for _ in range(repeats - 1):
        _, rps = _serve()
        plain_rps = max(plain_rps, rps)
    logged_rps = 0.0
    wal_root = tempfile.mkdtemp(prefix="bench-wal-gateway-")
    try:
        for attempt in range(repeats):
            wal_dir = os.path.join(wal_root, f"wal-{attempt}")
            logged_run, rps = _serve(wal_dir=wal_dir)
            logged_rps = max(logged_rps, rps)
            # The log must never change an answer, bit for bit.
            np.testing.assert_array_equal(
                logged_run.result.population_mean_series(),
                plain_run.result.population_mean_series(),
            )
        overhead = 1.0 - logged_rps / plain_rps

        # Recovery rate: replay the full log into a fresh pipeline.
        start = time.perf_counter()
        recovery = recover_pipeline(wal_dir)
        recovery_elapsed = time.perf_counter() - start
        replayed = recovery.replayed_batches
        recovery_rate = replayed / recovery_elapsed if recovery_elapsed else 0.0
        assert recovery.run_ended
    finally:
        shutil.rmtree(wal_root, ignore_errors=True)

    lines = [
        f"write-ahead log at {n_users} users x {horizon} slots "
        f"({n_shards} shards, {n_batches} append-bench batches)",
        "  append throughput (batches/s | MB/s | syncs):",
    ]
    for policy in ("never", "commit", "always"):
        a = append[policy]
        lines.append(
            f"    fsync={policy:6s} {a['batches_per_second']:12.0f} | "
            f"{a['mb_per_second']:8.2f} | {a['syncs']}"
        )
    lines += [
        f"  gateway reports/s   : {plain_rps:12.0f} (no WAL)",
        f"  gateway reports/s   : {logged_rps:12.0f} (WAL, fsync=commit)",
        f"  logging overhead    : {overhead * 100:9.1f}%  (bar: <{max_overhead * 100:.0f}%)",
        f"  recovery replay     : {recovery_rate:12.0f} batches/s "
        f"({replayed} batches in {recovery_elapsed * 1e3:.1f} ms)",
    ]
    record_table("wal_throughput", "\n".join(lines))
    record_population_bench(
        "wal",
        {
            "n_users": n_users,
            "horizon": horizon,
            "append": append,
            "gateway_reports_per_second_plain": round(plain_rps, 1),
            "gateway_reports_per_second_wal": round(logged_rps, 1),
            "overhead_fraction": round(overhead, 4),
            "recovery_batches_per_second": round(recovery_rate, 1),
            "recovered_batches": replayed,
        },
    )
    assert overhead < max_overhead, (
        f"WAL logging costs {overhead * 100:.1f}% of gateway throughput; "
        f"the acceptance bar is <{max_overhead * 100:.0f}%"
    )
