"""Live ingestion service: slot-clocked streaming collection.

The serving layer on top of the sharded runtime: users publish one
sanitized report per timestamp, and the collector answers continuously.
:mod:`~repro.service.feeds` produces per-slot report batches (live from
a :class:`~repro.runtime.StreamSource`, or replayed from a JSONL event
log), :mod:`~repro.service.queueing` applies bounded-queue backpressure
with batch coalescing, and :mod:`~repro.service.pipeline` runs the
slot barrier that updates the :class:`~repro.protocol.Collector`
incrementally, fans finalized estimates out to
:class:`~repro.analysis.StreamingQueryEngine` dashboards, and emits
every event to pluggable :mod:`~repro.service.sinks`.

Live results are bit-identical to the offline
:func:`~repro.runtime.run_protocol_sharded` merge for the same seed and
chunk decomposition — serving is an execution mode, not a different
estimator (locked down by the golden-fixture tests).

Durability: :meth:`IngestionPipeline.attach_wal` hooks a
:class:`repro.wal.WriteAheadLog` into the barrier — every accepted
batch is appended before it is buffered and every finalized slot gets
a commit record, so :func:`repro.wal.recover_pipeline` can rebuild the
exact pipeline state after a crash (see ``docs/operations.md`` for the
recovery drill and ``docs/wal_format.md`` for the bytes).
"""

from .events import EVENT_LOG_FORMAT, ReportBatch, SlotEstimate
from .feeds import EventLogSource, ShardFeed, shard_feeds
from .pipeline import IngestionPipeline, LiveRunResult, replay_event_log, run_live
from .queueing import BoundedBatchQueue, QueueClosedError, QueueStats
from .sinks import CallbackSink, JSONLSink, MemorySink, Sink

__all__ = [
    "EVENT_LOG_FORMAT",
    "ReportBatch",
    "SlotEstimate",
    "ShardFeed",
    "shard_feeds",
    "EventLogSource",
    "IngestionPipeline",
    "LiveRunResult",
    "run_live",
    "replay_event_log",
    "BoundedBatchQueue",
    "QueueClosedError",
    "QueueStats",
    "Sink",
    "MemorySink",
    "JSONLSink",
    "CallbackSink",
]
