"""Bounded multi-producer queue with backpressure and coalesced drains.

The ingestion pipeline's admission control: producers (shard feeds on
worker threads) block in :meth:`BoundedBatchQueue.put` once ``capacity``
batches are in flight — backpressure, so a fast producer can never grow
memory unboundedly ahead of the collector — and the consumer drains up
to ``coalesce`` batches per :meth:`~BoundedBatchQueue.get_batch` call,
amortizing one lock round-trip over several batches when the queue runs
deep (the streaming analogue of batch ingestion).

The queue is transport only: it never reorders batches from one
producer, and the pipeline's slot barrier restores the deterministic
cross-shard ingestion order, so queue timing never affects results.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from .._validation import ensure_positive_int

__all__ = ["QueueClosedError", "QueueStats", "BoundedBatchQueue"]


class QueueClosedError(RuntimeError):
    """Raised by :meth:`BoundedBatchQueue.put` after the queue is closed."""


@dataclass
class QueueStats:
    """Counters describing one run's traffic through the queue.

    ``producer_waits`` counts backpressure events (a put found the queue
    full and had to block); ``max_drain`` is the largest number of
    batches one ``get_batch`` call coalesced.
    """

    capacity: int
    coalesce: int
    total_batches: int = 0
    high_watermark: int = 0
    producer_waits: int = 0
    consumer_waits: int = 0
    drains: int = 0
    max_drain: int = 0

    @property
    def mean_drain(self) -> float:
        """Average batches handed over per consumer drain."""
        if not self.drains:
            return 0.0
        return self.total_batches / self.drains


class BoundedBatchQueue:
    """Thread-safe bounded FIFO of report batches.

    Args:
        capacity: maximum batches in flight before producers block.
        coalesce: maximum batches handed to the consumer per drain.
    """

    def __init__(self, capacity: int = 256, coalesce: int = 8) -> None:
        self.capacity = ensure_positive_int(capacity, "capacity")
        self.coalesce = ensure_positive_int(coalesce, "coalesce")
        self._items: Deque = deque()
        self._condition = threading.Condition()
        self._closed = False
        self._stats = QueueStats(capacity=self.capacity, coalesce=self.coalesce)

    def __len__(self) -> int:
        with self._condition:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    @property
    def stats(self) -> QueueStats:
        """The live stats object (stable once the run has finished)."""
        return self._stats

    def put(self, item, timeout: Optional[float] = None) -> None:
        """Enqueue one batch, blocking while the queue is at capacity.

        Raises:
            QueueClosedError: the queue was closed (shutdown/abort).
            TimeoutError: the queue stayed full for ``timeout`` seconds.
        """
        with self._condition:
            blocked = False
            while len(self._items) >= self.capacity and not self._closed:
                if not blocked:
                    # One backpressure event per blocked put, however many
                    # times the wait wakes spuriously before space frees.
                    blocked = True
                    self._stats.producer_waits += 1
                if not self._condition.wait(timeout):
                    raise TimeoutError(
                        f"queue full ({self.capacity} batches) for "
                        f"{timeout} s; consumer stalled?"
                    )
            if self._closed:
                raise QueueClosedError("queue is closed")
            self._items.append(item)
            self._stats.total_batches += 1
            self._stats.high_watermark = max(
                self._stats.high_watermark, len(self._items)
            )
            self._condition.notify_all()

    def get_batch(self, timeout: Optional[float] = None) -> List:
        """Drain up to ``coalesce`` pending batches in one lock round-trip.

        Blocks while the queue is empty and open.  Returns an empty list
        only when the queue is closed and fully drained — the consumer's
        end-of-stream signal.

        Raises:
            TimeoutError: the queue stayed empty for ``timeout`` seconds.
        """
        with self._condition:
            waited = False
            while not self._items and not self._closed:
                if not waited:
                    waited = True
                    self._stats.consumer_waits += 1
                if not self._condition.wait(timeout):
                    raise TimeoutError(
                        f"queue empty for {timeout} s; producers stalled?"
                    )
            drained = []
            while self._items and len(drained) < self.coalesce:
                drained.append(self._items.popleft())
            if drained:
                self._stats.drains += 1
                self._stats.max_drain = max(self._stats.max_drain, len(drained))
                self._condition.notify_all()
            return drained

    def close(self, abort: bool = False) -> None:
        """Stop accepting puts; ``abort=True`` also discards pending items.

        Closing is idempotent.  Producers blocked in :meth:`put` wake and
        raise :class:`QueueClosedError`; the consumer drains whatever
        remains (nothing after an abort) and then receives ``[]``.
        """
        with self._condition:
            self._closed = True
            if abort:
                self._items.clear()
            self._condition.notify_all()
