"""Report-batch producers for the live ingestion pipeline.

Two producer families exist:

* :class:`ShardFeed` — the *live* producer: wraps one population chunk
  of a :class:`~repro.runtime.sources.StreamSource` together with an
  incremental :class:`~repro.protocol.PopulationSlotEngine` and
  sanitizes the chunk's true values into one
  :class:`~repro.service.events.ReportBatch` per slot.  Feeds built by
  :func:`shard_feeds` use the exact per-shard child generators of the
  offline runtime (``SeedSequence(seed, spawn_key=(chunk,))``), so a
  live run's reports are bit-identical to
  :func:`~repro.runtime.run_protocol_sharded` for the same seed and
  chunk decomposition.
* :class:`EventLogSource` — the *replay* producer: re-yields the batches
  recorded in a JSONL event log (a pipeline run with batch recording
  enabled), so a captured run can be re-ingested — bit-identically —
  without re-running any mechanism.

Unlike the offline runtime, live operation holds every shard's chunk
resident at once (the slot clock touches one column of each chunk per
tick); for populations beyond RAM, run the offline sharded runtime and
serve its merged collector instead.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..adversary.attacks import make_attack
from ..protocol.vectorized import PopulationSlotEngine
from ..runtime.sharding import shard_rng
from ..runtime.sources import PopulationChunk, StreamSource, as_source
from .events import EVENT_LOG_FORMAT, ReportBatch

__all__ = ["ShardFeed", "shard_feeds", "EventLogSource"]


class ShardFeed:
    """Sanitizes one user-shard into per-slot report batches.

    Iterating yields exactly ``horizon`` batches, one per slot in slot
    order (a batch is yielded even when nobody in the shard participates
    — the pipeline's slot barrier needs it).  The feed owns the shard's
    protocol state: its engines' budget ledgers survive the run for the
    population-wide w-event audit.  The chunk matrix itself is released
    after the last slot streams out — a finished run (and the
    :class:`~repro.service.pipeline.LiveRunResult` holding its feeds)
    keeps only the O(users) ledgers, not the O(users x slots) data.
    """

    def __init__(self, chunk: PopulationChunk, engine: PopulationSlotEngine) -> None:
        if engine.n_users != chunk.n_users:
            raise ValueError(
                f"engine drives {engine.n_users} users but chunk "
                f"{chunk.index} holds {chunk.n_users}"
            )
        if engine.user_id_offset != chunk.start:
            raise ValueError(
                f"engine offset {engine.user_id_offset} does not match "
                f"chunk start {chunk.start}"
            )
        if engine.horizon != chunk.matrix.shape[1]:
            raise ValueError(
                f"engine horizon {engine.horizon} does not match chunk "
                f"horizon {chunk.matrix.shape[1]}"
            )
        self.chunk: "PopulationChunk | None" = chunk
        self.engine = engine
        self.shard = chunk.index
        self.n_users = chunk.n_users

    @property
    def horizon(self) -> int:
        return self.engine.horizon

    def __iter__(self) -> Iterator[ReportBatch]:
        chunk = self.chunk
        if chunk is None:
            raise RuntimeError(
                f"shard {self.shard} feed was already consumed; its chunk "
                "matrix has been released (build fresh feeds to re-serve)"
            )
        matrix = chunk.matrix
        for t in range(self.horizon):
            ids, values = self.engine.step(matrix[:, t])
            yield ReportBatch(shard=self.shard, t=t, user_ids=ids, values=values)
        self.chunk = None  # free O(users x slots); ledgers stay on the engine


def shard_feeds(
    source: Union[StreamSource, np.ndarray, Sequence[Sequence[float]]],
    algorithm: "str | Sequence[str]" = "capp",
    epsilon: float = 1.0,
    w: int = 10,
    participation: "float | Sequence[float] | None" = None,
    seed: int = 0,
    chunk_size: Optional[int] = None,
    record_history: bool = False,
    shards: Optional[Iterable[int]] = None,
    attack=None,
) -> List[ShardFeed]:
    """Build one live feed per chunk of a population source.

    Mirrors :func:`~repro.runtime.run_protocol_sharded`'s per-shard
    setup exactly — same chunk decomposition, same per-shard child
    generators, same per-user algorithm slicing — which is the whole
    determinism story: a pipeline serving these feeds produces the same
    reports, in the same slot/shard order, as the offline run.

    Args:
        source: a :class:`~repro.runtime.sources.StreamSource` or a raw
            ``(users, slots)`` matrix (wrapped via ``chunk_size``).
        algorithm: one name for everyone, or one name per (global) user.
        epsilon, w: w-event privacy parameters shared by all users.
        participation: scalar or ``(T,)`` schedule; ``None`` uses the
            source's default (scenario sources supply their churn
            schedule).
        seed: root seed; chunk ``i`` gets ``shard_rng(seed, i)``.
        chunk_size: users per shard when ``source`` is a raw matrix.
        record_history: keep full per-slot budget ledgers on every feed
            engine (O(users x slots) memory — audits don't need it).
        shards: build feeds only for these chunk indices (a distributed
            worker's shard range).  Safe because each chunk's generator
            is keyed by its own index — skipping neighbours changes
            nothing for the chunks that are built.
        attack: optional :class:`~repro.adversary.AttackSpec` (or dict
            form); ``None`` uses the source's default.  Attack randomness
            hashes global user ids, so a partial fleet (``shards``)
            poisons exactly the users an offline run would.
    """
    src = as_source(source, chunk_size=chunk_size)
    wanted = None if shards is None else frozenset(int(s) for s in shards)
    if participation is None:
        participation = src.default_participation()
    if attack is None:
        attack = src.default_attack()
    attack = make_attack(attack)
    per_user = None if isinstance(algorithm, str) else list(algorithm)

    feeds: List[ShardFeed] = []
    for chunk in src.chunks():
        if wanted is not None and chunk.index not in wanted:
            continue
        if per_user is None:
            names: "str | list[str]" = algorithm
        else:
            names = per_user[chunk.start : chunk.stop]
            if len(names) != chunk.n_users:
                raise ValueError(
                    f"algorithm sequence too short: shard covers users "
                    f"[{chunk.start}, {chunk.stop}) but only "
                    f"{len(per_user)} names were given"
                )
        engine = PopulationSlotEngine(
            chunk.n_users,
            chunk.matrix.shape[1],
            algorithm=names,
            epsilon=epsilon,
            w=w,
            participation=participation,
            rng=shard_rng(int(seed), chunk.index),
            record_history=record_history,
            user_id_offset=chunk.start,
            attack=attack,
        )
        feeds.append(ShardFeed(chunk, engine))
    return feeds


class EventLogSource:
    """Replayable stream of report batches from a JSONL event log.

    Reads a log written by the pipeline's
    :class:`~repro.service.sinks.JSONLSink` with batch recording enabled.
    The ``run_started`` record carries the run's configuration
    (:meth:`metadata`), so :func:`~repro.service.pipeline.replay_event_log`
    can rebuild an identically configured pipeline without the caller
    restating anything.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._metadata: Optional[Dict[str, Any]] = None

    def _records(self) -> Iterator[Dict[str, Any]]:
        with open(self.path) as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ValueError(
                        f"corrupted event log {self.path}: line {lineno} "
                        f"is not valid JSON ({error})"
                    ) from error
                if not isinstance(record, dict):
                    raise ValueError(
                        f"corrupted event log {self.path}: line {lineno} "
                        "is not a record object"
                    )
                yield record

    def metadata(self) -> Dict[str, Any]:
        """The run configuration from the log's ``run_started`` record."""
        if self._metadata is None:
            for record in self._records():
                if record.get("type") == "run_started":
                    if record.get("format") != EVENT_LOG_FORMAT:
                        raise ValueError(
                            f"unsupported event log format "
                            f"{record.get('format')!r} in {self.path}"
                        )
                    self._metadata = record
                    break
            else:
                raise ValueError(
                    f"event log {self.path} has no run_started record; "
                    "was it written by a pipeline JSONL sink?"
                )
        return self._metadata

    def batches(self) -> Iterator[ReportBatch]:
        """Yield the recorded batches in their original ingestion order."""
        found = False
        for record in self._records():
            if record.get("type") == "batch":
                found = True
                yield ReportBatch.from_record(record)
        if not found:
            raise ValueError(
                f"event log {self.path} holds no batch records; record "
                "batches when serving (record_batches=True) to make a "
                "log replayable"
            )

    def __iter__(self) -> Iterator[ReportBatch]:
        return self.batches()
