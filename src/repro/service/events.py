"""Event types flowing through the live ingestion pipeline.

Two kinds of events exist:

* :class:`ReportBatch` — the *input* unit: one user-shard's sanitized
  reports for one time slot, produced by a
  :class:`~repro.service.feeds.ShardFeed` (or replayed from an event
  log).  A batch may be empty — the pipeline's slot barrier still needs
  it to know the shard has nothing to say at that slot.
* :class:`SlotEstimate` — the *output* unit: everything the pipeline
  knows about a slot at the moment it finalizes (report count,
  population-mean estimate, every registered dashboard's answers).

Both serialize to JSON-safe records (``to_record``/``from_record``) so
sinks can persist them and :class:`~repro.service.feeds.EventLogSource`
can replay a recorded run bit-identically — Python's ``repr``-based JSON
float encoding round-trips every finite float exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["EVENT_LOG_FORMAT", "ReportBatch", "SlotEstimate", "jsonify"]

#: format tag stamped on the ``run_started`` record of every event log
EVENT_LOG_FORMAT = "repro.live-events.v1"


def jsonify(value: Any) -> Any:
    """Recursively coerce a query answer into JSON-safe builtins.

    Dashboard answers may contain NumPy scalars, tuples (rolling
    extrema), or ``None`` (warm-up); sinks get plain floats/lists/dicts.
    """
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, np.ndarray):
        return [jsonify(item) for item in value.tolist()]
    if isinstance(value, (np.floating, float)):
        return float(value)
    if isinstance(value, (np.bool_, bool)):
        return bool(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    return value


@dataclass(frozen=True)
class ReportBatch:
    """One shard's sanitized reports for one time slot.

    ``shard`` is the producing chunk's index — the pipeline ingests a
    slot's batches in ascending shard order, which is what makes live
    results bit-identical to the offline merge (shards merge in chunk
    order there too).  ``user_ids`` and ``values`` are aligned arrays;
    both may be empty when no member of the shard participated.
    """

    shard: int
    t: int
    user_ids: np.ndarray = field(repr=False)
    values: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "shard", int(self.shard))
        object.__setattr__(self, "t", int(self.t))
        ids = np.asarray(self.user_ids)
        vals = np.asarray(self.values, dtype=float)
        if ids.ndim != 1 or ids.shape != vals.shape:
            raise ValueError(
                f"user_ids and values must be aligned 1-D arrays, got "
                f"shapes {ids.shape} and {vals.shape}"
            )
        if ids.size and not np.issubdtype(ids.dtype, np.integer):
            raise TypeError(f"user_ids must be integers, got dtype {ids.dtype}")
        if self.shard < 0:
            raise ValueError(f"shard must be non-negative, got {self.shard}")
        if self.t < 0:
            raise ValueError(f"t must be non-negative, got {self.t}")
        object.__setattr__(self, "user_ids", ids)
        object.__setattr__(self, "values", vals)

    @property
    def n_reports(self) -> int:
        return self.user_ids.size

    def to_record(self) -> Dict[str, Any]:
        """JSON-safe event-log record (exact float round trip)."""
        return {
            "type": "batch",
            "shard": self.shard,
            "t": self.t,
            "user_ids": [int(uid) for uid in self.user_ids.tolist()],
            "values": self.values.tolist(),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "ReportBatch":
        """Inverse of :meth:`to_record`."""
        if record.get("type") != "batch":
            raise ValueError(f"not a batch record: type={record.get('type')!r}")
        return cls(
            shard=int(record["shard"]),
            t=int(record["t"]),
            user_ids=np.asarray(record["user_ids"], dtype=np.intp),
            values=np.asarray(record["values"], dtype=float),
        )


@dataclass(frozen=True)
class SlotEstimate:
    """Everything the pipeline publishes when one slot finalizes.

    ``mean`` is ``None`` for slots where nobody reported (total churn):
    the slot still finalizes — dashboards are simply not advanced, since
    there is no published value to feed them.
    """

    t: int
    n_reports: int
    mean: Optional[float]
    answers: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """JSON-safe sink record."""
        return {
            "type": "slot",
            "t": int(self.t),
            "n_reports": int(self.n_reports),
            "mean": None if self.mean is None else float(self.mean),
            "answers": jsonify(self.answers),
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "SlotEstimate":
        """Inverse of :meth:`to_record` (WAL checkpoint restore)."""
        if record.get("type") != "slot":
            raise ValueError(f"not a slot record: type={record.get('type')!r}")
        mean = record.get("mean")
        return cls(
            t=int(record["t"]),
            n_reports=int(record["n_reports"]),
            mean=None if mean is None else float(mean),
            answers=dict(record.get("answers", {})),
        )
