"""Pluggable output sinks for the live ingestion pipeline.

A sink receives every pipeline event as a JSON-safe dict record —
``run_started``, per-slot ``slot`` estimates, optionally every ingested
``batch`` (when the pipeline records batches for replay), and
``run_finished``.  Three implementations cover the common deployments:

* :class:`MemorySink` — keeps records in a list (tests, notebooks);
* :class:`JSONLSink` — appends one JSON line per record to a file; a log
  written with batch recording enabled is a complete, replayable capture
  of the run (see :class:`~repro.service.feeds.EventLogSource`);
* :class:`CallbackSink` — forwards each record to a callable (live
  dashboards, alert hooks).

Sinks are synchronous and are invoked from the pipeline's consumer
thread only, so implementations need no locking of their own.
"""

from __future__ import annotations

import abc
import json
import os
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Sink", "MemorySink", "JSONLSink", "CallbackSink"]


class Sink(abc.ABC):
    """One destination for pipeline event records."""

    @abc.abstractmethod
    def emit(self, record: Dict[str, Any]) -> None:
        """Consume one JSON-safe event record."""

    def close(self) -> None:
        """Flush and release resources (default: nothing to do)."""

    def __enter__(self) -> "Sink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemorySink(Sink):
    """Buffers records in order (inspection and tests).

    ``max_records`` bounds the buffer for long-running serves: once the
    cap is reached, further records are counted but not stored, and
    :attr:`truncated` flips so a reader can tell "the run emitted
    exactly this" apart from "this is a prefix".
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is not None and int(max_records) < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.max_records = None if max_records is None else int(max_records)
        self.records: List[Dict[str, Any]] = []
        self.n_emitted = 0
        self.truncated = False

    def emit(self, record: Dict[str, Any]) -> None:
        self.n_emitted += 1
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.truncated = True
            return
        self.records.append(record)

    def of_type(self, record_type: str) -> List[Dict[str, Any]]:
        """All buffered records of one event type."""
        return [r for r in self.records if r.get("type") == record_type]


class JSONLSink(Sink):
    """Writes one JSON line per record (the pipeline's event log).

    Floats are encoded via ``repr`` (Python's ``json`` default), so every
    finite value round-trips exactly — a recorded run replays
    bit-identically.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "w")
        self.n_records = 0

    def emit(self, record: Dict[str, Any]) -> None:
        if self._fh.closed:
            raise RuntimeError(f"sink {self.path} is closed")
        self._fh.write(json.dumps(record) + "\n")
        self.n_records += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


class CallbackSink(Sink):
    """Forwards every record to a callable (alert hooks, live UIs)."""

    def __init__(self, callback: Callable[[Dict[str, Any]], None]) -> None:
        if not callable(callback):
            raise TypeError("callback must be callable")
        self._callback = callback

    def emit(self, record: Dict[str, Any]) -> None:
        self._callback(record)
