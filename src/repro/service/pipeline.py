"""Slot-clocked live ingestion pipeline (the serving runtime).

:class:`IngestionPipeline` turns the repo's batch protocol engines into
an *online* collector service: producers push per-slot
:class:`~repro.service.events.ReportBatch`\\ es (one per shard per slot),
a slot barrier re-establishes deterministic cross-shard order, the
:class:`~repro.protocol.Collector` is updated incrementally via
``ingest_batch``, and every finalized slot's estimate fans out to the
registered :class:`~repro.analysis.StreamingQueryEngine` dashboards and
:class:`~repro.service.sinks.Sink`\\ s.

Determinism contract
--------------------

A slot finalizes only when all ``n_shards`` producers have delivered
their batch for it; its batches are then ingested in ascending shard
order.  Combined with the feeds' per-shard child generators
(:func:`~repro.service.feeds.shard_feeds`), the collector state after a
live run is **bit-identical** to the merged state of
:func:`~repro.runtime.run_protocol_sharded` for the same seed and chunk
decomposition — regardless of producer thread count, queue capacity, or
arrival order.  Queue timing can therefore never change an answer, only
a latency.

Backpressure and coalescing
---------------------------

Producer threads feed a :class:`~repro.service.queueing.BoundedBatchQueue`;
once ``queue_capacity`` batches are in flight, producers block until the
consumer catches up.  The consumer drains up to ``coalesce`` batches per
lock round-trip.  The queue alone cannot bound the slot-barrier buffer —
the consumer keeps draining while a slow shard holds a slot open, so
fast producers would park the whole run in the barrier — hence a second
gate: a producer whose next batch is ``max_slot_skew`` slots or more
ahead of the barrier clock waits until the clock advances.  The laggard
shard is never gated (its batch *is* the clock's next requirement), so
the gate cannot deadlock, and the barrier holds at most
``n_shards * (max_slot_skew + 1)`` batches whatever the thread timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from .._validation import ensure_positive_int
from ..analysis.streaming_queries import StreamingQueryEngine
from ..protocol.collector import Collector
from .events import EVENT_LOG_FORMAT, ReportBatch, SlotEstimate
from .feeds import EventLogSource, ShardFeed, shard_feeds
from .queueing import BoundedBatchQueue, QueueClosedError, QueueStats
from .sinks import Sink

__all__ = ["IngestionPipeline", "LiveRunResult", "run_live", "replay_event_log"]


@dataclass
class LiveRunResult:
    """Everything a finished live (or replayed) run produced.

    ``feeds`` is populated for live runs only — it keeps each shard's
    engines (and budget ledgers) alive for the population-wide audit;
    replayed runs ingest already-sanitized values and carry no ledgers.
    """

    collector: Collector
    slots: List[SlotEstimate] = field(repr=False)
    horizon: int = 0
    n_shards: int = 0
    epsilon: float = 1.0
    w: int = 10
    elapsed_seconds: float = 0.0
    slot_latencies: np.ndarray = field(default_factory=lambda: np.zeros(0), repr=False)
    queue_stats: Optional[QueueStats] = None
    dashboards: Dict[str, StreamingQueryEngine] = field(default_factory=dict)
    feeds: Optional[List[ShardFeed]] = field(default=None, repr=False)

    @property
    def n_reports(self) -> int:
        return self.collector.n_reports

    @property
    def reports_per_second(self) -> float:
        """Sustained ingestion throughput over the whole run."""
        if self.elapsed_seconds <= 0.0:
            return float("inf")
        return self.n_reports / self.elapsed_seconds

    def latency_quantile(self, q: float) -> float:
        """A quantile (e.g. ``0.99``) of per-slot finalization latency.

        Latency is measured from a slot's first buffered batch to its
        finalization — the time a slot spent open at the barrier.
        """
        if not self.slot_latencies.size:
            return 0.0
        return float(np.quantile(self.slot_latencies, q))

    def population_mean_series(self) -> np.ndarray:
        """Population-mean estimate at every slot that saw reports."""
        return self.collector.population_mean_series()

    def assert_valid(self) -> None:
        """Population-wide w-event audit (live runs; raises on overspend)."""
        if self.feeds is None:
            raise RuntimeError(
                "replayed runs carry no budget ledgers to audit — the "
                "audit ran when the log was recorded"
            )
        for feed in self.feeds:
            feed.engine.assert_valid()


class IngestionPipeline:
    """Slot-clocked streaming collector with dashboards and sinks.

    Args:
        n_shards: how many producers feed the pipeline; every slot needs
            exactly one batch from each before it finalizes.
        horizon: number of slots in the run.
        epsilon, w: the users' w-event parameters (the collector needs
            ``epsilon / w`` for distribution queries).
        smoothing_window: collector-side SMA window.
        track_users, keep_reports: forwarded to the
            :class:`~repro.protocol.Collector` (live serving defaults to
            ``track_users=False`` — per-user dicts are O(users x slots)).
        queue_capacity, coalesce: admission control for threaded serving
            (see :class:`~repro.service.queueing.BoundedBatchQueue`).
        max_slot_skew: how many slots a producer may run ahead of the
            barrier clock in threaded serving before it waits; bounds the
            barrier buffer at ``n_shards * (max_slot_skew + 1)`` batches
            even when one shard stalls (serial serving has zero skew by
            construction).
        record_batches: emit every ingested batch to the sinks, making a
            JSONL event log a complete replayable capture of the run.
        robust_policy: optional
            :class:`~repro.adversary.RobustPolicy` (or name/dict form)
            applied by the collector — the live-serving end of the same
            robust-aggregation layer the offline runtime threads through
            :func:`~repro.runtime.run_protocol_sharded`.
    """

    def __init__(
        self,
        n_shards: int,
        horizon: int,
        epsilon: float = 1.0,
        w: int = 10,
        smoothing_window: Optional[int] = 3,
        track_users: bool = False,
        keep_reports: bool = True,
        queue_capacity: int = 256,
        coalesce: int = 8,
        max_slot_skew: int = 8,
        record_batches: bool = False,
        robust_policy=None,
    ) -> None:
        self.n_shards = ensure_positive_int(n_shards, "n_shards")
        self.horizon = ensure_positive_int(horizon, "horizon")
        self.epsilon = float(epsilon)
        self.w = int(w)
        self.queue_capacity = ensure_positive_int(queue_capacity, "queue_capacity")
        self.coalesce = ensure_positive_int(coalesce, "coalesce")
        self.max_slot_skew = ensure_positive_int(max_slot_skew, "max_slot_skew")
        self.record_batches = bool(record_batches)
        self.collector = Collector(
            epsilon_per_report=self.epsilon / self.w,
            smoothing_window=smoothing_window,
            track_users=track_users,
            keep_reports=keep_reports,
            robust_policy=robust_policy,
        )
        self.slot_estimates: List[SlotEstimate] = []
        self._dashboards: Dict[str, StreamingQueryEngine] = {}
        self._sinks: List[Sink] = []
        self._pending: Dict[int, Dict[int, ReportBatch]] = {}
        self.pending_high_watermark = 0
        self._first_seen: Dict[int, float] = {}
        self._latencies: List[float] = []
        self._next_slot = 0
        self._finished = False
        self._wal: Optional[Any] = None
        self._run_metadata: Dict[str, Any] = {}
        #: optional hook called as ``hook(estimate, waiting)`` at the end
        #: of every slot finalization, where ``waiting`` maps shard ->
        #: ReportBatch for the slot.  The distributed gateway worker uses
        #: it to stream finalized shard states upstream; WAL replay
        #: re-fires it, so a recovered worker rebuilds its outbox.
        self.on_slot_finalized: Optional[
            Callable[[SlotEstimate, Dict[int, ReportBatch]], None]
        ] = None

    # -- wiring ----------------------------------------------------------

    def add_sink(self, sink: Sink) -> Sink:
        """Register an output sink; returns it for chaining."""
        if not isinstance(sink, Sink):
            raise TypeError(f"sink must be a Sink, got {type(sink).__name__}")
        self._sinks.append(sink)
        return sink

    def register_dashboard(
        self, name: str, engine: Optional[StreamingQueryEngine] = None
    ) -> StreamingQueryEngine:
        """Attach a streaming-query dashboard fed by slot estimates.

        Every finalized slot's population-mean estimate is pushed to the
        engine (slots nobody reported at are skipped — there is no
        published value).  Returns the engine for chaining query
        registrations.
        """
        if name in self._dashboards:
            raise ValueError(f"dashboard {name!r} already registered")
        engine = engine if engine is not None else StreamingQueryEngine()
        if not isinstance(engine, StreamingQueryEngine):
            raise TypeError("engine must be a StreamingQueryEngine")
        self._dashboards[name] = engine
        return engine

    def attach_wal(self, wal: Any) -> Any:
        """Attach a :class:`~repro.wal.WriteAheadLog`; returns it.

        Once attached, every accepted batch is appended to the log
        *before* it is buffered (so before any ack can be sent), and
        every finalized slot appends a commit record — the durability
        contract :func:`~repro.wal.recover_pipeline` replays from.
        """
        from ..wal.log import WriteAheadLog

        if not isinstance(wal, WriteAheadLog):
            raise TypeError(f"wal must be a WriteAheadLog, got {type(wal).__name__}")
        if self._wal is not None:
            raise RuntimeError("pipeline already has a write-ahead log attached")
        self._wal = wal
        return wal

    @property
    def wal(self) -> Optional[Any]:
        """The attached write-ahead log, if any."""
        return self._wal

    @property
    def run_metadata(self) -> Dict[str, Any]:
        """The metadata passed to :meth:`start_run` (or set by recovery),
        preserved so compaction checkpoints keep carrying it once the
        segment holding the ``RUN_START`` record is deleted."""
        return dict(self._run_metadata)

    @run_metadata.setter
    def run_metadata(self, metadata: Dict[str, Any]) -> None:
        self._run_metadata = dict(metadata or {})

    def run_config(self) -> Dict[str, Any]:
        """The pipeline's constructor arguments, JSON-safe.

        This is what the WAL's ``RUN_START`` record and compaction
        checkpoints store — :func:`~repro.wal.recover_pipeline` rebuilds
        an identically configured pipeline from it.
        """
        config: Dict[str, Any] = {
            "n_shards": self.n_shards,
            "horizon": self.horizon,
            "epsilon": self.epsilon,
            "w": self.w,
            "smoothing_window": self.collector.smoothing_window,
            "track_users": self.collector.track_users,
            "keep_reports": self.collector.keep_reports,
            "queue_capacity": self.queue_capacity,
            "coalesce": self.coalesce,
            "max_slot_skew": self.max_slot_skew,
            "record_batches": self.record_batches,
        }
        # Included only when set, so unpoliced runs keep the exact v1
        # config (old WALs and their recovery path stay byte-compatible).
        if self.collector.robust_policy is not None:
            config["robust_policy"] = self.collector.robust_policy.to_dict()
        return config

    @property
    def dashboards(self) -> Dict[str, StreamingQueryEngine]:
        return dict(self._dashboards)

    @property
    def next_slot(self) -> int:
        """The slot the barrier is currently waiting to complete."""
        return self._next_slot

    @property
    def complete(self) -> bool:
        """Whether every slot in the horizon has finalized."""
        return self._next_slot >= self.horizon

    @property
    def slot_latencies(self) -> List[float]:
        """Per-slot finalization latencies so far, in finalization order.

        Latency runs from a slot's first buffered batch to its
        finalization (the time the slot spent open at the barrier).
        The returned list is live — treat it as read-only.
        """
        return self._latencies

    def has_batch(self, t: int, shard: int) -> bool:
        """Whether ``(t, shard)`` was already delivered (buffered at the
        barrier, or part of a finalized slot).

        The network gateway's duplicate-ack path asks this before
        ingesting — a client that lost an ack mid-reconnect resends, and
        the resend must neither error nor double-ingest.
        """
        if t < self._next_slot:
            return True
        return shard in self._pending.get(t, ())

    def pending_batches(self) -> List[ReportBatch]:
        """Batches buffered at the barrier, in ``(slot, shard)`` order.

        Compaction re-appends exactly these into the fresh WAL segment —
        they are the only accepted batches a checkpoint cannot cover
        (their slots have not finalized, so the collector state does not
        contain them yet).
        """
        batches: List[ReportBatch] = []
        for t in sorted(self._pending):
            waiting = self._pending[t]
            for shard in sorted(waiting):
                batches.append(waiting[shard])
        return batches

    def restore(
        self,
        collector_state: Any,
        slot_estimates: Sequence[SlotEstimate],
        next_slot: int,
    ) -> None:
        """Restore a checkpointed run onto this *fresh* pipeline.

        Replaces the collector state wholesale (bit-exact — see
        :meth:`~repro.protocol.Collector.restore_state`), reinstates the
        published slot estimates, and advances the barrier clock; WAL
        replay then drives the remaining batches through the normal
        :meth:`submit` path.  Registered dashboards are caught up by
        re-pushing the restored slot means, so their engines answer as
        if they had watched the whole run.  Slot latencies restart at
        the restore point — they measure this process's serving, not the
        crashed one's.
        """
        if (
            self._next_slot
            or self._pending
            or self.slot_estimates
            or self.collector.n_reports
        ):
            raise RuntimeError(
                "restore needs a fresh pipeline (nothing submitted yet)"
            )
        next_slot = int(next_slot)
        if not 0 <= next_slot <= self.horizon:
            raise ValueError(
                f"next_slot {next_slot} outside the run horizon {self.horizon}"
            )
        estimates = list(slot_estimates)
        if len(estimates) != next_slot:
            raise ValueError(
                f"checkpoint inconsistent: clock at slot {next_slot} but "
                f"{len(estimates)} slot estimates were stored"
            )
        for position, estimate in enumerate(estimates):
            if not isinstance(estimate, SlotEstimate) or estimate.t != position:
                raise ValueError(
                    f"checkpoint inconsistent: estimate {position} is "
                    f"{estimate!r}, expected slot {position}"
                )
        self.collector.restore_state(collector_state)
        self.slot_estimates = estimates
        self._next_slot = next_slot
        for estimate in estimates:
            if estimate.mean is not None:
                for engine in self._dashboards.values():
                    engine.push(estimate.mean)

    def _emit(self, record: Dict[str, Any]) -> None:
        for sink in self._sinks:
            sink.emit(record)

    def start_run(self, metadata: Optional[Dict[str, Any]] = None) -> None:
        """Emit the ``run_started`` record carrying the run configuration."""
        record: Dict[str, Any] = {
            "type": "run_started",
            "format": EVENT_LOG_FORMAT,
            "n_shards": self.n_shards,
            "horizon": self.horizon,
            "epsilon": self.epsilon,
            "w": self.w,
            "smoothing_window": self.collector.smoothing_window,
            "track_users": self.collector.track_users,
            "keep_reports": self.collector.keep_reports,
        }
        if self.collector.robust_policy is not None:
            record["robust_policy"] = self.collector.robust_policy.to_dict()
        record.update(metadata or {})
        self._run_metadata = dict(metadata or {})
        if self._wal is not None and not self._wal.resumed:
            self._wal.append_run_start(self.run_config(), metadata or {})
        self._emit(record)

    def build_result(
        self,
        elapsed_seconds: float,
        queue_stats: Optional[QueueStats] = None,
        feeds: Optional[List[ShardFeed]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> LiveRunResult:
        """Package the finished run, emit ``run_finished``, close sinks.

        Shared by every driver of the pipeline — in-process serving,
        event-log replay, and the network gateway — so they all publish
        the same result shape and trailer record.
        """
        result = LiveRunResult(
            collector=self.collector,
            slots=list(self.slot_estimates),
            horizon=self.horizon,
            n_shards=self.n_shards,
            epsilon=self.epsilon,
            w=self.w,
            elapsed_seconds=elapsed_seconds,
            slot_latencies=np.asarray(self._latencies, dtype=float),
            queue_stats=queue_stats,
            dashboards=dict(self._dashboards),
            feeds=feeds,
        )
        record: Dict[str, Any] = {
            "type": "run_finished",
            "slots": len(self.slot_estimates),
            "n_reports": self.collector.n_reports,
            "elapsed_seconds": elapsed_seconds,
            "reports_per_second": result.reports_per_second,
            "p99_slot_latency_seconds": result.latency_quantile(0.99),
        }
        record.update(extra or {})
        if self._wal is not None:
            self._wal.append_run_end(
                {
                    "slots": len(self.slot_estimates),
                    "n_reports": self.collector.n_reports,
                }
            )
            record["wal"] = self._wal.stats()
        self._emit(record)
        for sink in self._sinks:
            sink.close()
        return result

    # -- ingestion -------------------------------------------------------

    def submit(self, batch: ReportBatch) -> List[SlotEstimate]:
        """Accept one shard's batch; finalize any slots it completes.

        Batches may arrive in any interleaving across shards; each
        ``(slot, shard)`` pair must arrive exactly once, and a batch for
        an already-finalized slot is an error (the barrier guarantees
        ingestion order, so late arrivals would silently change results).

        Returns the slots this batch finalized (usually zero or one; more
        when this batch was the laggard holding several slots open).
        """
        if self._finished:
            raise RuntimeError("pipeline already finished; create a new one")
        if not isinstance(batch, ReportBatch):
            raise TypeError(f"expected a ReportBatch, got {type(batch).__name__}")
        if batch.t >= self.horizon:
            raise ValueError(
                f"batch for slot {batch.t} is beyond the run horizon "
                f"{self.horizon}"
            )
        if batch.shard >= self.n_shards:
            raise ValueError(
                f"batch from shard {batch.shard} but the pipeline serves "
                f"{self.n_shards} shards"
            )
        if batch.t < self._next_slot:
            raise ValueError(
                f"batch from shard {batch.shard} for slot {batch.t} arrived "
                f"after the slot finalized (clock is at {self._next_slot})"
            )
        waiting = self._pending.setdefault(batch.t, {})
        if batch.shard in waiting:
            raise ValueError(
                f"duplicate batch from shard {batch.shard} for slot {batch.t}"
            )
        if self._wal is not None:
            # Append, buffer, and finalize under the log's lock: a
            # concurrent compaction snapshot must see this batch either
            # pending or finalized — never appended-but-unbuffered,
            # which would let it delete the batch's only copy.
            with self._wal.exclusive():
                return self._admit(batch, waiting)
        return self._admit(batch, waiting)

    def _admit(
        self, batch: ReportBatch, waiting: Dict[int, ReportBatch]
    ) -> List[SlotEstimate]:
        """Log, buffer, and finalize one fully validated batch."""
        if self._wal is not None:
            # Write-ahead: the batch is durable before it is buffered, so
            # it is durable before any ack can reach the client.  All
            # validation already passed — the log never holds a batch the
            # barrier would refuse on replay.
            self._wal.append_batch(batch)
        if batch.t not in self._first_seen:
            self._first_seen[batch.t] = time.perf_counter()
        waiting[batch.shard] = batch
        buffered = sum(len(shards) for shards in self._pending.values())
        self.pending_high_watermark = max(self.pending_high_watermark, buffered)
        if self.record_batches:
            self._emit(batch.to_record())

        finalized: List[SlotEstimate] = []
        while len(self._pending.get(self._next_slot, ())) == self.n_shards:
            finalized.append(self._finalize(self._next_slot))
        return finalized

    def _finalize(self, t: int) -> SlotEstimate:
        """Ingest slot ``t``'s batches in shard order and publish it."""
        waiting = self._pending.pop(t)
        occupied = [batch for batch in waiting.values() if batch.n_reports]
        if len(occupied) > 1:
            # Cross-shard duplicate guard: the collector's own cross-batch
            # check needs track_users (off at serving scale), but the
            # barrier holds the whole slot, so one uniqueness pass catches
            # a user id claimed by two shards (misconfigured feeds, a
            # damaged event log) before anything is ingested.
            ids = np.concatenate([batch.user_ids for batch in occupied])
            if np.unique(ids).size != ids.size:
                raise ValueError(
                    f"slot {t}: the same user id appears in batches from "
                    "more than one shard — shard feeds must cover "
                    "disjoint user ranges"
                )
        for shard in sorted(waiting):
            batch = waiting[shard]
            if batch.n_reports:
                # The group label is the shard (= global chunk) index, so
                # a median-of-means fold groups exactly as the offline
                # sharded runtime does.
                self.collector.ingest_batch(
                    t, batch.user_ids, batch.values, group=shard
                )
        count = self.collector.state.slot_counts.get(t, 0)
        mean = self.collector.population_mean(t) if count else None
        answers: Dict[str, Dict[str, Any]] = {}
        for name, engine in self._dashboards.items():
            if mean is not None:
                answers[name] = engine.push(mean)
            else:
                answers[name] = engine.answers()
        estimate = SlotEstimate(t=t, n_reports=count, mean=mean, answers=answers)
        self.slot_estimates.append(estimate)
        self._latencies.append(time.perf_counter() - self._first_seen.pop(t))
        self._next_slot = t + 1
        if self._wal is not None:
            # The commit record is the default fsync point: once it is
            # durable, power loss cannot take back a published slot.
            self._wal.append_commit(t, count, mean)
        self._emit(estimate.to_record())
        if self.on_slot_finalized is not None:
            self.on_slot_finalized(estimate, waiting)
        return estimate

    def finish(self) -> None:
        """Assert the run is complete and stop accepting batches.

        Raises:
            RuntimeError: some slots never completed their barrier —
                the message names the earliest incomplete slot and the
                shards it is still missing.
        """
        if self._finished:
            return
        if self._next_slot < self.horizon:
            t = self._next_slot
            received = set(self._pending.get(t, ()))
            missing = sorted(set(range(self.n_shards)) - received)
            raise RuntimeError(
                f"run incomplete: slot {t} finalized only with all "
                f"{self.n_shards} shard batches, but shards {missing} "
                "never delivered theirs"
            )
        self._finished = True

    # -- serving ---------------------------------------------------------

    def serve(
        self,
        feeds: Iterable[ShardFeed],
        max_workers: int = 1,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> LiveRunResult:
        """Drive a full run from shard feeds and return its result.

        Args:
            feeds: one :class:`~repro.service.feeds.ShardFeed` per shard
                (any iterable; ordering need not match shard indices).
            max_workers: ``1`` serves on the calling thread with a strict
                slot-major clock; ``>= 2`` runs producers on threads that
                push through the bounded queue (backpressure + coalescing
                engaged) while the calling thread consumes.
            metadata: extra fields for the ``run_started`` record.

        Returns:
            A :class:`LiveRunResult` whose collector is bit-identical to
            the offline sharded run's merged collector.
        """
        feeds = list(feeds)
        if len(feeds) != self.n_shards:
            raise ValueError(
                f"pipeline serves {self.n_shards} shards but got "
                f"{len(feeds)} feeds"
            )
        shards = sorted(feed.shard for feed in feeds)
        if shards != list(range(self.n_shards)):
            raise ValueError(
                f"feeds must cover shards 0..{self.n_shards - 1} exactly, "
                f"got {shards}"
            )
        max_workers = int(max_workers)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")

        self.start_run(metadata)

        start = time.perf_counter()
        queue_stats: Optional[QueueStats] = None
        try:
            if max_workers == 1:
                self._serve_serial(feeds)
            else:
                queue_stats = self._serve_threaded(feeds, max_workers)
            self.finish()
        except BaseException:
            # Flush sinks on the way out: a JSONL event log is post-mortem
            # evidence precisely when the run died mid-stream.
            for sink in self._sinks:
                sink.close()
            raise
        elapsed = time.perf_counter() - start
        return self.build_result(elapsed, queue_stats=queue_stats, feeds=feeds)

    def _serve_serial(self, feeds: List[ShardFeed]) -> None:
        """Strict slot clock: advance every shard once per tick."""
        iterators = [iter(feed) for feed in feeds]
        for _ in range(self.horizon):
            for iterator in iterators:
                self.submit(next(iterator))

    def _serve_threaded(self, feeds: List[ShardFeed], max_workers: int) -> QueueStats:
        """Producer threads push through the bounded queue; we consume."""
        import threading

        queue = BoundedBatchQueue(capacity=self.queue_capacity, coalesce=self.coalesce)
        n_producers = min(max_workers, len(feeds))
        errors: List[BaseException] = []
        remaining = [n_producers]
        lock = threading.Lock()
        clock = threading.Condition()

        def gate(batch: ReportBatch) -> None:
            # Slot-skew gate: never run more than max_slot_skew slots
            # ahead of the barrier clock, so a stalled shard cannot make
            # the others park the whole horizon in the barrier buffer.
            # The laggard shard (batch.t == next_slot) passes untouched,
            # which is what makes the gate deadlock-free.  The timeout
            # re-check covers a clock advance raced between the predicate
            # and the wait.
            with clock:
                while (
                    batch.t >= self._next_slot + self.max_slot_skew
                    and not queue.closed
                ):
                    clock.wait(0.05)

        def produce(assigned: List[ShardFeed]) -> None:
            # Slot-major interleave across this worker's feeds keeps the
            # barrier buffer small: no feed runs a full horizon ahead.
            try:
                iterators = [iter(feed) for feed in assigned]
                for _ in range(self.horizon):
                    for iterator in iterators:
                        batch = next(iterator)
                        gate(batch)
                        queue.put(batch)
            except QueueClosedError:
                pass
            except BaseException as error:  # propagate to the consumer
                errors.append(error)
                queue.close(abort=True)
            finally:
                with lock:
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        queue.close()
                with clock:
                    clock.notify_all()

        threads = [
            threading.Thread(
                target=produce,
                args=(feeds[index::n_producers],),
                name=f"repro-feed-{index}",
                daemon=True,
            )
            for index in range(n_producers)
        ]
        for thread in threads:
            thread.start()
        try:
            while True:
                drained = queue.get_batch()
                if not drained:
                    break
                before = self._next_slot
                for batch in drained:
                    self.submit(batch)
                if self._next_slot != before:
                    with clock:
                        clock.notify_all()
        except BaseException:
            queue.close(abort=True)
            with clock:
                clock.notify_all()
            raise
        finally:
            for thread in threads:
                thread.join()
        if errors:
            raise errors[0]
        return queue.stats


def run_live(
    source,
    algorithm: "str | Sequence[str]" = "capp",
    epsilon: float = 1.0,
    w: int = 10,
    smoothing_window: Optional[int] = 3,
    participation: "float | Sequence[float] | None" = None,
    seed: int = 0,
    chunk_size: Optional[int] = None,
    max_workers: int = 1,
    queue_capacity: int = 256,
    coalesce: int = 8,
    max_slot_skew: int = 8,
    sinks: Sequence[Sink] = (),
    dashboards: Optional[Dict[str, StreamingQueryEngine]] = None,
    record_batches: bool = False,
    track_users: bool = False,
    keep_reports: bool = True,
    record_history: bool = False,
    attack=None,
    robust_policy=None,
) -> LiveRunResult:
    """Serve a population source through the live ingestion pipeline.

    The online counterpart of
    :func:`~repro.runtime.run_protocol_sharded`: same per-shard
    randomness, same merge order, bit-identical collector — but slots
    stream through continuously, dashboards update incrementally, and
    sinks observe every event as it happens.  The w-event audit runs
    before returning, exactly like the offline path.

    Args:
        source: a :class:`~repro.runtime.sources.StreamSource` or raw
            ``(users, slots)`` matrix (wrapped via ``chunk_size``).
        algorithm, epsilon, w, smoothing_window, participation, seed:
            protocol parameters, as in the offline runtime.
        chunk_size: users per shard when ``source`` is a raw matrix.
        max_workers: producer threads (``1`` = strict serial slot clock).
        queue_capacity, coalesce, max_slot_skew: threaded-mode admission
            control (queue depth and producer slot-skew bound).
        sinks: output sinks attached for the run (closed afterwards).
        dashboards: ``{name: StreamingQueryEngine}`` fed by slot means.
        record_batches: emit every batch to sinks (replayable capture).
        track_users, keep_reports: collector memory/feature switches.
        record_history: keep full per-slot budget ledgers on the feeds.
        attack: optional :class:`~repro.adversary.AttackSpec` (or dict
            form); ``None`` uses the source's default.
        robust_policy: optional
            :class:`~repro.adversary.RobustPolicy` (or name/dict form)
            applied by the pipeline's collector.

    Returns:
        A :class:`LiveRunResult` (already audited).
    """
    feeds = shard_feeds(
        source,
        algorithm=algorithm,
        epsilon=epsilon,
        w=w,
        participation=participation,
        seed=seed,
        chunk_size=chunk_size,
        record_history=record_history,
        attack=attack,
    )
    horizon = feeds[0].horizon if feeds else 0
    if not feeds:
        raise ValueError("source yielded no chunks; nothing to serve")
    pipeline = IngestionPipeline(
        n_shards=len(feeds),
        horizon=horizon,
        epsilon=epsilon,
        w=w,
        smoothing_window=smoothing_window,
        track_users=track_users,
        keep_reports=keep_reports,
        queue_capacity=queue_capacity,
        coalesce=coalesce,
        max_slot_skew=max_slot_skew,
        record_batches=record_batches,
        robust_policy=robust_policy,
    )
    for sink in sinks:
        pipeline.add_sink(sink)
    for name, engine in (dashboards or {}).items():
        pipeline.register_dashboard(name, engine)
    metadata = {
        "algorithm": algorithm if isinstance(algorithm, str) else "per-user",
        "seed": int(seed),
    }
    result = pipeline.serve(feeds, max_workers=max_workers, metadata=metadata)
    result.assert_valid()
    return result


def replay_event_log(
    log: Union[EventLogSource, str],
    sinks: Sequence[Sink] = (),
    dashboards: Optional[Dict[str, StreamingQueryEngine]] = None,
    record_batches: bool = False,
) -> LiveRunResult:
    """Re-ingest a recorded run from its JSONL event log.

    Rebuilds a pipeline from the log's ``run_started`` configuration and
    replays every recorded batch through the same slot barrier, so the
    resulting collector is bit-identical to the recording run's — no
    mechanism is re-run, no budget is re-spent (the values are already
    sanitized, and the audit ran when the log was recorded).
    """
    source = log if isinstance(log, EventLogSource) else EventLogSource(log)
    meta = source.metadata()
    pipeline = IngestionPipeline(
        n_shards=int(meta["n_shards"]),
        horizon=int(meta["horizon"]),
        epsilon=float(meta["epsilon"]),
        w=int(meta["w"]),
        smoothing_window=meta.get("smoothing_window"),
        track_users=bool(meta.get("track_users", False)),
        keep_reports=bool(meta.get("keep_reports", True)),
        record_batches=record_batches,
        robust_policy=meta.get("robust_policy"),
    )
    for sink in sinks:
        pipeline.add_sink(sink)
    for name, engine in (dashboards or {}).items():
        pipeline.register_dashboard(name, engine)
    pipeline._emit({**meta, "replayed_from": source.path})

    start = time.perf_counter()
    try:
        for batch in source.batches():
            pipeline.submit(batch)
        pipeline.finish()
    except BaseException:
        for sink in sinks:
            sink.close()
        raise
    elapsed = time.perf_counter() - start
    return pipeline.build_result(elapsed, extra={"replayed_from": source.path})
