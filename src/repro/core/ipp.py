"""Iterative Perturbation Parameterization (IPP) — Section III-C.

The strawman dual-utilization algorithm: the input to the randomizer at
slot ``t`` is the true value plus only the *previous* slot's deviation,

    x^I_t = clip(x_t + d_{t-1}, [0, 1]),    d_t = x_t - x'_t,

so each perturbation partially corrects the error of the one before it
(Lemma III.1 shows the mean deviation improves over direct SW).
"""

from __future__ import annotations

import numpy as np

from ..mechanisms import Mechanism
from ..privacy import WEventAccountant
from .base import StreamPerturber

__all__ = ["IPP"]


class IPP(StreamPerturber):
    """Iterative Perturbation Parameterization.

    The paper publishes IPP output raw (no smoothing); pass
    ``smoothing_window`` to change that.
    """

    def _perturb_prepared(
        self,
        values: np.ndarray,
        mechanism: Mechanism,
        accountant: WEventAccountant,
        rng: np.random.Generator,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, float]":
        n = values.size
        inputs = np.empty(n)
        perturbed = np.empty(n)
        deviations = np.empty(n)

        last_deviation = 0.0
        for t in range(n):
            inputs[t] = float(np.clip(values[t] + last_deviation, 0.0, 1.0))
            perturbed[t] = float(mechanism.perturb(inputs[t], rng))
            accountant.charge(t, self.epsilon_per_slot)
            last_deviation = values[t] - perturbed[t]
            deviations[t] = last_deviation
        return inputs, perturbed, deviations, last_deviation

    def _make_batch_engine(self, n_users, rng, horizon=None, record_history=True):
        from .online import BatchOnlineIPP

        return BatchOnlineIPP(
            self.epsilon,
            self.w,
            n_users,
            rng,
            mechanism=self.mechanism_class,
            record_history=record_history,
        )
