"""Perturbation Parameterization with Sampling (PP-S) — Section V, Alg. 3.

PP-S divides the query interval into ``n_s`` segments, uploads each
segment's *mean* under a perturbation-parameterization algorithm, and
replicates each report across its segment to restore a full-length stream.
Sampling concentrates budget: any ``w``-slot window contains at most
``n_w = ceil(w / segment_length)`` uploads, so each upload runs with
``eps / n_w`` (Theorem 6) instead of ``eps / w``.

The number of segments is chosen by the paper's Equation 12:
``argmin_{n_s} n_s * Var(n_s, eps)`` where ``Var`` is the variance of the
sample variance of ``n_s`` SW reports at the worst case ``x = 1``.

Note on Algorithm 3, line 2: the listing reads ``eps_w = eps / gamma`` with
``gamma = min(floor(len / n_s), w)``, but both the worked example of Fig. 3
(segment length = w = 3 gives the *full* budget per upload) and Theorem 6
require ``eps / n_w``.  We implement the theorem-consistent rule;
``literal_gamma_budget`` computes the listing's value for comparison (see
``benchmarks/bench_ablation_sampling_budget.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Type, Union

import numpy as np

from .._validation import (
    ensure_epsilon,
    ensure_in_unit_interval,
    ensure_positive_int,
    ensure_rng,
    ensure_stream_matrix,
    ensure_window,
)
from ..mechanisms.moments import output_moments_at_one, variance_of_sample_variance
from ..privacy import WEventAccountant, per_sample_budget, samples_per_window
from .app import APP
from .base import PerturbationResult, StreamPerturber
from .capp import CAPP
from .ipp import IPP

__all__ = [
    "segment_bounds",
    "segment_means",
    "replicate_segments",
    "choose_num_samples",
    "classify_tail",
    "recommend_num_samples",
    "literal_gamma_budget",
    "SamplingResult",
    "PPSampling",
]

#: registry of base perturbers accepted by name
_BASE_REGISTRY = {"ipp": IPP, "app": APP, "capp": CAPP}


def segment_bounds(length: int, n_segments: int) -> "list[tuple[int, int]]":
    """Split ``range(length)`` into ``n_segments`` half-open spans.

    Each segment has ``floor(length / n_segments)`` slots; per the paper's
    footnote, the remainder goes to the *last* segment.
    """
    length = ensure_positive_int(length, "length")
    n_segments = ensure_positive_int(n_segments, "n_segments")
    if n_segments > length:
        raise ValueError(
            f"n_segments={n_segments} exceeds interval length {length}"
        )
    base = length // n_segments
    bounds = [(r * base, (r + 1) * base) for r in range(n_segments)]
    start, _ = bounds[-1]
    bounds[-1] = (start, length)  # remainder joins the last segment
    return bounds


def segment_means(values: np.ndarray, n_segments: int) -> np.ndarray:
    """Per-segment means ``s_r`` of a stream (the uploaded statistics)."""
    arr = np.asarray(values, dtype=float)
    return np.array(
        [arr[lo:hi].mean() for lo, hi in segment_bounds(arr.size, n_segments)]
    )


def replicate_segments(
    reports: np.ndarray, length: int, n_segments: int
) -> np.ndarray:
    """Expand per-segment reports back to a full-length stream."""
    reports = np.asarray(reports, dtype=float)
    bounds = segment_bounds(length, n_segments)
    if reports.size != len(bounds):
        raise ValueError(
            f"got {reports.size} reports for {len(bounds)} segments"
        )
    full = np.empty(length)
    for (lo, hi), value in zip(bounds, reports):
        full[lo:hi] = value
    return full


def literal_gamma_budget(epsilon: float, w: int, length: int, n_segments: int) -> float:
    """Algorithm 3 line 2 verbatim: ``eps / min(floor(len/n_s), w)``.

    Kept only for the ablation comparing the listing against Theorem 6.
    """
    epsilon = ensure_epsilon(epsilon)
    gamma = min(length // n_segments, ensure_window(w))
    if gamma < 1:
        raise ValueError("segment length is zero; reduce n_segments")
    return epsilon / gamma


def choose_num_samples(
    length: int,
    w: int,
    epsilon: float,
    max_segments: Optional[int] = None,
    literal_variance: bool = False,
) -> int:
    """Equation 12: pick ``n_s`` minimizing ``n_s * Var(n_s, eps)``.

    For each candidate the per-upload budget follows Theorem 6 (it depends
    on ``n_s`` through the segment length), and the moments are the SW
    output moments at ``x = 1`` under that budget.

    Args:
        length: query-interval length ``j - i + 1``.
        w: window size.
        epsilon: total w-event budget.
        max_segments: cap on candidates (default ``length``).
        literal_variance: use the paper's Eq. 13 text verbatim (see
            :func:`repro.mechanisms.moments.variance_of_sample_variance`).

    Returns:
        The minimizing ``n_s`` (>= 2; the sample variance is undefined for
        a single sample, so ``n_s = 1`` never wins).
    """
    length = ensure_positive_int(length, "length")
    w = ensure_window(w)
    epsilon = ensure_epsilon(epsilon)
    # Candidates keep segment length >= 2 so PP-S actually aggregates;
    # seg_len = 1 degenerates to per-slot reporting (identical to the
    # non-sampling algorithm), which the paper's guidelines exclude by
    # recommending "moderate" n_s.
    limit = length // 2 if max_segments is None else min(length // 2, max_segments)
    if limit < 2:
        return 1

    best_ns, best_value = 2, float("inf")
    for n_segments in range(2, limit + 1):
        seg_len = length // n_segments
        if seg_len < 2:
            break
        eps_sample = per_sample_budget(epsilon, w, seg_len)
        _, sigma2, mu4 = output_moments_at_one(eps_sample)
        objective = n_segments * variance_of_sample_variance(
            n_segments, sigma2, mu4, literal=literal_variance
        )
        if objective < best_value:
            best_ns, best_value = n_segments, objective
    return best_ns


#: excess-kurtosis threshold separating light from heavy tails; the
#: normal distribution has 0, uniform -1.2, Laplace +3; values above
#: this mark the "heavy-tailed" regime of the paper's guidelines.
_HEAVY_TAIL_KURTOSIS = 1.0


def classify_tail(values: Sequence[float], threshold: float = _HEAVY_TAIL_KURTOSIS) -> str:
    """Classify a sample as ``"heavy"`` or ``"light"`` tailed.

    Uses excess kurtosis — the fourth-moment statistic the paper's
    Section-V guidelines reason about ("for heavy-tailed distributions …
    Var(n_s, eps) tends to grow without bound").
    """
    arr = np.asarray(values, dtype=float)
    if arr.size < 4:
        raise ValueError("need at least 4 values to estimate kurtosis")
    centered = arr - arr.mean()
    variance = float(np.mean(centered**2))
    if variance == 0.0:
        return "light"  # constant data has no tails at all
    kurtosis = float(np.mean(centered**4)) / variance**2 - 3.0
    return "heavy" if kurtosis > threshold else "light"


def recommend_num_samples(
    length: int,
    w: int,
    epsilon: float,
    values: Optional[Sequence[float]] = None,
    tail: Optional[str] = None,
) -> int:
    """Section V's heuristic guidelines for choosing ``n_s``.

    * **heavy-tailed** data: "selecting a relatively small n_s is
      recommended to prevent the potential explosion of Var(n_s, eps)" —
      we return the smallest aggregating choice (2, or 1 for degenerate
      intervals);
    * **light-tailed** data: "selecting a moderate value of n_s
      represents a robust choice" — we return the Equation-12 minimizer
      from :func:`choose_num_samples`.

    Args:
        length, w, epsilon: interval length, window, total budget.
        values: optional data sample used to classify the tail (uses its
            kurtosis); ignored when ``tail`` is given.
        tail: explicit ``"heavy"``/``"light"`` override.

    Raises:
        ValueError: if neither ``values`` nor ``tail`` is provided, or
            ``tail`` is not a recognized label.
    """
    if tail is None:
        if values is None:
            raise ValueError("provide either a data sample or an explicit tail label")
        tail = classify_tail(values)
    if tail not in ("heavy", "light"):
        raise ValueError(f"tail must be 'heavy' or 'light', got {tail!r}")
    length = ensure_positive_int(length, "length")
    if tail == "heavy":
        return min(2, length)
    return choose_num_samples(length, w, epsilon)


@dataclass
class SamplingResult:
    """Output of one PP-S run.

    Attributes:
        original: full-length true stream.
        segment_means: the uploaded statistics ``s_r`` (true values).
        segment_reports: perturbed segment reports ``s'_r``.
        perturbed: reports replicated back to full length.
        published: the base algorithm's published (smoothed) reports,
            replicated to full length.
        n_samples: number of segments ``n_s``.
        segment_length: slots per segment (``floor(len / n_s)``).
        epsilon_per_sample: budget each upload consumed (Theorem 6).
        base_result: the inner perturbation result at segment granularity.
        accountant: slot-granularity w-event ledger for the full interval.
    """

    original: np.ndarray
    segment_means: np.ndarray
    segment_reports: np.ndarray
    perturbed: np.ndarray
    published: np.ndarray
    n_samples: int
    segment_length: int
    epsilon_per_sample: float
    base_result: PerturbationResult = field(repr=False)
    accountant: WEventAccountant = field(repr=False)

    def __len__(self) -> int:
        return self.original.size

    def mean_estimate(self) -> float:
        """Collector-side mean over the interval (segment-length weighted)."""
        return float(np.mean(self.perturbed))


class PPSampling(StreamPerturber):
    """Perturbation Parameterization Sampling (PP-S).

    Args:
        epsilon: total w-event budget.
        w: window size.
        base: inner PP algorithm — ``"ipp"``, ``"app"``, ``"capp"`` or a
            :class:`StreamPerturber` subclass.
        n_samples: number of segments; chosen by Equation 12 when omitted.
        base_kwargs: extra keyword arguments for the inner perturber.
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        base: Union[str, Type[StreamPerturber]] = "capp",
        n_samples: Optional[int] = None,
        base_kwargs: Optional[dict] = None,
    ) -> None:
        super().__init__(epsilon, w)
        if isinstance(base, str):
            key = base.lower()
            if key not in _BASE_REGISTRY:
                known = ", ".join(sorted(_BASE_REGISTRY))
                raise KeyError(f"unknown base algorithm {base!r}; known: {known}")
            self.base_class: Type[StreamPerturber] = _BASE_REGISTRY[key]
        elif isinstance(base, type) and issubclass(base, StreamPerturber):
            self.base_class = base
        else:
            raise TypeError(f"base must be a name or StreamPerturber subclass, got {base!r}")
        if n_samples is not None:
            n_samples = ensure_positive_int(n_samples, "n_samples")
        self.n_samples = n_samples
        self.base_kwargs = dict(base_kwargs or {})

    def _perturb_prepared(self, values, mechanism, accountant, rng):  # pragma: no cover
        raise NotImplementedError("PPSampling overrides perturb_stream directly")

    def perturb_stream(
        self,
        values: Sequence[float],
        rng: Optional[np.random.Generator] = None,
    ) -> SamplingResult:
        """Run PP-S over a full query interval."""
        arr = ensure_in_unit_interval(values)
        rng = ensure_rng(rng)
        length = arr.size

        n_samples = self.n_samples or choose_num_samples(length, self.w, self.epsilon)
        n_samples = min(n_samples, length)
        seg_len = length // n_samples
        n_w = samples_per_window(self.w, seg_len)
        eps_sample = per_sample_budget(self.epsilon, self.w, seg_len)

        means = segment_means(arr, n_samples)
        # Segment means can stray outside [0, 1] only by numeric error.
        means = np.clip(means, 0.0, 1.0)

        # The inner perturber sees one "slot" per segment; giving it window
        # n_w makes its per-slot budget exactly eps / n_w (Theorem 6).
        inner = self.base_class(
            epsilon=eps_sample * n_w, w=n_w, **self.base_kwargs
        )
        base_result = inner.perturb_stream(means, rng)

        # Slot-granularity audit over the original timeline: one charge of
        # eps_sample at each segment's predetermined upload position.
        accountant = WEventAccountant(self.epsilon, self.w)
        for lo, _ in segment_bounds(length, n_samples):
            accountant.charge(lo, eps_sample)
        accountant.assert_valid()

        perturbed = replicate_segments(base_result.perturbed, length, n_samples)
        published = replicate_segments(base_result.published, length, n_samples)
        return SamplingResult(
            original=arr,
            segment_means=means,
            segment_reports=base_result.perturbed.copy(),
            perturbed=perturbed,
            published=published,
            n_samples=n_samples,
            segment_length=seg_len,
            epsilon_per_sample=eps_sample,
            base_result=base_result,
            accountant=accountant,
        )

    def perturb_population(
        self,
        streams: "Sequence[Sequence[float]] | np.ndarray",
        rng: Optional[np.random.Generator] = None,
    ):
        """Vectorized PP-S over a whole population (same interval per user).

        Mirrors :meth:`perturb_stream` step for step — per-user segment
        means, one batched inner PP pass over the ``(n_users, n_s)``
        means matrix, replication back to full length — so with one user
        the two paths are bit-identical given the same generator
        (tested).  The slot-granularity audit charges every user
        ``eps_sample`` at each segment's upload position, exactly like
        the scalar ledger.
        """
        from ..core.base import PopulationPerturbationResult
        from ..privacy import BatchWEventAccountant

        matrix = ensure_stream_matrix(streams)
        if matrix.shape[0] == 0:
            raise ValueError("streams must be non-empty")
        rng = ensure_rng(rng)
        n_users, length = matrix.shape

        n_samples = self.n_samples or choose_num_samples(length, self.w, self.epsilon)
        n_samples = min(n_samples, length)
        seg_len = length // n_samples
        n_w = samples_per_window(self.w, seg_len)
        eps_sample = per_sample_budget(self.epsilon, self.w, seg_len)
        bounds = segment_bounds(length, n_samples)

        means = np.column_stack(
            [matrix[:, lo:hi].mean(axis=1) for lo, hi in bounds]
        )
        means = np.clip(means, 0.0, 1.0)

        inner = self.base_class(
            epsilon=eps_sample * n_w, w=n_w, **self.base_kwargs
        )
        base = inner.perturb_population(means, rng)

        perturbed = np.empty_like(matrix)
        published = np.empty_like(matrix)
        for r, (lo, hi) in enumerate(bounds):
            perturbed[:, lo:hi] = base.perturbed[:, r : r + 1]
            published[:, lo:hi] = base.published[:, r : r + 1]

        accountant = BatchWEventAccountant(self.epsilon, self.w, n_users)
        starts = {lo for lo, _ in bounds}
        for t in range(length):
            accountant.charge_next(eps_sample if t in starts else 0.0)
        accountant.assert_valid()

        return PopulationPerturbationResult(
            original=matrix.copy(),
            perturbed=perturbed,
            published=published,
            deviations=matrix - perturbed,
            accumulated_deviation=np.array(
                base.accumulated_deviation, dtype=float, copy=True
            ),
            epsilon_per_slot=eps_sample,
            accountant=accountant,
        )

    def _make_batch_engine(self, n_users, rng, horizon=None, record_history=True):
        from ..baselines.batch import BatchPPSampling

        if horizon is None:
            raise ValueError(
                "PP-S segmentation needs the stream horizon up front; pass "
                "horizon= when building its batch engine"
            )
        return BatchPPSampling(
            self.epsilon,
            self.w,
            n_users,
            horizon,
            base=self.base_class,
            n_samples=self.n_samples,
            base_kwargs=self.base_kwargs,
            rng=rng,
            record_history=record_history,
        )
