"""Accumulated Perturbation Parameterization (APP) — Section IV-A, Alg. 1.

APP carries the *accumulated* deviation ``D = sum_t d_t`` of every previous
slot into the next input,

    x^I_t = clip(x_t + D, [0, 1]),    d_t = x_t - x'_t,    D += d_t,

so the running sum of reports tracks the running sum of true values
(Lemma IV.2: the mean error shrinks as more history is folded in).  The
published stream is SMA-smoothed (Lemma IV.1) with the paper's window of 3
by default.
"""

from __future__ import annotations

from typing import Optional, Type, Union

import numpy as np

from ..mechanisms import Mechanism
from ..privacy import WEventAccountant
from .base import DEFAULT_SMOOTHING_WINDOW, StreamPerturber

__all__ = ["APP"]


class APP(StreamPerturber):
    """Accumulated Perturbation Parameterization with SMA post-processing."""

    def __init__(
        self,
        epsilon: float,
        w: int,
        mechanism: Union[str, Type[Mechanism], None] = None,
        smoothing_window: Optional[int] = DEFAULT_SMOOTHING_WINDOW,
    ) -> None:
        super().__init__(epsilon, w, mechanism, smoothing_window)

    def _perturb_prepared(
        self,
        values: np.ndarray,
        mechanism: Mechanism,
        accountant: WEventAccountant,
        rng: np.random.Generator,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, float]":
        n = values.size
        inputs = np.empty(n)
        perturbed = np.empty(n)
        deviations = np.empty(n)

        accumulated = 0.0
        for t in range(n):
            inputs[t] = float(np.clip(values[t] + accumulated, 0.0, 1.0))
            perturbed[t] = float(mechanism.perturb(inputs[t], rng))
            accountant.charge(t, self.epsilon_per_slot)
            deviations[t] = values[t] - perturbed[t]
            accumulated += deviations[t]
        return inputs, perturbed, deviations, accumulated

    def _make_batch_engine(self, n_users, rng, horizon=None, record_history=True):
        from .online import BatchOnlineAPP

        return BatchOnlineAPP(
            self.epsilon,
            self.w,
            n_users,
            rng,
            mechanism=self.mechanism_class,
            record_history=record_history,
        )
