"""Online (push-style) stream perturbers for unbounded streams.

The batch :class:`~repro.core.base.StreamPerturber` API consumes a whole
subsequence at once — convenient for experiments, but a deployed client
sees one value per time slot and must report immediately.  The online
perturbers here expose exactly that protocol::

    publisher = OnlineCAPP(epsilon=1.0, w=24)
    for x in sensor_readings():          # possibly infinite
        report = publisher.submit(x)     # perturb + charge budget now
        send_to_collector(report)

Each ``submit`` charges the w-event accountant at the current slot, so an
online publisher can run forever at a constant ``eps / w`` rate.  The
implementations mirror the batch algorithms step for step; given the same
generator state they produce bit-identical reports (tested).

Collector-side smoothing is available incrementally through
:class:`OnlineSmoother`, which emits the centered-SMA value for a slot as
soon as its right context is complete (i.e. with a ``k``-slot delay).
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from .._validation import (
    ensure_epsilon,
    ensure_positive_int,
    ensure_rng,
    ensure_window,
)
from ..mechanisms import Mechanism, SquareWaveMechanism
from ..privacy import WEventAccountant
from .clipping import DEFAULT_DELTA_CLAMP, ClipBounds, choose_clip_bounds

__all__ = [
    "OnlinePerturber",
    "OnlineSWDirect",
    "OnlineIPP",
    "OnlineAPP",
    "OnlineCAPP",
    "OnlineSmoother",
]


class OnlinePerturber(abc.ABC):
    """Base class for push-style perturbers.

    Args:
        epsilon: total w-event budget.
        w: window size (per-slot budget ``epsilon / w``).
        rng: randomness source used by every subsequent :meth:`submit`.
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.epsilon = ensure_epsilon(epsilon)
        self.w = ensure_window(w)
        self.epsilon_per_slot = self.epsilon / self.w
        self.accountant = WEventAccountant(self.epsilon, self.w)
        self._rng = ensure_rng(rng)
        self._t = 0

    @property
    def slots_processed(self) -> int:
        """Number of values submitted so far."""
        return self._t

    @abc.abstractmethod
    def _perturb_one(self, x: float) -> float:
        """Algorithm-specific single-slot step (state update included)."""

    def submit(self, x: float) -> float:
        """Perturb one stream value and return its report.

        Raises:
            ValueError: if ``x`` is outside ``[0, 1]`` or not finite.
        """
        value = float(x)
        if not np.isfinite(value):
            raise ValueError("submitted value must be finite")
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"submitted value must lie in [0, 1], got {value}")
        report = self._perturb_one(value)
        self.accountant.charge(self._t, self.epsilon_per_slot)
        self._t += 1
        return report

    def submit_many(self, values: "list[float] | np.ndarray") -> np.ndarray:
        """Convenience loop over :meth:`submit`."""
        return np.array([self.submit(v) for v in np.asarray(values, dtype=float)])

    def skip(self) -> None:
        """Advance one slot without reporting (user offline / no reading).

        The slot spends zero budget; the w-event guarantee is unaffected
        (skipping can only reduce window spends).  Algorithm state
        (accumulated deviations) is left untouched — the next report
        corrects for everything reported so far, which is exactly the
        dual-utilization semantics.
        """
        self.accountant.charge(self._t, 0.0)
        self._t += 1


class OnlineSWDirect(OnlinePerturber):
    """Per-slot SW reporting (the online SW-direct baseline)."""

    def __init__(self, epsilon, w, rng=None):
        super().__init__(epsilon, w, rng)
        self._mechanism: Mechanism = SquareWaveMechanism(self.epsilon_per_slot)

    def _perturb_one(self, x: float) -> float:
        return float(self._mechanism.perturb(x, self._rng))


class OnlineIPP(OnlinePerturber):
    """Online Iterative Perturbation Parameterization (Section III-C)."""

    def __init__(self, epsilon, w, rng=None):
        super().__init__(epsilon, w, rng)
        self._mechanism = SquareWaveMechanism(self.epsilon_per_slot)
        self._last_deviation = 0.0

    def _perturb_one(self, x: float) -> float:
        adjusted = float(np.clip(x + self._last_deviation, 0.0, 1.0))
        report = float(self._mechanism.perturb(adjusted, self._rng))
        self._last_deviation = x - report
        return report


class OnlineAPP(OnlinePerturber):
    """Online Accumulated Perturbation Parameterization (Algorithm 1)."""

    def __init__(self, epsilon, w, rng=None):
        super().__init__(epsilon, w, rng)
        self._mechanism = SquareWaveMechanism(self.epsilon_per_slot)
        self.accumulated_deviation = 0.0

    def _perturb_one(self, x: float) -> float:
        adjusted = float(np.clip(x + self.accumulated_deviation, 0.0, 1.0))
        report = float(self._mechanism.perturb(adjusted, self._rng))
        self.accumulated_deviation += x - report
        return report


class OnlineCAPP(OnlinePerturber):
    """Online Clipped Accumulated Perturbation Parameterization (Alg. 2)."""

    def __init__(
        self,
        epsilon,
        w,
        rng=None,
        clip_bounds: Optional[ClipBounds] = None,
        delta_clamp: Optional["tuple[float, float]"] = DEFAULT_DELTA_CLAMP,
    ):
        super().__init__(epsilon, w, rng)
        self._mechanism = SquareWaveMechanism(self.epsilon_per_slot)
        self.clip_bounds = clip_bounds or choose_clip_bounds(
            self.epsilon_per_slot, delta_clamp
        )
        self.accumulated_deviation = 0.0

    def _perturb_one(self, x: float) -> float:
        low, high = self.clip_bounds.low, self.clip_bounds.high
        width = self.clip_bounds.width
        adjusted = float(np.clip(x + self.accumulated_deviation, low, high))
        normalized = (adjusted - low) / width
        raw = float(self._mechanism.perturb(normalized, self._rng))
        report = raw * width + low
        self.accumulated_deviation += x - report
        return report


class OnlineSmoother:
    """Incremental centered SMA with the batch algorithm's boundary rule.

    Feeding reports one at a time, :meth:`push` returns the smoothed value
    for the oldest slot whose full right context has arrived (``None``
    while warming up); :meth:`flush` emits the remaining boundary slots.
    The concatenated output equals
    :func:`repro.core.smoothing.simple_moving_average` on the full series
    (tested), so collectors can smooth infinite streams with ``k`` slots
    of latency and O(window) memory.
    """

    def __init__(self, window: int) -> None:
        window = ensure_positive_int(window, "window")
        if window % 2 == 0:
            raise ValueError("window must be odd (centered SMA)")
        self.window = window
        self.k = window // 2
        self._buffer: List[float] = []
        self._emitted = 0  # index of the next slot to emit
        self._received = 0

    def push(self, value: float) -> "list[float]":
        """Add one report; return smoothed values that became final."""
        self._buffer.append(float(value))
        self._received += 1
        out: List[float] = []
        # Slot t is final once slot t + k has arrived.
        while self._emitted + self.k < self._received:
            out.append(self._smooth_at(self._emitted))
            self._emitted += 1
        # Keep only what future windows need.
        self._trim()
        return out

    def flush(self) -> "list[float]":
        """Emit the trailing boundary slots (stream ended)."""
        out: List[float] = []
        while self._emitted < self._received:
            out.append(self._smooth_at(self._emitted))
            self._emitted += 1
        return out

    def _smooth_at(self, t: int) -> float:
        offset = self._received - len(self._buffer)
        lo = max(0, t - self.k) - offset
        hi = min(self._received - 1, t + self.k) - offset
        window = self._buffer[lo : hi + 1]
        return float(sum(window) / len(window))

    def _trim(self) -> None:
        # The earliest slot any future emission can reference is
        # (next-to-emit) - k.
        keep_from = max(0, self._emitted - self.k)
        offset = self._received - len(self._buffer)
        drop = keep_from - offset
        if drop > 0:
            del self._buffer[:drop]
