"""Online (push-style) stream perturbers for unbounded streams.

The batch :class:`~repro.core.base.StreamPerturber` API consumes a whole
subsequence at once — convenient for experiments, but a deployed client
sees one value per time slot and must report immediately.  The online
perturbers here expose exactly that protocol::

    publisher = OnlineCAPP(epsilon=1.0, w=24)
    for x in sensor_readings():          # possibly infinite
        report = publisher.submit(x)     # perturb + charge budget now
        send_to_collector(report)

Each ``submit`` charges the w-event accountant at the current slot, so an
online publisher can run forever at a constant ``eps / w`` rate.  The
implementations mirror the batch algorithms step for step; given the same
generator state they produce bit-identical reports (tested).

Collector-side smoothing is available incrementally through
:class:`OnlineSmoother`, which emits the centered-SMA value for a slot as
soon as its right context is complete (i.e. with a ``k``-slot delay).

For population-scale simulation the per-user classes are mirrored by
*batched* engines (:class:`BatchOnlineSWDirect`, :class:`BatchOnlineIPP`,
:class:`BatchOnlineAPP`, :class:`BatchOnlineCAPP`): one engine holds the
algorithm state of ``n_users`` independent streams as NumPy arrays and
each ``submit`` perturbs a whole ``(n_users,)`` slot slice in a handful of
vectorized operations.  With one user the batched engines are
bit-identical to their scalar counterparts given the same generator
(tested); with many users they are distributionally equivalent, since
independent per-user draws and one shared vectorized draw follow the same
law.  The baseline algorithms' batched engines live in
:mod:`repro.baselines.batch` and follow the same contract; all of them
are reachable by paper name through :mod:`repro.registry`.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Type, Union

import numpy as np

from .._validation import (
    ensure_epsilon,
    ensure_positive_int,
    ensure_rng,
    ensure_window,
)
from ..mechanisms import Mechanism, SquareWaveMechanism
from ..privacy import BatchWEventAccountant, WEventAccountant
from .clipping import DEFAULT_DELTA_CLAMP, ClipBounds, choose_clip_bounds

__all__ = [
    "OnlinePerturber",
    "OnlineSWDirect",
    "OnlineIPP",
    "OnlineAPP",
    "OnlineCAPP",
    "OnlineSmoother",
    "BatchOnlinePerturber",
    "BatchOnlineSWDirect",
    "BatchOnlineIPP",
    "BatchOnlineAPP",
    "BatchOnlineCAPP",
]


class OnlinePerturber(abc.ABC):
    """Base class for push-style perturbers.

    Args:
        epsilon: total w-event budget.
        w: window size (per-slot budget ``epsilon / w``).
        rng: randomness source used by every subsequent :meth:`submit`.
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.epsilon = ensure_epsilon(epsilon)
        self.w = ensure_window(w)
        self.epsilon_per_slot = self.epsilon / self.w
        self.accountant = WEventAccountant(self.epsilon, self.w)
        self._rng = ensure_rng(rng)
        self._t = 0

    @property
    def slots_processed(self) -> int:
        """Number of values submitted so far."""
        return self._t

    @abc.abstractmethod
    def _perturb_one(self, x: float) -> float:
        """Algorithm-specific single-slot step (state update included)."""

    def submit(self, x: float) -> float:
        """Perturb one stream value and return its report.

        Raises:
            ValueError: if ``x`` is outside ``[0, 1]`` or not finite.
        """
        value = float(x)
        if not np.isfinite(value):
            raise ValueError("submitted value must be finite")
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"submitted value must lie in [0, 1], got {value}")
        report = self._perturb_one(value)
        self.accountant.charge(self._t, self.epsilon_per_slot)
        self._t += 1
        return report

    def submit_many(self, values: "list[float] | np.ndarray") -> np.ndarray:
        """Convenience loop over :meth:`submit`."""
        return np.array([self.submit(v) for v in np.asarray(values, dtype=float)])

    def skip(self) -> None:
        """Advance one slot without reporting (user offline / no reading).

        The slot spends zero budget; the w-event guarantee is unaffected
        (skipping can only reduce window spends).  Algorithm state
        (accumulated deviations) is left untouched — the next report
        corrects for everything reported so far, which is exactly the
        dual-utilization semantics.
        """
        self.accountant.charge(self._t, 0.0)
        self._t += 1


class OnlineSWDirect(OnlinePerturber):
    """Per-slot SW reporting (the online SW-direct baseline)."""

    def __init__(self, epsilon, w, rng=None):
        super().__init__(epsilon, w, rng)
        self._mechanism: Mechanism = SquareWaveMechanism(self.epsilon_per_slot)

    def _perturb_one(self, x: float) -> float:
        return float(self._mechanism.perturb(x, self._rng))


class OnlineIPP(OnlinePerturber):
    """Online Iterative Perturbation Parameterization (Section III-C)."""

    def __init__(self, epsilon, w, rng=None):
        super().__init__(epsilon, w, rng)
        self._mechanism = SquareWaveMechanism(self.epsilon_per_slot)
        self._last_deviation = 0.0

    def _perturb_one(self, x: float) -> float:
        adjusted = float(np.clip(x + self._last_deviation, 0.0, 1.0))
        report = float(self._mechanism.perturb(adjusted, self._rng))
        self._last_deviation = x - report
        return report


class OnlineAPP(OnlinePerturber):
    """Online Accumulated Perturbation Parameterization (Algorithm 1)."""

    def __init__(self, epsilon, w, rng=None):
        super().__init__(epsilon, w, rng)
        self._mechanism = SquareWaveMechanism(self.epsilon_per_slot)
        self.accumulated_deviation = 0.0

    def _perturb_one(self, x: float) -> float:
        adjusted = float(np.clip(x + self.accumulated_deviation, 0.0, 1.0))
        report = float(self._mechanism.perturb(adjusted, self._rng))
        self.accumulated_deviation += x - report
        return report


class OnlineCAPP(OnlinePerturber):
    """Online Clipped Accumulated Perturbation Parameterization (Alg. 2)."""

    def __init__(
        self,
        epsilon,
        w,
        rng=None,
        clip_bounds: Optional[ClipBounds] = None,
        delta_clamp: Optional["tuple[float, float]"] = DEFAULT_DELTA_CLAMP,
    ):
        super().__init__(epsilon, w, rng)
        self._mechanism = SquareWaveMechanism(self.epsilon_per_slot)
        self.clip_bounds = clip_bounds or choose_clip_bounds(
            self.epsilon_per_slot, delta_clamp
        )
        self.accumulated_deviation = 0.0

    def _perturb_one(self, x: float) -> float:
        low, high = self.clip_bounds.low, self.clip_bounds.high
        width = self.clip_bounds.width
        adjusted = float(np.clip(x + self.accumulated_deviation, low, high))
        normalized = (adjusted - low) / width
        raw = float(self._mechanism.perturb(normalized, self._rng))
        report = raw * width + low
        self.accumulated_deviation += x - report
        return report


class BatchOnlinePerturber(abc.ABC):
    """Population-batched push-style perturber: ``n_users`` streams at once.

    One instance carries the per-user algorithm state (accumulated
    deviations, budget ledgers) as ``(n_users,)`` arrays.  Each
    :meth:`submit` call perturbs one time slot for the whole population
    with vectorized mechanism draws and charges a
    :class:`~repro.privacy.BatchWEventAccountant` row-wise, replacing
    ``n_users`` Python-level ``submit`` calls per slot with O(1) NumPy
    operations.

    Args:
        epsilon: total w-event budget (shared by every user).
        w: window size (per-slot budget ``epsilon / w``).
        n_users: population size; fixes the shape of all state arrays.
        rng: shared randomness source for the whole population.
        mechanism: randomizer family — registry name, Mechanism subclass,
            or ``None`` for the Square Wave default used by the paper.
        record_history: keep the full per-slot budget ledger (needed for
            per-slot spend queries); pass ``False`` on unbounded streams
            so accountant memory stays O(w * n_users) forever.
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        n_users: int,
        rng: Optional[np.random.Generator] = None,
        mechanism: Union[str, Type[Mechanism], None] = None,
        record_history: bool = True,
    ) -> None:
        from .base import resolve_mechanism_class

        self.epsilon = ensure_epsilon(epsilon)
        self.w = ensure_window(w)
        self.n_users = ensure_positive_int(n_users, "n_users")
        self.epsilon_per_slot = self.epsilon / self.w
        self.accountant = BatchWEventAccountant(
            self.epsilon, self.w, self.n_users, record_history=record_history
        )
        self._rng = ensure_rng(rng)
        self._mechanism: Mechanism = resolve_mechanism_class(mechanism)(
            self.epsilon_per_slot
        )
        self._t = 0

    @property
    def slots_processed(self) -> int:
        """Number of slots submitted (or skipped) so far."""
        return self._t

    @property
    def mechanism(self) -> Mechanism:
        """The shared randomizer (identical parameters for every user)."""
        return self._mechanism

    @abc.abstractmethod
    def _perturb_active(self, values: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Perturb the participating users' slice (state update included).

        Args:
            values: ``(k,)`` true values of the participating users.
            active: ``(k,)`` population indices of those users, for state
                array addressing.
        """

    def submit(
        self,
        values: "Sequence[float] | np.ndarray",
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Perturb one slot for the whole population.

        Args:
            values: ``(n_users,)`` true values in ``[0, 1]``.  Entries of
                non-participating users are ignored (and may be anything).
            mask: ``(n_users,)`` boolean participation mask; ``None`` means
                everyone reports.  Masked-out users skip the slot exactly
                like :meth:`OnlinePerturber.skip`: zero budget spend,
                algorithm state untouched.

        Returns:
            ``(n_users,)`` array of reports, ``NaN`` where the user did
            not participate.
        """
        arr = np.asarray(values, dtype=float)
        if arr.shape != (self.n_users,):
            raise ValueError(
                f"values must have shape ({self.n_users},), got {arr.shape}"
            )
        if mask is None:
            active = np.arange(self.n_users)
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (self.n_users,):
                raise ValueError(
                    f"mask must have shape ({self.n_users},), got {mask.shape}"
                )
            active = np.flatnonzero(mask)

        reports = np.full(self.n_users, np.nan)
        if active.size:
            vals = arr[active]
            if not np.all(np.isfinite(vals)):
                raise ValueError("submitted values must be finite")
            if vals.min() < 0.0 or vals.max() > 1.0:
                raise ValueError(
                    "submitted values must lie in [0, 1]; observed range "
                    f"[{vals.min():.6g}, {vals.max():.6g}]"
                )
            reports[active] = self._perturb_active(vals, active)

        self.accountant.charge_next(self._slot_spends(mask))
        self._t += 1
        return reports

    def _slot_spends(self, mask: Optional[np.ndarray]) -> "float | np.ndarray":
        """Budget charged for the slot just perturbed.

        The default is the flat ``eps / w`` rate of the core algorithms
        (zero for masked-out users).  Engines with data-dependent spends
        — budget absorption/distribution, sampling — record their actual
        per-user spends during :meth:`_perturb_active` and override this
        to hand them to the accountant.
        """
        if mask is None:
            return self.epsilon_per_slot
        return np.where(mask, self.epsilon_per_slot, 0.0)

    def skip_slot(self) -> None:
        """Advance one slot with nobody reporting (all users offline)."""
        self.accountant.charge_next(0.0)
        self._t += 1


class BatchOnlineSWDirect(BatchOnlinePerturber):
    """Population-batched per-slot direct reporting (any mechanism).

    The default Square Wave mechanism gives the paper's online
    "SW-direct"; passing ``mechanism=`` generalizes the same loop to the
    Fig. 9 direct variants (Laplace-direct, SR-direct, PM-direct).  The
    per-user deviation running sum is tracked (like the scalar
    bookkeeping) so :meth:`StreamPerturber.perturb_population` can report
    it; direct reporting never feeds it back.
    """

    def __init__(self, epsilon, w, n_users, rng=None, mechanism=None,
                 record_history=True):
        super().__init__(epsilon, w, n_users, rng, mechanism, record_history)
        self.accumulated_deviation = np.zeros(self.n_users)

    def _perturb_active(self, values: np.ndarray, active: np.ndarray) -> np.ndarray:
        reports = self._mechanism.perturb_batch(values, self._rng)
        self.accumulated_deviation[active] += values - reports
        return reports


class BatchOnlineIPP(BatchOnlinePerturber):
    """Population-batched online IPP: per-user last-deviation carryover."""

    def __init__(self, epsilon, w, n_users, rng=None, mechanism=None,
                 record_history=True):
        super().__init__(epsilon, w, n_users, rng, mechanism, record_history)
        self.last_deviation = np.zeros(self.n_users)

    def _perturb_active(self, values: np.ndarray, active: np.ndarray) -> np.ndarray:
        adjusted = np.clip(values + self.last_deviation[active], 0.0, 1.0)
        reports = self._mechanism.perturb_batch(adjusted, self._rng)
        self.last_deviation[active] = values - reports
        return reports

    @property
    def accumulated_deviation(self) -> np.ndarray:
        """IPP carries only the previous slot's deviation (Lemma III.1)."""
        return self.last_deviation


class BatchOnlineAPP(BatchOnlinePerturber):
    """Population-batched online APP: per-user accumulated deviations."""

    def __init__(self, epsilon, w, n_users, rng=None, mechanism=None,
                 record_history=True):
        super().__init__(epsilon, w, n_users, rng, mechanism, record_history)
        self.accumulated_deviation = np.zeros(self.n_users)

    def _perturb_active(self, values: np.ndarray, active: np.ndarray) -> np.ndarray:
        adjusted = np.clip(values + self.accumulated_deviation[active], 0.0, 1.0)
        reports = self._mechanism.perturb_batch(adjusted, self._rng)
        self.accumulated_deviation[active] += values - reports
        return reports


class BatchOnlineCAPP(BatchOnlinePerturber):
    """Population-batched online CAPP: tuned clipping plus accumulation."""

    def __init__(
        self,
        epsilon,
        w,
        n_users,
        rng=None,
        mechanism=None,
        clip_bounds: Optional[ClipBounds] = None,
        delta_clamp: Optional["tuple[float, float]"] = DEFAULT_DELTA_CLAMP,
        record_history=True,
    ):
        super().__init__(epsilon, w, n_users, rng, mechanism, record_history)
        self.clip_bounds = clip_bounds or choose_clip_bounds(
            self.epsilon_per_slot, delta_clamp
        )
        self.accumulated_deviation = np.zeros(self.n_users)

    def _perturb_active(self, values: np.ndarray, active: np.ndarray) -> np.ndarray:
        low, high = self.clip_bounds.low, self.clip_bounds.high
        width = self.clip_bounds.width
        adjusted = np.clip(values + self.accumulated_deviation[active], low, high)
        normalized = (adjusted - low) / width
        raw = self._mechanism.perturb_batch(normalized, self._rng)
        reports = raw * width + low
        self.accumulated_deviation[active] += values - reports
        return reports


class OnlineSmoother:
    """Incremental centered SMA with the batch algorithm's boundary rule.

    Feeding reports one at a time, :meth:`push` returns the smoothed value
    for the oldest slot whose full right context has arrived (``None``
    while warming up); :meth:`flush` emits the remaining boundary slots.
    The concatenated output equals
    :func:`repro.core.smoothing.simple_moving_average` on the full series
    (tested), so collectors can smooth infinite streams with ``k`` slots
    of latency and O(window) memory.
    """

    def __init__(self, window: int) -> None:
        window = ensure_positive_int(window, "window")
        if window % 2 == 0:
            raise ValueError("window must be odd (centered SMA)")
        self.window = window
        self.k = window // 2
        self._buffer: List[float] = []
        self._emitted = 0  # index of the next slot to emit
        self._received = 0

    def push(self, value: float) -> "list[float]":
        """Add one report; return smoothed values that became final."""
        self._buffer.append(float(value))
        self._received += 1
        out: List[float] = []
        # Slot t is final once slot t + k has arrived.
        while self._emitted + self.k < self._received:
            out.append(self._smooth_at(self._emitted))
            self._emitted += 1
        # Keep only what future windows need.
        self._trim()
        return out

    def flush(self) -> "list[float]":
        """Emit the trailing boundary slots (stream ended)."""
        out: List[float] = []
        while self._emitted < self._received:
            out.append(self._smooth_at(self._emitted))
            self._emitted += 1
        return out

    def _smooth_at(self, t: int) -> float:
        offset = self._received - len(self._buffer)
        lo = max(0, t - self.k) - offset
        hi = min(self._received - 1, t + self.k) - offset
        window = self._buffer[lo : hi + 1]
        return float(sum(window) / len(window))

    def _trim(self) -> None:
        # The earliest slot any future emission can reference is
        # (next-to-emit) - k.
        keep_from = max(0, self._emitted - self.k)
        offset = self._received - len(self._buffer)
        drop = keep_from - offset
        if drop > 0:
            del self._buffer[:drop]
