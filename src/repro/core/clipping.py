"""CAPP clip-bound selection (Section IV-B, "The choice of l and u").

CAPP clips the deviation-adjusted input to ``[l, u]`` before normalizing it
into the SW mechanism.  The paper balances two error terms evaluated at the
worst case ``x = 1``:

* **sensitivity error** ``e_s = e^{x - E[SW(x)]} - 1`` — what widening the
  range costs (more sensitivity, more noise);
* **discarding error** ``e_d = sqrt(Var(D_x))`` — what narrowing the range
  costs (information thrown away by clipping);

and sets ``delta = T(e_s, e_d) = e_s - e_d``, ``l = -delta``,
``u = 1 + delta``.  Following the sensitivity study in Section VI-D-4 the
recommended operating range is ``-0.25 <= delta <= 0.25``, so
:func:`choose_clip_bounds` clamps by default (disable with
``clamp=None``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .._validation import ensure_epsilon
from ..mechanisms.moments import deviation_moments
from ..mechanisms.square_wave import SquareWaveMechanism

__all__ = [
    "ClipBounds",
    "sensitivity_error",
    "discarding_error",
    "clip_delta",
    "choose_clip_bounds",
    "DEFAULT_DELTA_CLAMP",
]

#: recommended delta operating range from the paper's sensitivity analysis
DEFAULT_DELTA_CLAMP = (-0.25, 0.25)

#: worst-case input used by the paper for both error terms
_WORST_CASE_X = 1.0


@dataclass(frozen=True)
class ClipBounds:
    """A CAPP clip range ``[low, high]`` with its originating ``delta``."""

    low: float
    high: float
    delta: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(
                f"clip range is empty: low={self.low} >= high={self.high}"
            )

    @property
    def width(self) -> float:
        return self.high - self.low


def sensitivity_error(epsilon_per_slot: float) -> float:
    """``e_s = e^{x - E[SW(x)]} - 1`` at the worst case ``x = 1``.

    Vanishes for large budgets (no sensitivity reduction needed) and the
    exponential amplifies even small expected deviations.
    """
    eps = ensure_epsilon(epsilon_per_slot, "epsilon_per_slot")
    mech = SquareWaveMechanism(eps)
    expected_gap = _WORST_CASE_X - float(mech.expected_output(_WORST_CASE_X))
    return math.exp(expected_gap) - 1.0


def discarding_error(epsilon_per_slot: float) -> float:
    """``e_d = sqrt(Var(D_x))`` at the worst case ``x = 1``.

    Grows as the budget shrinks: heavier perturbation means clipping to a
    narrow range discards more information.
    """
    eps = ensure_epsilon(epsilon_per_slot, "epsilon_per_slot")
    return deviation_moments(eps, x=_WORST_CASE_X).std


def clip_delta(
    epsilon_per_slot: float,
    clamp: Optional["tuple[float, float]"] = DEFAULT_DELTA_CLAMP,
) -> float:
    """``delta = T(e_s, e_d) = e_s - e_d`` (Equation 11), optionally clamped."""
    delta = sensitivity_error(epsilon_per_slot) - discarding_error(epsilon_per_slot)
    if clamp is not None:
        lo, hi = clamp
        if lo > hi:
            raise ValueError(f"clamp range is inverted: {clamp}")
        delta = min(max(delta, lo), hi)
    return delta


def choose_clip_bounds(
    epsilon_per_slot: float,
    clamp: Optional["tuple[float, float]"] = DEFAULT_DELTA_CLAMP,
) -> ClipBounds:
    """Clip range ``l = -delta``, ``u = 1 + delta`` for CAPP.

    Args:
        epsilon_per_slot: the per-slot budget ``eps / w`` the mechanism will
            actually run with.
        clamp: inclusive range to clamp ``delta`` into; ``None`` disables
            clamping (the paper's raw Equation 11).  The default follows the
            paper's recommendation of ``[-0.25, 0.25]``.

    Note:
        ``delta <= -0.5`` would make the range empty; the clamp default
        keeps well clear, and an explicit guard raises otherwise.
    """
    delta = clip_delta(epsilon_per_slot, clamp)
    if delta <= -0.5:
        raise ValueError(
            f"delta={delta:.4g} collapses the clip range; clamp it above -0.5"
        )
    return ClipBounds(low=0.0 - delta, high=1.0 + delta, delta=delta)
