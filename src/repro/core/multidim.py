"""High-dimensional time-series strategies — Section IV-C, Figure 10.

Two ways to spend a w-event budget across ``d`` dimensions:

* **Budget-Split (BS)**: every slot uploads all ``d`` dimensions, each with
  ``eps / (d * w)``; sequential composition inside a slot and across the
  window keeps the total at ``eps``.
* **Sample-Split (SS)**: every slot uploads exactly *one* dimension
  (round-robin), with ``eps / w`` per upload; any window holds ``w``
  uploads totalling ``eps``.  Each dimension is observed only every ``d``
  slots and the gaps are filled by replication.

Both strategies wrap an arbitrary per-dimension stream perturber (SW-direct
for the baselines, APP/CAPP for the paper's improved variants).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from .._validation import ensure_epsilon, ensure_rng, ensure_window
from ..privacy import WEventAccountant
from .base import PerturbationResult, StreamPerturber

__all__ = [
    "MultiDimResult",
    "BudgetSplit",
    "SampleSplit",
]

#: factory signature: (epsilon, w) -> StreamPerturber
PerturberFactory = Callable[[float, int], StreamPerturber]


@dataclass
class MultiDimResult:
    """Output of a multi-dimensional strategy.

    Attributes:
        original: ``(d, n)`` true matrix.
        perturbed: ``(d, n)`` collector-visible matrix (replicated where a
            dimension was not uploaded at a slot, for SS).
        published: ``(d, n)`` published matrix (post-smoothing).
        per_dimension: the inner result for each dimension.
        accountant: slot-granularity ledger over the shared timeline.
    """

    original: np.ndarray
    perturbed: np.ndarray
    published: np.ndarray
    per_dimension: "list[PerturbationResult]" = field(repr=False)
    accountant: WEventAccountant = field(repr=False)

    @property
    def n_dimensions(self) -> int:
        return self.original.shape[0]

    def mean_estimates(self) -> np.ndarray:
        """Per-dimension mean estimates."""
        return self.perturbed.mean(axis=1)


def _validate_matrix(values: Sequence[Sequence[float]]) -> np.ndarray:
    matrix = np.asarray(values, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a (d, n) matrix, got shape {matrix.shape}")
    if matrix.shape[0] < 1 or matrix.shape[1] < 1:
        raise ValueError("matrix must have at least one dimension and one slot")
    if not np.all(np.isfinite(matrix)):
        raise ValueError("matrix must contain only finite values")
    if matrix.min() < 0.0 or matrix.max() > 1.0:
        raise ValueError("matrix values must lie in [0, 1]")
    return matrix


class BudgetSplit:
    """Budget-Split strategy: all dimensions every slot, ``eps/(d w)`` each.

    Args:
        factory: builds the per-dimension perturber from ``(epsilon, w)``;
            BS hands each dimension a total budget of ``eps / d``.
        epsilon: total w-event budget across *all* dimensions.
        w: window size.
    """

    def __init__(self, factory: PerturberFactory, epsilon: float, w: int) -> None:
        self.factory = factory
        self.epsilon = ensure_epsilon(epsilon)
        self.w = ensure_window(w)

    def perturb_matrix(
        self,
        values: Sequence[Sequence[float]],
        rng: Optional[np.random.Generator] = None,
    ) -> MultiDimResult:
        matrix = _validate_matrix(values)
        rng = ensure_rng(rng)
        d, n = matrix.shape

        per_dim_epsilon = self.epsilon / d
        results = [
            self.factory(per_dim_epsilon, self.w).perturb_stream(matrix[i], rng)
            for i in range(d)
        ]

        accountant = WEventAccountant(self.epsilon, self.w)
        per_slot = self.epsilon / (d * self.w)
        for t in range(n):
            for _ in range(d):
                accountant.charge(t, per_slot)
        accountant.assert_valid()

        return MultiDimResult(
            original=matrix,
            perturbed=np.vstack([r.perturbed for r in results]),
            published=np.vstack([r.published for r in results]),
            per_dimension=results,
            accountant=accountant,
        )


class SampleSplit:
    """Sample-Split strategy: one dimension per slot, ``eps / w`` each.

    Dimension ``i`` is uploaded at slots ``i, i + d, i + 2d, ...``; its
    observed subsequence runs through the per-dimension perturber and the
    reports are held (replicated) until the next upload.

    Any ``w`` consecutive slots contain at most ``ceil(w / d)`` uploads of a
    given dimension, so the inner perturber runs with window
    ``ceil(w / d)`` and per-upload budget ``eps / w``.
    """

    def __init__(self, factory: PerturberFactory, epsilon: float, w: int) -> None:
        self.factory = factory
        self.epsilon = ensure_epsilon(epsilon)
        self.w = ensure_window(w)

    def perturb_matrix(
        self,
        values: Sequence[Sequence[float]],
        rng: Optional[np.random.Generator] = None,
    ) -> MultiDimResult:
        matrix = _validate_matrix(values)
        rng = ensure_rng(rng)
        d, n = matrix.shape
        if d > n:
            raise ValueError(
                f"Sample-Split needs at least d={d} slots, stream has {n}"
            )

        per_upload = self.epsilon / self.w
        inner_window = math.ceil(self.w / d)
        perturbed = np.empty_like(matrix)
        published = np.empty_like(matrix)
        results: "list[PerturbationResult]" = []

        for i in range(d):
            upload_slots = np.arange(i, n, d)
            observed = matrix[i, upload_slots]
            inner = self.factory(per_upload * inner_window, inner_window)
            result = inner.perturb_stream(observed, rng)
            results.append(result)
            # Hold each report until the dimension's next upload; slots
            # before the first upload reuse the first report.
            positions = np.clip(
                np.searchsorted(upload_slots, np.arange(n), side="right") - 1,
                0,
                upload_slots.size - 1,
            )
            perturbed[i] = result.perturbed[positions]
            published[i] = result.published[positions]

        accountant = WEventAccountant(self.epsilon, self.w)
        for t in range(n):
            accountant.charge(t, per_upload)
        accountant.assert_valid()

        return MultiDimResult(
            original=matrix,
            perturbed=perturbed,
            published=published,
            per_dimension=results,
            accountant=accountant,
        )
