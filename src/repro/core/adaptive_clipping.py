"""Clip-bound selection for arbitrary mechanisms (Section IV-C extension).

The paper tunes CAPP's clip range ``[l, u]`` for the SW mechanism via the
closed-form error model of Equation 11 and notes that "in CAPP, different
mechanisms require specific clip intervals [l, u]" — but omits the
details.  This module supplies them: a numeric error model that works for
*any* registered mechanism through its exposed moments.

Model.  For a candidate half-extension ``delta`` (``l = -delta``,
``u = 1 + delta``, width ``s = 1 + 2 delta``):

* **noise error** — perturbing in the normalized domain and denormalizing
  scales the mechanism's output noise by ``s``, so the per-report noise
  cost is ``s * sqrt(Var[M(x*)])`` at the worst-case input ``x* = 1``;
* **discarding error** — the accumulated deviation ``D`` is approximately
  centred with the deviation std ``sigma_D = sqrt(Var[x* - M(x*)])`` of
  the *unclipped* mechanism; mass of ``x + D`` outside ``[l, u]`` is lost.
  Under a normal approximation the expected clipped-away magnitude is the
  Gaussian tail integral ``E[(|Z| - delta)_+]`` with ``Z ~ N(0, sigma_D)``.

``choose_adaptive_clip_bounds`` grid-searches ``delta`` to minimize the
sum.  For the SW mechanism the resulting bounds land close to the paper's
Equation-11 choice inside its recommended ``[-0.25, 0.25]`` band (tested),
and the same procedure extends CAPP to Laplace/PM/SR/HM.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Type, Union

import numpy as np

from .._validation import ensure_epsilon
from ..mechanisms import Mechanism
from .base import resolve_mechanism_class
from .clipping import ClipBounds

__all__ = [
    "noise_error",
    "tail_discarding_error",
    "adaptive_clip_objective",
    "choose_adaptive_clip_bounds",
]

#: worst-case input used throughout (mirrors the paper's x = 1 choice)
_WORST_CASE_X = 1.0


def noise_error(mechanism: Mechanism, delta: float) -> float:
    """Denormalized per-report noise std at the worst-case input."""
    width = 1.0 + 2.0 * delta
    if width <= 0.0:
        raise ValueError(f"delta={delta} collapses the clip range")
    variance = float(mechanism.output_variance(_WORST_CASE_X))
    return width * math.sqrt(max(variance, 0.0))


def tail_discarding_error(mechanism: Mechanism, delta: float) -> float:
    """Expected magnitude clipped away from the accumulated deviation.

    Gaussian-tail approximation: with ``sigma_D`` the deviation std of the
    unclipped mechanism and ``Z ~ N(0, sigma_D)``,

        E[(|Z| - delta)_+] = 2 [ sigma phi(a) - delta (1 - Phi(a)) ],

    where ``a = delta / sigma``.  ``delta <= 0`` counts the *narrowing*
    penalty: the whole deviation mass plus the sacrificed base range.
    """
    variance = float(mechanism.output_variance(_WORST_CASE_X))
    sigma = math.sqrt(max(variance, 1e-18))
    if delta <= 0.0:
        # Narrower than the data domain: every deviation is clipped and
        # |delta| of legitimate range is lost too.
        mean_abs = sigma * math.sqrt(2.0 / math.pi)
        return mean_abs + abs(delta)
    a = delta / sigma
    phi = math.exp(-0.5 * a * a) / math.sqrt(2.0 * math.pi)
    upper_tail = 0.5 * math.erfc(a / math.sqrt(2.0))
    return 2.0 * (sigma * phi - delta * upper_tail)


def adaptive_clip_objective(mechanism: Mechanism, delta: float) -> float:
    """Predicted per-report MSE for a candidate ``delta``.

    Squared-error combination of the two terms: noise variance scales
    with the squared width while the squared discarding tail shrinks as
    the range widens, producing an interior optimum (linear combination
    degenerates to the narrowest admissible range).
    """
    return noise_error(mechanism, delta) ** 2 + tail_discarding_error(mechanism, delta) ** 2


def choose_adaptive_clip_bounds(
    epsilon_per_slot: float,
    mechanism: Union[str, Type[Mechanism], None] = None,
    deltas: Optional[Sequence[float]] = None,
) -> ClipBounds:
    """Grid-search the clip range for any mechanism.

    Args:
        epsilon_per_slot: the budget each perturbation runs with.
        mechanism: registry name, class, or ``None`` for SW.
        deltas: candidate grid (default ``-0.4 .. 1.0`` step 0.05).

    Returns:
        The :class:`ClipBounds` minimizing the numeric error model.
    """
    eps = ensure_epsilon(epsilon_per_slot, "epsilon_per_slot")
    mech = resolve_mechanism_class(mechanism)(eps)
    if deltas is None:
        deltas = np.round(np.arange(-0.4, 1.0001, 0.05), 4)
    best_delta, best_value = None, math.inf
    for delta in deltas:
        delta = float(delta)
        if 1.0 + 2.0 * delta <= 0.0:
            continue
        value = adaptive_clip_objective(mech, delta)
        if value < best_value:
            best_delta, best_value = delta, value
    if best_delta is None:
        raise ValueError("no feasible delta in the candidate grid")
    return ClipBounds(low=-best_delta, high=1.0 + best_delta, delta=best_delta)
