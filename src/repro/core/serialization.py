"""Serialization of perturbation results (collector-side persistence).

A deployment stores published streams and their provenance; these helpers
turn :class:`~repro.core.base.PerturbationResult` and
:class:`~repro.core.sampling.SamplingResult` into JSON-safe dicts and
back.  The w-event ledger is summarized (budget, window, max spend)
rather than replayed — the audit already ran before serialization.

The sharded runtime (:mod:`repro.runtime`) checkpoints through the same
module: :func:`collector_state_to_dict` snapshots a collector shard's
mergeable aggregate state and :func:`batch_accountant_to_dict` snapshots
a population budget ledger, both as JSON-safe dicts whose floats
round-trip exactly (so a resumed run is bit-identical to an
uninterrupted one).

Privacy note: ``to_public_dict`` strips the user-side fields (original
values, inputs, deviations) so the artifact can safely leave the client;
``to_dict`` keeps everything for local archival.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from ..privacy import BatchWEventAccountant, WEventAccountant
from .base import PerturbationResult
from .sampling import SamplingResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (protocol -> core)
    from ..protocol.collector import CollectorShardState

__all__ = [
    "result_to_dict",
    "result_to_public_dict",
    "result_from_dict",
    "dumps_result",
    "loads_result",
    "collector_state_to_dict",
    "collector_state_from_dict",
    "batch_accountant_to_dict",
    "batch_accountant_from_dict",
    "WAL_CHECKPOINT_FORMAT",
    "wal_checkpoint_to_dict",
    "wal_checkpoint_from_dict",
]

_FORMAT = "repro.perturbation-result.v1"
_STATE_FORMAT = "repro.collector-shard-state.v1"
_LEDGER_FORMAT = "repro.batch-accountant.v1"

#: format tag of WAL compaction checkpoints (see :mod:`repro.wal`)
WAL_CHECKPOINT_FORMAT = "repro.wal-checkpoint.v1"


def _accountant_summary(accountant: WEventAccountant) -> Dict[str, float]:
    return {
        "epsilon": accountant.epsilon,
        "w": accountant.w,
        "max_window_spend": accountant.max_window_spend(),
        "slots": accountant.current_slot + 1,
    }


def result_to_dict(result: PerturbationResult) -> Dict[str, Any]:
    """Full (user-side) dict representation."""
    return {
        "format": _FORMAT,
        "kind": "sampling" if isinstance(result, SamplingResult) else "stream",
        "original": result.original.tolist(),
        "perturbed": result.perturbed.tolist(),
        "published": result.published.tolist(),
        **(
            {
                "segment_means": result.segment_means.tolist(),
                "segment_reports": result.segment_reports.tolist(),
                "n_samples": result.n_samples,
                "segment_length": result.segment_length,
                "epsilon_per_sample": result.epsilon_per_sample,
            }
            if isinstance(result, SamplingResult)
            else {
                "inputs": result.inputs.tolist(),
                "deviations": result.deviations.tolist(),
                "accumulated_deviation": result.accumulated_deviation,
                "epsilon_per_slot": result.epsilon_per_slot,
            }
        ),
        "accountant": _accountant_summary(result.accountant),
    }


def result_to_public_dict(result: PerturbationResult) -> Dict[str, Any]:
    """Collector-safe dict: sanitized fields only (no true values)."""
    full = result_to_dict(result)
    for secret in ("original", "inputs", "deviations", "segment_means",
                   "accumulated_deviation"):
        full.pop(secret, None)
    return full


def result_from_dict(data: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """Restore the array payload of a serialized result.

    Returns a dict of numpy arrays / scalars rather than reconstructing
    the live result object (the accountant's full history is summarized,
    not stored).
    """
    if data.get("format") != _FORMAT:
        raise ValueError(f"unsupported result format {data.get('format')!r}")
    restored: Dict[str, Any] = {}
    for key, value in data.items():
        if key in ("format", "kind", "accountant"):
            restored[key] = value
        elif isinstance(value, list):
            restored[key] = np.asarray(value, dtype=float)
        else:
            restored[key] = value
    return restored


def dumps_result(result: PerturbationResult, public: bool = False) -> str:
    """JSON string of a result (``public=True`` strips user-side fields)."""
    payload = result_to_public_dict(result) if public else result_to_dict(result)
    return json.dumps(payload)


def loads_result(text: str) -> Dict[str, Any]:
    """Inverse of :func:`dumps_result`."""
    return result_from_dict(json.loads(text))


# -- shard checkpointing (collector state + budget ledgers) ----------------


def collector_state_to_dict(state: "CollectorShardState") -> Dict[str, Any]:
    """JSON-safe snapshot of a mergeable collector shard state.

    Floats survive the JSON round trip exactly (``repr``-based encoding),
    so restoring and merging checkpointed shards reproduces the collector
    a live run would have built, bit for bit.
    """
    payload: Dict[str, Any] = {
        "format": _STATE_FORMAT,
        "track_users": bool(state.track_users),
        "keep_reports": bool(state.keep_reports),
        "n_reports": int(state.n_reports),
        "slot_sums": {str(t): total for t, total in state.slot_sums.items()},
        "slot_counts": {str(t): count for t, count in state.slot_counts.items()},
    }
    if state.keep_reports:
        payload["slot_values"] = {
            str(t): state.slot_reports(t).tolist() for t in state.slot_values
        }
    if state.track_users:
        payload["by_user"] = {
            str(uid): {str(t): value for t, value in series.items()}
            for uid, series in state.by_user.items()
        }
    # Robust-aggregation extras are emitted only when a policy is set, so
    # snapshots of unpoliced runs keep the exact v1 payload (and digests).
    if state.robust_policy is not None:
        payload["robust_policy"] = state.robust_policy.to_dict()
        if state.group_sums:
            payload["group_sums"] = {
                str(t): {str(g): total for g, total in groups.items()}
                for t, groups in state.group_sums.items()
            }
            payload["group_counts"] = {
                str(t): {str(g): count for g, count in groups.items()}
                for t, groups in state.group_counts.items()
            }
    return payload


def collector_state_from_dict(data: Dict[str, Any]) -> "CollectorShardState":
    """Inverse of :func:`collector_state_to_dict`."""
    from ..protocol.collector import CollectorShardState

    if data.get("format") != _STATE_FORMAT:
        raise ValueError(f"unsupported shard-state format {data.get('format')!r}")
    policy = None
    if data.get("robust_policy") is not None:
        from ..adversary.policies import RobustPolicy

        policy = RobustPolicy.from_dict(data["robust_policy"])
    state = CollectorShardState(
        track_users=bool(data["track_users"]),
        keep_reports=bool(data.get("keep_reports", True)),
        slot_sums={int(t): float(s) for t, s in data["slot_sums"].items()},
        slot_counts={int(t): int(c) for t, c in data["slot_counts"].items()},
        slot_values={
            int(t): [np.asarray(values, dtype=float)]
            for t, values in data.get("slot_values", {}).items()
        },
        n_reports=int(data["n_reports"]),
        robust_policy=policy,
        group_sums={
            int(t): {int(g): float(total) for g, total in groups.items()}
            for t, groups in data.get("group_sums", {}).items()
        },
        group_counts={
            int(t): {int(g): int(count) for g, count in groups.items()}
            for t, groups in data.get("group_counts", {}).items()
        },
    )
    if state.track_users:
        state.by_user = {
            int(uid): {int(t): float(v) for t, v in series.items()}
            for uid, series in data.get("by_user", {}).items()
        }
    return state


def wal_checkpoint_to_dict(
    config: Dict[str, Any],
    metadata: Dict[str, Any],
    collector_state: "CollectorShardState",
    slot_records: "list[Dict[str, Any]]",
    next_slot: int,
    live_segment: int,
) -> Dict[str, Any]:
    """JSON-safe WAL compaction checkpoint (exact float round trip).

    Bundles everything recovery needs to rebuild a pipeline without the
    compacted segments: the run configuration (the pipeline constructor
    arguments), the collector's mergeable aggregate state, the published
    per-slot estimate records, the barrier clock, and the index of the
    first segment still needed on top of the snapshot.
    """
    return {
        "format": WAL_CHECKPOINT_FORMAT,
        "config": dict(config),
        "metadata": dict(metadata),
        "collector_state": collector_state_to_dict(collector_state),
        "slots": list(slot_records),
        "next_slot": int(next_slot),
        "live_segment": int(live_segment),
    }


def wal_checkpoint_from_dict(data: Dict[str, Any]) -> Dict[str, Any]:
    """Inverse of :func:`wal_checkpoint_to_dict`.

    Returns the checkpoint with ``collector_state`` restored to a live
    :class:`~repro.protocol.collector.CollectorShardState`; the slot
    records stay as dicts (``SlotEstimate.from_record`` rebuilds them).
    """
    if data.get("format") != WAL_CHECKPOINT_FORMAT:
        raise ValueError(f"unsupported WAL checkpoint format {data.get('format')!r}")
    return {
        "config": dict(data["config"]),
        "metadata": dict(data.get("metadata", {})),
        "collector_state": collector_state_from_dict(data["collector_state"]),
        "slots": list(data["slots"]),
        "next_slot": int(data["next_slot"]),
        "live_segment": int(data["live_segment"]),
    }


def batch_accountant_to_dict(
    accountant: BatchWEventAccountant,
    include_history: bool = True,
) -> Dict[str, Any]:
    """JSON-safe snapshot of a population w-event ledger.

    Always records the per-user maximum window spends (what the audit
    needs); the full ``(T, n_users)`` spend history rides along only when
    the accountant kept it and ``include_history`` is set.
    """
    payload: Dict[str, Any] = {
        "format": _LEDGER_FORMAT,
        "epsilon": accountant.epsilon,
        "w": accountant.w,
        "n_users": accountant.n_users,
        "slots": accountant.current_slot + 1,
        "max_window_spend": accountant.max_window_spend().tolist(),
    }
    if include_history and accountant.record_history:
        payload["spends"] = accountant.spends_matrix().tolist()
    return payload


def batch_accountant_from_dict(data: Dict[str, Any]) -> Dict[str, Any]:
    """Restore the array payload of a serialized population ledger.

    Returns plain arrays/scalars (the runtime's audit and ledger queries
    work off the snapshot, not a live accountant): ``epsilon``, ``w``,
    ``n_users``, ``slots``, ``max_window_spend`` as ``(n_users,)`` and
    ``spends`` as ``(T, n_users)`` or ``None`` if no history was kept.
    """
    if data.get("format") != _LEDGER_FORMAT:
        raise ValueError(f"unsupported ledger format {data.get('format')!r}")
    spends: Optional[np.ndarray] = None
    if data.get("spends") is not None:
        spends = np.asarray(data["spends"], dtype=float)
    return {
        "epsilon": float(data["epsilon"]),
        "w": int(data["w"]),
        "n_users": int(data["n_users"]),
        "slots": int(data["slots"]),
        "max_window_spend": np.asarray(data["max_window_spend"], dtype=float),
        "spends": spends,
    }
