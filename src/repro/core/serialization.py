"""Serialization of perturbation results (collector-side persistence).

A deployment stores published streams and their provenance; these helpers
turn :class:`~repro.core.base.PerturbationResult` and
:class:`~repro.core.sampling.SamplingResult` into JSON-safe dicts and
back.  The w-event ledger is summarized (budget, window, max spend)
rather than replayed — the audit already ran before serialization.

Privacy note: ``to_public_dict`` strips the user-side fields (original
values, inputs, deviations) so the artifact can safely leave the client;
``to_dict`` keeps everything for local archival.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from ..privacy import WEventAccountant
from .base import PerturbationResult
from .sampling import SamplingResult

__all__ = [
    "result_to_dict",
    "result_to_public_dict",
    "result_from_dict",
    "dumps_result",
    "loads_result",
]

_FORMAT = "repro.perturbation-result.v1"


def _accountant_summary(accountant: WEventAccountant) -> Dict[str, float]:
    return {
        "epsilon": accountant.epsilon,
        "w": accountant.w,
        "max_window_spend": accountant.max_window_spend(),
        "slots": accountant.current_slot + 1,
    }


def result_to_dict(result: PerturbationResult) -> Dict[str, Any]:
    """Full (user-side) dict representation."""
    return {
        "format": _FORMAT,
        "kind": "sampling" if isinstance(result, SamplingResult) else "stream",
        "original": result.original.tolist(),
        "perturbed": result.perturbed.tolist(),
        "published": result.published.tolist(),
        **(
            {
                "segment_means": result.segment_means.tolist(),
                "segment_reports": result.segment_reports.tolist(),
                "n_samples": result.n_samples,
                "segment_length": result.segment_length,
                "epsilon_per_sample": result.epsilon_per_sample,
            }
            if isinstance(result, SamplingResult)
            else {
                "inputs": result.inputs.tolist(),
                "deviations": result.deviations.tolist(),
                "accumulated_deviation": result.accumulated_deviation,
                "epsilon_per_slot": result.epsilon_per_slot,
            }
        ),
        "accountant": _accountant_summary(result.accountant),
    }


def result_to_public_dict(result: PerturbationResult) -> Dict[str, Any]:
    """Collector-safe dict: sanitized fields only (no true values)."""
    full = result_to_dict(result)
    for secret in ("original", "inputs", "deviations", "segment_means",
                   "accumulated_deviation"):
        full.pop(secret, None)
    return full


def result_from_dict(data: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """Restore the array payload of a serialized result.

    Returns a dict of numpy arrays / scalars rather than reconstructing
    the live result object (the accountant's full history is summarized,
    not stored).
    """
    if data.get("format") != _FORMAT:
        raise ValueError(f"unsupported result format {data.get('format')!r}")
    restored: Dict[str, Any] = {}
    for key, value in data.items():
        if key in ("format", "kind", "accountant"):
            restored[key] = value
        elif isinstance(value, list):
            restored[key] = np.asarray(value, dtype=float)
        else:
            restored[key] = value
    return restored


def dumps_result(result: PerturbationResult, public: bool = False) -> str:
    """JSON string of a result (``public=True`` strips user-side fields)."""
    payload = result_to_public_dict(result) if public else result_to_dict(result)
    return json.dumps(payload)


def loads_result(text: str) -> Dict[str, Any]:
    """Inverse of :func:`dumps_result`."""
    return result_from_dict(json.loads(text))
