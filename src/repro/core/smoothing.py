"""Simple Moving Average post-processing (Section IV-A, Lemma IV.1).

The paper smooths APP/CAPP outputs with a centered SMA of window
``2k + 1``; boundary positions average whatever values are available.
Smoothing is collector-side post-processing, so it is privacy-free, and it
preserves the stream mean up to boundary effects while dividing the
per-point noise variance by the window size (Lemma IV.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import ensure_positive_int, ensure_stream

__all__ = [
    "simple_moving_average",
    "simple_moving_average_rows",
    "smoothing_variance_reduction",
]


def simple_moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Centered SMA with shrinking boundary windows.

    Args:
        values: the series to smooth.
        window: full window size ``2k + 1``; must be odd and positive.
            ``window=1`` returns a copy unchanged.

    Returns:
        Smoothed array of the same length.
    """
    arr = ensure_stream(values)
    window = ensure_positive_int(window, "window")
    if window % 2 == 0:
        raise ValueError(f"window must be odd (centered SMA), got {window}")
    if window == 1 or arr.size == 1:
        return arr.copy()

    k = window // 2
    # Prefix-sum formulation handles the shrinking boundary windows exactly:
    # position t averages indices [max(0, t-k), min(n-1, t+k)].
    prefix = np.concatenate([[0.0], np.cumsum(arr)])
    n = arr.size
    idx = np.arange(n)
    lo = np.maximum(idx - k, 0)
    hi = np.minimum(idx + k, n - 1)
    return (prefix[hi + 1] - prefix[lo]) / (hi - lo + 1)


def simple_moving_average_rows(matrix: np.ndarray, window: int) -> np.ndarray:
    """Centered SMA applied to every row of a ``(n_users, T)`` matrix.

    Vectorized across the population: equivalent to calling
    :func:`simple_moving_average` on each row (tested), in one prefix-sum
    pass over the whole matrix.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"matrix must be 2-D (users, T), got shape {arr.shape}")
    window = ensure_positive_int(window, "window")
    if window % 2 == 0:
        raise ValueError(f"window must be odd (centered SMA), got {window}")
    n_users, horizon = arr.shape
    if window == 1 or horizon == 1:
        return arr.copy()

    k = window // 2
    prefix = np.concatenate(
        [np.zeros((n_users, 1)), np.cumsum(arr, axis=1)], axis=1
    )
    idx = np.arange(horizon)
    lo = np.maximum(idx - k, 0)
    hi = np.minimum(idx + k, horizon - 1)
    return (prefix[:, hi + 1] - prefix[:, lo]) / (hi - lo + 1)


def smoothing_variance_reduction(window: int) -> float:
    """Interior-point variance factor of SMA: ``1 / window`` (Lemma IV.1).

    For i.i.d. per-point noise the smoothed variance is the raw variance
    divided by the window size.
    """
    window = ensure_positive_int(window, "window")
    if window % 2 == 0:
        raise ValueError(f"window must be odd (centered SMA), got {window}")
    return 1.0 / window
