"""Shared machinery for stream perturbers (core algorithms and baselines).

A :class:`StreamPerturber` turns an original stream in ``[0, 1]`` into a
:class:`PerturbationResult` carrying everything both sides of the protocol
see: the user-side bookkeeping (inputs, deviations, accumulated deviation)
and the collector-side artifacts (perturbed reports and the published,
post-processed stream).  Every perturber charges its spends through a
:class:`~repro.privacy.WEventAccountant`, so a run that would violate
w-event privacy fails loudly instead of silently overspending.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional, Sequence, Type, Union

import numpy as np

from .._validation import (
    ensure_epsilon,
    ensure_in_unit_interval,
    ensure_positive_int,
    ensure_rng,
    ensure_stream_matrix,
    ensure_window,
)
from ..mechanisms import MECHANISM_REGISTRY, Mechanism, SquareWaveMechanism
from ..privacy import BatchWEventAccountant, WEventAccountant, per_slot_budget
from .smoothing import simple_moving_average, simple_moving_average_rows

__all__ = [
    "PerturbationResult",
    "PopulationPerturbationResult",
    "StreamPerturber",
    "resolve_mechanism_class",
]

#: default SMA window used by APP/CAPP in the paper's experiments
DEFAULT_SMOOTHING_WINDOW = 3


def resolve_mechanism_class(
    mechanism: Union[str, Type[Mechanism], None],
) -> Type[Mechanism]:
    """Accept a registry name, a Mechanism subclass, or None (-> SW)."""
    if mechanism is None:
        return SquareWaveMechanism
    if isinstance(mechanism, str):
        key = mechanism.lower()
        if key not in MECHANISM_REGISTRY:
            known = ", ".join(sorted(MECHANISM_REGISTRY))
            raise KeyError(f"unknown mechanism {mechanism!r}; known: {known}")
        return MECHANISM_REGISTRY[key]
    if isinstance(mechanism, type) and issubclass(mechanism, Mechanism):
        return mechanism
    raise TypeError(
        "mechanism must be a registry name, a Mechanism subclass, or None; "
        f"got {mechanism!r}"
    )


@dataclass
class PerturbationResult:
    """Everything produced by one pass of a stream perturber.

    Attributes:
        original: the user's true stream ``x_t``.
        inputs: the values actually fed to the randomizer ``x^I_t`` (in the
            canonical [0, 1] domain, after deviation adjustment, clipping
            and — for CAPP — normalization).
        perturbed: collector-visible reports ``x'_t`` in original units
            (CAPP denormalizes before this point).
        published: the collector's published stream (post-smoothing when
            the algorithm smooths; otherwise equal to ``perturbed``).
        deviations: per-slot deviations ``d_t = x_t - x'_t``.
        accumulated_deviation: final value of the running deviation ``D``.
        epsilon_per_slot: budget each slot consumed.
        accountant: the w-event ledger charged during the run.
    """

    original: np.ndarray
    inputs: np.ndarray
    perturbed: np.ndarray
    published: np.ndarray
    deviations: np.ndarray
    accumulated_deviation: float
    epsilon_per_slot: float
    accountant: WEventAccountant = field(repr=False)

    def __len__(self) -> int:
        return self.original.size

    def mean_estimate(self) -> float:
        """Collector-side subsequence mean (mean of the reports)."""
        return float(np.mean(self.perturbed))

    def published_mean(self) -> float:
        """Mean of the published (possibly smoothed) stream."""
        return float(np.mean(self.published))


@dataclass
class PopulationPerturbationResult:
    """Everything produced by one vectorized pass over a population.

    The population analogue of :class:`PerturbationResult`: every per-slot
    field becomes a ``(n_users, T)`` matrix and the scalars become
    ``(n_users,)`` arrays, with one shared
    :class:`~repro.privacy.BatchWEventAccountant` holding every user's
    budget ledger.
    """

    original: np.ndarray
    perturbed: np.ndarray
    published: np.ndarray
    deviations: np.ndarray
    accumulated_deviation: np.ndarray
    epsilon_per_slot: float
    accountant: BatchWEventAccountant = field(repr=False)

    @property
    def n_users(self) -> int:
        return self.original.shape[0]

    def __len__(self) -> int:
        return self.original.shape[1]

    def population_mean_series(self) -> np.ndarray:
        """Cross-user mean of the reports at every slot."""
        return self.perturbed.mean(axis=0)

    def mean_estimates(self) -> np.ndarray:
        """Per-user subsequence-mean estimates (mean of each report row)."""
        return self.perturbed.mean(axis=1)


class StreamPerturber(abc.ABC):
    """Base class for every stream algorithm (core and baseline).

    Args:
        epsilon: total w-event budget.
        w: window size; each slot receives ``epsilon / w``.
        mechanism: the randomizer family — registry name (``"sw"``,
            ``"laplace"``, ``"pm"``, ``"sr"``, ``"hm"``), a
            :class:`~repro.mechanisms.Mechanism` subclass, or ``None`` for
            the Square Wave default.
        smoothing_window: odd SMA window applied to the published stream;
            ``None`` publishes the raw reports (the paper smooths APP and
            CAPP with window 3, and leaves IPP and SW-direct raw).
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        mechanism: Union[str, Type[Mechanism], None] = None,
        smoothing_window: Optional[int] = None,
    ) -> None:
        self.epsilon = ensure_epsilon(epsilon)
        self.w = ensure_window(w)
        self.mechanism_class = resolve_mechanism_class(mechanism)
        if smoothing_window is not None:
            smoothing_window = ensure_positive_int(smoothing_window, "smoothing_window")
            if smoothing_window % 2 == 0:
                raise ValueError("smoothing_window must be odd")
        self.smoothing_window = smoothing_window
        self.epsilon_per_slot = per_slot_budget(self.epsilon, self.w)

    # -- the algorithm ---------------------------------------------------

    @abc.abstractmethod
    def _perturb_prepared(
        self,
        values: np.ndarray,
        mechanism: Mechanism,
        accountant: WEventAccountant,
        rng: np.random.Generator,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, float]":
        """Run the algorithm on validated values.

        Returns ``(inputs, perturbed, deviations, accumulated_deviation)``.
        Implementations must charge ``accountant`` once per slot.
        """

    # -- public entry point ----------------------------------------------

    def perturb_stream(
        self,
        values: Sequence[float],
        rng: Optional[np.random.Generator] = None,
    ) -> PerturbationResult:
        """Perturb a full stream and assemble the result bundle."""
        arr = ensure_in_unit_interval(values)
        rng = ensure_rng(rng)
        mechanism = self._make_mechanism()
        accountant = WEventAccountant(self.epsilon, self.w)
        inputs, perturbed, deviations, accumulated = self._perturb_prepared(
            arr, mechanism, accountant, rng
        )
        published = self._publish(perturbed)
        accountant.assert_valid()
        return PerturbationResult(
            original=arr,
            inputs=inputs,
            perturbed=perturbed,
            published=published,
            deviations=deviations,
            accumulated_deviation=float(accumulated),
            epsilon_per_slot=self.epsilon_per_slot,
            accountant=accountant,
        )

    def perturb_population(
        self,
        streams: "Sequence[Sequence[float]] | np.ndarray",
        rng: Optional[np.random.Generator] = None,
    ) -> PopulationPerturbationResult:
        """Perturb every user's stream in one vectorized population pass.

        Processes a ``(n_users, T)`` matrix slot-by-slot with NumPy
        operations across the population, instead of user-by-user Python
        loops.  Per-user semantics are identical to :meth:`perturb_stream`
        — with one user the two paths are bit-identical given the same
        generator (tested).

        Raises:
            NotImplementedError: for algorithms without a batched engine.
        """
        matrix = ensure_stream_matrix(streams)
        if matrix.shape[0] == 0:
            raise ValueError("streams must be non-empty")
        rng = ensure_rng(rng)
        n_users, horizon = matrix.shape
        engine = self._make_batch_engine(n_users, rng, horizon=horizon)
        perturbed = np.empty_like(matrix)
        for t in range(horizon):
            perturbed[:, t] = engine.submit(matrix[:, t])
        engine.accountant.assert_valid()
        if self.smoothing_window is None or horizon == 1:
            published = perturbed.copy()
        else:
            published = simple_moving_average_rows(perturbed, self.smoothing_window)
        try:
            accumulated = engine.accumulated_deviation
        except AttributeError:
            raise TypeError(
                f"{type(engine).__name__} does not expose accumulated_deviation; "
                "population engines driven by perturb_population must track it"
            ) from None
        return PopulationPerturbationResult(
            original=matrix.copy(),
            perturbed=perturbed,
            published=published,
            deviations=matrix - perturbed,
            accumulated_deviation=np.array(accumulated, dtype=float, copy=True),
            epsilon_per_slot=self.epsilon_per_slot,
            accountant=engine.accountant,
        )

    # -- hooks ------------------------------------------------------------

    def _make_batch_engine(
        self,
        n_users: int,
        rng: np.random.Generator,
        horizon: "Optional[int]" = None,
        record_history: bool = True,
    ):
        """Build the vectorized population engine behind
        :meth:`perturb_population` (see :mod:`repro.core.online`).

        ``horizon`` is the number of slots the engine will be stepped
        through; algorithms whose schedule depends on the interval length
        (ToPL's two phases, PP-S segmentation) require it, the slot-local
        algorithms ignore it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no vectorized population engine"
        )

    def _make_mechanism(self) -> Mechanism:
        return self.mechanism_class(self.epsilon_per_slot)

    def _publish(self, perturbed: np.ndarray) -> np.ndarray:
        if self.smoothing_window is None or perturbed.size == 1:
            return perturbed.copy()
        return simple_moving_average(perturbed, self.smoothing_window)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(epsilon={self.epsilon}, w={self.w}, "
            f"mechanism={self.mechanism_class.__name__}, "
            f"smoothing_window={self.smoothing_window})"
        )
