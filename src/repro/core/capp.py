"""Clipped Accumulated Perturbation Parameterization (CAPP) — Alg. 2.

CAPP refines APP's naive ``[0, 1]`` clipping: the deviation-adjusted input
is clipped to a tuned range ``[l, u]``, affinely normalized into ``[0, 1]``
for the SW mechanism, and the report is denormalized back.  Clipping and
normalization are deterministic, so the w-event guarantee is untouched
(Theorem 4), while the tuned range trades sensitivity error against
discarding error (see :mod:`repro.core.clipping`).
"""

from __future__ import annotations

from typing import Optional, Type, Union

import numpy as np

from ..mechanisms import Mechanism
from ..privacy import WEventAccountant
from .base import DEFAULT_SMOOTHING_WINDOW, StreamPerturber
from .clipping import DEFAULT_DELTA_CLAMP, ClipBounds, choose_clip_bounds

__all__ = ["CAPP"]


class CAPP(StreamPerturber):
    """Clipped Accumulated Perturbation Parameterization.

    Args:
        epsilon, w, mechanism, smoothing_window: as in
            :class:`~repro.core.base.StreamPerturber`; the paper only
            evaluates CAPP with the SW mechanism.
        clip_bounds: explicit ``ClipBounds`` or ``(l, u)`` tuple; when
            omitted the bounds come from the paper's error model
            (Equation 11) at this perturber's per-slot budget.
        delta_clamp: clamp range for the automatically chosen ``delta``
            (ignored when ``clip_bounds`` is given); ``None`` uses the raw
            Equation 11 value.
    """

    def __init__(
        self,
        epsilon: float,
        w: int,
        mechanism: Union[str, Type[Mechanism], None] = None,
        smoothing_window: Optional[int] = DEFAULT_SMOOTHING_WINDOW,
        clip_bounds: Union[ClipBounds, "tuple[float, float]", None] = None,
        delta_clamp: Optional["tuple[float, float]"] = DEFAULT_DELTA_CLAMP,
    ) -> None:
        super().__init__(epsilon, w, mechanism, smoothing_window)
        if clip_bounds is None:
            self.clip_bounds = choose_clip_bounds(self.epsilon_per_slot, delta_clamp)
        elif isinstance(clip_bounds, ClipBounds):
            self.clip_bounds = clip_bounds
        else:
            low, high = clip_bounds
            self.clip_bounds = ClipBounds(
                low=float(low), high=float(high), delta=float(-low)
            )

    def _perturb_prepared(
        self,
        values: np.ndarray,
        mechanism: Mechanism,
        accountant: WEventAccountant,
        rng: np.random.Generator,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, float]":
        n = values.size
        inputs = np.empty(n)
        perturbed = np.empty(n)
        deviations = np.empty(n)
        low, high = self.clip_bounds.low, self.clip_bounds.high
        width = self.clip_bounds.width

        accumulated = 0.0
        for t in range(n):
            adjusted = float(np.clip(values[t] + accumulated, low, high))
            normalized = (adjusted - low) / width
            inputs[t] = normalized
            report = float(mechanism.perturb(normalized, rng))
            accountant.charge(t, self.epsilon_per_slot)
            perturbed[t] = report * width + low  # denormalize to [l, u] scale
            deviations[t] = values[t] - perturbed[t]
            accumulated += deviations[t]
        return inputs, perturbed, deviations, accumulated

    def _make_batch_engine(self, n_users, rng, horizon=None, record_history=True):
        from .online import BatchOnlineCAPP

        return BatchOnlineCAPP(
            self.epsilon,
            self.w,
            n_users,
            rng,
            mechanism=self.mechanism_class,
            clip_bounds=self.clip_bounds,
            record_history=record_history,
        )
