"""Collector-side post-processing beyond the paper's SMA.

The paper smooths published streams with a simple moving average
(Lemma IV.1).  The collector, however, knows the per-report noise
variance exactly — the mechanism and budget are public — so
better-informed estimators are possible without touching privacy
(post-processing is free).  This module adds two:

* :func:`exponential_smoothing` — classic EWMA, single tuning knob;
* :class:`KalmanSmoother` — a scalar local-level state-space model
  (``x_t = x_{t-1} + w_t``, ``y_t = x_t + v_t``) with the observation
  variance taken from the mechanism's analytics, filtered forward and
  optionally RTS-smoothed backward.

The smoother ablation bench compares all three on published streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import ensure_stream
from ..mechanisms import Mechanism, SquareWaveMechanism

__all__ = ["exponential_smoothing", "KalmanSmoother", "observation_variance_for"]


def exponential_smoothing(values: Sequence[float], alpha: float) -> np.ndarray:
    """EWMA: ``s_t = alpha * y_t + (1 - alpha) * s_{t-1}``.

    Args:
        values: the series to smooth.
        alpha: weight of the newest observation in ``(0, 1]``; 1 is the
            identity.
    """
    arr = ensure_stream(values)
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    out = np.empty_like(arr)
    out[0] = arr[0]
    for t in range(1, arr.size):
        out[t] = alpha * arr[t] + (1.0 - alpha) * out[t - 1]
    return out


def observation_variance_for(epsilon_per_slot: float, x: float = 0.5) -> float:
    """Per-report SW noise variance the collector can assume (public)."""
    return float(SquareWaveMechanism(epsilon_per_slot).output_variance(x))


@dataclass
class KalmanSmoother:
    """Scalar local-level Kalman filter / RTS smoother.

    Model::

        x_t = x_{t-1} + w_t,   w_t ~ N(0, process_var)
        y_t = x_t + v_t,       v_t ~ N(0, observation_var)

    Args:
        observation_var: per-report noise variance; take it from
            :func:`observation_variance_for` for SW-based algorithms or
            from any :class:`~repro.mechanisms.Mechanism`'s
            ``output_variance``.
        process_var: how fast the true level is allowed to move per slot.
        initial_mean: prior mean (domain centre by default).
        initial_var: prior variance (weak by default).
    """

    observation_var: float
    process_var: float = 1e-3
    initial_mean: float = 0.5
    initial_var: float = 1.0

    def __post_init__(self) -> None:
        if self.observation_var <= 0:
            raise ValueError("observation_var must be positive")
        if self.process_var <= 0:
            raise ValueError("process_var must be positive")
        if self.initial_var <= 0:
            raise ValueError("initial_var must be positive")

    @staticmethod
    def for_mechanism(
        mechanism: Mechanism,
        process_var: float = 1e-3,
        x: float = 0.5,
    ) -> "KalmanSmoother":
        """Build a smoother from a mechanism's analytic noise variance."""
        return KalmanSmoother(
            observation_var=float(mechanism.output_variance(x)),
            process_var=process_var,
        )

    def filter(self, values: Sequence[float]) -> "tuple[np.ndarray, np.ndarray]":
        """Forward pass: filtered means and variances per slot."""
        arr = ensure_stream(values)
        n = arr.size
        means = np.empty(n)
        variances = np.empty(n)
        mean, var = self.initial_mean, self.initial_var
        for t in range(n):
            # Predict.
            var_pred = var + self.process_var
            # Update.
            gain = var_pred / (var_pred + self.observation_var)
            mean = mean + gain * (arr[t] - mean)
            var = (1.0 - gain) * var_pred
            means[t] = mean
            variances[t] = var
        return means, variances

    def smooth(self, values: Sequence[float]) -> np.ndarray:
        """Full RTS smoothing pass (uses future observations too)."""
        arr = ensure_stream(values)
        n = arr.size
        filtered_mean, filtered_var = self.filter(arr)
        if n == 1:
            return filtered_mean
        smoothed = filtered_mean.copy()
        smoothed_var = filtered_var.copy()
        for t in range(n - 2, -1, -1):
            var_pred = filtered_var[t] + self.process_var
            gain = filtered_var[t] / var_pred
            smoothed[t] = filtered_mean[t] + gain * (smoothed[t + 1] - filtered_mean[t])
            smoothed_var[t] = filtered_var[t] + gain**2 * (
                smoothed_var[t + 1] - var_pred
            )
        return smoothed
