"""The paper's contribution: perturbation-parameterization stream algorithms."""

from .adaptive_clipping import (
    adaptive_clip_objective,
    choose_adaptive_clip_bounds,
    noise_error,
    tail_discarding_error,
)
from .app import APP
from .base import PerturbationResult, PopulationPerturbationResult, StreamPerturber
from .capp import CAPP
from .clipping import (
    DEFAULT_DELTA_CLAMP,
    ClipBounds,
    choose_clip_bounds,
    clip_delta,
    discarding_error,
    sensitivity_error,
)
from .ipp import IPP
from .multidim import BudgetSplit, MultiDimResult, SampleSplit
from .online import (
    BatchOnlineAPP,
    BatchOnlineCAPP,
    BatchOnlineIPP,
    BatchOnlinePerturber,
    BatchOnlineSWDirect,
    OnlineAPP,
    OnlineCAPP,
    OnlineIPP,
    OnlinePerturber,
    OnlineSmoother,
    OnlineSWDirect,
)
from .postprocessing import (
    KalmanSmoother,
    exponential_smoothing,
    observation_variance_for,
)
from .sampling import (
    PPSampling,
    SamplingResult,
    choose_num_samples,
    classify_tail,
    recommend_num_samples,
    replicate_segments,
    segment_bounds,
    segment_means,
)
from .serialization import (
    batch_accountant_from_dict,
    batch_accountant_to_dict,
    collector_state_from_dict,
    collector_state_to_dict,
    dumps_result,
    loads_result,
    result_from_dict,
    result_to_dict,
    result_to_public_dict,
)
from .smoothing import (
    simple_moving_average,
    simple_moving_average_rows,
    smoothing_variance_reduction,
)

__all__ = [
    "StreamPerturber",
    "PerturbationResult",
    "PopulationPerturbationResult",
    "IPP",
    "APP",
    "CAPP",
    "PPSampling",
    "SamplingResult",
    "BudgetSplit",
    "SampleSplit",
    "MultiDimResult",
    "ClipBounds",
    "choose_clip_bounds",
    "clip_delta",
    "sensitivity_error",
    "discarding_error",
    "DEFAULT_DELTA_CLAMP",
    "choose_num_samples",
    "classify_tail",
    "recommend_num_samples",
    "segment_bounds",
    "segment_means",
    "replicate_segments",
    "simple_moving_average",
    "simple_moving_average_rows",
    "smoothing_variance_reduction",
    "OnlinePerturber",
    "OnlineSWDirect",
    "OnlineIPP",
    "OnlineAPP",
    "OnlineCAPP",
    "OnlineSmoother",
    "BatchOnlinePerturber",
    "BatchOnlineSWDirect",
    "BatchOnlineIPP",
    "BatchOnlineAPP",
    "BatchOnlineCAPP",
    "choose_adaptive_clip_bounds",
    "adaptive_clip_objective",
    "noise_error",
    "tail_discarding_error",
    "KalmanSmoother",
    "exponential_smoothing",
    "observation_variance_for",
    "result_to_dict",
    "result_to_public_dict",
    "result_from_dict",
    "dumps_result",
    "loads_result",
    "collector_state_to_dict",
    "collector_state_from_dict",
    "batch_accountant_to_dict",
    "batch_accountant_from_dict",
]
