"""Normalization helpers for bringing raw streams into the canonical domain."""

from __future__ import annotations

import numpy as np

__all__ = ["minmax_normalize", "denormalize", "NormalizationParams"]

from dataclasses import dataclass


@dataclass(frozen=True)
class NormalizationParams:
    """Affine parameters recording how a stream was normalized."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(
                f"degenerate normalization range [{self.low}, {self.high}]"
            )

    def apply(self, values: np.ndarray) -> np.ndarray:
        return (np.asarray(values, dtype=float) - self.low) / (self.high - self.low)

    def invert(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=float) * (self.high - self.low) + self.low


def minmax_normalize(values: np.ndarray) -> np.ndarray:
    """Min-max rescale to ``[0, 1]`` (constant input maps to all-0.5)."""
    arr = np.asarray(values, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError("values must be finite")
    low, high = float(arr.min()), float(arr.max())
    if low == high:
        return np.full_like(arr, 0.5)
    return (arr - low) / (high - low)


def denormalize(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Invert a min-max normalization given the original range."""
    return NormalizationParams(low, high).invert(values)
