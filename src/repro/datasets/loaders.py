"""Statistically matched substitutes for the paper's four real datasets.

The originals (UCI Metro Interstate Traffic Volume, UCI Air Quality C6H6,
MSR T-Drive taxi latitudes, UCR device power) are not redistributable in
this offline environment, so each loader synthesizes a stream with the
same structural properties the paper's algorithms are sensitive to —
bounded range, autocorrelation, seasonality, and (for Power) long constant
stretches.  DESIGN.md Section 4 documents the substitution rationale.

All loaders are deterministic given ``seed`` and return values normalized
to ``[0, 1]``.
"""

from __future__ import annotations


import numpy as np

from .._validation import ensure_positive_int
from .normalize import minmax_normalize

__all__ = [
    "volume_stream",
    "c6h6_stream",
    "taxi_matrix",
    "power_matrix",
    "VOLUME_LENGTH",
    "C6H6_LENGTH",
    "TAXI_USERS",
    "TAXI_LENGTH",
    "POWER_USERS",
    "POWER_LENGTH",
]

#: sizes of the original datasets (used as defaults)
VOLUME_LENGTH = 48_204
C6H6_LENGTH = 9_358
TAXI_USERS = 1_500
TAXI_LENGTH = 1_307
POWER_USERS = 25_562
POWER_LENGTH = 96


def volume_stream(length: int = VOLUME_LENGTH, seed: int = 7) -> np.ndarray:
    """Hourly traffic-volume stand-in: daily + weekly seasonality, AR noise.

    Mimics MNDoT ATR 301 westbound volume: strong rush-hour double peaks,
    weekday/weekend contrast, and autocorrelated measurement noise.
    """
    length = ensure_positive_int(length, "length")
    rng = np.random.default_rng(seed)
    hours = np.arange(length, dtype=float)
    hour_of_day = hours % 24.0
    day_of_week = (hours // 24.0) % 7.0

    morning = np.exp(-0.5 * ((hour_of_day - 8.0) / 2.0) ** 2)
    evening = np.exp(-0.5 * ((hour_of_day - 17.0) / 2.5) ** 2)
    weekday = np.where(day_of_week < 5, 1.0, 0.55)
    base = (0.25 + 0.9 * morning + 1.0 * evening) * weekday

    noise = np.empty(length)
    noise[0] = rng.normal(0.0, 0.05)
    shocks = rng.normal(0.0, 0.05, size=length)
    for t in range(1, length):
        noise[t] = 0.8 * noise[t - 1] + shocks[t]
    return minmax_normalize(base + noise)


def c6h6_stream(length: int = C6H6_LENGTH, seed: int = 11) -> np.ndarray:
    """Benzene-concentration stand-in: AR(1) + diurnal cycle + spikes.

    Mimics the UCI Air Quality C6H6(GT) series: a positive, slowly varying
    pollutant level with a daily cycle and occasional pollution episodes.
    """
    length = ensure_positive_int(length, "length")
    rng = np.random.default_rng(seed)
    hours = np.arange(length, dtype=float)
    diurnal = 0.3 * (1.0 + np.sin(2.0 * np.pi * (hours % 24.0) / 24.0 - 1.2))

    level = np.empty(length)
    level[0] = 0.5
    shocks = rng.normal(0.0, 0.06, size=length)
    for t in range(1, length):
        level[t] = 0.95 * level[t - 1] + 0.025 + shocks[t]

    episodes = np.zeros(length)
    n_episodes = max(length // 400, 1)
    starts = rng.integers(0, length, size=n_episodes)
    for start in starts:
        span = int(rng.integers(6, 30))
        end = min(start + span, length)
        episodes[start:end] += rng.uniform(0.4, 1.0)
    return minmax_normalize(level + diurnal + episodes)


def taxi_matrix(
    n_users: int = TAXI_USERS,
    length: int = TAXI_LENGTH,
    seed: int = 13,
) -> np.ndarray:
    """Taxi-latitude stand-in: per-driver bounded walks around a city centre.

    Mimics T-Drive latitudes at fixed timestamps: each driver's latitude is
    a smooth, bounded walk with a driver-specific home base and drift.
    Rows are users; values are jointly min-max normalized so the crowd
    shares one coordinate frame (as latitude does).
    """
    n_users = ensure_positive_int(n_users, "n_users")
    length = ensure_positive_int(length, "length")
    rng = np.random.default_rng(seed)
    bases = rng.normal(0.5, 0.12, size=n_users)
    matrix = np.empty((n_users, length))
    for i in range(n_users):
        steps = rng.normal(0.0, 0.01, size=length)
        steps[0] = 0.0
        walk = bases[i] + np.cumsum(steps)
        # Mean-revert toward the driver's base to stay in a city-sized box.
        for t in range(1, length):
            walk[t] += 0.05 * (bases[i] - walk[t - 1])
        matrix[i] = walk
    return minmax_normalize(matrix)


def power_matrix(
    n_users: int = 2_000,
    length: int = POWER_LENGTH,
    seed: int = 17,
    constant_fraction: float = 0.35,
) -> np.ndarray:
    """Device-power stand-in: piecewise-constant on/off profiles.

    Mimics the UCR device power traces (96 slots per device).  A
    ``constant_fraction`` of devices is entirely flat — the structural
    property behind the paper's observation that BA-SW wins on Power at
    large budgets — and the rest switch between a few power levels with
    small level noise.

    The default ``n_users`` is reduced from the original 25 562 for
    tractable experiment runtimes; pass ``n_users=POWER_USERS`` for full
    scale.
    """
    n_users = ensure_positive_int(n_users, "n_users")
    length = ensure_positive_int(length, "length")
    if not 0.0 <= constant_fraction <= 1.0:
        raise ValueError(
            f"constant_fraction must lie in [0, 1], got {constant_fraction}"
        )
    rng = np.random.default_rng(seed)
    matrix = np.empty((n_users, length))
    n_constant = int(round(n_users * constant_fraction))
    for i in range(n_users):
        if i < n_constant:
            matrix[i] = rng.uniform(0.0, 1.0)
            continue
        # A few switching events between discrete power levels.
        levels = rng.uniform(0.0, 1.0, size=rng.integers(2, 5))
        switch_points = np.sort(rng.integers(1, length, size=levels.size - 1))
        bounds = np.concatenate([[0], switch_points, [length]])
        profile = np.empty(length)
        for level, (lo, hi) in zip(levels, zip(bounds[:-1], bounds[1:])):
            profile[lo:hi] = level
        matrix[i] = np.clip(profile + rng.normal(0.0, 0.01, size=length), 0.0, 1.0)
    return matrix
