"""Name-based dataset registry used by the experiment configs.

``load_stream`` returns single-user streams and ``load_matrix`` returns
multi-user matrices; both accept ``length``/``n_users`` overrides so tests
and benchmarks can run on reduced sizes while examples use paper scale.
"""

from __future__ import annotations

import difflib
from typing import Iterable, Optional

import numpy as np

from .loaders import c6h6_stream, power_matrix, taxi_matrix, volume_stream
from .synthetic import (
    constant_stream,
    pulse_stream,
    random_walk_stream,
    sin_matrix,
    sinusoidal_stream,
)

__all__ = ["load_stream", "load_matrix", "STREAM_DATASETS", "MATRIX_DATASETS"]

#: single-user stream datasets and their default lengths
STREAM_DATASETS = {
    "volume": 48_204,
    "c6h6": 9_358,
    "constant": 1_000,
    "pulse": 1_000,
    "sinusoidal": 1_000,
}

#: multi-user matrix datasets and their default (users, length)
MATRIX_DATASETS = {
    "taxi": (1_500, 1_307),
    "power": (2_000, 96),
}


def _unknown_name_message(kind: str, name: str, known: Iterable[str]) -> str:
    """Unknown-name error text with close-match hints (CLI-friendly)."""
    known = sorted(known)
    close = difflib.get_close_matches(str(name).lower(), known, n=3, cutoff=0.5)
    hint = f"; did you mean {' or '.join(repr(c) for c in close)}?" if close else ""
    return f"unknown {kind} {name!r}{hint} (known: {', '.join(known)})"


def load_stream(
    name: str,
    length: Optional[int] = None,
    seed: int = 0,
) -> np.ndarray:
    """Load a single-user stream by name (values in ``[0, 1]``).

    For the multi-user datasets (``taxi``, ``power``) this returns the
    stream of user ``seed % n_users`` so single-stream experiments can
    still draw from them.
    """
    key = name.lower()
    if key == "volume":
        return volume_stream(length or STREAM_DATASETS["volume"])
    if key == "c6h6":
        return c6h6_stream(length or STREAM_DATASETS["c6h6"])
    if key == "constant":
        return constant_stream(length or STREAM_DATASETS["constant"])
    if key == "pulse":
        return pulse_stream(length or STREAM_DATASETS["pulse"])
    if key == "sinusoidal":
        return sinusoidal_stream(length or STREAM_DATASETS["sinusoidal"])
    if key in MATRIX_DATASETS:
        # Single-stream extraction: generate a small user pool and pick a
        # row deterministically (avoids materializing thousands of users).
        pool = 8
        matrix = load_matrix(key, n_users=pool, length=length)
        return matrix[seed % pool]
    if key == "random_walk":
        return random_walk_stream(
            length or 1_000, rng=np.random.default_rng(seed)
        )
    known = sorted(set(STREAM_DATASETS) | set(MATRIX_DATASETS) | {"random_walk"})
    raise KeyError(_unknown_name_message("dataset", name, known))


def load_matrix(
    name: str,
    n_users: Optional[int] = None,
    length: Optional[int] = None,
    n_dimensions: Optional[int] = None,
) -> np.ndarray:
    """Load a multi-user (or multi-dimensional) matrix by name."""
    key = name.lower()
    if key == "taxi":
        users, slots = MATRIX_DATASETS["taxi"]
        return taxi_matrix(n_users or users, length or slots)
    if key == "power":
        users, slots = MATRIX_DATASETS["power"]
        return power_matrix(n_users or users, length or slots)
    if key in {"sin", "sin-data", "sin_data"}:
        return sin_matrix(n_dimensions or 5, length or 400)
    known = sorted(set(MATRIX_DATASETS) | {"sin-data"})
    raise KeyError(_unknown_name_message("matrix dataset", name, known))
