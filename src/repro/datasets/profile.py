"""Dataset profiling: the statistics behind DESIGN.md's substitutions.

The real Volume/C6H6/Taxi/Power datasets are replaced by synthetic
generators; this module computes the structural properties the stream
algorithms are actually sensitive to — range, autocorrelation,
seasonality strength, constancy — so the substitution claims are
checkable by code (and tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import ensure_positive_int, ensure_stream

__all__ = ["StreamProfile", "profile_stream", "constancy_fraction", "autocorrelation", "seasonality_strength"]


def autocorrelation(values: Sequence[float], lag: int = 1) -> float:
    """Pearson autocorrelation at the given lag (0 for constant streams)."""
    arr = ensure_stream(values)
    lag = ensure_positive_int(lag, "lag")
    if lag >= arr.size:
        raise ValueError(f"lag {lag} too large for stream of length {arr.size}")
    a, b = arr[:-lag], arr[lag:]
    if np.std(a) == 0.0 or np.std(b) == 0.0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def constancy_fraction(values: Sequence[float], atol: float = 1e-12) -> float:
    """Fraction of consecutive pairs that are (nearly) equal."""
    arr = ensure_stream(values)
    if arr.size == 1:
        return 1.0
    return float(np.mean(np.abs(np.diff(arr)) <= atol))


def seasonality_strength(values: Sequence[float], period: int) -> float:
    """Variance share explained by the mean seasonal profile (0..1)."""
    arr = ensure_stream(values)
    period = ensure_positive_int(period, "period")
    if period >= arr.size:
        raise ValueError(f"period {period} too large for stream of length {arr.size}")
    usable = (arr.size // period) * period
    if usable < 2 * period:
        raise ValueError("need at least two full periods")
    folded = arr[:usable].reshape(-1, period)
    seasonal = folded.mean(axis=0)
    total_var = float(arr[:usable].var())
    if total_var == 0.0:
        return 0.0
    return float(np.clip(seasonal.var() / total_var, 0.0, 1.0))


@dataclass(frozen=True)
class StreamProfile:
    """Structural summary of a stream."""

    length: int
    minimum: float
    maximum: float
    mean: float
    std: float
    lag1_autocorrelation: float
    constancy: float

    def summary(self) -> str:
        """One-line human-readable profile."""
        return (
            f"n={self.length} range=[{self.minimum:.3f}, {self.maximum:.3f}] "
            f"mean={self.mean:.3f} std={self.std:.3f} "
            f"rho1={self.lag1_autocorrelation:.3f} const={self.constancy:.2%}"
        )


def profile_stream(values: Sequence[float]) -> StreamProfile:
    """Compute the full structural profile of one stream."""
    arr = ensure_stream(values)
    lag1 = autocorrelation(arr, 1) if arr.size > 1 else 0.0
    return StreamProfile(
        length=int(arr.size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        std=float(arr.std()),
        lag1_autocorrelation=lag1,
        constancy=constancy_fraction(arr),
    )
