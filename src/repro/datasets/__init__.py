"""Dataset substrate: synthetic generators and real-dataset substitutes."""

from .loaders import (
    C6H6_LENGTH,
    POWER_LENGTH,
    POWER_USERS,
    TAXI_LENGTH,
    TAXI_USERS,
    VOLUME_LENGTH,
    c6h6_stream,
    power_matrix,
    taxi_matrix,
    volume_stream,
)
from .normalize import NormalizationParams, denormalize, minmax_normalize
from .profile import (
    StreamProfile,
    autocorrelation,
    constancy_fraction,
    profile_stream,
    seasonality_strength,
)
from .registry import MATRIX_DATASETS, STREAM_DATASETS, load_matrix, load_stream
from .synthetic import (
    constant_stream,
    diurnal_stream,
    pulse_stream,
    random_walk_stream,
    sin_matrix,
    sinusoidal_stream,
)

__all__ = [
    "volume_stream",
    "c6h6_stream",
    "taxi_matrix",
    "power_matrix",
    "constant_stream",
    "pulse_stream",
    "sinusoidal_stream",
    "diurnal_stream",
    "random_walk_stream",
    "sin_matrix",
    "minmax_normalize",
    "denormalize",
    "NormalizationParams",
    "load_stream",
    "load_matrix",
    "STREAM_DATASETS",
    "MATRIX_DATASETS",
    "VOLUME_LENGTH",
    "C6H6_LENGTH",
    "TAXI_USERS",
    "TAXI_LENGTH",
    "POWER_USERS",
    "POWER_LENGTH",
    "StreamProfile",
    "profile_stream",
    "autocorrelation",
    "constancy_fraction",
    "seasonality_strength",
]
