"""Synthetic stream generators used directly by the paper.

Section VI-D evaluates on four synthetic shapes: Constant (x = 0.1), Pulse
(a 1 every five slots, zeros elsewhere), Sinusoidal, and "Sin-data" — a
``d``-dimensional matrix of sinusoids with varying frequencies (Fig. 10).
All generators emit values in ``[0, 1]``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import ensure_positive_int, ensure_rng

__all__ = [
    "constant_stream",
    "pulse_stream",
    "sinusoidal_stream",
    "diurnal_stream",
    "random_walk_stream",
    "sin_matrix",
]


def constant_stream(length: int, value: float = 0.1) -> np.ndarray:
    """A stream pinned at ``value`` (paper default 0.1)."""
    length = ensure_positive_int(length, "length")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"value must lie in [0, 1], got {value}")
    return np.full(length, float(value))


def pulse_stream(length: int, period: int = 5, high: float = 1.0) -> np.ndarray:
    """Zeros with a ``high`` pulse every ``period`` slots (paper default 5)."""
    length = ensure_positive_int(length, "length")
    period = ensure_positive_int(period, "period")
    if not 0.0 <= high <= 1.0:
        raise ValueError(f"high must lie in [0, 1], got {high}")
    stream = np.zeros(length)
    stream[period - 1 :: period] = high
    return stream


def sinusoidal_stream(
    length: int,
    cycles: float = 4.0,
    phase: float = 0.0,
) -> np.ndarray:
    """A sinusoid rescaled into ``[0, 1]`` completing ``cycles`` periods."""
    length = ensure_positive_int(length, "length")
    if cycles <= 0:
        raise ValueError(f"cycles must be positive, got {cycles}")
    t = np.arange(length, dtype=float)
    wave = np.sin(2.0 * np.pi * cycles * t / length + phase)
    return (wave + 1.0) / 2.0


def diurnal_stream(
    length: int,
    period: int = 24,
    amplitude: float = 0.25,
    base: float = 0.5,
) -> np.ndarray:
    """A daily-cycle signal: ``base + amplitude * sin(2*pi*t/period)``.

    The building block of the runtime's scenario workloads
    (:mod:`repro.runtime.scenarios`); unlike :func:`sinusoidal_stream`
    the cycle length is fixed in slots (e.g. 24 hourly slots per day)
    rather than scaled to the stream length, so horizons of any length
    carry the same daily shape.  Clipped into ``[0, 1]``.
    """
    length = ensure_positive_int(length, "length")
    period = ensure_positive_int(period, "period")
    if amplitude < 0:
        raise ValueError(f"amplitude must be >= 0, got {amplitude}")
    if not 0.0 <= base <= 1.0:
        raise ValueError(f"base must lie in [0, 1], got {base}")
    t = np.arange(length, dtype=float)
    return np.clip(base + amplitude * np.sin(2.0 * np.pi * t / period), 0.0, 1.0)


def random_walk_stream(
    length: int,
    step_scale: float = 0.02,
    start: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """A reflected Gaussian random walk confined to ``[0, 1]``."""
    length = ensure_positive_int(length, "length")
    if step_scale <= 0:
        raise ValueError(f"step_scale must be positive, got {step_scale}")
    if not 0.0 <= start <= 1.0:
        raise ValueError(f"start must lie in [0, 1], got {start}")
    rng = ensure_rng(rng)
    steps = rng.normal(0.0, step_scale, size=length)
    steps[0] = 0.0
    walk = start + np.cumsum(steps)
    # Reflect into [0, 1]: fold the walk at both boundaries.
    folded = np.mod(walk, 2.0)
    return np.where(folded > 1.0, 2.0 - folded, folded)


def sin_matrix(
    n_dimensions: int,
    length: int,
    base_cycles: float = 2.0,
    cycle_step: float = 1.0,
) -> np.ndarray:
    """The paper's "Sin-data": ``d`` sinusoids with varying frequencies.

    Dimension ``i`` completes ``base_cycles + i * cycle_step`` periods, so
    every dimension carries distinct temporal structure (Fig. 10 uses
    d = 5 and d = 10).
    """
    n_dimensions = ensure_positive_int(n_dimensions, "n_dimensions")
    length = ensure_positive_int(length, "length")
    rows = [
        sinusoidal_stream(length, cycles=base_cycles + i * cycle_step, phase=0.31 * i)
        for i in range(n_dimensions)
    ]
    return np.vstack(rows)
