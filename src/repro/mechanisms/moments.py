"""Analytic moments of the SW mechanism used by CAPP and PP-S.

Section IV-B of the paper derives the moments of the *deviation*
``D_x = x - SW(x)`` (used to size the CAPP clip range), and Section V the
raw output moments ``mu``, ``sigma^2``, ``mu_4`` at the worst case ``x = 1``
(used to pick the number of samples ``n_s``).  This module provides both,
computed by exact piecewise integration via
:meth:`~repro.mechanisms.square_wave.SquareWaveMechanism.raw_output_moment`,
plus the paper's closed forms for cross-checking.

Variance of the sample variance
-------------------------------

The paper's Equation 13 reads ``Var(n_s, eps) = (mu4 - sigma^2 (n_s - 3) /
(n_s - 1)) / n_s``.  The classical result it cites (Cramér / "Introduction
to the Theory of Statistics") is

    Var(S^2) = (mu4 - sigma^4 * (n - 3) / (n - 1)) / n

with ``sigma^4``, not ``sigma^2`` — almost surely a typo.  We implement the
classical formula by default and expose ``literal=True`` to reproduce the
paper's text verbatim; the selected ``n_s`` is insensitive to the choice in
all of the paper's configurations (see tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import ensure_epsilon, ensure_positive_int
from .square_wave import SquareWaveMechanism, sw_probabilities

__all__ = [
    "DeviationMoments",
    "deviation_moments",
    "deviation_expectation_closed_form",
    "deviation_variance_closed_form",
    "output_moments_at_one",
    "variance_of_sample_variance",
]


@dataclass(frozen=True)
class DeviationMoments:
    """Moments of ``D_x = x - SW(x)`` for a fixed input ``x``."""

    mean: float
    variance: float

    @property
    def std(self) -> float:
        """Standard deviation — the paper's discarding error ``e_d``."""
        return math.sqrt(max(self.variance, 0.0))


def deviation_moments(epsilon: float, x: float = 1.0) -> DeviationMoments:
    """Exact mean/variance of the deviation ``D_x`` at input ``x``.

    ``D_x = x - y`` with ``y = SW(x)``, hence ``E[D] = x - E[y]`` and
    ``Var(D) = Var(y)``.
    """
    mech = SquareWaveMechanism(epsilon)
    mean = float(x - mech.expected_output(x))
    variance = float(mech.output_variance(x))
    return DeviationMoments(mean=mean, variance=variance)


def deviation_expectation_closed_form(epsilon: float, x: float = 1.0) -> float:
    """Paper's closed form ``E(D_x) = q((1 + 2b)x - (b + 1/2))``."""
    b, _, q = sw_probabilities(epsilon)
    return q * ((1.0 + 2.0 * b) * x - (b + 0.5))


def deviation_variance_closed_form(epsilon: float) -> float:
    """Paper's closed form for ``Var(D_x)`` at the worst case ``x = 1``.

    ``Var(D_x) = 2 b^3 p / 3 - b^2 q^2 + b^2 q - b q^2 + b q - q^2 / 4 + q / 3``
    (Section IV-B).
    """
    b, p, q = sw_probabilities(epsilon)
    return (
        2.0 * b**3 * p / 3.0
        - b**2 * q**2
        + b**2 * q
        - b * q**2
        + b * q
        - q**2 / 4.0
        + q / 3.0
    )


def output_moments_at_one(epsilon: float) -> "tuple[float, float, float]":
    """``(mu, sigma^2, mu4)`` of ``SW(1)`` — Section V's worst case.

    Computed by exact piecewise integration; the paper's long closed forms
    are reproduced by the tests against these values.
    """
    mech = SquareWaveMechanism(epsilon)
    mu = float(mech.expected_output(1.0))
    sigma2 = float(mech.output_variance(1.0))
    mu4 = float(mech.central_output_moment(1.0, 4))
    return mu, sigma2, mu4


def variance_of_sample_variance(
    n_samples: int,
    sigma2: float,
    mu4: float,
    literal: bool = False,
) -> float:
    """``Var(S^2)`` for ``n_samples`` i.i.d. draws with given moments.

    Args:
        n_samples: sample size ``n_s`` (must be >= 2 for the classical
            formula to be defined; ``n_s = 1`` returns ``inf`` because the
            sample variance does not exist).
        sigma2: population variance.
        mu4: population fourth central moment.
        literal: reproduce the paper's Eq. 13 verbatim (``sigma^2`` in
            place of ``sigma^4``); default uses the classical formula.
    """
    n = ensure_positive_int(n_samples, "n_samples")
    if n < 2:
        return math.inf
    spread = sigma2 if literal else sigma2**2
    return (mu4 - spread * (n - 3.0) / (n - 1.0)) / n


def sampling_objective(
    n_samples: int,
    epsilon_per_sample: float,
    literal: bool = False,
) -> float:
    """The paper's Eq. 12 objective ``n_s * Var(n_s, eps)``.

    ``epsilon_per_sample`` is the budget each uploaded value receives; the
    moments are evaluated at the worst case ``x = 1``.
    """
    eps = ensure_epsilon(epsilon_per_sample, "epsilon_per_sample")
    _, sigma2, mu4 = output_moments_at_one(eps)
    return n_samples * variance_of_sample_variance(n_samples, sigma2, mu4, literal)
