"""Duchi et al.'s one-dimensional SR mechanism (minimax optimal for means).

Native formulation: input ``t`` in ``[-1, 1]``; the output is one of two
points ``±C'`` with ``C' = (e^eps + 1) / (e^eps - 1)``, and

    Pr[y = C'] = (e^eps - 1) / (2 e^eps + 2) * t + 1/2,

which makes the mechanism unbiased.  The binary alphabet is exactly why the
paper finds it loses "substantial temporal information" (Section IV-C).

Canonical wrapper: same affine maps as the other native ``[-1, 1]``
mechanisms.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from .base import Mechanism, OutputDomain

__all__ = ["DuchiMechanism"]


class DuchiMechanism(Mechanism):
    """Duchi's SR randomizer with the canonical ``[0, 1]`` interface."""

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        e_eps = math.exp(self._epsilon)
        self.magnitude = (e_eps + 1.0) / (e_eps - 1.0)
        self._slope = (e_eps - 1.0) / (2.0 * e_eps + 2.0)

    @property
    def output_domain(self) -> OutputDomain:
        return OutputDomain(
            low=(1.0 - self.magnitude) / 2.0,
            high=(1.0 + self.magnitude) / 2.0,
            discrete=True,
        )

    def positive_probability(self, x: Union[float, np.ndarray]) -> np.ndarray:
        """Probability of emitting the positive point ``+C'`` for input x."""
        t = 2.0 * np.asarray(x, dtype=float) - 1.0
        return self._slope * t + 0.5

    def perturb(
        self,
        values: Union[float, np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        arr, rng = self._prepare(values, rng)
        prob_positive = self.positive_probability(arr)
        sign = np.where(rng.random(arr.shape) < prob_positive, 1.0, -1.0)
        return (sign * self.magnitude + 1.0) / 2.0

    def expected_output(self, x: Union[float, np.ndarray]) -> np.ndarray:
        return np.asarray(x, dtype=float)

    def output_variance(self, x: Union[float, np.ndarray]) -> np.ndarray:
        # Native: Var = C'^2 - t^2; canonical scales by 1/4.
        t = 2.0 * np.asarray(x, dtype=float) - 1.0
        return (self.magnitude**2 - t**2) / 4.0
