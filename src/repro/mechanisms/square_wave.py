"""Square Wave (SW) mechanism of Li et al., SIGMOD 2020.

The SW mechanism is the paper's primary randomizer (Section II-C).  Each
input ``v`` in ``[0, 1]`` is reported as a value in ``[-b, 1 + b]`` drawn
from a two-level density: ``p`` inside the window ``[v - b, v + b]`` ("near"
mass) and ``q`` elsewhere ("far" mass), with ``p = e^eps * q``.

The half-width is

    b = (eps * e^eps - e^eps + 1) / (2 e^eps (e^eps - eps - 1))

which we evaluate in the numerically stable form

    b = (eps + expm1(-eps)) / (2 * (expm1(eps) - eps))

so that the small-``eps`` limit ``b -> 1/2`` (used by Lemma IV.2 of the
paper) comes out without catastrophic cancellation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from .. import kernels
from .._validation import ensure_epsilon, ensure_positive_int
from .base import Mechanism, OutputDomain

__all__ = ["SquareWaveMechanism", "sw_half_width", "sw_probabilities"]


def sw_half_width(epsilon: float) -> float:
    """Half-width ``b`` of the SW near-window for privacy budget ``epsilon``.

    Stable for the full range of budgets; tends to ``1/2`` as ``epsilon``
    approaches zero and to ``0`` as it grows.
    """
    eps = ensure_epsilon(epsilon)
    numerator = eps + math.expm1(-eps)
    denominator = 2.0 * (math.expm1(eps) - eps)
    return numerator / denominator


def sw_probabilities(epsilon: float) -> "tuple[float, float, float]":
    """Return ``(b, p, q)`` for the SW mechanism at budget ``epsilon``.

    ``p`` is the density inside the near-window, ``q`` outside; they satisfy
    ``p = e^eps * q`` and ``2*b*p + q = 1`` (the far region always has total
    length 1 because the output domain ``[-b, 1+b]`` is ``1 + 2b`` long).
    """
    eps = ensure_epsilon(epsilon)
    b = sw_half_width(eps)
    e_eps = math.exp(eps)
    q = 1.0 / (2.0 * b * e_eps + 1.0)
    p = e_eps * q
    return b, p, q


class SquareWaveMechanism(Mechanism):
    """The Square Wave randomizer on the canonical domain ``[0, 1]``.

    Attributes:
        b: half-width of the high-probability window.
        p: density inside the window.
        q: density outside the window (``p / q = e^epsilon``).
    """

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        self.b, self.p, self.q = sw_probabilities(self._epsilon)

    @property
    def output_domain(self) -> OutputDomain:
        return OutputDomain(low=-self.b, high=1.0 + self.b)

    @property
    def near_mass(self) -> float:
        """Probability that the output lands inside the near-window."""
        return 2.0 * self.b * self.p

    def perturb(
        self,
        values: Union[float, np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        arr, rng = self._prepare(values, rng)
        shape = arr.shape
        flat = arr.ravel()
        n = flat.size

        # Draw order is the determinism contract: branch selector, then
        # the near-window offset (uniform in [v - b, v + b]), then the
        # position on the far region [-b, 1 + b] \ [v - b, v + b] (total
        # length exactly 1: [-b, v - b) has length v, (v + b, 1 + b] has
        # length 1 - v).  The arithmetic itself runs in the kernel tier.
        u_near = rng.random(n)
        u_span = rng.random(n)
        u_far = rng.random(n)
        out = kernels.sw_report_from_uniforms(
            flat, self.b, self.near_mass, u_near, u_span, u_far
        )
        return out.reshape(shape)

    def pdf(
        self,
        x: Union[float, np.ndarray],
        y: Union[float, np.ndarray],
    ) -> np.ndarray:
        """Density of output ``y`` given true input ``x`` (broadcasting)."""
        xv = np.asarray(x, dtype=float)
        yv = np.asarray(y, dtype=float)
        inside_domain = (yv >= -self.b) & (yv <= 1.0 + self.b)
        near = np.abs(yv - xv) <= self.b
        return np.where(inside_domain, np.where(near, self.p, self.q), 0.0)

    def expected_output(self, x: Union[float, np.ndarray]) -> np.ndarray:
        # E[y] = q * (1 + 2b) / 2 + 2b (p - q) x   (paper Section V, "mu").
        xv = np.asarray(x, dtype=float)
        return self.q * (1.0 + 2.0 * self.b) / 2.0 + 2.0 * self.b * (self.p - self.q) * xv

    def raw_output_moment(self, x: Union[float, np.ndarray], k: int) -> np.ndarray:
        """``E[y^k]`` for output ``y`` given input ``x`` (exact, piecewise).

        The density is ``q`` on ``[-b, 1+b]`` with an extra ``p - q`` on
        ``[x-b, x+b]``, so each raw moment is a difference of monomial
        integrals.
        """
        k = ensure_positive_int(k, "k")
        xv = np.asarray(x, dtype=float)
        kp1 = k + 1
        base = self.q * ((1.0 + self.b) ** kp1 - (-self.b) ** kp1) / kp1
        window = (self.p - self.q) * ((xv + self.b) ** kp1 - (xv - self.b) ** kp1) / kp1
        return base + window

    def output_variance(self, x: Union[float, np.ndarray]) -> np.ndarray:
        mean = self.expected_output(x)
        return self.raw_output_moment(x, 2) - mean**2

    def central_output_moment(self, x: Union[float, np.ndarray], k: int) -> np.ndarray:
        """``E[(y - E[y])^k]`` via binomial expansion of exact raw moments."""
        k = ensure_positive_int(k, "k")
        xv = np.asarray(x, dtype=float)
        mean = self.expected_output(xv)
        total = np.zeros_like(mean, dtype=float)
        for j in range(k + 1):
            coef = math.comb(k, j) * (-1.0) ** (k - j)
            raw = self.raw_output_moment(xv, j) if j > 0 else 1.0
            total = total + coef * raw * mean ** (k - j)
        return total

    # -- collector-side estimation --------------------------------------

    def transition_matrix(self, n_input_bins: int, n_output_bins: int) -> np.ndarray:
        """Discretized channel ``M[out, in]`` used by EM reconstruction.

        ``M[o, i]`` is the probability that an input in the centre of input
        bin ``i`` produces an output falling in output bin ``o``; columns
        sum to 1 up to discretization error.
        """
        n_input_bins = ensure_positive_int(n_input_bins, "n_input_bins")
        n_output_bins = ensure_positive_int(n_output_bins, "n_output_bins")
        centers = (np.arange(n_input_bins) + 0.5) / n_input_bins
        edges = np.linspace(-self.b, 1.0 + self.b, n_output_bins + 1)
        matrix = np.empty((n_output_bins, n_input_bins), dtype=float)
        for i, c in enumerate(centers):
            lo, hi = c - self.b, c + self.b
            # Mass of output bin [e0, e1] = q * len + (p - q) * overlap with
            # the near-window.
            e0, e1 = edges[:-1], edges[1:]
            overlap = np.clip(np.minimum(e1, hi) - np.maximum(e0, lo), 0.0, None)
            matrix[:, i] = self.q * (e1 - e0) + (self.p - self.q) * overlap
        return matrix

    def estimate_distribution(
        self,
        reports: np.ndarray,
        n_bins: int = 64,
        n_output_bins: Optional[int] = None,
        max_iterations: int = 200,
        tol: float = 1e-7,
        smoothing: bool = True,
    ) -> np.ndarray:
        """EM / EMS reconstruction of the input distribution from reports.

        Implements the estimator of Li et al. 2020: expectation maximization
        over a binned input domain, optionally interleaved with a small
        binomial smoothing kernel (the "EMS" variant) that regularizes the
        solution for small sample sizes.

        Args:
            reports: perturbed values in ``[-b, 1 + b]``.
            n_bins: number of input-domain histogram bins.
            n_output_bins: number of output-domain bins (default ``2 * n_bins``).
            max_iterations: EM iteration cap.
            tol: stop when the L1 change of the estimate drops below this.
            smoothing: apply the EMS smoothing kernel between iterations.

        Returns:
            Probability vector of length ``n_bins`` over ``[0, 1]``.
        """
        reports = np.asarray(reports, dtype=float).ravel()
        if reports.size == 0:
            raise ValueError("reports must be non-empty")
        if n_output_bins is None:
            n_output_bins = 2 * n_bins
        matrix = self.transition_matrix(n_bins, n_output_bins)

        clipped = np.clip(reports, -self.b, 1.0 + self.b)
        width = 1.0 + 2.0 * self.b
        idx = np.minimum(
            ((clipped + self.b) / width * n_output_bins).astype(int),
            n_output_bins - 1,
        )
        counts = np.bincount(idx, minlength=n_output_bins).astype(float)

        estimate = np.full(n_bins, 1.0 / n_bins)
        kernel = np.array([1.0, 2.0, 1.0]) / 4.0
        for _ in range(max_iterations):
            mixture = matrix @ estimate
            mixture = np.maximum(mixture, 1e-300)
            weighted = matrix.T @ (counts / mixture)
            updated = estimate * weighted
            total = updated.sum()
            if total <= 0:
                break
            updated /= total
            if smoothing:
                padded = np.concatenate([updated[:1], updated, updated[-1:]])
                updated = np.convolve(padded, kernel, mode="valid")
                updated /= updated.sum()
            if np.abs(updated - estimate).sum() < tol:
                estimate = updated
                break
            estimate = updated
        return estimate

    def report_histogram(self, reports: np.ndarray, n_output_bins: int) -> np.ndarray:
        """Output-domain histogram of a report set (EM sufficient statistic).

        Factored out of :meth:`estimate_distribution` so multi-user EM
        (:meth:`estimate_distribution_rows`) bins each user's reports with
        exactly the same rule.  An empty report set yields all-zero counts.
        """
        reports = np.asarray(reports, dtype=float).ravel()
        n_output_bins = ensure_positive_int(n_output_bins, "n_output_bins")
        if reports.size == 0:
            return np.zeros(n_output_bins)
        clipped = np.clip(reports, -self.b, 1.0 + self.b)
        width = 1.0 + 2.0 * self.b
        idx = np.minimum(
            ((clipped + self.b) / width * n_output_bins).astype(int),
            n_output_bins - 1,
        )
        return np.bincount(idx, minlength=n_output_bins).astype(float)

    def report_histogram_matrix(
        self, report_matrix: np.ndarray, n_output_bins: int
    ) -> np.ndarray:
        """Per-row output-domain histograms of a NaN-padded report matrix.

        The population form of :meth:`report_histogram`: row ``i`` of the
        result is the histogram of the finite entries of
        ``report_matrix[i]`` (non-finite entries mark slots the user never
        reported).  One ``bincount`` over row-offset bin indices replaces
        the per-row Python loop; the counts are integers, so the rule is
        bit-identical to binning each row alone.
        """
        report_matrix = np.asarray(report_matrix, dtype=float)
        n_output_bins = ensure_positive_int(n_output_bins, "n_output_bins")
        if report_matrix.ndim != 2:
            raise ValueError(
                f"report_matrix must be 2-D, got shape {report_matrix.shape}"
            )
        n_rows = report_matrix.shape[0]
        rows, cols = np.nonzero(np.isfinite(report_matrix))
        if rows.size == 0:
            return np.zeros((n_rows, n_output_bins))
        clipped = np.clip(report_matrix[rows, cols], -self.b, 1.0 + self.b)
        width = 1.0 + 2.0 * self.b
        idx = np.minimum(
            ((clipped + self.b) / width * n_output_bins).astype(int),
            n_output_bins - 1,
        )
        flat = np.bincount(
            rows * n_output_bins + idx, minlength=n_rows * n_output_bins
        )
        return flat.reshape(n_rows, n_output_bins).astype(float)

    def estimate_distribution_rows(
        self,
        report_rows: "Sequence[np.ndarray]",
        n_bins: int = 64,
        n_output_bins: Optional[int] = None,
        max_iterations: int = 200,
        tol: float = 1e-7,
        smoothing: bool = True,
    ) -> np.ndarray:
        """EM/EMS reconstruction for many independent report sets at once.

        The population counterpart of :meth:`estimate_distribution`: each
        row of the result is one report set's input-distribution estimate,
        all rows iterated together with one transition matrix and two
        matrix products per EM step instead of per-user Python loops.
        Rows converge (or exhaust their iteration budget) independently —
        a converged row is frozen while the rest keep iterating, so every
        row's trajectory is exactly what it would be running alone.  Rows
        with no reports stay at the uniform prior.

        Args:
            report_rows: one array of perturbed reports per user (lengths
                may differ; empty rows are allowed).
            n_bins, n_output_bins, max_iterations, tol, smoothing: as in
                :meth:`estimate_distribution`.

        Returns:
            ``(len(report_rows), n_bins)`` matrix of probability vectors.
        """
        n_bins = ensure_positive_int(n_bins, "n_bins")
        if n_output_bins is None:
            n_output_bins = 2 * n_bins
        counts = np.stack(
            [self.report_histogram(row, n_output_bins) for row in report_rows]
        ) if len(report_rows) else np.zeros((0, n_output_bins))
        return self._em_rows(counts, n_bins, max_iterations, tol, smoothing)

    def estimate_distribution_matrix(
        self,
        report_matrix: np.ndarray,
        n_bins: int = 64,
        n_output_bins: Optional[int] = None,
        max_iterations: int = 200,
        tol: float = 1e-7,
        smoothing: bool = True,
    ) -> np.ndarray:
        """Multi-row EM/EMS over a NaN-padded report matrix.

        Bit-identical to :meth:`estimate_distribution_rows` on the list
        of each row's finite entries — the batched entry point for
        population engines that buffer phase reports as a dense
        ``(n_users, n_slots)`` matrix with NaN for missed slots.
        """
        n_bins = ensure_positive_int(n_bins, "n_bins")
        if n_output_bins is None:
            n_output_bins = 2 * n_bins
        counts = self.report_histogram_matrix(report_matrix, n_output_bins)
        return self._em_rows(counts, n_bins, max_iterations, tol, smoothing)

    def _em_rows(
        self,
        counts: np.ndarray,
        n_bins: int,
        max_iterations: int,
        tol: float,
        smoothing: bool,
    ) -> np.ndarray:
        """Frozen-convergence EM over per-row histogram counts.

        The working set is kept compact: converged (or collapsed) rows
        are dropped by boolean compression instead of re-gathering the
        shrinking active slice from the full estimate matrix every
        iteration.  Each survivor sees exactly the operations — same
        values, same C-contiguous layouts, same matmul shapes per
        iteration — as the historical ``estimate[active]`` formulation,
        so the trajectories are bit-identical.
        """
        matrix = self.transition_matrix(n_bins, counts.shape[1])
        matrix_t = matrix.T
        n_rows, n_out = counts.shape
        estimate = np.full((n_rows, n_bins), 1.0 / n_bins)
        index = np.arange(n_rows)
        work = estimate.copy()
        counts_work = np.array(counts, dtype=float)
        # Preallocated ping-pong buffers: every elementwise step writes
        # into one of these with ``out=`` (same ufunc, same operands and
        # evaluation order as the expression form — only the destination
        # differs, which cannot change the bits), so the 200-iteration
        # loop allocates nothing large in steady state.  After a row
        # compression the buffers are resized; content never survives an
        # iteration, so fresh ``empty`` storage is fine.
        mix = np.empty((n_rows, n_out))
        upd = np.empty((n_rows, n_bins))
        pad = np.empty((n_rows, n_bins + 2)) if smoothing else None
        scratch = np.empty((n_rows, n_bins)) if smoothing else None
        for _ in range(max_iterations):
            if index.size == 0:
                break
            np.matmul(work, matrix_t, out=mix)
            np.maximum(mix, 1e-300, out=mix)
            np.divide(counts_work, mix, out=mix)
            np.matmul(mix, matrix, out=upd)
            np.multiply(work, upd, out=upd)
            total = upd.sum(axis=1)
            # A row whose mass collapses freezes at its pre-update value,
            # like the scalar path's `total <= 0: break`.
            alive = total > 0
            if not alive.all():
                index = index[alive]
                if index.size == 0:
                    break
                upd = np.ascontiguousarray(upd[alive])
                total = total[alive]
                work = np.ascontiguousarray(work[alive])
                counts_work = np.ascontiguousarray(counts_work[alive])
                mix = mix[: index.size]
                if smoothing:
                    pad = pad[: index.size]
                    scratch = scratch[: index.size]
            np.divide(upd, total[:, None], out=upd)
            if smoothing:
                pad[:, 0] = upd[:, 0]
                pad[:, 1:-1] = upd
                pad[:, -1] = upd[:, -1]
                np.multiply(pad[:, :-2], 0.25, out=upd)
                np.multiply(pad[:, 1:-1], 0.5, out=scratch)
                np.add(upd, scratch, out=upd)
                np.multiply(pad[:, 2:], 0.25, out=scratch)
                np.add(upd, scratch, out=upd)
                np.divide(upd, upd.sum(axis=1, keepdims=True), out=upd)
            np.subtract(upd, work, out=work)
            np.abs(work, out=work)
            delta = work.sum(axis=1)
            estimate[index] = upd
            converged = delta < tol
            if converged.any():
                keep = ~converged
                index = index[keep]
                work = np.ascontiguousarray(upd[keep])
                counts_work = np.ascontiguousarray(counts_work[keep])
                upd = np.empty_like(work)
                mix = mix[: index.size]
                if smoothing:
                    pad = pad[: index.size]
                    scratch = scratch[: index.size]
            else:
                work, upd = upd, work
        return estimate

    def estimate_mean(
        self,
        reports: np.ndarray,
        n_bins: int = 64,
        **kwargs: object,
    ) -> float:
        """Mean of the EM-reconstructed input distribution."""
        distribution = self.estimate_distribution(reports, n_bins=n_bins, **kwargs)
        centers = (np.arange(n_bins) + 0.5) / n_bins
        return float(np.dot(distribution, centers))
