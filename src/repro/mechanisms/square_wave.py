"""Square Wave (SW) mechanism of Li et al., SIGMOD 2020.

The SW mechanism is the paper's primary randomizer (Section II-C).  Each
input ``v`` in ``[0, 1]`` is reported as a value in ``[-b, 1 + b]`` drawn
from a two-level density: ``p`` inside the window ``[v - b, v + b]`` ("near"
mass) and ``q`` elsewhere ("far" mass), with ``p = e^eps * q``.

The half-width is

    b = (eps * e^eps - e^eps + 1) / (2 e^eps (e^eps - eps - 1))

which we evaluate in the numerically stable form

    b = (eps + expm1(-eps)) / (2 * (expm1(eps) - eps))

so that the small-``eps`` limit ``b -> 1/2`` (used by Lemma IV.2 of the
paper) comes out without catastrophic cancellation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from .._validation import ensure_epsilon, ensure_positive_int
from .base import Mechanism, OutputDomain

__all__ = ["SquareWaveMechanism", "sw_half_width", "sw_probabilities"]


def sw_half_width(epsilon: float) -> float:
    """Half-width ``b`` of the SW near-window for privacy budget ``epsilon``.

    Stable for the full range of budgets; tends to ``1/2`` as ``epsilon``
    approaches zero and to ``0`` as it grows.
    """
    eps = ensure_epsilon(epsilon)
    numerator = eps + math.expm1(-eps)
    denominator = 2.0 * (math.expm1(eps) - eps)
    return numerator / denominator


def sw_probabilities(epsilon: float) -> "tuple[float, float, float]":
    """Return ``(b, p, q)`` for the SW mechanism at budget ``epsilon``.

    ``p`` is the density inside the near-window, ``q`` outside; they satisfy
    ``p = e^eps * q`` and ``2*b*p + q = 1`` (the far region always has total
    length 1 because the output domain ``[-b, 1+b]`` is ``1 + 2b`` long).
    """
    eps = ensure_epsilon(epsilon)
    b = sw_half_width(eps)
    e_eps = math.exp(eps)
    q = 1.0 / (2.0 * b * e_eps + 1.0)
    p = e_eps * q
    return b, p, q


class SquareWaveMechanism(Mechanism):
    """The Square Wave randomizer on the canonical domain ``[0, 1]``.

    Attributes:
        b: half-width of the high-probability window.
        p: density inside the window.
        q: density outside the window (``p / q = e^epsilon``).
    """

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        self.b, self.p, self.q = sw_probabilities(self._epsilon)

    @property
    def output_domain(self) -> OutputDomain:
        return OutputDomain(low=-self.b, high=1.0 + self.b)

    @property
    def near_mass(self) -> float:
        """Probability that the output lands inside the near-window."""
        return 2.0 * self.b * self.p

    def perturb(
        self,
        values: Union[float, np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        arr, rng = self._prepare(values, rng)
        shape = arr.shape
        flat = arr.ravel()
        n = flat.size

        near = rng.random(n) < self.near_mass
        # Near branch: uniform in [v - b, v + b].
        near_draw = flat + self.b * (2.0 * rng.random(n) - 1.0)
        # Far branch: uniform over [-b, 1 + b] \ [v - b, v + b], which has
        # total length exactly 1: the left part [-b, v - b) has length v and
        # the right part (v + b, 1 + b] has length 1 - v.
        s = rng.random(n)
        left = s < flat
        far_draw = np.where(left, -self.b + s, self.b + s)
        out = np.where(near, near_draw, far_draw)
        return out.reshape(shape)

    def pdf(
        self,
        x: Union[float, np.ndarray],
        y: Union[float, np.ndarray],
    ) -> np.ndarray:
        """Density of output ``y`` given true input ``x`` (broadcasting)."""
        xv = np.asarray(x, dtype=float)
        yv = np.asarray(y, dtype=float)
        inside_domain = (yv >= -self.b) & (yv <= 1.0 + self.b)
        near = np.abs(yv - xv) <= self.b
        return np.where(inside_domain, np.where(near, self.p, self.q), 0.0)

    def expected_output(self, x: Union[float, np.ndarray]) -> np.ndarray:
        # E[y] = q * (1 + 2b) / 2 + 2b (p - q) x   (paper Section V, "mu").
        xv = np.asarray(x, dtype=float)
        return self.q * (1.0 + 2.0 * self.b) / 2.0 + 2.0 * self.b * (self.p - self.q) * xv

    def raw_output_moment(self, x: Union[float, np.ndarray], k: int) -> np.ndarray:
        """``E[y^k]`` for output ``y`` given input ``x`` (exact, piecewise).

        The density is ``q`` on ``[-b, 1+b]`` with an extra ``p - q`` on
        ``[x-b, x+b]``, so each raw moment is a difference of monomial
        integrals.
        """
        k = ensure_positive_int(k, "k")
        xv = np.asarray(x, dtype=float)
        kp1 = k + 1
        base = self.q * ((1.0 + self.b) ** kp1 - (-self.b) ** kp1) / kp1
        window = (self.p - self.q) * ((xv + self.b) ** kp1 - (xv - self.b) ** kp1) / kp1
        return base + window

    def output_variance(self, x: Union[float, np.ndarray]) -> np.ndarray:
        mean = self.expected_output(x)
        return self.raw_output_moment(x, 2) - mean**2

    def central_output_moment(self, x: Union[float, np.ndarray], k: int) -> np.ndarray:
        """``E[(y - E[y])^k]`` via binomial expansion of exact raw moments."""
        k = ensure_positive_int(k, "k")
        xv = np.asarray(x, dtype=float)
        mean = self.expected_output(xv)
        total = np.zeros_like(mean, dtype=float)
        for j in range(k + 1):
            coef = math.comb(k, j) * (-1.0) ** (k - j)
            raw = self.raw_output_moment(xv, j) if j > 0 else 1.0
            total = total + coef * raw * mean ** (k - j)
        return total

    # -- collector-side estimation --------------------------------------

    def transition_matrix(self, n_input_bins: int, n_output_bins: int) -> np.ndarray:
        """Discretized channel ``M[out, in]`` used by EM reconstruction.

        ``M[o, i]`` is the probability that an input in the centre of input
        bin ``i`` produces an output falling in output bin ``o``; columns
        sum to 1 up to discretization error.
        """
        n_input_bins = ensure_positive_int(n_input_bins, "n_input_bins")
        n_output_bins = ensure_positive_int(n_output_bins, "n_output_bins")
        centers = (np.arange(n_input_bins) + 0.5) / n_input_bins
        edges = np.linspace(-self.b, 1.0 + self.b, n_output_bins + 1)
        matrix = np.empty((n_output_bins, n_input_bins), dtype=float)
        for i, c in enumerate(centers):
            lo, hi = c - self.b, c + self.b
            # Mass of output bin [e0, e1] = q * len + (p - q) * overlap with
            # the near-window.
            e0, e1 = edges[:-1], edges[1:]
            overlap = np.clip(np.minimum(e1, hi) - np.maximum(e0, lo), 0.0, None)
            matrix[:, i] = self.q * (e1 - e0) + (self.p - self.q) * overlap
        return matrix

    def estimate_distribution(
        self,
        reports: np.ndarray,
        n_bins: int = 64,
        n_output_bins: Optional[int] = None,
        max_iterations: int = 200,
        tol: float = 1e-7,
        smoothing: bool = True,
    ) -> np.ndarray:
        """EM / EMS reconstruction of the input distribution from reports.

        Implements the estimator of Li et al. 2020: expectation maximization
        over a binned input domain, optionally interleaved with a small
        binomial smoothing kernel (the "EMS" variant) that regularizes the
        solution for small sample sizes.

        Args:
            reports: perturbed values in ``[-b, 1 + b]``.
            n_bins: number of input-domain histogram bins.
            n_output_bins: number of output-domain bins (default ``2 * n_bins``).
            max_iterations: EM iteration cap.
            tol: stop when the L1 change of the estimate drops below this.
            smoothing: apply the EMS smoothing kernel between iterations.

        Returns:
            Probability vector of length ``n_bins`` over ``[0, 1]``.
        """
        reports = np.asarray(reports, dtype=float).ravel()
        if reports.size == 0:
            raise ValueError("reports must be non-empty")
        if n_output_bins is None:
            n_output_bins = 2 * n_bins
        matrix = self.transition_matrix(n_bins, n_output_bins)

        clipped = np.clip(reports, -self.b, 1.0 + self.b)
        width = 1.0 + 2.0 * self.b
        idx = np.minimum(
            ((clipped + self.b) / width * n_output_bins).astype(int),
            n_output_bins - 1,
        )
        counts = np.bincount(idx, minlength=n_output_bins).astype(float)

        estimate = np.full(n_bins, 1.0 / n_bins)
        kernel = np.array([1.0, 2.0, 1.0]) / 4.0
        for _ in range(max_iterations):
            mixture = matrix @ estimate
            mixture = np.maximum(mixture, 1e-300)
            weighted = matrix.T @ (counts / mixture)
            updated = estimate * weighted
            total = updated.sum()
            if total <= 0:
                break
            updated /= total
            if smoothing:
                padded = np.concatenate([updated[:1], updated, updated[-1:]])
                updated = np.convolve(padded, kernel, mode="valid")
                updated /= updated.sum()
            if np.abs(updated - estimate).sum() < tol:
                estimate = updated
                break
            estimate = updated
        return estimate

    def report_histogram(self, reports: np.ndarray, n_output_bins: int) -> np.ndarray:
        """Output-domain histogram of a report set (EM sufficient statistic).

        Factored out of :meth:`estimate_distribution` so multi-user EM
        (:meth:`estimate_distribution_rows`) bins each user's reports with
        exactly the same rule.  An empty report set yields all-zero counts.
        """
        reports = np.asarray(reports, dtype=float).ravel()
        n_output_bins = ensure_positive_int(n_output_bins, "n_output_bins")
        if reports.size == 0:
            return np.zeros(n_output_bins)
        clipped = np.clip(reports, -self.b, 1.0 + self.b)
        width = 1.0 + 2.0 * self.b
        idx = np.minimum(
            ((clipped + self.b) / width * n_output_bins).astype(int),
            n_output_bins - 1,
        )
        return np.bincount(idx, minlength=n_output_bins).astype(float)

    def estimate_distribution_rows(
        self,
        report_rows: "Sequence[np.ndarray]",
        n_bins: int = 64,
        n_output_bins: Optional[int] = None,
        max_iterations: int = 200,
        tol: float = 1e-7,
        smoothing: bool = True,
    ) -> np.ndarray:
        """EM/EMS reconstruction for many independent report sets at once.

        The population counterpart of :meth:`estimate_distribution`: each
        row of the result is one report set's input-distribution estimate,
        all rows iterated together with one transition matrix and two
        matrix products per EM step instead of per-user Python loops.
        Rows converge (or exhaust their iteration budget) independently —
        a converged row is frozen while the rest keep iterating, so every
        row's trajectory is exactly what it would be running alone.  Rows
        with no reports stay at the uniform prior.

        Args:
            report_rows: one array of perturbed reports per user (lengths
                may differ; empty rows are allowed).
            n_bins, n_output_bins, max_iterations, tol, smoothing: as in
                :meth:`estimate_distribution`.

        Returns:
            ``(len(report_rows), n_bins)`` matrix of probability vectors.
        """
        n_bins = ensure_positive_int(n_bins, "n_bins")
        if n_output_bins is None:
            n_output_bins = 2 * n_bins
        matrix = self.transition_matrix(n_bins, n_output_bins)
        counts = np.stack(
            [self.report_histogram(row, n_output_bins) for row in report_rows]
        ) if len(report_rows) else np.zeros((0, n_output_bins))

        n_rows = counts.shape[0]
        estimate = np.full((n_rows, n_bins), 1.0 / n_bins)
        active = np.arange(n_rows)
        for _ in range(max_iterations):
            if active.size == 0:
                break
            current = estimate[active]
            mixture = np.maximum(current @ matrix.T, 1e-300)
            weighted = (counts[active] / mixture) @ matrix
            updated = current * weighted
            total = updated.sum(axis=1)
            # A row whose mass collapses freezes at its pre-update value,
            # like the scalar path's `total <= 0: break`.
            alive = total > 0
            active = active[alive]
            if active.size == 0:
                break
            updated = updated[alive] / total[alive, None]
            if smoothing:
                padded = np.concatenate(
                    [updated[:, :1], updated, updated[:, -1:]], axis=1
                )
                updated = (
                    padded[:, :-2] * 0.25
                    + padded[:, 1:-1] * 0.5
                    + padded[:, 2:] * 0.25
                )
                updated = updated / updated.sum(axis=1, keepdims=True)
            delta = np.abs(updated - estimate[active]).sum(axis=1)
            estimate[active] = updated
            active = active[delta >= tol]
        return estimate

    def estimate_mean(
        self,
        reports: np.ndarray,
        n_bins: int = 64,
        **kwargs: object,
    ) -> float:
        """Mean of the EM-reconstructed input distribution."""
        distribution = self.estimate_distribution(reports, n_bins=n_bins, **kwargs)
        centers = (np.arange(n_bins) + 0.5) / n_bins
        return float(np.dot(distribution, centers))
