"""Piecewise Mechanism (PM) of Wang et al., ICDE 2019.

Native formulation: input ``t`` in ``[-1, 1]``, output ``y`` in ``[-C, C]``
with ``C = (e^{eps/2} + 1) / (e^{eps/2} - 1)``.  The output density is a
high level ``p`` on a window ``[l(t), r(t)]`` of length ``C - 1`` centred
appropriately and a low level ``p / e^eps`` elsewhere, which makes the
mechanism unbiased with bounded (but, for small budgets, very wide) output.

Canonical wrapper: ``x in [0, 1]`` maps to ``t = 2x - 1`` and the output
maps back through ``(y + 1) / 2``, preserving unbiasedness.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from .base import Mechanism, OutputDomain

__all__ = ["PiecewiseMechanism"]


class PiecewiseMechanism(Mechanism):
    """PM randomizer with the canonical ``[0, 1]`` interface."""

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        half = math.exp(self._epsilon / 2.0)
        self.C = (half + 1.0) / (half - 1.0)
        #: probability of sampling from the high-density window
        self.window_mass = half / (half + 1.0)

    @property
    def output_domain(self) -> OutputDomain:
        # Native [-C, C] maps to [(1 - C)/2, (1 + C)/2] canonically.
        return OutputDomain(low=(1.0 - self.C) / 2.0, high=(1.0 + self.C) / 2.0)

    def _window(self, t: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        left = (self.C + 1.0) / 2.0 * t - (self.C - 1.0) / 2.0
        return left, left + self.C - 1.0

    def perturb(
        self,
        values: Union[float, np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        arr, rng = self._prepare(values, rng)
        shape = arr.shape
        t = (2.0 * arr - 1.0).ravel()
        n = t.size
        left, right = self._window(t)

        in_window = rng.random(n) < self.window_mass
        window_draw = left + (right - left) * rng.random(n)
        # Outside mass splits between [-C, l) (length l + C) and (r, C]
        # (length C - r); the two lengths sum to 2C - (C - 1) = C + 1.
        total_out = self.C + 1.0
        s = rng.random(n) * total_out
        left_len = left + self.C
        out_draw = np.where(s < left_len, -self.C + s, right + (s - left_len))
        y = np.where(in_window, window_draw, out_draw)
        return ((y + 1.0) / 2.0).reshape(shape)

    def expected_output(self, x: Union[float, np.ndarray]) -> np.ndarray:
        # PM is unbiased in native units, hence also canonically.
        return np.asarray(x, dtype=float)

    def output_variance(self, x: Union[float, np.ndarray]) -> np.ndarray:
        # Var[y | t] = t^2 / (e^{eps/2} - 1) + (e^{eps/2} + 3) /
        #              (3 (e^{eps/2} - 1)^2)   (Wang et al. 2019, Eq. 7)
        xv = np.asarray(x, dtype=float)
        t = 2.0 * xv - 1.0
        half = math.exp(self._epsilon / 2.0)
        native = t**2 / (half - 1.0) + (half + 3.0) / (3.0 * (half - 1.0) ** 2)
        return native / 4.0  # canonical units scale by 1/2 -> variance by 1/4
