"""Bounded-input Laplace mechanism (Dwork et al. 2006), canonical wrapper.

Section IV-C of the paper normalizes data to ``[-1, 1]`` (sensitivity 2)
and adds ``Lap(2 / eps)`` noise.  Our canonical domain is ``[0, 1]``; the
affine map ``t = 2x - 1`` has the same sensitivity-2 native domain, and the
inverse map halves the noise scale, so in canonical units the mechanism
adds ``Lap(1 / eps)`` to ``x``.  The output is unbounded.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from .base import Mechanism, OutputDomain

__all__ = ["LaplaceMechanism"]


class LaplaceMechanism(Mechanism):
    """Additive Laplace noise on the canonical domain.

    The mechanism is unbiased: ``E[perturb(x)] = x``.
    """

    #: native-domain sensitivity of a value in [-1, 1]
    NATIVE_SENSITIVITY = 2.0

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        # Native scale 2/eps on [-1, 1]; canonical units are half as wide.
        self.scale = self.NATIVE_SENSITIVITY / self._epsilon / 2.0

    @property
    def output_domain(self) -> OutputDomain:
        return OutputDomain(low=-math.inf, high=math.inf)

    def perturb(
        self,
        values: Union[float, np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        arr, rng = self._prepare(values, rng)
        return arr + rng.laplace(loc=0.0, scale=self.scale, size=arr.shape)

    def expected_output(self, x: Union[float, np.ndarray]) -> np.ndarray:
        return np.asarray(x, dtype=float)

    def output_variance(self, x: Union[float, np.ndarray]) -> np.ndarray:
        xv = np.asarray(x, dtype=float)
        return np.full_like(xv, 2.0 * self.scale**2)
