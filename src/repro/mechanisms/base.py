"""Abstract interface shared by every LDP numerical mechanism.

All mechanisms in :mod:`repro.mechanisms` operate on the *canonical input
domain* ``[0, 1]``: the stream algorithms normalize their data once and every
randomizer speaks the same language.  Mechanisms whose natural formulation
lives on ``[-1, 1]`` (Laplace, PM, SR, HM) handle the affine re-scaling
internally so that, for every mechanism, ``perturb`` is unbiased *in the
canonical domain* whenever the underlying mechanism is unbiased.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from .._validation import ensure_epsilon, ensure_rng

__all__ = ["Mechanism", "OutputDomain"]


@dataclass(frozen=True)
class OutputDomain:
    """Support of a mechanism's output in the canonical domain.

    ``low``/``high`` may be ``-inf``/``inf`` for unbounded mechanisms
    (e.g. Laplace).  ``discrete`` marks mechanisms with a finite output
    alphabet (e.g. Duchi's SR, which emits one of two points).
    """

    low: float
    high: float
    discrete: bool = False

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ValueError(
                f"output domain is empty: low={self.low} >= high={self.high}"
            )

    @property
    def is_bounded(self) -> bool:
        """True when both endpoints are finite."""
        return math.isfinite(self.low) and math.isfinite(self.high)

    @property
    def width(self) -> float:
        """Length of the support (``inf`` for unbounded mechanisms)."""
        return self.high - self.low

    def contains(self, values: Union[float, np.ndarray], atol: float = 1e-9) -> np.ndarray:
        """Element-wise membership test with a small numeric tolerance."""
        arr = np.asarray(values, dtype=float)
        return (arr >= self.low - atol) & (arr <= self.high + atol)


class Mechanism(abc.ABC):
    """A numerical ``epsilon``-LDP randomizer on the canonical domain [0, 1].

    Subclasses must be *pure* given an external random generator: every
    source of randomness flows through the ``rng`` argument of
    :meth:`perturb`, which keeps experiments reproducible.
    """

    def __init__(self, epsilon: float) -> None:
        self._epsilon = ensure_epsilon(epsilon)

    @property
    def epsilon(self) -> float:
        """Privacy budget consumed by one invocation of :meth:`perturb`."""
        return self._epsilon

    @property
    @abc.abstractmethod
    def output_domain(self) -> OutputDomain:
        """Support of the output in the canonical domain."""

    @abc.abstractmethod
    def perturb(
        self,
        values: Union[float, np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Randomize canonical-domain inputs.

        Args:
            values: scalar or array of inputs, each in ``[0, 1]``.
            rng: source of randomness; a fresh default generator is used
                when omitted.

        Returns:
            Array of perturbed values with the same shape as ``values``
            (scalars come back as 0-d arrays; use ``float()`` if needed).
        """

    def perturb_batch(
        self,
        values: Union[Sequence[float], np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Randomize a 1-D population slice in one vectorized pass.

        This is the population-engine entry point: one call perturbs the
        reports of a whole ``(n_users,)`` slot slice.  Every concrete
        mechanism implements :meth:`perturb` with NumPy array operations,
        so the default simply enforces the batch contract (1-D in, 1-D
        float64 out) and delegates; subclasses may override when a
        batch-only sampling shortcut exists (see
        :class:`~repro.mechanisms.hybrid.HybridMechanism`).

        Args:
            values: ``(n,)`` inputs in ``[0, 1]``; ``n = 0`` is allowed and
                returns an empty array.
            rng: source of randomness; a fresh default generator is used
                when omitted.

        Returns:
            ``(n,)`` float64 array of perturbed values.
        """
        arr = np.asarray(values, dtype=float)
        if arr.ndim != 1:
            raise ValueError(
                f"perturb_batch expects a 1-D population slice, got shape {arr.shape}"
            )
        if arr.size == 0:
            return np.empty(0, dtype=float)
        return self._perturb_batch_impl(arr, rng)

    def _perturb_batch_impl(
        self,
        values: np.ndarray,
        rng: Optional[np.random.Generator],
    ) -> np.ndarray:
        """Batch sampling hook (input already validated as non-empty 1-D)."""
        return np.asarray(self.perturb(values, rng), dtype=float)

    @abc.abstractmethod
    def expected_output(self, x: Union[float, np.ndarray]) -> np.ndarray:
        """``E[perturb(x)]`` as a function of the true input."""

    @abc.abstractmethod
    def output_variance(self, x: Union[float, np.ndarray]) -> np.ndarray:
        """``Var[perturb(x)]`` as a function of the true input."""

    # -- shared helpers -------------------------------------------------

    def _prepare(
        self,
        values: Union[float, np.ndarray],
        rng: Optional[np.random.Generator],
    ) -> "tuple[np.ndarray, np.random.Generator]":
        """Validate inputs and normalize the generator (for subclasses)."""
        arr = np.asarray(values, dtype=float)
        if not np.all(np.isfinite(arr)):
            raise ValueError("inputs to perturb must be finite")
        if arr.size and (arr.min() < -1e-9 or arr.max() > 1 + 1e-9):
            raise ValueError(
                "inputs to perturb must lie in the canonical domain [0, 1]; "
                f"observed range [{arr.min():.6g}, {arr.max():.6g}]"
            )
        return np.clip(arr, 0.0, 1.0), ensure_rng(rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(epsilon={self._epsilon!r})"
