"""LDP numerical mechanisms — the randomizer substrate of the library.

All mechanisms share the canonical input domain ``[0, 1]`` (see
:class:`~repro.mechanisms.base.Mechanism`).  The Square Wave mechanism is
the paper's primary randomizer; Laplace, PM, SR, and HM support the
generalizability study (Fig. 9) and the ToPL baseline (Table I).
"""

from .base import Mechanism, OutputDomain
from .duchi import DuchiMechanism
from .hybrid import HybridMechanism
from .laplace import LaplaceMechanism
from .moments import (
    DeviationMoments,
    deviation_expectation_closed_form,
    deviation_moments,
    deviation_variance_closed_form,
    output_moments_at_one,
    sampling_objective,
    variance_of_sample_variance,
)
from .piecewise import PiecewiseMechanism
from .square_wave import SquareWaveMechanism, sw_half_width, sw_probabilities

__all__ = [
    "Mechanism",
    "OutputDomain",
    "SquareWaveMechanism",
    "LaplaceMechanism",
    "PiecewiseMechanism",
    "DuchiMechanism",
    "HybridMechanism",
    "sw_half_width",
    "sw_probabilities",
    "DeviationMoments",
    "deviation_moments",
    "deviation_expectation_closed_form",
    "deviation_variance_closed_form",
    "output_moments_at_one",
    "variance_of_sample_variance",
    "sampling_objective",
    "MECHANISM_REGISTRY",
    "make_mechanism",
]

#: Name -> class registry used by experiment configs (Fig. 9).
MECHANISM_REGISTRY = {
    "sw": SquareWaveMechanism,
    "laplace": LaplaceMechanism,
    "pm": PiecewiseMechanism,
    "sr": DuchiMechanism,
    "hm": HybridMechanism,
}


def make_mechanism(name: str, epsilon: float) -> Mechanism:
    """Instantiate a mechanism by registry name (case-insensitive)."""
    key = name.lower()
    if key not in MECHANISM_REGISTRY:
        known = ", ".join(sorted(MECHANISM_REGISTRY))
        raise KeyError(f"unknown mechanism {name!r}; known: {known}")
    return MECHANISM_REGISTRY[key](epsilon)
