"""Hybrid Mechanism (HM) of Wang et al., ICDE 2019.

HM mixes the Piecewise Mechanism and Duchi's SR mechanism: for budgets above
a threshold ``eps* = 0.61`` it invokes PM with probability
``alpha = 1 - e^{-eps/2}`` and SR otherwise; for budgets at or below the
threshold it always uses SR.  The mixture keeps unbiasedness and achieves
the better of the two worst-case variances.

HM is the perturbation substrate of the ToPL baseline (Wang et al. 2021)
used in the paper's Table I.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from .base import Mechanism, OutputDomain
from .duchi import DuchiMechanism
from .piecewise import PiecewiseMechanism

__all__ = ["HybridMechanism"]

#: budget threshold below which HM degenerates to pure SR
EPSILON_STAR = 0.61


class HybridMechanism(Mechanism):
    """HM randomizer with the canonical ``[0, 1]`` interface."""

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        self._pm = PiecewiseMechanism(epsilon)
        self._sr = DuchiMechanism(epsilon)
        if self._epsilon > EPSILON_STAR:
            self.alpha = 1.0 - math.exp(-self._epsilon / 2.0)
        else:
            self.alpha = 0.0

    @property
    def output_domain(self) -> OutputDomain:
        pm_dom = self._pm.output_domain
        sr_dom = self._sr.output_domain
        return OutputDomain(
            low=min(pm_dom.low, sr_dom.low),
            high=max(pm_dom.high, sr_dom.high),
        )

    def perturb(
        self,
        values: Union[float, np.ndarray],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        arr, rng = self._prepare(values, rng)
        if self.alpha == 0.0:
            return self._sr.perturb(arr, rng)
        use_pm = rng.random(arr.shape) < self.alpha
        pm_out = self._pm.perturb(arr, rng)
        sr_out = self._sr.perturb(arr, rng)
        return np.where(use_pm, pm_out, sr_out)

    def _perturb_batch_impl(
        self,
        values: np.ndarray,
        rng: Optional[np.random.Generator],
    ) -> np.ndarray:
        """Batch sampling that draws each component only for its own users.

        :meth:`perturb` samples both PM and SR for every input and selects
        afterwards, which is the right trade-off for scalars but wastes
        half the draws on large population slices.
        """
        arr, rng = self._prepare(values, rng)
        if self.alpha == 0.0:
            return np.asarray(self._sr.perturb(arr, rng), dtype=float)
        use_pm = rng.random(arr.size) < self.alpha
        out = np.empty(arr.size, dtype=float)
        if use_pm.any():
            out[use_pm] = self._pm.perturb(arr[use_pm], rng)
        if not use_pm.all():
            out[~use_pm] = self._sr.perturb(arr[~use_pm], rng)
        return out

    def expected_output(self, x: Union[float, np.ndarray]) -> np.ndarray:
        return np.asarray(x, dtype=float)  # both components are unbiased

    def output_variance(self, x: Union[float, np.ndarray]) -> np.ndarray:
        # Mixture of unbiased components: Var = alpha * Var_PM + (1 - alpha)
        # * Var_SR (cross term vanishes because both means equal x).
        return self.alpha * self._pm.output_variance(x) + (
            1.0 - self.alpha
        ) * self._sr.output_variance(x)
