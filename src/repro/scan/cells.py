"""Scan cells: the unit of work a sweep orchestrator fans out.

A :class:`ScanCell` is one fully resolved grid point — algorithm,
epsilon, workload, population shape, execution engine, and the two
seeds the cell owns (data and protocol).  :func:`execute_cell` runs one
cell to a :class:`CellResult` and is the module-level worker body, so
cells pickle cleanly into a ``ProcessPoolExecutor``.

Two cell kinds exist:

``scenario``
    synthesize the cell's scenario workload chunk by chunk
    (:func:`repro.runtime.scenario_source`) and execute it through the
    sharded runtime or the live ingestion pipeline.  The result carries
    the per-slot estimate and ground-truth series, error metrics
    (MSE/MAE), the privacy-ledger digest and maximum w-window spend,
    plus throughput and peak RSS.

``sweep``
    the paper's subsequence protocol (Figs. 4-7): one population pass of
    a stacked subsequence matrix through a registry algorithm, scored by
    a named metric.  Sweep cells exist so
    :func:`repro.experiments.runner.run_epsilon_sweep` can delegate its
    (epsilon, algorithm) grid to the same orchestrator; the subsequence
    matrix rides on the cell (it is shared across cells, so the store
    only records its digest).
"""

from __future__ import annotations

import hashlib
import resource
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

__all__ = [
    "SCENARIO_ENGINES",
    "SWEEP_METRICS",
    "TIMING_SCALARS",
    "ScanCell",
    "CellResult",
    "execute_cell",
    "ledger_digest",
]

#: execution engines a scenario cell can run on
SCENARIO_ENGINES = ("sharded", "live")

#: named metrics a sweep cell can score (resolved in the worker)
SWEEP_METRICS = ("mse_mean", "cosine", "jsd")

#: result scalars that depend on the machine, not the math — excluded
#: from every bit-equality fingerprint
TIMING_SCALARS = frozenset(
    {"wall_seconds", "users_per_sec", "reports_per_sec", "peak_rss_bytes"}
)


def ledger_digest(max_window_spend: np.ndarray) -> str:
    """SHA-256 over the per-user maximum w-window spends, bit-exact.

    The digest commits to every float's bit pattern (``tobytes`` on the
    float64 array), so two runs share a digest iff their privacy ledgers
    are bit-identical.
    """
    spends = np.ascontiguousarray(np.asarray(max_window_spend, dtype=np.float64))
    return "sha256:" + hashlib.sha256(spends.tobytes()).hexdigest()


@dataclass(frozen=True)
class ScanCell:
    """One fully resolved grid point, ready to execute anywhere.

    ``data_seed`` keys the workload synthesis, ``protocol_seed`` the
    perturbation randomness — both are assigned by the config layer
    (:meth:`repro.scan.config.ScanConfig.cell_seeds`), so executing the
    cell is deterministic no matter which worker picks it up.
    """

    index: int
    kind: str
    algorithm: str
    epsilon: float
    w: int
    data_seed: int
    protocol_seed: int
    scenario: str = ""
    n_users: int = 0
    horizon: int = 0
    n_shards: int = 1
    engine: str = "sharded"
    metric: str = "mse_mean"
    n_repeats: int = 1
    #: adversarial axes (scenario cells; see repro.adversary) — a cell
    #: with ``attack_fraction > 0`` runs a paired benign/attacked pair
    #: under shared seeds and reports the manipulation gain
    attack_fraction: float = 0.0
    attack_strategy: str = "extreme"
    robust_policy: str = "none"
    #: sweep cells only — the shared (rows, q) subsequence matrix; not
    #: part of the cell's identity (the store records its digest instead)
    matrix: Optional[np.ndarray] = field(
        default=None, compare=False, repr=False, hash=False
    )

    def __post_init__(self) -> None:
        if self.kind not in ("scenario", "sweep"):
            raise ValueError(f"unknown cell kind {self.kind!r}")
        if self.kind == "scenario" and self.engine not in SCENARIO_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r} "
                f"(known: {', '.join(SCENARIO_ENGINES)})"
            )
        if not 0.0 <= float(self.attack_fraction) <= 1.0:
            raise ValueError(
                f"attack_fraction must lie in [0, 1], got {self.attack_fraction}"
            )
        from ..adversary.attacks import ATTACK_STRATEGIES
        from ..adversary.policies import POLICIES

        if self.attack_strategy not in ATTACK_STRATEGIES:
            raise ValueError(
                f"unknown attack strategy {self.attack_strategy!r} "
                f"(known: {', '.join(ATTACK_STRATEGIES)})"
            )
        if self.robust_policy not in POLICIES:
            raise ValueError(
                f"unknown robust policy {self.robust_policy!r} "
                f"(known: {', '.join(POLICIES)})"
            )
        if self.kind == "sweep":
            if self.metric not in SWEEP_METRICS:
                raise ValueError(
                    f"unknown sweep metric {self.metric!r} "
                    f"(known: {', '.join(SWEEP_METRICS)})"
                )
            if self.matrix is None:
                raise ValueError("sweep cells need their subsequence matrix")

    def params(self) -> Dict[str, Any]:
        """JSON-safe identity of the cell (what the manifest records)."""
        out: Dict[str, Any] = {
            "index": int(self.index),
            "kind": self.kind,
            "algorithm": self.algorithm,
            "epsilon": float(self.epsilon),
            "w": int(self.w),
            "data_seed": int(self.data_seed),
            "protocol_seed": int(self.protocol_seed),
            "engine": self.engine,
        }
        if self.kind == "scenario":
            out.update(
                scenario=self.scenario,
                n_users=int(self.n_users),
                horizon=int(self.horizon),
                n_shards=int(self.n_shards),
            )
            # Adversarial identity appears only off the benign defaults,
            # keeping pre-existing manifests (and fingerprints) intact.
            if self.attack_fraction > 0.0:
                out["attack_fraction"] = float(self.attack_fraction)
                out["attack_strategy"] = self.attack_strategy
            if self.robust_policy != "none":
                out["robust_policy"] = self.robust_policy
        else:
            out.update(
                metric=self.metric,
                n_repeats=int(self.n_repeats),
                matrix_digest="sha256:"
                + hashlib.sha256(
                    np.ascontiguousarray(self.matrix).tobytes()
                ).hexdigest(),
            )
        return out


@dataclass
class CellResult:
    """What one executed cell produced.

    ``scalars`` holds every per-cell number (error metrics, ledger
    spend, throughput, peak RSS); ``series`` the per-slot (or per-row)
    arrays.  ``scalars`` keys in :data:`TIMING_SCALARS` are
    machine-dependent and excluded from fingerprints.
    """

    index: int
    params: Dict[str, Any]
    scalars: Dict[str, float]
    series: Dict[str, np.ndarray] = field(repr=False)
    ledger: str = ""

    def deterministic_scalars(self) -> Dict[str, float]:
        """The scalars that must be bit-identical across re-runs."""
        return {
            key: value
            for key, value in sorted(self.scalars.items())
            if key not in TIMING_SCALARS
        }

    def fingerprint(self) -> str:
        """Bit-exact digest of the cell's deterministic content."""
        import json

        h = hashlib.sha256()
        h.update(json.dumps(self.params, sort_keys=True).encode())
        h.update(
            json.dumps(
                {k: repr(v) for k, v in self.deterministic_scalars().items()},
                sort_keys=True,
            ).encode()
        )
        h.update(self.ledger.encode())
        for name in sorted(self.series):
            arr = np.ascontiguousarray(self.series[name])
            h.update(name.encode())
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(arr.tobytes())
        return "sha256:" + h.hexdigest()


def _error_metrics(estimates: np.ndarray, truth: np.ndarray) -> Dict[str, float]:
    errors = estimates - truth
    return {
        "mse": float(np.mean(errors**2)),
        "mae": float(np.mean(np.abs(errors))),
    }


def _execute_scenario(cell: ScanCell) -> "tuple[dict, dict, str]":
    from ..adversary.attacks import AttackSpec
    from ..adversary.study import manipulation_gain
    from ..runtime import run_protocol_sharded, scenario_source

    policy = None if cell.robust_policy == "none" else cell.robust_policy

    def _run(attack: "AttackSpec | None"):
        """One full execution; returns (slots, estimates, truth, spends,
        n_reports).  ``attack=None`` defers to the scenario's default."""
        source = scenario_source(
            cell.scenario,
            n_users=cell.n_users,
            horizon=cell.horizon,
            n_shards=cell.n_shards,
            seed=cell.data_seed,
        )
        if cell.engine == "sharded":
            run = run_protocol_sharded(
                source,
                algorithm=cell.algorithm,
                epsilon=cell.epsilon,
                w=cell.w,
                seed=cell.protocol_seed,
                max_workers=1,  # the cell is the unit of parallelism
                attack=attack,
                robust_policy=policy,
            )
            collector = run.collector
            truth_series = run.true_population_mean()
            spends = run.max_window_spend()
        else:  # live
            from ..service import run_live

            live = run_live(
                source,
                algorithm=cell.algorithm,
                epsilon=cell.epsilon,
                w=cell.w,
                seed=cell.protocol_seed,
                max_workers=1,
                attack=attack,
                robust_policy=policy,
            )
            collector = live.collector
            truth = np.zeros(cell.horizon)
            for chunk in source.chunks():
                truth += chunk.matrix.sum(axis=0)
            truth_series = truth / cell.n_users
            spends = np.zeros(cell.n_users)
            for feed in live.feeds or ():
                for group in feed.engine.groups:
                    spends[group.indices] = (
                        group.engine.accountant.max_window_spend()
                    )
        slots = np.asarray(collector.slots(), dtype=np.int64)
        estimates = np.array([collector.population_mean(int(t)) for t in slots])
        return slots, estimates, truth_series[slots], spends, collector.n_reports

    attack = None
    if cell.attack_fraction > 0.0:
        # The attack seed is the cell's data seed: part of the workload,
        # independent of the protocol randomness the benign leg shares.
        attack = AttackSpec(
            fraction=cell.attack_fraction,
            strategy=cell.attack_strategy,
            seed=cell.data_seed,
        )
    effective = (
        attack
        if attack is not None
        else scenario_source(
            cell.scenario, n_users=cell.n_users, horizon=cell.horizon
        ).default_attack()
    )
    attacked = effective is not None and effective.fraction > 0.0

    slots, estimates, truth_at_slots, spends, n_reports = _run(attack)
    scalars = _error_metrics(estimates, truth_at_slots)
    scalars["max_window_spend"] = float(spends.max()) if spends.size else 0.0
    scalars["n_reports"] = float(n_reports)
    series = {"slots": slots, "estimates": estimates, "truth": truth_at_slots}
    if attacked:
        # Paired benign leg: same seeds, same rng streams (attack
        # randomness is hash-derived, never drawn), attack forced off.
        _, benign_estimates, benign_truth, _, _ = _run(AttackSpec(fraction=0.0))
        scalars["manipulation_gain"] = manipulation_gain(
            benign_estimates, estimates
        )
        scalars["mse_benign"] = _error_metrics(benign_estimates, benign_truth)[
            "mse"
        ]
        series["estimates_benign"] = benign_estimates
    return scalars, series, ledger_digest(spends)


def _execute_sweep(cell: ScanCell) -> "tuple[dict, dict, str]":
    # Lazy import: experiments.runner's wrappers import repro.scan, so a
    # module-level import here would be circular.
    from ..experiments.runner import (
        _population_metric_scores,
        mean_squared_error_of_mean,
        publication_cosine_distance,
        publication_jsd,
    )
    from ..registry import make_algorithm

    metric = {
        "mse_mean": mean_squared_error_of_mean,
        "cosine": publication_cosine_distance,
        "jsd": publication_jsd,
    }[cell.metric]
    matrix = np.asarray(cell.matrix, dtype=float)
    rng = np.random.default_rng(cell.protocol_seed)
    perturber = make_algorithm(cell.algorithm, cell.epsilon, cell.w)
    scores = _population_metric_scores(metric, perturber, matrix, rng)
    if scores is None:  # pragma: no cover - all named metrics vectorize
        raise ValueError(f"metric {cell.metric!r} has no population form")
    scalars = {
        "value": float(np.mean(scores)),
        "n_reports": float(matrix.size),
    }
    series = {"scores": np.asarray(scores, dtype=float)}
    # Sweep perturbation spends exactly epsilon over every w-window by
    # construction; digest the per-row scores as the ledger commitment.
    return scalars, series, ledger_digest(np.asarray(scores, dtype=float))


def execute_cell(cell: ScanCell) -> CellResult:
    """Run one cell to completion (process-pool worker body).

    Deterministic content (estimates, errors, ledger digests) depends
    only on the cell; timing scalars (``wall_seconds``,
    ``users_per_sec``, ``reports_per_sec``, ``peak_rss_bytes``) are
    measured on whatever machine executed it.
    """
    started = time.perf_counter()
    if cell.kind == "scenario":
        scalars, series, ledger = _execute_scenario(cell)
        n_users = cell.n_users
    else:
        scalars, series, ledger = _execute_sweep(cell)
        n_users = int(np.asarray(cell.matrix).shape[0])
    elapsed = time.perf_counter() - started
    scalars["wall_seconds"] = float(elapsed)
    scalars["users_per_sec"] = float(n_users / elapsed) if elapsed > 0 else 0.0
    scalars["reports_per_sec"] = (
        float(scalars.get("n_reports", 0.0) / elapsed) if elapsed > 0 else 0.0
    )
    # ru_maxrss is the process high-water mark (KiB on Linux) — an upper
    # bound per cell, exact for the cell that set the peak.
    scalars["peak_rss_bytes"] = float(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    )
    return CellResult(
        index=cell.index,
        params=cell.params(),
        scalars=scalars,
        series=series,
        ledger=ledger,
    )
