"""Scan orchestrator: fan grid cells out over a process pool, resumably.

:func:`run_scan` takes a :class:`~repro.scan.config.ScanConfig`, expands
it to cells, and executes them — serially or across a
``ProcessPoolExecutor`` — writing each completed cell atomically into a
:class:`~repro.scan.store.ScanStore`.  Because every cell owns a seed
spawned from ``SeedSequence(seed, spawn_key=(cell_index,))`` and cells
never share state, the store's deterministic content is a pure function
of the config: any worker count, any completion order, and any
interrupt/resume sequence produce a bit-identical store
(:meth:`~repro.scan.store.ScanStore.fingerprint`).

Resume discipline:

* an existing store is only touched when ``resume=True`` — accidental
  clobbering of a finished scan is an error, not a merge;
* the store's manifest must carry this config's digest (stale manifests
  are refused with an actionable error);
* completed cells are digest-verified; corrupted or truncated cell
  files are dropped from the manifest and re-run;
* the consolidated table is finalized only once every cell is present.

``stop_after=k`` stops cleanly after ``k`` newly completed cells — the
hook CI's mid-scan resume drill and the kill-matrix tests use to
interrupt a scan at every possible boundary.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .cells import CellResult, ScanCell, execute_cell
from .config import PrunedCell, ScanConfig, config_digest, expand_cells
from .store import ScanStore

__all__ = ["ScanRunResult", "run_scan", "run_cells"]


@dataclass
class ScanRunResult:
    """Everything one :func:`run_scan` invocation produced or planned."""

    config: ScanConfig
    cells: List[ScanCell] = field(repr=False)
    pruned: List[PrunedCell] = field(repr=False)
    results: Dict[int, CellResult] = field(repr=False)
    store_path: Optional[str] = None
    executed: List[int] = field(default_factory=list)
    resumed: List[int] = field(default_factory=list)
    reran: List[int] = field(default_factory=list)
    dry_run: bool = False
    stopped: bool = False
    finalized: bool = False
    elapsed_seconds: float = 0.0

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def complete(self) -> bool:
        """Whether every grid cell has a result."""
        return not self.dry_run and len(self.results) == len(self.cells)

    @property
    def cells_per_second(self) -> float:
        """Newly executed cells per wall-clock second (this invocation)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.executed) / self.elapsed_seconds


def run_cells(
    cells: Sequence[ScanCell],
    workers: int = 1,
    store: Optional[ScanStore] = None,
    on_cell: Optional[Callable[[CellResult], None]] = None,
    stop_after: Optional[int] = None,
) -> "tuple[Dict[int, CellResult], bool]":
    """Execute cells (serially or in a process pool), in-order submission.

    The shared execution core behind :func:`run_scan` and the
    experiment-runner compatibility wrappers (which run small in-memory
    grids with no store).  Returns ``(results by index, stopped)`` where
    ``stopped`` reports an early ``stop_after`` exit.  Completed cells
    are written to ``store`` (when given) the moment they finish, so an
    interrupt after any cell leaves a consistent, resumable store.
    """
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if stop_after is not None and int(stop_after) < 1:
        raise ValueError(f"stop_after must be >= 1, got {stop_after}")
    results: Dict[int, CellResult] = {}
    stopped = False

    def record(result: CellResult) -> bool:
        """Store one result; True when the stop_after budget is spent."""
        results[result.index] = result
        if store is not None:
            store.write_cell(result)
        if on_cell is not None:
            on_cell(result)
        return stop_after is not None and len(results) >= int(stop_after)

    if workers == 1 or len(cells) <= 1:
        for cell in cells:
            if record(execute_cell(cell)):
                stopped = len(results) < len(cells)
                break
        return results, stopped

    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except (OSError, PermissionError, ValueError) as error:  # pragma: no cover
        warnings.warn(
            f"process pool unavailable ({error}); running cells serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return run_cells(cells, workers=1, store=store, on_cell=on_cell,
                         stop_after=stop_after)

    # Windowed submission (like the sharded runtime): at most
    # workers + 2 cells in flight, so huge grids never materialize
    # thousands of pickled subsequence matrices at once.
    window = workers + 2
    budget_spent = False
    with pool:
        pending = set()
        queue = iter(cells)
        try:
            for cell in queue:
                pending.add(pool.submit(execute_cell, cell))
                if len(pending) >= window:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        if record(future.result()):
                            budget_spent = True
                    if budget_spent:
                        break
            while pending and not budget_spent:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    if record(future.result()):
                        budget_spent = True
        finally:
            for future in pending:
                future.cancel()
    stopped = budget_spent and len(results) < len(cells)
    return results, stopped


def run_scan(
    config: ScanConfig,
    store_path: Optional[str] = None,
    workers: int = 1,
    resume: bool = False,
    dry_run: bool = False,
    stop_after: Optional[int] = None,
    on_cell: Optional[Callable[[CellResult], None]] = None,
) -> ScanRunResult:
    """Run (or plan, or resume) one configured scan.

    Args:
        config: the declared grid (see :func:`repro.scan.load_config`).
        store_path: store directory; defaults to the config's ``store``
            key.  ``None`` with no config default executes fully
            in-memory (results returned, nothing persisted).
        workers: worker processes; 1 executes serially in-process.  The
            store's deterministic content is identical for every value.
        resume: continue a partial scan in ``store_path`` — completed
            cells are verified and skipped, corrupted ones re-run.
            Without it an existing store manifest is an error.
        dry_run: expand, filter, and prune the grid, then return the
            plan without executing anything (and without touching disk).
        stop_after: stop cleanly after this many newly completed cells
            (the mid-scan interrupt hook; the store stays resumable).
        on_cell: progress callback, invoked per completed cell in
            completion order.

    Returns:
        A :class:`ScanRunResult`; ``results`` maps cell index to
        :class:`~repro.scan.cells.CellResult` for every cell available
        this invocation (resumed cells included).
    """
    cells, pruned = expand_cells(config)
    digest = config_digest(config)
    if store_path is None:
        store_path = config.store

    if dry_run:
        return ScanRunResult(
            config=config,
            cells=cells,
            pruned=pruned,
            results={},
            store_path=store_path,
            dry_run=True,
        )
    if not cells:
        raise ValueError(
            "the scan's filters pruned every cell; nothing to run"
        )

    store: Optional[ScanStore] = None
    resumed: List[int] = []
    reran: List[int] = []
    if store_path is not None:
        import os

        if os.path.exists(os.path.join(str(store_path), "manifest.json")) and not resume:
            raise ValueError(
                f"store {store_path} already holds a scan; pass resume=True "
                "(--resume) to continue it or point at a fresh directory"
            )
        store = ScanStore(store_path, config_digest=digest)
        store.set_n_cells(len(cells))
        reran = store.verify()
        resumed = store.completed_indices()

    todo = [cell for cell in cells if cell.index not in set(resumed)]
    started = time.perf_counter()
    results, stopped = run_cells(
        todo, workers=workers, store=store, on_cell=on_cell, stop_after=stop_after
    )
    elapsed = time.perf_counter() - started
    executed = sorted(results)

    if store is not None:
        for index in resumed:
            results[index] = store.read_cell(index)

    finalized = False
    if store is not None and len(store.completed_indices()) == len(cells):
        store.finalize()
        finalized = True

    return ScanRunResult(
        config=config,
        cells=cells,
        pruned=pruned,
        results=results,
        store_path=None if store is None else store.path,
        executed=executed,
        resumed=resumed,
        reran=reran,
        stopped=stopped,
        finalized=finalized,
        elapsed_seconds=elapsed,
    )
