"""Declarative sweep grids: the configuration layer of :mod:`repro.scan`.

A scan is declared, not scripted: a TOML or YAML file names the axes of
a parameter grid (algorithm x epsilon x scenario x population size x
shards x engine x w), optional include/exclude filters prune the raw
cross product, and capability-aware pruning drops cells the estimator
registry says cannot run (e.g. the sampling family under a churn
scenario's partial participation).  The surviving cells are numbered
``0..n-1`` in a deterministic order, and that index is the *only* input
to each cell's seed spawn — so the cell list, and therefore every
result, is a pure function of the config file.

Example (TOML)::

    [scan]
    name = "eps-across-scenarios"
    seed = 0

    [grid]
    algorithms = ["capp", "app", "ipp", "sw-direct"]
    epsilons = [0.5, 1.0, 2.0]
    scenarios = ["steady", "diurnal", "bursty", "churn", "drift"]
    n_users = [2000]
    horizons = [96]
    shards = [2]
    engines = ["sharded"]
    w = [10]

    [[exclude]]
    algorithm = "ipp"
    scenario = "drift"

The same document structure as YAML works identically (``scan:``,
``grid:``, ``include:``/``exclude:`` lists of mappings).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..adversary.attacks import ATTACK_STRATEGIES
from ..adversary.policies import POLICIES
from ..registry import algorithm_names, capabilities
from ..runtime.scenarios import SCENARIOS
from .cells import SCENARIO_ENGINES, ScanCell

__all__ = [
    "GridSpec",
    "ScanConfig",
    "PrunedCell",
    "load_config",
    "parse_config",
    "expand_cells",
    "config_digest",
]

#: how per-cell seeds are derived (see :meth:`ScanConfig.cell_seeds`)
SEED_MODES = ("spawn", "shared")


@dataclass(frozen=True)
class GridSpec:
    """The axes of the cross product.  Every axis is a non-empty tuple."""

    algorithms: Tuple[str, ...]
    epsilons: Tuple[float, ...]
    scenarios: Tuple[str, ...]
    n_users: Tuple[int, ...] = (2_000,)
    horizons: Tuple[int, ...] = (96,)
    shards: Tuple[int, ...] = (1,)
    engines: Tuple[str, ...] = ("sharded",)
    w: Tuple[int, ...] = (10,)
    # Adversarial axes (see repro.adversary).  The defaults are the
    # benign point, so grids that never mention them expand to exactly
    # the cells (and digests) they did before the axes existed.
    attack_fractions: Tuple[float, ...] = (0.0,)
    attack_strategies: Tuple[str, ...] = ("extreme",)
    robust_policies: Tuple[str, ...] = ("none",)

    def __post_init__(self) -> None:
        for axis in (
            "algorithms",
            "epsilons",
            "scenarios",
            "n_users",
            "horizons",
            "shards",
            "engines",
            "w",
            "attack_fractions",
            "attack_strategies",
            "robust_policies",
        ):
            values = getattr(self, axis)
            if not isinstance(values, tuple) or not values:
                raise ValueError(f"grid axis {axis!r} must be a non-empty tuple")
        known = set(algorithm_names())
        for name in self.algorithms:
            if name.lower() not in known:
                raise ValueError(
                    f"unknown algorithm {name!r} in grid "
                    f"(known: {', '.join(sorted(known))})"
                )
        for scenario in self.scenarios:
            if scenario not in SCENARIOS:
                raise ValueError(
                    f"unknown scenario {scenario!r} in grid "
                    f"(known: {', '.join(sorted(SCENARIOS))})"
                )
        for engine in self.engines:
            if engine not in SCENARIO_ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r} in grid "
                    f"(known: {', '.join(SCENARIO_ENGINES)})"
                )
        for axis in ("epsilons",):
            if any(value <= 0 for value in getattr(self, axis)):
                raise ValueError(f"grid axis {axis!r} must be positive")
        for axis in ("n_users", "horizons", "shards", "w"):
            if any(int(value) < 1 for value in getattr(self, axis)):
                raise ValueError(f"grid axis {axis!r} must be >= 1")
        for fraction in self.attack_fractions:
            if not 0.0 <= float(fraction) <= 1.0:
                raise ValueError(
                    f"grid axis 'attack_fractions' must lie in [0, 1], "
                    f"got {fraction}"
                )
        for strategy in self.attack_strategies:
            if strategy not in ATTACK_STRATEGIES:
                raise ValueError(
                    f"unknown attack strategy {strategy!r} in grid "
                    f"(known: {', '.join(ATTACK_STRATEGIES)})"
                )
        for policy in self.robust_policies:
            if policy not in POLICIES:
                raise ValueError(
                    f"unknown robust policy {policy!r} in grid "
                    f"(known: {', '.join(POLICIES)})"
                )

    @property
    def n_raw_cells(self) -> int:
        """Cells in the raw cross product, before any filtering."""
        return (
            len(self.algorithms)
            * len(self.epsilons)
            * len(self.scenarios)
            * len(self.n_users)
            * len(self.horizons)
            * len(self.shards)
            * len(self.engines)
            * len(self.w)
            * len(self.attack_fractions)
            * len(self.attack_strategies)
            * len(self.robust_policies)
        )

    def to_dict(self) -> Dict[str, Any]:
        payload = {
            "algorithms": list(self.algorithms),
            "epsilons": [float(e) for e in self.epsilons],
            "scenarios": list(self.scenarios),
            "n_users": [int(n) for n in self.n_users],
            "horizons": [int(h) for h in self.horizons],
            "shards": [int(s) for s in self.shards],
            "engines": list(self.engines),
            "w": [int(w) for w in self.w],
        }
        # Adversarial axes appear only when swept off their benign
        # defaults, so pre-existing configs keep their digests (and their
        # stores keep resuming).
        if self.attack_fractions != (0.0,):
            payload["attack_fractions"] = [float(f) for f in self.attack_fractions]
        if self.attack_strategies != ("extreme",):
            payload["attack_strategies"] = list(self.attack_strategies)
        if self.robust_policies != ("none",):
            payload["robust_policies"] = list(self.robust_policies)
        return payload


@dataclass(frozen=True)
class ScanConfig:
    """One declared scan: grid, filters, and the root seed."""

    name: str
    grid: GridSpec
    seed: int = 0
    seed_mode: str = "spawn"
    include: Tuple[Mapping[str, Any], ...] = ()
    exclude: Tuple[Mapping[str, Any], ...] = ()
    store: Optional[str] = None
    backend: str = "auto"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scan name must be non-empty")
        if self.seed_mode not in SEED_MODES:
            raise ValueError(
                f"seed_mode must be one of {SEED_MODES}, got {self.seed_mode!r}"
            )
        if self.backend not in ("auto", "npz", "parquet"):
            raise ValueError(
                f"backend must be 'auto', 'npz' or 'parquet', got {self.backend!r}"
            )

    def cell_seeds(self, index: int) -> Tuple[int, int]:
        """``(data_seed, protocol_seed)`` for the cell at ``index``.

        ``spawn`` (the default) derives both from
        ``SeedSequence(seed, spawn_key=(index,))`` — every cell owns an
        independent randomness stream, so cells may execute in any order
        on any number of workers, and a resumed scan continues exactly
        the stream an uninterrupted scan would have used.  ``shared``
        reproduces the legacy experiment-harness convention (every cell
        uses ``(seed, seed + 1)``); the compatibility wrappers in
        :mod:`repro.experiments.runner` rely on it for bit-identical
        refactoring.
        """
        if self.seed_mode == "shared":
            return int(self.seed), int(self.seed) + 1
        state = np.random.SeedSequence(
            int(self.seed), spawn_key=(int(index),)
        ).generate_state(2)
        return int(state[0]), int(state[1])

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-safe form (the digest and manifest payload)."""
        return {
            "name": self.name,
            "seed": int(self.seed),
            "seed_mode": self.seed_mode,
            "grid": self.grid.to_dict(),
            "include": [dict(sorted(entry.items())) for entry in self.include],
            "exclude": [dict(sorted(entry.items())) for entry in self.exclude],
        }


@dataclass(frozen=True)
class PrunedCell:
    """A raw-grid cell removed before execution, with the reason why."""

    params: Dict[str, Any] = field(hash=False)
    reason: str = ""


def config_digest(config: ScanConfig) -> str:
    """SHA-256 over the canonical config — the store's compatibility key.

    ``store`` and ``backend`` are deliberately excluded: where results
    land does not change what the results are, so moving a store or
    switching its serialization never invalidates a resume.
    """
    payload = json.dumps(config.to_dict(), sort_keys=True).encode()
    return "sha256:" + hashlib.sha256(payload).hexdigest()


# -- document parsing ------------------------------------------------------


def _as_tuple(value: Any) -> Tuple[Any, ...]:
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


_GRID_KEYS = {
    "algorithms",
    "epsilons",
    "scenarios",
    "n_users",
    "horizons",
    "shards",
    "engines",
    "w",
    "attack_fractions",
    "attack_strategies",
    "robust_policies",
}

#: filter keys -> ScanCell attribute they match against
_FILTER_KEYS = {
    "algorithm": "algorithm",
    "epsilon": "epsilon",
    "scenario": "scenario",
    "n_users": "n_users",
    "horizon": "horizon",
    "shards": "n_shards",
    "engine": "engine",
    "w": "w",
    "attack_fraction": "attack_fraction",
    "attack_strategy": "attack_strategy",
    "robust_policy": "robust_policy",
}


def _check_filters(entries: Sequence[Mapping[str, Any]], what: str) -> Tuple[Dict[str, Any], ...]:
    checked: List[Dict[str, Any]] = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, Mapping) or not entry:
            raise ValueError(
                f"{what} filter #{position} must be a non-empty mapping, "
                f"got {entry!r}"
            )
        unknown = set(entry) - set(_FILTER_KEYS)
        if unknown:
            raise ValueError(
                f"{what} filter #{position} names unknown keys "
                f"{sorted(unknown)} (known: {sorted(_FILTER_KEYS)})"
            )
        checked.append(dict(entry))
    return tuple(checked)


def parse_config(document: Mapping[str, Any], name_hint: str = "scan") -> ScanConfig:
    """Build a :class:`ScanConfig` from a parsed TOML/YAML document."""
    if not isinstance(document, Mapping):
        raise ValueError(
            f"scan config must be a mapping at top level, got "
            f"{type(document).__name__}"
        )
    unknown = set(document) - {"scan", "grid", "include", "exclude"}
    if unknown:
        raise ValueError(
            f"unknown top-level config sections {sorted(unknown)} "
            "(known: scan, grid, include, exclude)"
        )
    meta = document.get("scan", {})
    if not isinstance(meta, Mapping):
        raise ValueError("[scan] section must be a table/mapping")
    unknown = set(meta) - {"name", "seed", "seed_mode", "store", "backend"}
    if unknown:
        raise ValueError(
            f"unknown [scan] keys {sorted(unknown)} "
            "(known: name, seed, seed_mode, store, backend)"
        )
    raw_grid = document.get("grid")
    if not isinstance(raw_grid, Mapping) or not raw_grid:
        raise ValueError("scan config needs a non-empty [grid] section")
    unknown = set(raw_grid) - _GRID_KEYS
    if unknown:
        raise ValueError(
            f"unknown [grid] axes {sorted(unknown)} (known: {sorted(_GRID_KEYS)})"
        )
    for axis in ("algorithms", "epsilons", "scenarios"):
        if axis not in raw_grid:
            raise ValueError(f"[grid] must declare {axis}")
    grid_kwargs: Dict[str, Any] = {
        key: _as_tuple(raw_grid[key]) for key in raw_grid
    }
    grid_kwargs["algorithms"] = tuple(str(a) for a in grid_kwargs["algorithms"])
    grid_kwargs["epsilons"] = tuple(float(e) for e in grid_kwargs["epsilons"])
    grid = GridSpec(**grid_kwargs)
    return ScanConfig(
        name=str(meta.get("name", name_hint)),
        grid=grid,
        seed=int(meta.get("seed", 0)),
        seed_mode=str(meta.get("seed_mode", "spawn")),
        include=_check_filters(document.get("include", ()), "include"),
        exclude=_check_filters(document.get("exclude", ()), "exclude"),
        store=meta.get("store"),
        backend=str(meta.get("backend", "auto")),
    )


def load_config(path: str) -> ScanConfig:
    """Load a scan config from a ``.toml`` / ``.yaml`` / ``.yml`` file."""
    if not os.path.exists(path):
        raise FileNotFoundError(f"scan config {path} does not exist")
    stem = os.path.splitext(os.path.basename(path))[0]
    extension = os.path.splitext(path)[1].lower()
    if extension == ".toml":
        import tomllib

        with open(path, "rb") as fh:
            try:
                document = tomllib.load(fh)
            except tomllib.TOMLDecodeError as error:
                raise ValueError(f"invalid TOML in {path}: {error}") from error
    elif extension in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as error:  # pragma: no cover - yaml ships in CI
            raise ValueError(
                f"{path} is YAML but PyYAML is not installed; use TOML"
            ) from error
        with open(path) as fh:
            try:
                document = yaml.safe_load(fh)
            except yaml.YAMLError as error:
                raise ValueError(f"invalid YAML in {path}: {error}") from error
    else:
        raise ValueError(
            f"unsupported scan config extension {extension!r} for {path} "
            "(use .toml, .yaml or .yml)"
        )
    try:
        return parse_config(document, name_hint=stem)
    except ValueError as error:
        raise ValueError(f"{path}: {error}") from error


# -- grid expansion --------------------------------------------------------


def _matches(entry: Mapping[str, Any], params: Mapping[str, Any]) -> bool:
    """One filter entry matches when *all* of its keys match the cell.

    A key's value may be a scalar or a list of alternatives.  Floats are
    compared exactly — grids are declared, not computed, so the literal
    in the filter is the literal in the axis.
    """
    for key, wanted in entry.items():
        have = params[_FILTER_KEYS[key]]
        alternatives = wanted if isinstance(wanted, (list, tuple)) else (wanted,)
        if not any(have == type(have)(option) for option in alternatives):
            return False
    return True


def _participation_limited(scenario: str) -> bool:
    """Whether a scenario preset runs with partial participation."""
    preset = SCENARIOS[scenario]
    return bool(preset.get("churn_waves")) or preset.get(
        "baseline_participation", 1.0
    ) < 1.0


def expand_cells(
    config: ScanConfig,
) -> Tuple[List[ScanCell], List[PrunedCell]]:
    """The config's executable cells (indexed 0..n-1) plus pruned cells.

    Expansion order is the deterministic cross product
    ``algorithms x epsilons x scenarios x n_users x horizons x shards x
    engines x w x attack_fractions x attack_strategies x
    robust_policies`` (the adversarial axes appended last, so grids that
    keep their benign defaults enumerate exactly as before) with
    include/exclude filters and capability pruning applied *before*
    indices are assigned — the index is a property of the config, never
    of execution.

    Capability pruning consults :func:`repro.registry.capabilities`: an
    estimator without the ``participation`` capability cannot run a
    scenario whose participation schedule dips below one (the sampling
    family uploads on a shared calendar), so those cells are reported as
    pruned instead of failing mid-scan.
    """
    grid = config.grid
    cells: List[ScanCell] = []
    pruned: List[PrunedCell] = []
    for combo in itertools.product(
        grid.algorithms,
        grid.epsilons,
        grid.scenarios,
        grid.n_users,
        grid.horizons,
        grid.shards,
        grid.engines,
        grid.w,
        grid.attack_fractions,
        grid.attack_strategies,
        grid.robust_policies,
    ):
        (
            algorithm,
            epsilon,
            scenario,
            n_users,
            horizon,
            shards,
            engine,
            w,
            attack_fraction,
            attack_strategy,
            robust_policy,
        ) = combo
        params = {
            "algorithm": algorithm,
            "epsilon": float(epsilon),
            "scenario": scenario,
            "n_users": int(n_users),
            "horizon": int(horizon),
            "n_shards": int(shards),
            "engine": engine,
            "w": int(w),
            "attack_fraction": float(attack_fraction),
            "attack_strategy": attack_strategy,
            "robust_policy": robust_policy,
        }
        if config.include and not any(
            _matches(entry, params) for entry in config.include
        ):
            continue
        if any(_matches(entry, params) for entry in config.exclude):
            continue
        flags = capabilities(algorithm)
        if not flags["participation"] and _participation_limited(scenario):
            pruned.append(
                PrunedCell(
                    params=params,
                    reason=(
                        f"{algorithm} needs full participation but scenario "
                        f"{scenario!r} runs a churn/partial-participation "
                        "schedule"
                    ),
                )
            )
            continue
        if engine == "live" and not flags["live"]:  # pragma: no cover - all live
            pruned.append(
                PrunedCell(
                    params=params,
                    reason=f"{algorithm} does not support the live engine",
                )
            )
            continue
        index = len(cells)
        data_seed, protocol_seed = config.cell_seeds(index)
        cells.append(
            ScanCell(
                index=index,
                kind="scenario",
                data_seed=data_seed,
                protocol_seed=protocol_seed,
                **params,
            )
        )
    return cells, pruned
