"""Config-driven sweep orchestration with a columnar result store.

The evaluation substrate: declare a grid (algorithm x epsilon x
scenario x population x shards x engine) in TOML/YAML, fan its cells
out over worker processes, and land every result in a resumable,
bit-reproducible on-disk store that the analysis layer queries
directly.

* :mod:`repro.scan.config` — grid spec, include/exclude filters,
  capability-aware pruning, per-cell seed spawns;
* :mod:`repro.scan.cells` — the executable unit and its result;
* :mod:`repro.scan.store` — atomic per-cell persistence, corruption
  detection, consolidated columnar table (npz always, parquet when
  pyarrow is available);
* :mod:`repro.scan.orchestrator` — process-pool fan-out with
  interrupt/resume semantics;
* :mod:`repro.scan.report` — summaries and the bench-regeneration mode.

See ``docs/scan.md`` for the config schema, store layout, resume
semantics, and a query cookbook.
"""

from .cells import CellResult, ScanCell, execute_cell, ledger_digest
from .config import (
    GridSpec,
    PrunedCell,
    ScanConfig,
    config_digest,
    expand_cells,
    load_config,
    parse_config,
)
from .orchestrator import ScanRunResult, run_cells, run_scan
from .report import run_bench, summarize_plan, summarize_store
from .store import ScanStore, StoreError, parquet_available

__all__ = [
    "GridSpec",
    "ScanConfig",
    "PrunedCell",
    "ScanCell",
    "CellResult",
    "ScanStore",
    "StoreError",
    "ScanRunResult",
    "load_config",
    "parse_config",
    "expand_cells",
    "config_digest",
    "execute_cell",
    "ledger_digest",
    "run_cells",
    "run_scan",
    "run_bench",
    "summarize_plan",
    "summarize_store",
    "parquet_available",
]
